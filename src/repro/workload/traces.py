"""Trace analysis: the idle-interval fragmentation study of Figure 3.

The paper analyses two months of production telemetry and finds that 72% of
idle intervals are shorter than one hour (Figure 3(a)) yet those short
intervals contribute only 5% of the total idle duration (Figure 3(b)) --
the motivation for logical pauses.  These helpers compute the same two CDFs
from a synthetic fleet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.types import SECONDS_PER_HOUR, ActivityTrace


@dataclass(frozen=True)
class IdleIntervalStats:
    """Fleet-wide idle interval durations (seconds), sorted ascending."""

    durations: Tuple[int, ...]

    @property
    def count(self) -> int:
        return len(self.durations)

    @property
    def total_idle_s(self) -> int:
        return sum(self.durations)

    def fraction_of_count_below(self, threshold_s: int) -> float:
        """CDF of interval *count* (Figure 3(a)) at one threshold."""
        if not self.durations:
            return 0.0
        below = sum(1 for d in self.durations if d < threshold_s)
        return below / len(self.durations)

    def fraction_of_duration_below(self, threshold_s: int) -> float:
        """CDF of total idle *duration* (Figure 3(b)) at one threshold."""
        total = self.total_idle_s
        if total == 0:
            return 0.0
        return sum(d for d in self.durations if d < threshold_s) / total

    def cdf_points(
        self, thresholds_s: Sequence[int]
    ) -> List[Tuple[int, float, float]]:
        """(threshold, count CDF, duration CDF) rows for the Figure 3 pair."""
        return [
            (
                t,
                self.fraction_of_count_below(t),
                self.fraction_of_duration_below(t),
            )
            for t in thresholds_s
        ]


def idle_interval_stats(
    traces: Sequence[ActivityTrace],
    window_start: Optional[int] = None,
    window_end: Optional[int] = None,
) -> IdleIntervalStats:
    """Collect idle intervals across a fleet, optionally clipped to a
    window (idle intervals straddling the boundary are clipped)."""
    durations: List[int] = []
    for trace in traces:
        for gap in trace.idle_intervals():
            start, end = gap.start, gap.end
            if window_start is not None:
                start = max(start, window_start)
            if window_end is not None:
                end = min(end, window_end)
            if end > start:
                durations.append(end - start)
    durations.sort()
    return IdleIntervalStats(tuple(durations))


def hours(h: float) -> int:
    """Convenience: hours to seconds for threshold lists."""
    return int(h * SECONDS_PER_HOUR)
