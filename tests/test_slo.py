"""SLO monitoring: burn-rate alerting, the KPI stream bridge, the
OpenMetrics exposition, and the chaos-scenario acceptance round trip."""

import asyncio

import pytest

from repro.errors import ProRPError
from repro.experiments.chaos import run_slo_chaos
from repro.experiments.common import ExperimentScale
from repro.observability import (
    NULL_TRACER,
    AlertEvent,
    AlertLedger,
    KpiStream,
    MetricsRegistry,
    SloMonitor,
    SloSpec,
    observed,
    render_openmetrics,
    serving_slos,
    simulation_slos,
)
from repro.serving import HealthRequest, MetricsRequest, PredictionServer
from repro.workload.regions import RegionPreset

W = 900


def _burn_spec(**overrides):
    fields = dict(
        name="qos",
        kind="burn_rate",
        bad_series="slo.qos.reactive",
        total_series="slo.qos.logins",
        objective=0.10,
        fast_window_s=W,
        slow_window_s=4 * W,
    )
    fields.update(overrides)
    return SloSpec(**fields)


# ----------------------------------------------------------------------
# Spec validation and schema
# ----------------------------------------------------------------------


class TestSloSpec:
    def test_rejects_malformed_rules(self):
        with pytest.raises(ProRPError):
            SloSpec(name="x", kind="sparkline")
        with pytest.raises(ProRPError):
            _burn_spec(severity="whisper")
        with pytest.raises(ProRPError):
            _burn_spec(objective=0.0)
        with pytest.raises(ProRPError):
            _burn_spec(bad_series="")
        with pytest.raises(ProRPError):
            _burn_spec(fast_window_s=2 * W, slow_window_s=W)
        with pytest.raises(ProRPError):
            _burn_spec(clear_after=0)
        with pytest.raises(ProRPError):
            SloSpec(name="x", kind="threshold", series="s", stat="mode")
        with pytest.raises(ProRPError):
            SloSpec(name="x", kind="threshold", series="")

    def test_to_dict_is_the_documented_rule_schema(self):
        doc = _burn_spec(labels={"region": "eu"}).to_dict()
        assert doc["kind"] == "burn_rate"
        assert doc["bad_series"] == "slo.qos.reactive"
        assert doc["objective"] == 0.10
        assert doc["labels"] == {"region": "eu"}
        doc = SloSpec(
            name="p99", kind="threshold", series="s", stat="p99", limit=50.0
        ).to_dict()
        assert doc["series"] == "s"
        assert doc["stat"] == "p99"
        assert doc["limit"] == 50.0

    def test_stock_rule_sets_validate(self):
        names = {spec.name for spec in simulation_slos()}
        assert names == {
            "qos_violation",
            "predictor_unavailable",
            "predictor_latency_p99",
            "cogs_idle",
        }
        assert {spec.name for spec in serving_slos()} == {
            "shed_rate",
            "serving_latency_p99",
        }


# ----------------------------------------------------------------------
# Burn-rate firing and hysteresis
# ----------------------------------------------------------------------


class TestBurnRateAlerting:
    def _registry_with_windows(self, reactive_per_window):
        registry = MetricsRegistry()
        logins = registry.counter_series("slo.qos.logins", window_s=W)
        reactive = registry.counter_series("slo.qos.reactive", window_s=W)
        for i, bad in enumerate(reactive_per_window):
            logins.inc(i * W, 10)
            reactive.inc(i * W, bad)
        return registry

    def test_fires_then_clears_with_hysteresis(self):
        registry = self._registry_with_windows([10, 10, 10, 10, 0, 0, 0])
        monitor = SloMonitor(registry, (_burn_spec(),))
        # Four saturated windows: fast and slow burn both 10x budget.
        events = monitor.evaluate(4 * W)
        assert [e.state for e in events] == ["firing"]
        assert monitor.ledger.is_firing("qos")
        assert registry.gauge("slo.qos.firing").value == 1
        # One clean window is not enough (clear_after=2)...
        assert monitor.evaluate(5 * W) == []
        assert monitor.ledger.is_firing("qos")
        # ...the second consecutive clean evaluation clears it.
        events = monitor.evaluate(6 * W)
        assert [e.state for e in events] == ["cleared"]
        assert not monitor.ledger.is_firing("qos")
        assert registry.gauge("slo.qos.firing").value == 0
        assert registry.counter("slo.alerts.fired").value == 1
        assert registry.counter("slo.alerts.cleared").value == 1
        assert registry.gauge("slo.alerts.active").value == 0

    def test_single_bad_window_in_clean_slow_window_does_not_fire(self):
        # One saturated fast window, three clean ones: fast burn 10x but
        # slow burn (10/40)/0.1 = 2.5x < 3x -- the multi-window guard.
        registry = self._registry_with_windows([0, 0, 0, 10])
        monitor = SloMonitor(registry, (_burn_spec(),))
        assert monitor.evaluate(4 * W) == []
        assert not monitor.ledger.is_firing("qos")

    def test_zero_traffic_burns_nothing(self):
        registry = MetricsRegistry()
        registry.counter_series("slo.qos.logins", window_s=W)
        registry.counter_series("slo.qos.reactive", window_s=W)
        monitor = SloMonitor(registry, (_burn_spec(),))
        assert monitor.evaluate(4 * W) == []

    def test_labelled_rule_falls_back_to_unlabelled_series(self):
        registry = self._registry_with_windows([10, 10, 10, 10])
        monitor = SloMonitor(
            registry, (_burn_spec(labels={"region": "eu"}),)
        )
        events = monitor.evaluate(4 * W)
        assert [e.state for e in events] == ["firing"]


class TestThresholdAlerting:
    def test_gauge_last_threshold(self):
        registry = MetricsRegistry()
        spec = SloSpec(
            name="breaker_open",
            kind="threshold",
            series="breaker.predictor.state.window",
            stat="last",
            limit=1.0,
            fast_window_s=W,
            slow_window_s=W,
        )
        monitor = SloMonitor(registry, (spec,))
        gauge = registry.gauge_series(
            "breaker.predictor.state.window", window_s=W
        )
        gauge.set(100, 0)
        assert monitor.evaluate(W) == []
        gauge.set(W + 100, 1)  # breaker opens
        events = monitor.evaluate(2 * W)
        assert [e.state for e in events] == ["firing"]
        assert events[0].value == 1.0
        gauge.set(2 * W + 100, 0)  # breaker re-closes
        monitor.evaluate(3 * W)
        events = monitor.evaluate(4 * W)
        assert [e.state for e in events] == ["cleared"]

    def test_histogram_percentile_threshold(self):
        registry = MetricsRegistry()
        spec = SloSpec(
            name="latency",
            kind="threshold",
            series="lat",
            stat="p99",
            limit=50.0,
            fast_window_s=W,
            slow_window_s=W,
        )
        monitor = SloMonitor(registry, (spec,))
        hist = registry.histogram_series(
            "lat", window_s=W, buckets=[1.0, 10.0, 100.0]
        )
        for _ in range(20):
            hist.observe(100, 2.0)
        assert monitor.evaluate(W) == []
        for _ in range(20):
            hist.observe(W + 100, 90.0)
        events = monitor.evaluate(2 * W)
        assert [e.state for e in events] == ["firing"]
        assert events[0].value >= 50.0


# ----------------------------------------------------------------------
# Evaluation clock
# ----------------------------------------------------------------------


class TestEvaluationClock:
    def _monitor(self):
        registry = MetricsRegistry()
        return registry, SloMonitor(
            registry, (_burn_spec(),), eval_period_s=W
        )

    def test_aligns_then_evaluates_crossed_boundaries(self):
        registry, monitor = self._monitor()
        assert monitor.next_boundary == float("-inf")
        monitor.maybe_evaluate(100)  # aligns; never evaluates the
        assert monitor.next_boundary == W  # partial birth window
        monitor.maybe_evaluate(850)
        assert registry.counter("slo.evaluations").value == 0
        monitor.maybe_evaluate(2000)  # crosses 900 and 1800
        assert registry.counter("slo.evaluations").value == 2
        assert monitor.next_boundary == 2700

    def test_drain_flushes_the_partial_window(self):
        registry, monitor = self._monitor()
        monitor.maybe_evaluate(100)
        monitor.drain(2400)
        # Boundaries 900 and 1800, plus the final partial at 2400.
        assert registry.counter("slo.evaluations").value == 3

    def test_duplicate_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ProRPError):
            SloMonitor(registry, (_burn_spec(), _burn_spec()))
        with pytest.raises(ProRPError):
            SloMonitor(registry, ())


# ----------------------------------------------------------------------
# Alert ledger
# ----------------------------------------------------------------------


class TestAlertLedger:
    def test_queries(self):
        ledger = AlertLedger()
        ledger.append(AlertEvent(100, "a", "firing", "page", 6.0))
        ledger.append(AlertEvent(200, "b", "firing", "ticket", 2.0))
        ledger.append(AlertEvent(300, "a", "cleared", "page", 0.0))
        assert [e.name for e in ledger.active()] == ["b"]
        assert ledger.is_firing("b") and not ledger.is_firing("a")
        assert ledger.first_time("a", "firing") == 100
        assert ledger.first_time("a", "cleared") == 300
        assert ledger.first_time("b", "cleared") is None
        assert len(ledger.events_for("a")) == 2
        assert ledger.fired_count() == 2
        assert ledger.cleared_count() == 1


# ----------------------------------------------------------------------
# KPI stream bridge
# ----------------------------------------------------------------------


class TestKpiStream:
    def test_filters_and_clips_to_the_evaluation_window(self):
        registry = MetricsRegistry()
        stream = KpiStream(registry, eval_start=1000, eval_end=10000,
                           window_s=W)
        stream.login(500, served=True)  # before the window: dropped
        stream.login(1000, served=True)
        stream.login(2000, served=False, faulted=True)
        stream.login(10000, served=False)  # at eval_end: dropped
        stream.workflow(2000, "reactive_resume")
        stream.workflow(2000, "not_a_workflow")  # unknown kind: ignored
        stream.used(0, 2000)  # clipped to [1000, 2000)
        stream.idle(9500, 12000)  # clipped to [9500, 10000)
        totals = stream.totals()
        assert totals["logins"] == 2
        assert totals["reactive"] == 1
        assert totals["reactive_faulted"] == 1
        assert totals["reactive_resume"] == 1
        assert totals["used_s"] == 1000
        assert totals["idle_s"] == 500
        assert totals["allocated_s"] == 1500
        assert stream.qos_percent() == 50.0
        with pytest.raises(ProRPError):
            KpiStream(registry, eval_start=10, eval_end=10)


# ----------------------------------------------------------------------
# OpenMetrics exposition (golden document)
# ----------------------------------------------------------------------


GOLDEN = """\
# TYPE serving_served counter
serving_served_total 3
# TYPE slo_qos_logins counter
slo_qos_logins_total{region="eu-west-1"} 4
slo_qos_logins_total{region="us-east-2"} 2
# TYPE slo_alerts_active gauge
slo_alerts_active 1
# TYPE breaker_predictor_state_window gauge
breaker_predictor_state_window 1
# TYPE predictor_latency_ms_window histogram
predictor_latency_ms_window_bucket{le="1"} 1
predictor_latency_ms_window_bucket{le="10"} 1
predictor_latency_ms_window_bucket{le="+Inf"} 2 # {trace_id="span:42"} 25
predictor_latency_ms_window_sum 25.5
predictor_latency_ms_window_count 2
# EOF
"""


class TestOpenMetrics:
    def test_golden_document(self):
        registry = MetricsRegistry()
        registry.counter("serving.served").inc(3)
        registry.counter_series(
            "slo.qos.logins", window_s=W, labels={"region": "eu-west-1"}
        ).inc(0, 4)
        registry.counter_series(
            "slo.qos.logins", window_s=W, labels={"region": "us-east-2"}
        ).inc(W, 2)
        registry.gauge("slo.alerts.active").set(1)
        gauge = registry.gauge_series(
            "breaker.predictor.state.window", window_s=W
        )
        gauge.set(0, 0)
        gauge.set(950, 1)
        hist = registry.histogram_series(
            "predictor.latency_ms.window", window_s=W, buckets=[1.0, 10.0]
        )
        hist.observe(0, 0.5, exemplar="span:17")
        hist.observe(0, 25.0, exemplar="span:42")
        assert render_openmetrics(registry) == GOLDEN

    def test_empty_registry_renders_bare_eof(self):
        assert render_openmetrics(None) == "# EOF\n"
        assert render_openmetrics(MetricsRegistry()) == "# EOF\n"


# ----------------------------------------------------------------------
# Serving gateway: metrics request and degraded health
# ----------------------------------------------------------------------


class TestServingHealth:
    def test_metrics_request_serves_the_exposition(self):
        async def run():
            server = PredictionServer()
            return await server.submit(MetricsRequest("m1"))

        with observed(tracer=NULL_TRACER):
            response = asyncio.run(run())
        assert response.kind == "metrics"
        assert response.body.endswith("# EOF\n")
        assert "serving_requests_metrics_total 1" in response.body
        assert response.metric_count > 0

    def test_health_degrades_while_an_alert_fires(self):
        async def run():
            registry = MetricsRegistry()
            monitor = SloMonitor(registry, serving_slos())
            server = PredictionServer(slo_monitor=monitor)
            server._started = True  # as after the first served request
            before = await server.submit(HealthRequest("h1"))
            monitor.ledger.append(
                AlertEvent(1.0, "shed_rate", "firing", "page", 9.0)
            )
            during = await server.submit(HealthRequest("h2"))
            monitor.ledger.append(
                AlertEvent(2.0, "shed_rate", "cleared", "page", 0.0)
            )
            after = await server.submit(HealthRequest("h3"))
            return before, during, after

        before, during, after = asyncio.run(run())
        assert before.status == "ok"
        assert during.status == "degraded"
        assert during.stats["slo_alerts_active"] == 1
        assert after.status == "ok"
        assert after.stats["slo_alerts_fired"] == 1
        assert after.stats["slo_alerts_cleared"] == 1


# ----------------------------------------------------------------------
# Acceptance: the chaos scenario's alerting round trip
# ----------------------------------------------------------------------


class TestSloChaosScenario:
    def test_outage_fires_then_clears_and_streaming_matches_batch(self):
        result = run_slo_chaos(
            scale=ExperimentScale(n_databases=30, eval_days=1),
            preset=RegionPreset.EU1,
        )
        # The breaker alert fired inside (or within one window of) the
        # scheduled fault window, and cleared after recovery.
        fault_start, fault_end = result.fault_window
        assert result.unavailable_fired_at is not None
        assert (
            fault_start
            <= result.unavailable_fired_at
            <= fault_end + result.fast_window_s
        )
        assert result.unavailable_cleared_at > result.unavailable_fired_at
        # Same round trip for the latency-spike alert.
        assert result.latency_fired_at is not None
        assert result.latency_cleared_at > result.latency_fired_at
        assert result.alert_roundtrip_ok
        # Streaming windowed sums == simulator KPI report == offline
        # telemetry recomputation (exact, not approximate).
        assert result.equivalence_ok
        assert result.streaming["logins"] == result.report["logins"]
        assert result.streaming["used_s"] == result.report["used_s"]
        assert result.ok
        states = [
            (e["name"], e["state"])
            for e in result.alert_events
            if e["name"] == "predictor_unavailable"
        ]
        assert states[0] == ("predictor_unavailable", "firing")
        assert states[-1] == ("predictor_unavailable", "cleared")
