"""Automated knob selection (future-work direction (2) of the paper).

"So far, we have manually selected the most impactful knobs to tune based
on our domain knowledge.  However, knob selection can be automated, as
defined by the state-of-the-art approaches in academia [32, 65]."

This module implements the OtterTune-style first stage in its simplest
trustworthy form: one-factor-at-a-time sensitivity analysis.  For each
candidate knob, every candidate value is evaluated with all other knobs at
their base values; a knob's impact is the spread of the objective across
its values.  Knobs are then ranked so the (expensive) full grid sweep of
the training pipeline can be restricted to the most impactful ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence

from repro.config import ProRPConfig
from repro.errors import ConfigError
from repro.training.pipeline import CandidateResult, TrainingPipeline
from repro.tuning.candidates import validate_knob_candidates


@dataclass(frozen=True)
class KnobImpact:
    """Sensitivity of the objective to one knob."""

    knob: str
    #: Objective spread (max - min) across the knob's candidate values.
    impact: float
    #: Spread of the two KPI components, for interpretation.
    qos_spread: float
    idle_spread: float
    results: List[CandidateResult]


def rank_knobs(
    pipeline: TrainingPipeline,
    base: ProRPConfig,
    candidates: Dict[str, Sequence[Any]],
) -> List[KnobImpact]:
    """Rank knobs by objective sensitivity (most impactful first).

    ``candidates`` maps ProRPConfig field names to the values to probe.
    The probe set is validated up front by the same
    :func:`~repro.tuning.candidates.validate_knob_candidates` helper the
    online tuner uses: an unknown knob name or a value the config rejects
    raises :class:`ConfigError` *before* any simulation runs, instead of
    silently shrinking the sweep.
    """
    validate_knob_candidates(base, candidates)
    impacts: List[KnobImpact] = []
    for knob, values in sorted(candidates.items()):
        results: List[CandidateResult] = [
            pipeline.evaluate(base.with_overrides(**{knob: value}))
            for value in values
        ]
        scores = [r.score for r in results]
        qos = [r.kpis.qos_percent for r in results]
        idle = [r.kpis.idle_percent for r in results]
        impacts.append(
            KnobImpact(
                knob=knob,
                impact=max(scores) - min(scores),
                qos_spread=max(qos) - min(qos),
                idle_spread=max(idle) - min(idle),
                results=results,
            )
        )
    impacts.sort(key=lambda k: k.impact, reverse=True)
    return impacts


def select_knobs(
    pipeline: TrainingPipeline,
    base: ProRPConfig,
    candidates: Dict[str, Sequence[Any]],
    top_k: int = 2,
) -> List[str]:
    """The names of the ``top_k`` most impactful knobs -- what the full
    grid sweep should vary (the paper's production pick, window size and
    confidence, are exactly the ones this returns on its fleets)."""
    if top_k <= 0:
        raise ConfigError("top_k must be positive")
    return [impact.knob for impact in rank_knobs(pipeline, base, candidates)[:top_k]]
