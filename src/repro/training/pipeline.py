"""The knob-tuning pipeline: grid sweep -> KPI evaluation -> selection.

Mirrors the production pipeline of Section 8: "The pipeline varies the
parameters of activity prediction, computes the KPI metrics, and selects
the configuration that finds the best middle ground between quality of
service and operational cost efficiency."
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.config import ProRPConfig
from repro.core.kpi import KpiReport
from repro.errors import ConfigError
from repro.parallel import SweepExecutor, resolve_executor
from repro.simulation.region import SimulationSettings, simulate_region
from repro.training.objective import Objective, qos_priority_objective
from repro.types import ActivityTrace


@dataclass(frozen=True)
class ParameterGrid:
    """Candidate values per knob; unset knobs keep the base value.

    Keys must be ProRPConfig field names (``window_s``, ``confidence``,
    ``history_days``, ``seasonality``, ...).
    """

    values: Dict[str, Sequence[Any]]

    def candidates(self, base: ProRPConfig) -> List[ProRPConfig]:
        """The cross product of the grid applied to the base config.

        Invalid combinations (rejected by config validation) are skipped,
        mirroring a sweep that prunes nonsensical knob mixes.
        """
        if not self.values:
            return [base]
        names = sorted(self.values)
        configs: List[ProRPConfig] = []
        for combo in itertools.product(*(self.values[name] for name in names)):
            overrides = dict(zip(names, combo))
            try:
                configs.append(base.with_overrides(**overrides))
            except ConfigError:
                continue
        if not configs:
            raise ConfigError("the parameter grid produced no valid configuration")
        return configs


@dataclass(frozen=True)
class CandidateResult:
    """One evaluated configuration."""

    config: ProRPConfig
    kpis: KpiReport
    score: float


@dataclass(frozen=True)
class TrainingReport:
    """Outcome of one pipeline run."""

    candidates: List[CandidateResult]
    best: CandidateResult

    def sweep_rows(self, knob: str) -> List[Dict[str, Any]]:
        """Per-candidate summary rows ordered by one knob -- the data
        behind the Figure 8/9 sweep charts."""
        rows = []
        for candidate in self.candidates:
            config_dict = candidate.config.to_dict()
            rows.append(
                {
                    knob: config_dict[knob],
                    "qos_percent": candidate.kpis.qos_percent,
                    "idle_percent": candidate.kpis.idle_percent,
                    "score": candidate.score,
                }
            )
        rows.sort(key=lambda r: r[knob])
        return rows


def _evaluate_sweep_task(
    context: "tuple", config: ProRPConfig
) -> KpiReport:
    """Evaluate one candidate config against the shared fleet.

    A module-level function so the multiprocess backend can pickle it by
    reference; ``context`` (traces + settings) is shipped to each worker
    once via the pool initializer, never per task.  Scores are *not*
    computed here -- objectives are arbitrary callables (often closures)
    and stay in the parent process.
    """
    traces, settings = context
    result = simulate_region(traces, "proactive", config=config, settings=settings)
    return result.kpis()


class TrainingPipeline:
    """Sweep configurations over a training fleet and pick the best."""

    def __init__(
        self,
        traces: Sequence[ActivityTrace],
        settings: SimulationSettings,
        objective: Optional[Objective] = None,
    ):
        self._traces = tuple(traces)
        self._settings = settings
        self._objective = objective or qos_priority_objective()

    def evaluate(self, config: ProRPConfig) -> CandidateResult:
        """Run the proactive policy under one configuration."""
        kpis = _evaluate_sweep_task((self._traces, self._settings), config)
        return CandidateResult(config=config, kpis=kpis, score=self._objective(kpis))

    def run(
        self,
        base: ProRPConfig,
        grid: ParameterGrid,
        executor: Optional[SweepExecutor] = None,
        workers: Optional[int] = None,
    ) -> TrainingReport:
        """Evaluate every candidate and select the top scorer.

        ``executor`` (or the ``workers`` shorthand) chooses the sweep
        backend; candidates are always scored and reported in grid order,
        so the report is identical whichever backend ran the sweep.  Ties
        break toward the earlier candidate in grid order, which makes the
        selection deterministic.
        """
        configs = grid.candidates(base)
        backend = resolve_executor(executor, workers)
        kpi_reports = backend.run(
            _evaluate_sweep_task, (self._traces, self._settings), configs
        )
        candidates = [
            CandidateResult(config=config, kpis=kpis, score=self._objective(kpis))
            for config, kpis in zip(configs, kpi_reports)
        ]
        best = max(candidates, key=lambda c: c.score)
        return TrainingReport(candidates=candidates, best=best)
