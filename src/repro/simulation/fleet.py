"""Fleet-scale simulation: lean columnar backends and region sharding.

The columnar engine (:mod:`repro.simulation.columnar`) separates the FSM
replay from its storage backends.  ``simulate_region`` plugs in the *real*
stores -- one :class:`~repro.storage.history.HistoryStore`, one
:class:`~repro.simulation.results.DatabaseOutcome` per database -- which
is exactly right for the paper's figures but allocates millions of Python
objects at fleet scale.  This module provides **lean** backends with the
same observable semantics:

* :class:`LeanHistory` -- per-database login cursors over one flat
  ``int64`` array, replaying Algorithm 2/3 (timestamp-dedup inserts,
  witness-preserving trims, ``login_version`` bumps) without a table;
* :class:`LeanMetadata` -- the ``sys.databases`` columns as arrays, with
  Algorithm 5's pre-warm scan as one masked array pass per region per
  tick, ordered exactly like the secondary-index scan
  ``(start_of_pred_activity, database_id)``;
* :class:`LeanAccounting` -- region-total KPI accumulators replacing
  per-database outcome objects (the :func:`~repro.simulation.results.
  aggregate` sums commute with per-call accumulation).

``simulate_fleet`` runs one region this way; ``simulate_fleet_sharded``
splits a fleet into independent regions across the
:mod:`repro.parallel` executors and merges the per-shard KPI reports in
submission order, so serial and sharded runs are byte-identical (see
docs/fleet_scale.md for the determinism argument).  Fault injection is
rejected here: the injector is process-global, so its consult ledger
cannot survive a fan-out unchanged -- chaos experiments stay on
``simulate_region``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cluster import Cluster
from repro.config import DEFAULT_CONFIG, ProRPConfig
from repro.core.fast_predictor import FastPredictor
from repro.core.kpi import IdleBreakdown, KpiReport, LoginStats, WorkflowCounts
from repro.core.policy import PolicyKind
from repro.core.prediction_cache import PredictionCache
from repro.errors import SimulationError
from repro.faults.runtime import FAULTS
from repro.observability.runtime import OBS
from repro.parallel import resolve_executor
from repro.simulation.columnar import (
    PH_PHYSICAL,
    PH_RESUMED,
    ColumnarRegionEngine,
    ColumnarState,
    NullHistory,
    StoreCluster,
    _build_bank,
)
from repro.simulation.region import SimulationSettings
from repro.types import SECONDS_PER_DAY, EventType
from repro.workload.fleetgen import DriftSpec, FleetShardSpec, FleetSlice


class LeanAccounting:
    """Region-total KPI accumulators with :class:`DatabaseOutcome`'s
    clipping semantics.

    Every ``add_*`` clips to the evaluation window and every ``record_*``
    filters on it exactly like the per-database outcome objects; since
    :func:`repro.simulation.results.aggregate` only ever sums outcome
    fields, accumulating region totals per call yields the identical
    :class:`KpiReport` -- proven by the lean-vs-full equivalence tests.

    ``stream`` (a :class:`repro.observability.slo.KpiStream`) mirrors the
    KPI events into windowed SLO series as they happen; it only writes
    metrics, so the accumulated totals stay byte-identical with it
    attached.
    """

    __slots__ = (
        "stream",
        "n",
        "eval_start",
        "eval_end",
        "used_s",
        "unavailable_s",
        "maintenance_s",
        "logical_pause_idle_s",
        "correct_proactive_idle_s",
        "wrong_proactive_idle_s",
        "logins_with_resources",
        "logins_reactive",
        "logins_reactive_faulted",
        "proactive_resumes",
        "reactive_resumes",
        "logical_pauses",
        "physical_pauses",
        "maintenance_resumes",
        "correct_proactive_resumes",
        "wrong_proactive_resumes",
    )

    def __init__(self, n: int, eval_start: int, eval_end: int, stream=None):
        self.n = n
        self.eval_start = eval_start
        self.eval_end = eval_end
        self.stream = stream
        self.used_s = 0
        self.unavailable_s = 0
        self.maintenance_s = 0
        self.logical_pause_idle_s = 0
        self.correct_proactive_idle_s = 0
        self.wrong_proactive_idle_s = 0
        self.logins_with_resources = 0
        self.logins_reactive = 0
        self.logins_reactive_faulted = 0
        self.proactive_resumes = 0
        self.reactive_resumes = 0
        self.logical_pauses = 0
        self.physical_pauses = 0
        self.maintenance_resumes = 0
        self.correct_proactive_resumes = 0
        self.wrong_proactive_resumes = 0

    def _clip(self, start: int, end: int) -> int:
        lo = max(start, self.eval_start)
        hi = min(end, self.eval_end)
        return max(0, hi - lo)

    def _in_window(self, t: int) -> bool:
        return self.eval_start <= t < self.eval_end

    def add_used(self, d: int, start: int, end: int) -> None:
        self.used_s += self._clip(start, end)
        if self.stream is not None:
            self.stream.used(start, end)

    def add_unavailable(self, d: int, start: int, end: int) -> None:
        self.unavailable_s += self._clip(start, end)
        if self.stream is not None:
            self.stream.unavailable(start, end)

    def add_idle(self, d: int, start: int, end: int, cause: str) -> None:
        if self.stream is not None:
            self.stream.idle(start, end)
        clipped = self._clip(start, end)
        if cause == "logical_pause":
            self.logical_pause_idle_s += clipped
        elif cause == "correct_proactive":
            self.correct_proactive_idle_s += clipped
        elif cause == "wrong_proactive":
            self.wrong_proactive_idle_s += clipped
        elif cause == "maintenance":
            self.maintenance_s += clipped
        else:
            raise ValueError(f"unknown idle cause {cause!r}")

    def record_login(
        self, d: int, t: int, served: bool, faulted: bool = False
    ) -> None:
        if not self._in_window(t):
            return
        if self.stream is not None:
            self.stream.login(t, served, faulted)
        if served:
            self.logins_with_resources += 1
        else:
            self.logins_reactive += 1
            if faulted:
                self.logins_reactive_faulted += 1

    def record_workflow(self, d: int, t: int, kind: str) -> None:
        if not self._in_window(t):
            return
        if self.stream is not None:
            self.stream.workflow(t, kind)
        if kind == "proactive_resume":
            self.proactive_resumes += 1
        elif kind == "reactive_resume":
            self.reactive_resumes += 1
        elif kind == "logical_pause":
            self.logical_pauses += 1
        elif kind == "physical_pause":
            self.physical_pauses += 1
        elif kind == "maintenance_resume":
            self.maintenance_resumes += 1
        else:
            raise ValueError(f"unknown workflow kind {kind!r}")

    def record_proactive_outcome(self, d: int, t: int, correct: bool) -> None:
        if not self._in_window(t):
            return
        if correct:
            self.correct_proactive_resumes += 1
        else:
            self.wrong_proactive_resumes += 1

    def record_prediction(
        self, d: int, now: int, start: int, end: int, confidence: float
    ) -> None:
        raise SimulationError(
            "lean accounting does not collect predictions "
            "(collect_predictions is gated off in simulate_fleet)"
        )

    def report(self, policy: str) -> KpiReport:
        """The :class:`KpiReport` ``aggregate`` would have produced."""
        window = self.eval_end - self.eval_start
        idle_total = (
            self.logical_pause_idle_s
            + self.correct_proactive_idle_s
            + self.wrong_proactive_idle_s
        )
        return KpiReport(
            policy=policy,
            n_databases=self.n,
            eval_start=self.eval_start,
            eval_end=self.eval_end,
            logins=LoginStats(
                with_resources=self.logins_with_resources,
                reactive=self.logins_reactive,
                reactive_faulted=self.logins_reactive_faulted,
            ),
            idle=IdleBreakdown(
                logical_pause_s=self.logical_pause_idle_s,
                correct_proactive_s=self.correct_proactive_idle_s,
                wrong_proactive_s=self.wrong_proactive_idle_s,
            ),
            workflows=WorkflowCounts(
                proactive_resumes=self.proactive_resumes,
                reactive_resumes=self.reactive_resumes,
                logical_pauses=self.logical_pauses,
                physical_pauses=self.physical_pauses,
                correct_proactive_resumes=self.correct_proactive_resumes,
                wrong_proactive_resumes=self.wrong_proactive_resumes,
                maintenance_resumes=self.maintenance_resumes,
            ),
            unavailable_s=self.unavailable_s,
            used_s=self.used_s,
            saved_s=(
                self.n * window
                - self.used_s
                - idle_total
                - self.unavailable_s
                - self.maintenance_s
            ),
            maintenance_s=self.maintenance_s,
        )


class LeanHistory:
    """Per-database login cursors over one flat array.

    Replays exactly what a warm :class:`HistoryStore` would observe
    (Algorithm 2's timestamp-dedup insert, Algorithm 3's
    witness-preserving trim, login-only ``login_version`` bumps), but the
    only state per database is a handful of cursor scalars into a shared
    ``int64`` login array:

    * ``top[d]``: logins inserted so far (warm prefix + live appends);
    * ``k[d]``: trim cursor -- logins below it (except the witness) have
      been deleted;
    * ``witness_login[d]``: whether the surviving oldest tuple (the
      lifespan witness Algorithm 3 keeps) is a login, in which case it
      heads the login view regardless of ``k``.

    A live insert asserts the appended login lands where the
    precomputed capacity expects it -- divergence from the event stream
    fails loudly instead of silently skewing predictions.
    """

    def __init__(
        self,
        sess_offsets: np.ndarray,
        starts: np.ndarray,
        ends: np.ndarray,
        sim_start: int,
        history_days: int,
    ):
        n = len(sess_offsets) - 1
        retention_start = sim_start - history_days * SECONDS_PER_DAY
        self.n = n
        self.has_event = np.zeros(n, dtype=bool)
        self.witness_login = np.zeros(n, dtype=bool)
        self.min_ts = np.full(n, -1, dtype=np.int64)
        self.last_ts = np.full(n, -1, dtype=np.int64)
        self.top = np.zeros(n, dtype=np.int64)
        self.k = np.zeros(n, dtype=np.int64)
        self.versions = np.zeros(n, dtype=np.int64)

        # Warm-start replay: the events a long-running tracker would have
        # inserted by sim_start -- the oldest event (witness) plus
        # everything within the retention window, deduped on timestamp --
        # mirroring ``region._warm_history`` + ``HistoryStore.bulk_load``.
        warm: List[List[int]] = []
        offsets_list = sess_offsets.tolist()
        starts_list = starts.tolist()
        ends_list = ends.tolist()
        for d in range(n):
            lo, hi = offsets_list[d], offsets_list[d + 1]
            logins: List[int] = []
            last = -1
            first_event = True
            for i in range(lo, hi):
                s = starts_list[i]
                if s >= sim_start:
                    break
                for t, is_start in ((s, True), (ends_list[i], False)):
                    if t >= sim_start:
                        continue
                    if not first_event and t < retention_start:
                        continue
                    first_event = False
                    if t == last:
                        continue
                    last = t
                    if not self.has_event[d]:
                        self.has_event[d] = True
                        self.min_ts[d] = t
                        self.witness_login[d] = is_start
                        if is_start:
                            self.k[d] = 1
                    if is_start:
                        logins.append(t)
            if logins or last >= 0:
                self.last_ts[d] = last
            warm.append(logins)
            self.top[d] = len(logins)
            self.versions[d] = len(logins)

        # Capacity per database: warm logins + live session starts after
        # sim_start (the only candidates for further login inserts).
        live_counts = np.empty(n, dtype=np.int64)
        for d in range(n):
            lo, hi = offsets_list[d], offsets_list[d + 1]
            live_counts[d] = hi - lo - int(
                np.searchsorted(starts[lo:hi], sim_start, side="right")
            )
        capacity = self.top + live_counts
        self.off = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(capacity, out=self.off[1:])
        self.logins = np.empty(int(self.off[-1]), dtype=np.int64)
        for d in range(n):
            if warm[d]:
                base = int(self.off[d])
                self.logins[base : base + len(warm[d])] = warm[d]

    def nbytes(self) -> int:
        arrays = (
            self.has_event,
            self.witness_login,
            self.min_ts,
            self.last_ts,
            self.top,
            self.k,
            self.versions,
            self.off,
            self.logins,
        )
        return sum(a.nbytes for a in arrays)

    def record(self, d: int, t: int, event_type: EventType) -> None:
        if t == self.last_ts[d]:
            return  # Algorithm 2's uniqueness guard (lines 3-6)
        self.last_ts[d] = t
        is_start = event_type == EventType.ACTIVITY_START
        if not self.has_event[d]:
            self.has_event[d] = True
            self.min_ts[d] = t
            self.witness_login[d] = is_start
            if is_start:
                self.k[d] = 1
        if is_start:
            pos = int(self.off[d]) + int(self.top[d])
            if pos >= int(self.off[d + 1]):
                raise SimulationError(
                    f"db[{d}]: login at t={t} exceeds the precomputed "
                    f"history capacity -- event stream diverged from the "
                    f"session arrays"
                )
            self.logins[pos] = t
            self.top[d] += 1
            self.versions[d] += 1

    def trim(self, d: int, history_days: int, now: int) -> bool:
        history_start = now - history_days * SECONDS_PER_DAY
        if not self.has_event[d] or self.min_ts[d] >= history_start:
            return False
        base = int(self.off[d])
        k = int(self.k[d])
        top = int(self.top[d])
        if k < top:
            # Logins strictly between the witness and history_start are
            # deleted; everything at or past the cursor exceeds min_ts
            # already (timestamps are unique), so one bisect suffices.
            new_k = k + int(
                np.searchsorted(
                    self.logins[base + k : base + top],
                    history_start,
                    side="left",
                )
            )
            if new_k > k:
                self.k[d] = new_k
                self.versions[d] += 1
        return True

    def login_version(self, d: int) -> int:
        return int(self.versions[d])

    def login_array(self, d: int) -> np.ndarray:
        base = int(self.off[d])
        top = int(self.top[d])
        k = int(self.k[d])
        if self.witness_login[d]:
            if k <= 1:
                return self.logins[base : base + top]
            return np.concatenate(
                (self.logins[base : base + 1], self.logins[base + k : base + top])
            )
        return self.logins[base + k : base + top]

    def login_timestamps(self, d: int) -> Sequence[int]:
        return self.login_array(d).tolist()

    def export_csr(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(offsets, logins, versions)``: a compacted CSR snapshot of
        every database's *effective* login view.

        The live layout keeps deleted-but-untrimmed slots and the
        witness-before-cursor special case; the export materialises what
        :meth:`login_array` would return for each database, back to back,
        so a consumer (the serving tier's shared-memory arena) can slice
        ``logins[offsets[d]:offsets[d+1]]`` with no per-read branching.
        ``versions`` is copied so later live mutation cannot skew an
        already-shared snapshot.
        """
        visible = self.top - self.k
        witness_extra = self.witness_login & (self.k > 1)
        counts = np.where(
            self.witness_login & (self.k <= 1),
            self.top,
            visible + witness_extra,
        ).astype(np.int64)
        offsets = np.zeros(self.n + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        out = np.empty(int(offsets[-1]), dtype=np.int64)
        for d in range(self.n):
            view = self.login_array(d)
            base = int(offsets[d])
            out[base : base + len(view)] = view
        return offsets, out, self.versions.copy()

    def store(self, d: int):
        raise SimulationError(
            "lean history has no HistoryStore objects; the reference "
            "predictor path is gated off in simulate_fleet"
        )


class LeanMetadata:
    """``sys.databases`` as arrays, with Algorithm 5's scan vectorised.

    The pre-warm scan is one masked array pass per region per tick:
    ``state == PHYSICAL_PAUSE`` AND ``lo <= start_of_pred_activity <= hi``
    (inclusive, like the secondary-index range), ordered by
    ``(start_of_pred_activity, database_id)`` exactly as the index scan
    yields rows.
    """

    def __init__(self, ids: Sequence[str]):
        n = len(ids)
        self.ids = ids
        self.state = np.full(n, PH_RESUMED, dtype=np.int8)
        self.pred = np.zeros(n, dtype=np.int64)  # NO_PREDICTION_SENTINEL
        if all(ids[i] < ids[i + 1] for i in range(n - 1)):
            # Index-lexicographic ids (the fleetgen layout): rank == index.
            self.id_rank = np.arange(n, dtype=np.int64)
        else:
            order = sorted(range(n), key=ids.__getitem__)
            self.id_rank = np.empty(n, dtype=np.int64)
            self.id_rank[order] = np.arange(n, dtype=np.int64)

    def register(self, d: int, created_at: int, node_id: str) -> None:
        self.state[d] = PH_RESUMED

    def set_state(self, d: int, phase_code: int) -> None:
        self.state[d] = phase_code

    def record_physical_pause(self, d: int, pred_start: int) -> None:
        self.state[d] = PH_PHYSICAL
        self.pred[d] = pred_start

    def set_node(self, d: int, node_id: str) -> None:
        pass  # placement lives in the shared Cluster; no copy kept here

    def prewarm_indices(self, now: int, prewarm_s: int, period_s: int) -> np.ndarray:
        lo = now + prewarm_s
        hi = lo + period_s
        mask = (self.state == PH_PHYSICAL) & (self.pred >= lo) & (self.pred <= hi)
        idx = np.nonzero(mask)[0]
        if idx.size == 0:
            return idx
        order = np.lexsort((self.id_rank[idx], self.pred[idx]))
        return idx[order]

    def databases_to_prewarm(
        self, now: int, prewarm_s: int, period_s: int
    ) -> List[str]:
        """Protocol-compatible variant returning database ids."""
        return [self.ids[int(d)] for d in self.prewarm_indices(now, prewarm_s, period_s)]


@dataclass
class FleetSimulationResult:
    """Outcome of one lean fleet region."""

    policy: str
    settings: SimulationSettings
    config: ProRPConfig
    kpis: KpiReport
    n_databases: int
    events_dispatched: int
    resume_op_runs: int = 0
    prewarms: int = 0
    #: Struct-of-arrays footprint (FSM state + lean history), in bytes.
    state_nbytes: int = 0


@dataclass
class ShardedFleetResult:
    """Merged outcome of a sharded fleet run."""

    policy: str
    kpis: KpiReport
    shard_kpis: List[KpiReport]
    n_shards: int
    backend: str
    events_dispatched: int = 0
    resume_op_runs: int = 0
    prewarms: int = 0
    state_nbytes: int = 0


def _check_lean_supported(
    policy: PolicyKind, config: ProRPConfig, settings: SimulationSettings
) -> None:
    if policy not in (PolicyKind.PROACTIVE, PolicyKind.REACTIVE):
        raise SimulationError(
            f"simulate_fleet supports proactive/reactive policies, not "
            f"{policy.value!r} (the analytic baselines need no event loop)"
        )
    if FAULTS.enabled:
        raise SimulationError(
            "simulate_fleet does not support fault injection: the injector "
            "is process-global, so a sharded fan-out could not reproduce "
            "the serial consult ledger; use simulate_region for chaos runs"
        )
    if settings.measure_prediction_latency:
        raise SimulationError(
            "simulate_fleet cannot measure prediction latency "
            "(that mode runs on the per-actor engine)"
        )
    if settings.collect_timelines or settings.collect_predictions:
        raise SimulationError(
            "simulate_fleet keeps region totals only; per-database "
            "timelines/predictions need simulate_region"
        )
    if settings.maintenance_per_week > 0:
        raise SimulationError(
            "simulate_fleet does not model maintenance sessions "
            "(per-database RNG streams defeat the vectorised setup); "
            "use simulate_region"
        )
    if policy is PolicyKind.PROACTIVE and not settings.use_fast_predictor:
        raise SimulationError(
            "simulate_fleet requires the vectorised predictor "
            "(use_fast_predictor=True)"
        )
    if getattr(config, "auto_seasonality", False):
        raise SimulationError(
            "simulate_fleet does not support adaptive seasonality "
            "(per-database config resolution reads history stores)"
        )


def simulate_fleet(
    fleet: Union[FleetSlice, FleetShardSpec, DriftSpec],
    policy: Union[PolicyKind, str] = PolicyKind.PROACTIVE,
    config: ProRPConfig = DEFAULT_CONFIG,
    settings: Optional[SimulationSettings] = None,
) -> FleetSimulationResult:
    """Simulate one region of a (possibly huge) fleet with lean backends.

    Produces the same :class:`KpiReport` ``simulate_region`` would for
    the same databases and settings (the lean-vs-full equivalence tests
    pin this), at a fraction of the per-database memory and setup cost.
    """
    if isinstance(policy, str):
        policy = PolicyKind(policy)
    if isinstance(fleet, (FleetShardSpec, DriftSpec)):
        fleet = fleet.materialize()
    if settings is None:
        span_end = int(fleet.ends.max()) if fleet.n_sessions else SECONDS_PER_DAY
        settings = SimulationSettings(
            eval_start=span_end - SECONDS_PER_DAY, eval_end=span_end
        )
    _check_lean_supported(policy, config, settings)

    proactive = policy is PolicyKind.PROACTIVE
    n = fleet.n
    cluster = Cluster(
        n_nodes=settings.n_nodes,
        node_capacity=settings.node_capacity,
        resume_latency_s=settings.resume_latency_s,
        resume_latency_jitter_s=settings.resume_latency_jitter_s,
        move_latency_s=settings.move_latency_s,
        seed=settings.seed,
    )
    preplaced = cluster.place_fleet(fleet.ids)

    stream = None
    if OBS.enabled and OBS.metrics is not None:
        from repro.observability.slo import KpiStream

        stream = KpiStream(
            OBS.metrics,
            settings.eval_start,
            settings.eval_end,
            window_s=settings.slo_window_s,
            labels=(
                {"region": settings.region_label}
                if settings.region_label
                else None
            ),
        )
    acct = LeanAccounting(n, settings.eval_start, settings.eval_end, stream=stream)
    hist = (
        LeanHistory(
            fleet.sess_offsets,
            fleet.starts,
            fleet.ends,
            settings.sim_start,
            config.history_days,
        )
        if proactive
        else NullHistory()
    )
    meta = LeanMetadata(fleet.ids)
    fast_predictor = FastPredictor(config) if proactive else None
    caches: Optional[List[Optional[PredictionCache]]] = None
    if proactive and settings.use_prediction_cache:
        caches = [PredictionCache() for _ in range(n)]

    empty_offsets = np.zeros(n + 1, dtype=np.int64)
    empty = np.empty(0, dtype=np.int64)
    state = ColumnarState(
        n,
        fleet.sess_offsets,
        fleet.starts,
        fleet.ends,
        empty_offsets,
        empty,
        empty,
        np.asarray(fleet.created_at, dtype=np.int64),
    )
    engine = ColumnarRegionEngine(
        state,
        proactive=proactive,
        config=config,
        sim_start=settings.sim_start,
        sim_end=settings.eval_end,
        acct=acct,
        hist=hist,
        meta=meta,
        cluster=StoreCluster(cluster, fleet.ids),
        fast_predictor=fast_predictor,
        caches=caches,
        prorp_outages=settings.prorp_outages,
        preplaced_nodes=preplaced,
        bank=_build_bank(settings, config, proactive),
    )

    if fast_predictor is not None and settings.use_prediction_cache:
        engine.seed_initial_predictions()
    for d in range(n):
        engine.start(d)

    runs = 0
    prewarms = 0
    if proactive:
        period = config.resume_operation_period_s
        prewarm_s = config.prewarm_s

        def run_resume_operation(now: int) -> None:
            # The happy path of ProactiveResumeOperation.run_once minus
            # the fault plumbing (faults are gated off above): one masked
            # scan, pre-warms in (pred_start, database_id) order.
            nonlocal runs, prewarms
            if not any(
                start <= now < end for start, end in settings.prorp_outages
            ):
                selected = meta.prewarm_indices(now, prewarm_s, period)
                runs += 1
                prewarms += int(selected.size)
                for d in selected:
                    engine.prewarm(int(d), now)
            nxt = now + period
            if nxt < settings.eval_end:
                engine.schedule_resume_op(nxt)

        engine.on_resume_op = run_resume_operation
        engine.schedule_resume_op(settings.sim_start + period)

    engine.run_until(settings.eval_end)
    for d in range(n):
        engine.finalize(d, settings.eval_end)

    nbytes = state.nbytes()
    if isinstance(hist, LeanHistory):
        nbytes += hist.nbytes()
    return FleetSimulationResult(
        policy=policy.value,
        settings=settings,
        config=config,
        kpis=acct.report(policy.value),
        n_databases=n,
        events_dispatched=engine.events_dispatched,
        resume_op_runs=runs,
        prewarms=prewarms,
        state_nbytes=nbytes,
    )


def merge_kpi_reports(reports: Sequence[KpiReport]) -> KpiReport:
    """Sum per-shard KPI reports into one region-style report.

    Every :class:`KpiReport` field is a sum over databases, so merging
    shards is pure field-wise addition -- order-independent in value, but
    callers still merge in submission order so any floating-point payload
    (prediction latencies) concatenates deterministically.
    """
    if not reports:
        raise SimulationError("merge_kpi_reports needs at least one report")
    head = reports[0]
    for report in reports[1:]:
        if report.policy != head.policy:
            raise SimulationError(
                f"cannot merge KPI reports across policies "
                f"({head.policy!r} vs {report.policy!r})"
            )
        if (
            report.eval_start != head.eval_start
            or report.eval_end != head.eval_end
        ):
            raise SimulationError(
                "cannot merge KPI reports across evaluation windows"
            )
    latencies: List[float] = []
    for report in reports:
        latencies.extend(report.prediction_latencies_s)
    return KpiReport(
        policy=head.policy,
        n_databases=sum(r.n_databases for r in reports),
        eval_start=head.eval_start,
        eval_end=head.eval_end,
        logins=LoginStats(
            with_resources=sum(r.logins.with_resources for r in reports),
            reactive=sum(r.logins.reactive for r in reports),
            reactive_faulted=sum(r.logins.reactive_faulted for r in reports),
        ),
        idle=IdleBreakdown(
            logical_pause_s=sum(r.idle.logical_pause_s for r in reports),
            correct_proactive_s=sum(r.idle.correct_proactive_s for r in reports),
            wrong_proactive_s=sum(r.idle.wrong_proactive_s for r in reports),
        ),
        workflows=WorkflowCounts(
            proactive_resumes=sum(r.workflows.proactive_resumes for r in reports),
            reactive_resumes=sum(r.workflows.reactive_resumes for r in reports),
            logical_pauses=sum(r.workflows.logical_pauses for r in reports),
            physical_pauses=sum(r.workflows.physical_pauses for r in reports),
            correct_proactive_resumes=sum(
                r.workflows.correct_proactive_resumes for r in reports
            ),
            wrong_proactive_resumes=sum(
                r.workflows.wrong_proactive_resumes for r in reports
            ),
            maintenance_resumes=sum(
                r.workflows.maintenance_resumes for r in reports
            ),
        ),
        unavailable_s=sum(r.unavailable_s for r in reports),
        used_s=sum(r.used_s for r in reports),
        saved_s=sum(r.saved_s for r in reports),
        maintenance_s=sum(r.maintenance_s for r in reports),
        prediction_latencies_s=latencies,
    )


def shard_bounds(n_databases: int, n_shards: int) -> List[Tuple[int, int]]:
    """Contiguous near-equal shard slices ``[(lo, hi), ...]`` covering
    ``range(n_databases)`` in order."""
    if n_shards <= 0:
        raise SimulationError("n_shards must be positive")
    n_shards = min(n_shards, n_databases)
    return [
        (s * n_databases // n_shards, (s + 1) * n_databases // n_shards)
        for s in range(n_shards)
    ]


def _shard_worker(context, item) -> Tuple[KpiReport, int, int, int, int]:
    """Module-level sweep worker: simulate one shard as its own region.

    The context ships the tiny :class:`FleetShardSpec` (not the arrays);
    each worker re-materialises its slice deterministically, so every
    executor backend computes from byte-identical inputs.
    """
    spec, policy_value, config, settings = context
    lo, hi = item
    fleet = spec.materialize(lo, hi)
    result = simulate_fleet(
        fleet, PolicyKind(policy_value), config, settings
    )
    return (
        result.kpis,
        result.events_dispatched,
        result.resume_op_runs,
        result.prewarms,
        result.state_nbytes,
    )


def simulate_fleet_sharded(
    spec: Union[FleetShardSpec, DriftSpec],
    policy: Union[PolicyKind, str] = PolicyKind.PROACTIVE,
    config: ProRPConfig = DEFAULT_CONFIG,
    settings: Optional[SimulationSettings] = None,
    n_shards: int = 4,
    executor=None,
    workers: Optional[int] = None,
) -> ShardedFleetResult:
    """Split a fleet into independent region shards and merge the KPIs.

    Each shard is a self-contained region -- its own cluster (seeded from
    ``settings.seed``), metadata, histories -- so shards share no mutable
    state and any executor may run them in any order; the reports are
    merged in submission order.  Serial and multiprocess runs are
    byte-identical (`docs/fleet_scale.md` spells out why; the property
    tests enforce it).
    """
    if isinstance(policy, str):
        policy = PolicyKind(policy)
    if settings is None:
        span_end = spec.span_days * SECONDS_PER_DAY
        settings = SimulationSettings(
            eval_start=span_end - SECONDS_PER_DAY, eval_end=span_end
        )
    _check_lean_supported(policy, config, settings)
    bounds = shard_bounds(spec.n_databases, n_shards)
    backend = resolve_executor(executor, workers)
    context = (spec, policy.value, config, settings)
    rows = backend.run(_shard_worker, context, bounds)
    shard_kpis = [row[0] for row in rows]
    return ShardedFleetResult(
        policy=policy.value,
        kpis=merge_kpi_reports(shard_kpis),
        shard_kpis=shard_kpis,
        n_shards=len(bounds),
        backend=backend.name,
        events_dispatched=sum(row[1] for row in rows),
        resume_op_runs=sum(row[2] for row in rows),
        prewarms=sum(row[3] for row in rows),
        state_nbytes=sum(row[4] for row in rows),
    )
