"""Prediction-accuracy study: the 'sufficient in practice' claim.

The paper repeatedly argues that simple probabilistic forecasting is
accurate enough for production (Sections 1, 3, 10).  This driver measures
Algorithm 4's precision/recall and lead-time error per usage archetype on
a synthetic region -- quantifying *where* the simple detector is
sufficient (recurring patterns) and where nothing could predict (sporadic
tails, which the policy correctly leaves to the reactive path).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis import format_table
from repro.analysis.archetype_report import archetype_of
from repro.config import DEFAULT_CONFIG, ProRPConfig
from repro.core.accuracy import AccuracyReport, evaluate_predictions
from repro.experiments.common import BENCH_SCALE, ExperimentScale, region_fleet
from repro.simulation.region import simulate_region
from repro.types import SECONDS_PER_MINUTE
from repro.workload.regions import RegionPreset


@dataclass(frozen=True)
class AccuracyRow:
    archetype: str
    report: AccuracyReport


@dataclass(frozen=True)
class AccuracyResult:
    by_archetype: List[AccuracyRow]
    fleet: AccuracyReport

    def rows(self) -> List[Dict[str, object]]:
        out = []
        for row in self.by_archetype + [AccuracyRow("fleet", self.fleet)]:
            report = row.report
            median_lead_min = (
                report.lead_time_percentile(50) / SECONDS_PER_MINUTE
                if report.lead_time_errors_s
                else None
            )
            out.append(
                {
                    "archetype": row.archetype,
                    "predictions": report.total,
                    "precision": report.precision,
                    "recall": report.recall,
                    "median_lead_min": median_lead_min,
                }
            )
        return out

    def table(self) -> str:
        rows = []
        for r in self.rows():
            rows.append(
                [
                    r["archetype"],
                    r["predictions"],
                    round(r["precision"], 2),
                    round(r["recall"], 2),
                    "-" if r["median_lead_min"] is None
                    else round(r["median_lead_min"], 1),
                ]
            )
        return format_table(
            ["archetype", "predictions", "precision", "recall", "median lead (min)"],
            rows,
            title=(
                "Prediction accuracy by archetype [the paper's claim: simple "
                "probabilistic forecasting is sufficient in practice]"
            ),
        )


def run_accuracy(
    scale: ExperimentScale = BENCH_SCALE,
    preset: RegionPreset = RegionPreset.EU1,
    config: ProRPConfig = DEFAULT_CONFIG,
) -> AccuracyResult:
    traces = region_fleet(preset, scale)
    settings = scale.settings(collect_predictions=True)
    result = simulate_region(traces, "proactive", config, settings)
    by_id = {t.database_id: t for t in traces}
    grouped: Dict[str, AccuracyReport] = {}
    fleet = AccuracyReport()
    for outcome in result.outcomes:
        trace = by_id[outcome.database_id]
        report = evaluate_predictions(outcome, trace, horizon_s=config.horizon_s)
        grouped.setdefault(archetype_of(outcome.database_id), AccuracyReport()).merge(
            report
        )
        fleet.merge(report)
    rows = [
        AccuracyRow(name, report)
        for name, report in sorted(
            grouped.items(), key=lambda item: -item[1].total
        )
    ]
    return AccuracyResult(by_archetype=rows, fleet=fleet)
