"""Live tracing, metrics, and profiling for the ProRP control plane.

Production serverless fleets are operated from live traces and metric
rollups, not from post-hoc replay of finished results.  This package
instruments the hot paths themselves:

* :mod:`repro.observability.tracer` -- nested spans with attributes; the
  trace context propagates from engine event dispatch down through policy
  decisions, predictor calls, the proactive resume scan, and SQL/B-tree
  operations (single-threaded stack discipline).
* :mod:`repro.observability.metrics` -- counters, gauges, and fixed-bucket
  histograms (prediction latency percentiles, events per sim-second,
  history rows scanned, resume-scan duration).
* :mod:`repro.observability.exporters` -- JSONL span log, Chrome
  ``chrome://tracing`` trace-event JSON, plain-text/JSON metrics snapshot.
* :mod:`repro.observability.runtime` -- the off-by-default process-global
  switch (``OBS``); disabled instrumentation costs one guard check.

See ``docs/observability.md`` for the span taxonomy and metric names.
"""

from repro.observability.console import render_top, sparkline
from repro.observability.exporters import (
    chrome_trace_events,
    write_chrome_trace,
    write_metrics_snapshot,
    write_spans_jsonl,
)
from repro.observability.metrics import (
    LATENCY_BUCKETS_MS,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    exponential_buckets,
    metric_key,
)
from repro.observability.openmetrics import render_openmetrics, sanitize_name
from repro.observability.runtime import OBS, disable, enable, observed
from repro.observability.slo import (
    AlertEvent,
    AlertLedger,
    KpiStream,
    SloMonitor,
    SloSpec,
    serving_slos,
    simulation_slos,
)
from repro.observability.timeseries import (
    DEFAULT_WINDOW_CAPACITY,
    DEFAULT_WINDOW_S,
    CounterSeries,
    GaugeSeries,
    HistogramSeries,
)
from repro.observability.tracer import (
    NULL_TRACER,
    NullTracer,
    SpanRecord,
    Tracer,
)

__all__ = [
    "OBS",
    "enable",
    "disable",
    "observed",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "SpanRecord",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "metric_key",
    "exponential_buckets",
    "LATENCY_BUCKETS_MS",
    "SIZE_BUCKETS",
    "CounterSeries",
    "GaugeSeries",
    "HistogramSeries",
    "DEFAULT_WINDOW_S",
    "DEFAULT_WINDOW_CAPACITY",
    "SloSpec",
    "SloMonitor",
    "AlertEvent",
    "AlertLedger",
    "KpiStream",
    "simulation_slos",
    "serving_slos",
    "render_openmetrics",
    "sanitize_name",
    "render_top",
    "sparkline",
    "write_spans_jsonl",
    "write_chrome_trace",
    "write_metrics_snapshot",
    "chrome_trace_events",
]
