"""Legacy shim so `pip install -e .` works without the `wheel` package
(this offline environment lacks it); all metadata lives in pyproject.toml."""
from setuptools import setup

setup()
