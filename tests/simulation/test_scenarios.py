"""End-to-end single-database scenarios: Algorithm 1 driving one database
through known workloads with deterministic settings."""

from repro.config import ProRPConfig
from repro.core.policy import PolicyKind
from repro.simulation import SimulationSettings, simulate_region
from repro.types import (
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
    SECONDS_PER_MINUTE,
    ActivityTrace,
    Session,
)

DAY = SECONDS_PER_DAY
HOUR = SECONDS_PER_HOUR
MIN = SECONDS_PER_MINUTE


def deterministic_settings(eval_start, eval_end, **overrides):
    defaults = dict(
        eval_start=eval_start,
        eval_end=eval_end,
        warmup_s=DAY,
        resume_latency_s=60,
        resume_latency_jitter_s=0,
        move_latency_s=120,
        n_nodes=2,
        node_capacity=16,
        seed=0,
    )
    defaults.update(overrides)
    return SimulationSettings(**defaults)


def daily_trace(days, start_h=9, end_h=17, database_id="daily"):
    """One 8-hour session per day, perfectly regular."""
    sessions = [
        Session(d * DAY + start_h * HOUR, d * DAY + end_h * HOUR)
        for d in range(days)
    ]
    return ActivityTrace(database_id, sessions, created_at=0)


class TestProactiveDailyDatabase:
    """A perfectly daily database: the showcase of the proactive policy."""

    def _run(self):
        trace = daily_trace(31)
        settings = deterministic_settings(29 * DAY, 30 * DAY)
        return simulate_region([trace], PolicyKind.PROACTIVE, settings=settings)

    def test_login_served_by_prewarm(self):
        kpis = self._run().kpis()
        assert kpis.logins.total == 1
        assert kpis.logins.with_resources == 1
        assert kpis.logins.reactive == 0
        assert kpis.qos_percent == 100.0

    def test_proactive_resume_correct_and_cheap(self):
        kpis = self._run().kpis()
        assert kpis.workflows.proactive_resumes == 1
        assert kpis.workflows.correct_proactive_resumes == 1
        assert kpis.workflows.wrong_proactive_resumes == 0
        # Pre-warm lands k (+ up to one operation period) ahead of the
        # predicted 09:00 login: a few minutes of correct-proactive idle.
        assert 0 < kpis.idle.correct_proactive_s <= 7 * MIN
        assert kpis.idle.logical_pause_s == 0

    def test_physical_pause_directly_after_work(self):
        """Next activity is ~16h away > l=7h: Algorithm 1 line 10 pauses
        physically straight from RESUMED, skipping the logical pause."""
        kpis = self._run().kpis()
        assert kpis.workflows.physical_pauses == 1
        assert kpis.workflows.logical_pauses == 0

    def test_no_unavailable_time(self):
        kpis = self._run().kpis()
        assert kpis.unavailable_s == 0
        assert kpis.used_s == 8 * HOUR

    def test_accounting_identity(self):
        kpis = self._run().kpis()
        assert kpis.accounted_seconds() == kpis.fleet_seconds


class TestReactiveDailyDatabase:
    def _run(self):
        trace = daily_trace(31)
        settings = deterministic_settings(29 * DAY, 30 * DAY)
        return simulate_region([trace], PolicyKind.REACTIVE, settings=settings)

    def test_morning_login_is_reactive(self):
        """Overnight the reactive policy physically paused (idle > l), so
        the 09:00 login hits reclaimed resources."""
        kpis = self._run().kpis()
        assert kpis.logins.total == 1
        assert kpis.logins.reactive == 1
        assert kpis.qos_percent == 0.0

    def test_unavailable_equals_resume_latency(self):
        kpis = self._run().kpis()
        assert kpis.unavailable_s == 60

    def test_evening_logical_pause_costs_l(self):
        """After 17:00 the reactive policy keeps resources for l = 7h."""
        kpis = self._run().kpis()
        assert kpis.idle.logical_pause_s == 7 * HOUR
        assert kpis.workflows.logical_pauses == 1
        assert kpis.workflows.physical_pauses == 1

    def test_proactive_beats_reactive_on_this_database(self):
        trace = daily_trace(31)
        settings = deterministic_settings(29 * DAY, 30 * DAY)
        reactive = simulate_region([trace], "reactive", settings=settings).kpis()
        proactive = simulate_region([trace], "proactive", settings=settings).kpis()
        assert proactive.qos_percent > reactive.qos_percent
        assert proactive.idle.total_s < reactive.idle.total_s
        assert proactive.unavailable_s < reactive.unavailable_s


class TestWrongProactiveResume:
    def test_skipped_day_wastes_prewarm(self):
        """28 days of 09:00 logins, but the evaluation day is skipped: the
        pre-warm expires unused and is counted as a wrong proactive resume."""
        sessions = [
            Session(d * DAY + 9 * HOUR, d * DAY + 17 * HOUR) for d in range(29)
        ]  # days 0..28; day 29 has NO session
        trace = ActivityTrace("skipper", sessions, created_at=0)
        settings = deterministic_settings(29 * DAY, 30 * DAY)
        kpis = simulate_region([trace], "proactive", settings=settings).kpis()
        assert kpis.logins.total == 0
        assert kpis.workflows.proactive_resumes >= 1
        assert kpis.workflows.wrong_proactive_resumes >= 1
        assert kpis.workflows.correct_proactive_resumes == 0
        assert kpis.idle.wrong_proactive_s > 0
        assert kpis.idle.correct_proactive_s == 0


class TestNewDatabase:
    def test_new_database_defaults_to_reactive_behaviour(self):
        """A database younger than h days: logical pause on idle, physical
        pause after l, never pre-warmed (Section 4)."""
        created = 28 * DAY + 6 * HOUR
        sessions = [
            Session(created, created + HOUR),
            # Next login 26h later, while physically paused.
            Session(created + 27 * HOUR, created + 28 * HOUR),
        ]
        trace = ActivityTrace("newbie", sessions, created_at=created)
        settings = deterministic_settings(28 * DAY, 30 * DAY)
        kpis = simulate_region([trace], "proactive", settings=settings).kpis()
        assert kpis.workflows.proactive_resumes == 0
        assert kpis.workflows.logical_pauses >= 1
        # Exactly l of logical pause after each of the two sessions.
        assert kpis.idle.logical_pause_s == 2 * 7 * HOUR
        # Both logins are reactive: the creation login finds no resources
        # (the database did not exist) and the 26h-later login lands after
        # the physical pause.
        assert kpis.logins.reactive == 2
        assert kpis.logins.with_resources == 0

    def test_first_login_of_brand_new_database_is_reactive(self):
        created = 29 * DAY + 6 * HOUR
        trace = ActivityTrace(
            "fresh", [Session(created, created + HOUR)], created_at=created
        )
        settings = deterministic_settings(29 * DAY, 30 * DAY)
        kpis = simulate_region([trace], "proactive", settings=settings).kpis()
        assert kpis.logins.total == 1
        assert kpis.logins.reactive == 1


class TestUnpredictableOldDatabase:
    def test_no_prediction_physical_pause_immediately(self):
        """An old database whose history shows no repeating pattern: the
        predictor returns the sentinel and Algorithm 1 line 10 physically
        pauses without a logical pause."""
        # One login every 5 days at wildly different hours.
        sessions = [
            Session(d * DAY + ((d * 11) % 24) * HOUR, d * DAY + ((d * 11) % 24) * HOUR + 600)
            for d in range(0, 35, 5)
        ]
        trace = ActivityTrace("chaotic", sessions, created_at=0)
        settings = deterministic_settings(30 * DAY, 34 * DAY)
        result = simulate_region(
            [trace],
            "proactive",
            config=ProRPConfig(confidence=0.3),
            settings=settings,
        )
        kpis = result.kpis()
        assert kpis.workflows.proactive_resumes == 0
        assert kpis.idle.total_s == 0
        assert kpis.logins.reactive == kpis.logins.total > 0


class TestShortSessionDuringResume:
    def test_session_shorter_than_resume_latency(self):
        """The customer leaves before the reactive resume completes: the
        unavailable time is the whole (short) session."""
        sessions = [Session(d * DAY + ((7 * d) % 20) * HOUR,
                            d * DAY + ((7 * d) % 20) * HOUR + 1200)
                    for d in range(0, 28, 4)]
        final = Session(29 * DAY + 5 * HOUR, 29 * DAY + 5 * HOUR + 10)
        trace = ActivityTrace("blink", sessions + [final], created_at=0)
        settings = deterministic_settings(29 * DAY, 30 * DAY,
                                          resume_latency_s=60)
        kpis = simulate_region(
            [trace],
            "proactive",
            config=ProRPConfig(confidence=0.5),
            settings=settings,
        ).kpis()
        assert kpis.logins.reactive == 1
        assert kpis.unavailable_s == 10  # demand ended before resources came
        assert kpis.used_s == 0

    def test_back_to_back_short_sessions_during_one_resume(self):
        """A second login lands while the first reactive resume is still in
        flight; both logins are unserved but the workflow runs once."""
        history = [Session(d * DAY + ((7 * d) % 20) * HOUR,
                           d * DAY + ((7 * d) % 20) * HOUR + 1200)
                   for d in range(0, 28, 4)]
        s1 = Session(29 * DAY, 29 * DAY + 10)
        s2 = Session(29 * DAY + 30, 29 * DAY + 40)
        trace = ActivityTrace("rapid", history + [s1, s2], created_at=0)
        settings = deterministic_settings(29 * DAY, 30 * DAY,
                                          resume_latency_s=60)
        kpis = simulate_region(
            [trace],
            "proactive",
            config=ProRPConfig(confidence=0.5),
            settings=settings,
        ).kpis()
        assert kpis.logins.total == 2
        assert kpis.logins.reactive == 2
        assert kpis.workflows.reactive_resumes == 1
        assert kpis.unavailable_s == 20  # both 10s sessions


class TestOptimalPolicy:
    def test_optimal_is_the_upper_bound(self):
        trace = daily_trace(31)
        settings = deterministic_settings(29 * DAY, 30 * DAY)
        kpis = simulate_region([trace], PolicyKind.OPTIMAL, settings=settings).kpis()
        assert kpis.qos_percent == 100.0
        assert kpis.idle.total_s == 0
        assert kpis.unavailable_s == 0
        assert kpis.used_s == 8 * HOUR
        assert kpis.accounted_seconds() == kpis.fleet_seconds
