"""Edge cases of the policy actors: races, capacity pressure, and the
resume-service interaction."""

from repro.config import ProRPConfig
from repro.simulation import SimulationSettings, simulate_region
from repro.types import (
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
    SECONDS_PER_MINUTE,
    ActivityTrace,
    Session,
)

DAY = SECONDS_PER_DAY
HOUR = SECONDS_PER_HOUR
MIN = SECONDS_PER_MINUTE


def daily_trace(days=31, start_h=9, database_id="daily"):
    return ActivityTrace(
        database_id,
        [Session(d * DAY + start_h * HOUR, d * DAY + 17 * HOUR) for d in range(days)],
        created_at=0,
    )


class TestPrewarmLoginRaces:
    def test_login_exactly_at_predicted_start(self):
        """Login lands exactly at the predicted start: pre-warm already
        happened k minutes earlier, so the login is served."""
        trace = daily_trace()
        settings = SimulationSettings(
            eval_start=29 * DAY, eval_end=30 * DAY, resume_latency_jitter_s=0
        )
        kpis = simulate_region([trace], "proactive", settings=settings).kpis()
        assert kpis.logins.with_resources == 1

    def test_login_before_prewarm_is_reactive(self):
        """The customer shows up 2 hours earlier than every historical
        login: the pre-warm has not fired yet, so the login is reactive --
        and a wrong pre-warm never happens because the database is already
        resumed when the predicted minute arrives."""
        sessions = [
            Session(d * DAY + 9 * HOUR, d * DAY + 17 * HOUR) for d in range(29)
        ]
        sessions.append(Session(29 * DAY + 7 * HOUR, 29 * DAY + 17 * HOUR))
        trace = ActivityTrace("early", sessions, created_at=0)
        settings = SimulationSettings(
            eval_start=29 * DAY, eval_end=30 * DAY, resume_latency_jitter_s=0
        )
        kpis = simulate_region([trace], "proactive", settings=settings).kpis()
        assert kpis.logins.reactive == 1
        assert kpis.workflows.proactive_resumes == 0
        assert kpis.workflows.wrong_proactive_resumes == 0

    def test_prewarm_skipped_if_reactively_resumed_same_minute(self):
        """A login a few seconds before the pre-warm tick must not double
        allocate: the service sees the database is no longer physically
        paused and skips it."""
        sessions = [
            Session(d * DAY + 9 * HOUR, d * DAY + 17 * HOUR) for d in range(29)
        ]
        # Day 29: login 20 minutes early -- before the pre-warm window.
        sessions.append(Session(29 * DAY + 9 * HOUR - 20 * MIN, 29 * DAY + 17 * HOUR))
        trace = ActivityTrace("racer", sessions, created_at=0)
        settings = SimulationSettings(
            eval_start=29 * DAY, eval_end=30 * DAY, resume_latency_jitter_s=0
        )
        result = simulate_region([trace], "proactive", settings=settings)
        kpis = result.kpis()
        # Exactly one allocation path ran.
        assert kpis.workflows.reactive_resumes + kpis.workflows.proactive_resumes == 1
        assert kpis.accounted_seconds() == kpis.fleet_seconds


class TestCapacityPressure:
    def test_moves_happen_on_tiny_nodes(self):
        """Staggered demand on capacity-1 nodes forces a tenant move (the
        Section 1 worst case) yet accounting stays exact.

        Placement balances residents (db-0, db-2 on node A; db-1 on B), but
        db-2 resumes at 08:00 and fills A, so db-0's 09:00 resume must move
        it to B -- whose own resident only works afternoons.
        """

        def trace(name, start_h, end_h):
            return ActivityTrace(
                name,
                [
                    Session(d * DAY + start_h * HOUR, d * DAY + end_h * HOUR)
                    for d in range(31)
                ],
                created_at=0,
            )

        traces = [
            trace("db-0", 9, 12),
            trace("db-1", 13, 17),
            trace("db-2", 8, 17),
        ]
        settings = SimulationSettings(
            eval_start=29 * DAY,
            eval_end=30 * DAY,
            n_nodes=2,
            node_capacity=1,
            resume_latency_jitter_s=0,
        )
        result = simulate_region(traces, "reactive", settings=settings)
        kpis = result.kpis()
        assert result.cluster_moves > 0
        assert kpis.accounted_seconds() == kpis.fleet_seconds
        # A moved resume pays move_latency_s on top of the base latency.
        assert kpis.unavailable_s > 45 * kpis.logins.total


class TestResumeServicePeriodBoundary:
    def test_prediction_on_period_boundary_prewarmed_once(self):
        """A predicted start exactly on a tick boundary must be selected by
        exactly one iteration (the second sees the state changed)."""
        trace = daily_trace()
        config = ProRPConfig(resume_operation_period_s=60)
        settings = SimulationSettings(
            eval_start=29 * DAY, eval_end=30 * DAY, resume_latency_jitter_s=0
        )
        result = simulate_region([trace], "proactive", config, settings)
        assert result.kpis().workflows.proactive_resumes == 1

    def test_very_long_period_can_miss_prewarm(self):
        """With a 6-hour operation period the pre-warm window (one period
        wide starting at now+k) can overshoot: the login may arrive before
        any iteration selects the database, falling back to reactive."""
        trace = daily_trace()
        config = ProRPConfig(resume_operation_period_s=6 * HOUR)
        settings = SimulationSettings(
            eval_start=29 * DAY, eval_end=30 * DAY, resume_latency_jitter_s=0
        )
        kpis = simulate_region([trace], "proactive", config, settings).kpis()
        assert kpis.logins.total == 1
        # Either path is acceptable; the run must stay consistent.
        assert kpis.accounted_seconds() == kpis.fleet_seconds


class TestZeroPrewarmInterval:
    def test_k_zero_still_serves_when_login_later_in_window(self):
        """k = 0 pre-warms at the tick covering the predicted start; with
        jitter-free logins the allocation still beats the customer."""
        trace = daily_trace()
        config = ProRPConfig(prewarm_s=0)
        settings = SimulationSettings(
            eval_start=29 * DAY, eval_end=30 * DAY, resume_latency_jitter_s=0
        )
        kpis = simulate_region([trace], "proactive", config, settings).kpis()
        assert kpis.accounted_seconds() == kpis.fleet_seconds
        assert kpis.logins.total == 1
