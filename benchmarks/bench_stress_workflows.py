"""Control-plane stress test (Section 9.3).

"The number of proactive resumes and physical pauses per time interval is
doubled by the proactive policy ... Our stress tests confirmed that the
ProRP infrastructure handles this increased workload well."

This bench replays the workflow stream an actual proactive simulation
produced -- every pre-warm, reactive resume, and physical pause with its
real timestamp -- through the workflow engine under bounded concurrency
and fault injection, with the diagnostics runner mitigating.  It asserts
the queues drain promptly and no incidents escalate.
"""

from repro.analysis import format_table
from repro.controlplane import DiagnosticsRunner, WorkflowEngine, WorkflowKind
from repro.experiments.common import BENCH_SCALE, region_fleet
from repro.simulation.region import simulate_region
from repro.workload.regions import RegionPreset

_KINDS = {
    "proactive_resume": WorkflowKind.PROACTIVE_RESUME,
    "reactive_resume": WorkflowKind.REACTIVE_RESUME,
    "physical_pause": WorkflowKind.PHYSICAL_PAUSE,
}


def _collect_workflow_stream():
    traces = region_fleet(RegionPreset.EU1, BENCH_SCALE)
    result = simulate_region(traces, "proactive", settings=BENCH_SCALE.settings())
    stream = []
    for outcome in result.outcomes:
        for t in outcome.proactive_resume_times:
            stream.append((t, WorkflowKind.PROACTIVE_RESUME, outcome.database_id))
        for t in outcome.reactive_resume_times:
            stream.append((t, WorkflowKind.REACTIVE_RESUME, outcome.database_id))
        for t in outcome.physical_pause_times:
            stream.append((t, WorkflowKind.PHYSICAL_PAUSE, outcome.database_id))
    stream.sort(key=lambda item: item[0])
    return stream


def _run_stress(stream):
    engine = WorkflowEngine(
        max_concurrent=50,
        default_duration_s=45,
        stuck_probability=0.02,
        seed=5,
    )
    runner = DiagnosticsRunner(engine, stuck_after_s=120, max_retries=3)
    if not stream:
        return engine, runner, 0
    clock = stream[0][0]
    index = 0
    idle_ticks = 0
    while index < len(stream) or not runner.queues_drained():
        while index < len(stream) and stream[index][0] <= clock:
            t, kind, database_id = stream[index]
            engine.submit(kind, database_id, now=clock)
            index += 1
        engine.tick(clock)
        runner.run_once(clock)
        clock += 30
        idle_ticks += 1
        assert idle_ticks < 10_000_000, "stress run diverged"
    drain_lag = clock - stream[-1][0]
    return engine, runner, drain_lag


def bench_workflow_stress(benchmark, record_table):
    stream = _collect_workflow_stream()
    engine, runner, drain_lag = benchmark.pedantic(
        _run_stress, args=(stream,), rounds=1, iterations=1
    )
    succeeded = sum(
        1 for w in engine.workflows.values() if w.state.value == "succeeded"
    )
    peak_pending = max((s.pending for s in runner.samples), default=0)
    table = format_table(
        ["metric", "value"],
        [
            ["workflows replayed", len(stream)],
            ["succeeded", succeeded],
            ["mitigation retries", runner.mitigations],
            ["incidents", len(runner.incidents)],
            ["peak pending queue", peak_pending],
            ["drain lag after last event (s)", drain_lag],
        ],
        title=(
            "Control-plane stress: replaying a proactive region's workflow "
            "stream at 2% fault injection"
        ),
    )
    record_table("stress_workflows", table)
    assert succeeded == len(stream)
    assert len(runner.incidents) == 0
    assert runner.queues_drained()
