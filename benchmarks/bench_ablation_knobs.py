"""Ablation benches for the design choices DESIGN.md calls out:
history length, seasonality, pre-warm interval, and the logical-pause
duration (l -> 0 approximates reclaim-immediately).
"""

from repro.experiments.ablation import (
    run_history_length_ablation,
    run_logical_pause_ablation,
    run_prewarm_ablation,
    run_seasonality_ablation,
)
from repro.experiments.common import BENCH_SCALE


def bench_ablation_history_length(benchmark, record_table):
    result = benchmark.pedantic(
        run_history_length_ablation, args=(BENCH_SCALE,), rounds=1, iterations=1
    )
    record_table("ablation_history_length", result.table())
    qos = [r["qos_percent"] for r in result.rows()]
    # Section 9.2: relatively independent of h.
    assert max(qos) - min(qos) < 20


def bench_ablation_seasonality(benchmark, record_table):
    result = benchmark.pedantic(
        run_seasonality_ablation, args=(BENCH_SCALE,), rounds=1, iterations=1
    )
    record_table("ablation_seasonality", result.table())


def bench_ablation_prewarm(benchmark, record_table):
    result = benchmark.pedantic(
        run_prewarm_ablation, args=(BENCH_SCALE,), rounds=1, iterations=1
    )
    record_table("ablation_prewarm", result.table())


def bench_ablation_logical_pause(benchmark, record_table):
    result = benchmark.pedantic(
        run_logical_pause_ablation, args=(BENCH_SCALE,), rounds=1, iterations=1
    )
    record_table("ablation_logical_pause", result.table())
    rows = result.rows()
    assert rows[0]["qos_percent"] < rows[-2]["qos_percent"]
