"""Chaos experiment: sweep fault rate against the paper's KPIs.

Every row arms the fault injector with one plan (by default a uniform plan
over a small set of high-impact fault points), simulates the proactive
policy over the same fleet, and reports QoS, COGS, and the resilience
ledger (fault fires, scan retries, predictor breaker opens).  Rate 0.0 is
the control: its KPIs are byte-identical to an un-chaosed run, which the
test suite asserts.

Determinism: each sweep task arms ``FAULTS`` *inside* the worker function
with a per-point-seeded injector, so a task's fault schedule depends only
on (plan, seed) -- not on which process ran it or in what order.  Serial
and multiprocess executors therefore produce identical rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis import format_table
from repro.config import DEFAULT_CONFIG
from repro.core.policy import PolicyKind
from repro.experiments.common import (
    BENCH_SCALE,
    ExperimentScale,
    region_fleet,
    sweep_map,
)
from repro.faults import FaultPlan, chaos
from repro.parallel import SweepExecutor
from repro.simulation.region import simulate_region
from repro.workload.regions import RegionPreset

#: The x-axis of the default chaos sweep: per-consultation fault
#: probability applied uniformly to every swept point.
DEFAULT_FAULT_RATES = (0.0, 0.02, 0.05, 0.1)

#: High-impact fault points swept by default: predictor failures trip the
#: breaker into reactive fallback, scan outages starve the pre-warm cycle
#: (bounded by its retry policy), and node crashes stretch resume latency.
DEFAULT_POINTS = (
    "predictor.exception",
    "resume.scan.unavailable",
    "cluster.node.crash",
)


@dataclass(frozen=True)
class ChaosResult:
    """One row per swept plan, in sweep order."""

    rows_by_rate: List[Dict[str, object]]

    def rows(self) -> List[Dict[str, object]]:
        return self.rows_by_rate

    def qos_monotonic(self, tolerance: float = 0.0) -> bool:
        """Whether QoS is non-increasing as the fault rate grows (within
        ``tolerance`` percentage points of slack per step).  Only
        meaningful for the rate sweep; rows are compared in sweep order."""
        qos = [float(row["qos_percent"]) for row in self.rows_by_rate]
        return all(b <= a + tolerance for a, b in zip(qos, qos[1:]))

    def table(self) -> str:
        rows = [
            [
                row["fault_rate"],
                round(float(row["qos_percent"]), 1),
                round(float(row["idle_percent"]), 2),
                round(float(row["unavailable_percent"]), 2),
                row["logins_reactive_faulted"],
                row["fault_fires"],
                row["scan_retries"],
                row["breaker_opens"],
            ]
            for row in self.rows_by_rate
        ]
        return format_table(
            [
                "fault rate",
                "QoS%",
                "idle%",
                "unavail%",
                "faulted logins",
                "fires",
                "retries",
                "breaker opens",
            ],
            rows,
            title="Chaos: fault rate vs QoS/COGS (uniform plan over swept points)",
        )


def _chaos_worker(
    context: Tuple[str, ExperimentScale], item: Tuple[object, Dict[str, object]]
) -> Dict[str, object]:
    """One sweep task: arm the plan, simulate, report KPIs + fault ledger.

    Arming happens here, inside the worker, so the multiprocess backend
    reproduces the serial schedule exactly (see the module docstring).
    """
    preset_value, scale = context
    rate, plan_doc = item
    plan = FaultPlan.from_dict(plan_doc)
    traces = region_fleet(RegionPreset(preset_value), scale)
    with chaos(plan, seed=scale.seed) as injector:
        result = simulate_region(
            traces, PolicyKind.PROACTIVE, DEFAULT_CONFIG, scale.settings()
        )
        kpis = result.kpis()
        ledger = injector.snapshot()
    events = ledger["events"]
    return {
        "fault_rate": rate,
        "qos_percent": round(kpis.qos_percent, 3),
        "idle_percent": round(kpis.idle_percent, 3),
        "unavailable_percent": round(kpis.unavailable_percent, 3),
        "logins_total": kpis.logins.total,
        "logins_reactive": kpis.logins.reactive,
        "logins_reactive_faulted": kpis.logins.reactive_faulted,
        "fault_fires": sum(ledger["fires"].values()),
        "fault_consults": sum(ledger["consults"].values()),
        "scan_retries": events.get("retry.resume.scan", 0),
        "breaker_opens": events.get("breaker.predictor.open", 0),
    }


def run_chaos(
    scale: ExperimentScale = BENCH_SCALE,
    preset: RegionPreset = RegionPreset.EU1,
    fault_rates: Sequence[float] = DEFAULT_FAULT_RATES,
    points: Sequence[str] = DEFAULT_POINTS,
    plan: Optional[FaultPlan] = None,
    executor: Optional[SweepExecutor] = None,
    workers: Optional[int] = None,
) -> ChaosResult:
    """Run the chaos sweep.

    With the default arguments this sweeps ``fault_rates`` as uniform
    plans over ``points``.  An explicit ``plan`` replaces the sweep with a
    single run of exactly that plan (its row's ``fault_rate`` is the
    string ``"plan"``).
    """
    if plan is not None:
        items: List[Tuple[object, Dict[str, object]]] = [("plan", plan.to_dict())]
    else:
        items = [
            (rate, FaultPlan.uniform(points, rate).to_dict())
            for rate in fault_rates
        ]
    rows = sweep_map(
        _chaos_worker, (preset.value, scale), items, executor, workers
    )
    return ChaosResult(rows)
