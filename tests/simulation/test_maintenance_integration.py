"""Maintenance operations inside the simulator (Section 3.3).

System maintenance resumes resources when needed but must be invisible to
the policy: no history events, no login classification, its held time
tracked outside the customer COGS breakdown.
"""

from repro.cluster import Cluster
from repro.config import ProRPConfig
from repro.simulation import SimulationSettings, simulate_region
from repro.simulation.actor import ProactiveActor, ReactiveActor
from repro.simulation.engine import EventQueue
from repro.simulation.results import DatabaseOutcome
from repro.storage.metadata import MetadataStore
from repro.types import SECONDS_PER_DAY, SECONDS_PER_HOUR, ActivityTrace, Session

DAY = SECONDS_PER_DAY
HOUR = SECONDS_PER_HOUR


def run_single(trace, maintenance, policy="proactive", eval_start=29 * DAY,
               eval_end=30 * DAY, config=None):
    """Drive one database with explicit maintenance sessions."""
    settings = SimulationSettings(
        eval_start=eval_start,
        eval_end=eval_end,
        warmup_s=DAY,
        resume_latency_jitter_s=0,
        n_nodes=1,
        node_capacity=8,
    )
    queue = EventQueue(start=settings.sim_start)
    cluster = Cluster(
        n_nodes=1, node_capacity=8, resume_latency_s=60,
        resume_latency_jitter_s=0, seed=0,
    )
    metadata = MetadataStore()
    outcome = DatabaseOutcome(trace.database_id, eval_start, eval_end)
    config = config or ProRPConfig()
    if policy == "proactive":
        actor = ProactiveActor(
            trace, queue, cluster, metadata, outcome, config,
            settings.sim_start, eval_end, maintenance=maintenance,
        )
        from repro.simulation.region import _warm_history

        actor.history = _warm_history(trace, settings.sim_start, config.history_days)
    else:
        actor = ReactiveActor(
            trace, queue, cluster, metadata, outcome, config,
            settings.sim_start, eval_end, maintenance=maintenance,
        )
    actor.start()
    queue.run_until(eval_end)
    actor.finalize(eval_end)
    return actor, outcome


def daily_trace(days=31):
    return ActivityTrace(
        "db",
        [Session(d * DAY + 9 * HOUR, d * DAY + 17 * HOUR) for d in range(days)],
        created_at=0,
    )


class TestMaintenanceResume:
    def test_paused_database_resumed_for_maintenance(self):
        """A backup at 02:00 hits a physically paused daily database: the
        backend resumes it, holds it for the operation, then re-pauses."""
        maintenance = [Session(29 * DAY + 2 * HOUR, 29 * DAY + 2 * HOUR + 1800)]
        actor, outcome = run_single(daily_trace(), maintenance, "reactive")
        assert len(outcome.maintenance_resume_times) == 1
        assert outcome.maintenance_s == 1800
        # The database went back to physical pause right after the op.
        assert len(outcome.physical_pause_times) >= 1

    def test_maintenance_excluded_from_history(self):
        """Design principle (Section 3.3): only customer activity reaches
        sys.pause_resume_history."""
        maintenance = [Session(29 * DAY + 2 * HOUR, 29 * DAY + 2 * HOUR + 1800)]
        actor, _ = run_single(daily_trace(), maintenance, "proactive")
        events = actor.history.events_in_range(29 * DAY, 30 * DAY)
        assert all(
            e.time_snapshot not in (29 * DAY + 2 * HOUR,) for e in events
        )
        # Exactly the customer start/end of day 29 inside the window.
        assert [e.time_snapshot for e in events] == [
            29 * DAY + 9 * HOUR,
            29 * DAY + 17 * HOUR,
        ]

    def test_maintenance_not_a_login(self):
        maintenance = [Session(29 * DAY + 2 * HOUR, 29 * DAY + 2 * HOUR + 1800)]
        _, outcome = run_single(daily_trace(), maintenance, "reactive")
        # Only the customer's 09:00 login is classified.
        assert outcome.logins_with_resources + outcome.logins_reactive == 1

    def test_maintenance_during_customer_activity_is_free(self):
        """An operation at noon rides on the customer session: no extra
        resume, no maintenance-held time."""
        maintenance = [Session(29 * DAY + 12 * HOUR, 29 * DAY + 12 * HOUR + 1800)]
        _, outcome = run_single(daily_trace(), maintenance, "reactive")
        assert outcome.maintenance_resume_times == []
        assert outcome.maintenance_s == 0

    def test_policy_does_not_reclaim_mid_maintenance(self):
        """The customer leaves while an operation runs: resources are held
        until the operation finishes, then the policy decides."""
        # Operation spans the end of the workday (16:30 - 17:30).
        maintenance = [
            Session(29 * DAY + 16 * HOUR + 1800, 29 * DAY + 17 * HOUR + 1800)
        ]
        _, outcome = run_single(daily_trace(), maintenance, "proactive")
        # Held from 17:00 (customer gone) to 17:30 (operation end).
        assert outcome.maintenance_s == 1800

    def test_reactive_l_window_survives_maintenance_segmentation(self):
        """Under the reactive policy the database still pauses physically
        exactly l after the customer left, maintenance or not."""
        maintenance = [
            Session(29 * DAY + 16 * HOUR + 1800, 29 * DAY + 17 * HOUR + 1800)
        ]
        _, outcome = run_single(
            daily_trace(), maintenance, "reactive", eval_end=30 * DAY
        )
        # 17:00 + 7h = 24:00 physical pause; idle booked: 30min maintenance
        # + 6.5h logical pause.
        assert outcome.maintenance_s == 1800
        assert outcome.logical_pause_idle_s == 7 * HOUR - 1800


class TestRegionLevelMaintenance:
    def test_accounting_identity_with_maintenance(self):
        from repro.workload import RegionPreset, generate_region_traces

        traces = generate_region_traces(RegionPreset.EU2, 40, span_days=32, seed=8)
        settings = SimulationSettings(
            eval_start=30 * DAY, eval_end=31 * DAY, maintenance_per_week=3.0
        )
        for policy in ("reactive", "proactive"):
            kpis = simulate_region(traces, policy, settings=settings).kpis()
            assert kpis.accounted_seconds() == kpis.fleet_seconds
            assert kpis.maintenance_s >= 0

    def test_maintenance_causes_extra_resumes_on_paused_fleet(self):
        from repro.workload import RegionPreset, generate_region_traces

        traces = generate_region_traces(RegionPreset.EU2, 60, span_days=32, seed=8)
        settings_off = SimulationSettings(eval_start=30 * DAY, eval_end=31 * DAY)
        settings_on = SimulationSettings(
            eval_start=30 * DAY, eval_end=31 * DAY, maintenance_per_week=5.0
        )
        off = simulate_region(traces, "proactive", settings=settings_off).kpis()
        on = simulate_region(traces, "proactive", settings=settings_on).kpis()
        assert off.workflows.maintenance_resumes == 0
        assert on.workflows.maintenance_resumes > 0
        assert on.maintenance_s > 0

    def test_customer_kpis_insensitive_to_maintenance(self):
        """Logins and their classification describe customer experience;
        maintenance may only improve it (resources happen to be up)."""
        from repro.workload import RegionPreset, generate_region_traces

        traces = generate_region_traces(RegionPreset.EU2, 60, span_days=32, seed=8)
        base = SimulationSettings(eval_start=30 * DAY, eval_end=31 * DAY)
        with_maint = SimulationSettings(
            eval_start=30 * DAY, eval_end=31 * DAY, maintenance_per_week=5.0
        )
        off = simulate_region(traces, "proactive", settings=base).kpis()
        on = simulate_region(traces, "proactive", settings=with_maint).kpis()
        assert on.logins.total == off.logins.total
        assert on.logins.with_resources >= off.logins.with_resources
