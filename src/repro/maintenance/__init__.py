"""Prediction-aligned scheduling of system maintenance operations.

Future-work direction (4) of the paper: "we will schedule these operations
[backups, software updates, version upgrades, stats refresh] when the
database is predicted to be online to minimize impact of increased backend
load of resuming just for the purpose of running these operations", in the
spirit of Seagull [57].

* :mod:`repro.maintenance.operations` -- the maintenance operation model.
* :mod:`repro.maintenance.scheduler` -- a naive fixed-time scheduler (the
  status quo: maintenance resumes paused databases) and the predictive
  scheduler that places operations inside predicted-online windows, plus
  the evaluation comparing the extra resumes both cause.
"""

from repro.maintenance.operations import MaintenanceKind, MaintenanceOperation
from repro.maintenance.scheduler import (
    MaintenanceEvaluation,
    NaiveScheduler,
    PredictiveScheduler,
    evaluate_schedule,
)

__all__ = [
    "MaintenanceKind",
    "MaintenanceOperation",
    "NaiveScheduler",
    "PredictiveScheduler",
    "evaluate_schedule",
    "MaintenanceEvaluation",
]
