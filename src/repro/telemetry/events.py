"""Telemetry event schema.

Section 9.1: "This telemetry is emitted by the customer activity tracking,
the prediction of next activity, and the proactive resume operation ...
Each event carries timestamp in seconds, database identifier, and results
of each component of the ProRP infrastructure."
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any, Dict


class Component(enum.Enum):
    """The emitting ProRP component."""

    ACTIVITY_TRACKING = "activity_tracking"
    PREDICTION = "prediction"
    RESUME_OPERATION = "resume_operation"
    LIFECYCLE = "lifecycle"
    #: The offline sweep execution layer (training / experiment fan-out).
    SWEEP_EXECUTOR = "sweep_executor"
    #: Spans drained from the live tracing layer (repro.observability).
    OBSERVABILITY = "observability"


@dataclass(frozen=True)
class TelemetryEvent:
    """One telemetry record."""

    time: int
    database_id: str
    component: Component
    payload: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps(
            {
                "time": self.time,
                "database_id": self.database_id,
                "component": self.component.value,
                "payload": self.payload,
            },
            sort_keys=True,
        )

    @staticmethod
    def from_json(line: str) -> "TelemetryEvent":
        data = json.loads(line)
        return TelemetryEvent(
            time=data["time"],
            database_id=data["database_id"],
            component=Component(data["component"]),
            payload=data.get("payload", {}),
        )
