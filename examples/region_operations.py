"""Region operations: tuning the resume-operation frequency and surviving
stuck workflows.

Two operator scenarios from Sections 7 and 9.3:

1. How often should the proactive resume operation run?  Sweep the period
   and look at the pre-warm batch per iteration (the Figure 11 decision:
   production picks one minute so batches stay manageable).
2. What happens when resume workflows get stuck?  Feed a pre-warm storm
   through the control-plane workflow engine with fault injection and let
   the diagnostics runner mitigate and escalate (Section 7).

Run:  python examples/region_operations.py
"""

from repro.analysis import box_plot_summary, format_table
from repro.config import ProRPConfig
from repro.controlplane import DiagnosticsRunner, WorkflowEngine, WorkflowKind
from repro.simulation import SimulationSettings, simulate_region
from repro.types import SECONDS_PER_DAY as DAY, SECONDS_PER_MINUTE as MIN
from repro.workload import RegionPreset, generate_region_traces


def frequency_sweep(traces) -> None:
    settings = SimulationSettings(eval_start=31 * DAY, eval_end=32 * DAY)
    rows = []
    for minutes in (1, 5, 15):
        config = ProRPConfig(resume_operation_period_s=minutes * MIN)
        result = simulate_region(traces, "proactive", config, settings)
        summary = box_plot_summary(result.prewarm_batch_sizes())
        rows.append([minutes, summary.median, summary.q3, summary.maximum])
    print(
        format_table(
            ["period (min)", "batch median", "batch q3", "batch max"],
            rows,
            title="Pre-warm batch size per resume-operation iteration",
        )
    )
    print(
        "Longer periods batch more databases per iteration; production\n"
        "runs every minute to keep the scaling mechanisms within budget.\n"
    )


def workflow_storm() -> None:
    engine = WorkflowEngine(
        max_concurrent=25,
        default_duration_s=45,
        stuck_probability=0.08,  # injected faults
        seed=11,
    )
    runner = DiagnosticsRunner(engine, stuck_after_s=120, max_retries=2)
    # A burst of 300 pre-warm workflows lands within five minutes.
    for i in range(300):
        engine.submit(WorkflowKind.PROACTIVE_RESUME, f"db-{i:03d}", now=i)
    now = 0
    while not runner.queues_drained() and now < 100_000:
        engine.tick(now)
        runner.run_once(now)
        now += 30
    succeeded = sum(
        1 for w in engine.workflows.values() if w.state.value == "succeeded"
    )
    print(
        format_table(
            ["metric", "value"],
            [
                ["workflows submitted", len(engine.workflows)],
                ["succeeded", succeeded],
                ["mitigation retries", runner.mitigations],
                ["incidents escalated", len(runner.incidents)],
                ["drain time (min)", now // 60],
            ],
            title="Diagnostics runner under an 8% stuck-workflow fault rate",
        )
    )


def monitoring_dashboard(traces) -> None:
    """The PowerBI substitute: KPI sparklines from the telemetry store."""
    from repro.telemetry import TelemetryStore, emit_simulation_telemetry
    from repro.telemetry.monitoring import kpi_rollup, render_dashboard
    from repro.types import SECONDS_PER_HOUR as HOUR

    settings = SimulationSettings(eval_start=31 * DAY, eval_end=32 * DAY)
    result = simulate_region(traces, "proactive", settings=settings)
    store = TelemetryStore()
    emit_simulation_telemetry(result, traces, store)
    rollups = kpi_rollup(store, 31 * DAY, 32 * DAY, bucket_s=HOUR)
    print()
    print(render_dashboard(rollups, title="EU2 proactive, hourly"))


def main() -> None:
    traces = generate_region_traces(RegionPreset.EU2, n_databases=200, seed=9)
    frequency_sweep(traces)
    workflow_storm()
    monitoring_dashboard(traces)


if __name__ == "__main__":
    main()
