"""Online serving gateway: async prediction/resume service.

Turns the fleet-prediction hot path into a live, concurrent service:
typed requests (``requests``), admission control and load shedding
(``admission``), dynamic micro-batching onto
``FastPredictor.predict_fleet`` (``batcher``), the asyncio server and its
JSON-over-TCP front end (``server``), and synthetic load generation
(``loadgen``).  The shared-nothing multi-process tier (consistent-hash
router, worker processes, zero-copy shared-memory history) lives in the
``sharded`` subpackage.  See ``docs/serving.md``.
"""

from repro.serving.admission import (
    QUEUE_FULL_FAULT_POINT,
    AdmissionController,
    AdmissionPolicy,
    TokenBucket,
)
from repro.serving.batcher import MicroBatcher
from repro.serving.loadgen import (
    LoadReport,
    closed_loop,
    fleet_login_arrays,
    open_loop,
)
from repro.serving.requests import (
    DeadlineExpired,
    ErrorResponse,
    HealthRequest,
    HealthResponse,
    InvalidRequest,
    MetricsRequest,
    MetricsResponse,
    Overloaded,
    PredictRequest,
    PredictResponse,
    RateLimited,
    Request,
    Response,
    ResumeScanRequest,
    ResumeScanResponse,
    ServingProtocolError,
    Shutdown,
    Unavailable,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
)
from repro.serving.server import (
    HANDLER_FAULT_POINT,
    PredictionServer,
    ServingSettings,
    serve_tcp,
)

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "DeadlineExpired",
    "ErrorResponse",
    "HANDLER_FAULT_POINT",
    "HealthRequest",
    "HealthResponse",
    "InvalidRequest",
    "LoadReport",
    "MetricsRequest",
    "MetricsResponse",
    "MicroBatcher",
    "Overloaded",
    "PredictRequest",
    "PredictResponse",
    "PredictionServer",
    "QUEUE_FULL_FAULT_POINT",
    "RateLimited",
    "Request",
    "Response",
    "ResumeScanRequest",
    "ResumeScanResponse",
    "ServingProtocolError",
    "ServingSettings",
    "Shutdown",
    "TokenBucket",
    "Unavailable",
    "closed_loop",
    "decode_request",
    "decode_response",
    "encode_request",
    "encode_response",
    "fleet_login_arrays",
    "open_loop",
    "serve_tcp",
]
