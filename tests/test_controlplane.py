"""Tests for the workflow engine and the diagnostics/mitigation runner."""

import pytest

from repro.controlplane import (
    DiagnosticsRunner,
    WorkflowEngine,
    WorkflowKind,
    WorkflowState,
)
from repro.errors import WorkflowError


class TestWorkflowEngine:
    def test_submit_and_complete(self):
        engine = WorkflowEngine(default_duration_s=10)
        workflow = engine.submit(WorkflowKind.REACTIVE_RESUME, "db-1", now=0)
        assert workflow.state is WorkflowState.PENDING
        engine.tick(0)
        assert workflow.state is WorkflowState.RUNNING
        completed = engine.tick(10)
        assert completed == [workflow]
        assert workflow.state is WorkflowState.SUCCEEDED
        assert workflow.finished_at == 10
        assert engine.drained()

    def test_concurrency_limit(self):
        engine = WorkflowEngine(max_concurrent=2, default_duration_s=10)
        for i in range(5):
            engine.submit(WorkflowKind.PHYSICAL_PAUSE, f"db-{i}", now=0)
        engine.tick(0)
        assert engine.running_count == 2
        assert engine.pending_count == 3
        engine.tick(10)  # two finish, two more start
        assert engine.running_count == 2
        assert engine.pending_count == 1

    def test_queue_depth_by_kind(self):
        engine = WorkflowEngine(max_concurrent=1)
        engine.submit(WorkflowKind.PROACTIVE_RESUME, "a", now=0)
        engine.submit(WorkflowKind.PROACTIVE_RESUME, "b", now=0)
        engine.submit(WorkflowKind.PHYSICAL_PAUSE, "c", now=0)
        assert engine.queue_depth(WorkflowKind.PROACTIVE_RESUME) == 2
        assert engine.queue_depth(WorkflowKind.PHYSICAL_PAUSE) == 1

    def test_fault_injection_produces_stuck(self):
        engine = WorkflowEngine(stuck_probability=0.99, seed=1, default_duration_s=5)
        workflow = engine.submit(WorkflowKind.REACTIVE_RESUME, "db", now=0)
        engine.tick(0)
        assert workflow.state is WorkflowState.STUCK
        # A stuck workflow never completes on its own.
        assert engine.tick(1000) == []
        assert engine.stuck_workflows(now=1000, stuck_after_s=300) == [workflow]

    def test_retry_requeues_at_head(self):
        engine = WorkflowEngine(stuck_probability=0.99, seed=1, default_duration_s=5)
        workflow = engine.submit(WorkflowKind.REACTIVE_RESUME, "db", now=0)
        engine.tick(0)
        engine.retry(workflow, now=400)
        assert workflow.retries == 1
        assert engine.pending_count == 1

    def test_retry_of_healthy_workflow_rejected(self):
        engine = WorkflowEngine(default_duration_s=5)
        workflow = engine.submit(WorkflowKind.REACTIVE_RESUME, "db", now=0)
        engine.tick(0)
        with pytest.raises(WorkflowError):
            engine.retry(workflow, now=1)

    def test_fail_terminates(self):
        engine = WorkflowEngine(stuck_probability=0.99, seed=1)
        workflow = engine.submit(WorkflowKind.REACTIVE_RESUME, "db", now=0)
        engine.tick(0)
        engine.fail(workflow, now=500)
        assert workflow.state is WorkflowState.FAILED
        assert workflow.terminal
        assert engine.drained()

    def test_validation(self):
        with pytest.raises(WorkflowError):
            WorkflowEngine(max_concurrent=0)
        with pytest.raises(WorkflowError):
            WorkflowEngine(stuck_probability=1.0)


class TestDiagnosticsRunner:
    def test_queues_drain_without_faults(self):
        """Section 7: the runner makes sure the queues drain."""
        engine = WorkflowEngine(max_concurrent=10, default_duration_s=30)
        runner = DiagnosticsRunner(engine)
        for i in range(50):
            engine.submit(WorkflowKind.PROACTIVE_RESUME, f"db-{i}", now=0)
        now = 0
        while not runner.queues_drained():
            engine.tick(now)
            runner.run_once(now)
            now += 30
            assert now < 10_000, "queues must drain"
        assert runner.incidents == []
        assert runner.samples, "runner must record queue samples"

    def test_stuck_workflows_get_mitigated(self):
        engine = WorkflowEngine(
            max_concurrent=10, default_duration_s=30, stuck_probability=0.5, seed=3
        )
        runner = DiagnosticsRunner(engine, stuck_after_s=60, max_retries=5)
        for i in range(40):
            engine.submit(WorkflowKind.REACTIVE_RESUME, f"db-{i}", now=0)
        now = 0
        while not engine.drained() and now < 100_000:
            engine.tick(now)
            runner.run_once(now)
            now += 30
        assert engine.drained()
        assert runner.mitigations > 0
        # With retries available, everything eventually succeeds.
        assert all(
            w.state is WorkflowState.SUCCEEDED for w in engine.workflows.values()
        )

    def test_exhausted_retries_trigger_incident(self):
        engine = WorkflowEngine(
            max_concurrent=10, default_duration_s=30, stuck_probability=0.95, seed=7
        )
        runner = DiagnosticsRunner(engine, stuck_after_s=30, max_retries=1)
        engine.submit(WorkflowKind.PHYSICAL_PAUSE, "db-x", now=0)
        now = 0
        while not engine.drained() and now < 100_000:
            engine.tick(now)
            runner.run_once(now)
            now += 30
        terminal_states = {w.state for w in engine.workflows.values()}
        if WorkflowState.FAILED in terminal_states:
            assert runner.incidents
            assert runner.incidents[0].database_id == "db-x"

    def test_queue_depth_alert(self):
        engine = WorkflowEngine(max_concurrent=1, default_duration_s=1000)
        runner = DiagnosticsRunner(engine, queue_alert_depth=5)
        for i in range(10):
            engine.submit(WorkflowKind.PROACTIVE_RESUME, f"db-{i}", now=0)
        engine.tick(0)
        runner.run_once(0)
        assert any("queue depth" in i.reason for i in runner.incidents)


class TestFailedWorkflowPath:
    """A workflow that exhausts its mitigation retries is terminal: failed
    exactly once, one incident, and never re-queued by the runner."""

    def _always_stuck_engine(self):
        from repro.controlplane.workflows import STUCK_POINT
        from repro.faults import FaultInjector, FaultPlan, FaultSpec

        injector = FaultInjector(FaultPlan.of(FaultSpec(STUCK_POINT)))
        return WorkflowEngine(default_duration_s=30, injector=injector)

    def test_exhausted_retries_are_terminal_and_counted_once(self):
        engine = self._always_stuck_engine()
        runner = DiagnosticsRunner(engine, stuck_after_s=30, max_retries=2)
        workflow = engine.submit(WorkflowKind.REACTIVE_RESUME, "db-x", now=0)
        now = 0
        while not engine.drained():
            assert now <= 10_000, "the runner must give up eventually"
            engine.tick(now)
            runner.run_once(now)
            now += 30
        assert workflow.state is WorkflowState.FAILED
        assert workflow.terminal
        assert workflow.finished_at is not None
        assert workflow.retries == 2
        assert runner.mitigations == 2
        # Exactly one incident for the one abandoned workflow.
        incidents = [
            i for i in runner.incidents if i.workflow_id == workflow.workflow_id
        ]
        assert len(incidents) == 1
        assert incidents[0].database_id == "db-x"

    def test_failed_workflow_never_requeued(self):
        engine = self._always_stuck_engine()
        runner = DiagnosticsRunner(engine, stuck_after_s=30, max_retries=0)
        workflow = engine.submit(WorkflowKind.PHYSICAL_PAUSE, "db-x", now=0)
        engine.tick(0)
        assert workflow.state is WorkflowState.STUCK
        runner.run_once(30)  # zero retries allowed: fail immediately
        assert workflow.state is WorkflowState.FAILED
        incidents_after_fail = len(runner.incidents)
        # Further monitoring passes and ticks leave it failed and queued
        # nowhere: the engine stays drained and no new incidents appear.
        for now in range(60, 400, 30):
            engine.tick(now)
            runner.run_once(now)
        assert workflow.state is WorkflowState.FAILED
        assert engine.pending_count == 0
        assert engine.running_count == 0
        assert engine.drained()
        assert len(runner.incidents) == incidents_after_fail

    def test_fail_removes_mitigated_workflow_from_pending(self):
        """Failing a workflow that sits in the *pending* queue (mitigated,
        waiting to restart) must remove it there too -- a terminal
        workflow left behind would be started again by a later tick."""
        engine = self._always_stuck_engine()
        workflow = engine.submit(WorkflowKind.REACTIVE_RESUME, "db-x", now=0)
        engine.tick(0)
        assert workflow.state is WorkflowState.STUCK
        engine.retry(workflow, 30)
        assert workflow.state is WorkflowState.MITIGATED
        assert engine.pending_count == 1
        engine.fail(workflow, 60)
        assert workflow.state is WorkflowState.FAILED
        assert engine.pending_count == 0
        assert engine.running_count == 0
        assert engine.drained()
        # Later ticks must not resurrect it.
        engine.tick(90)
        assert engine.running_count == 0
        assert workflow.state is WorkflowState.FAILED
        assert workflow.finished_at == 60
