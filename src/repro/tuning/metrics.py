"""Pre-registration of the ``tuning.*`` metrics namespace.

The OpenMetrics renderer and the ``observe --top`` dashboard render
whatever the registry holds, so pre-registering the tuning series makes
the namespace visible (at zero) from process start instead of popping
into existence at the first promotion.  The tuner and bank write these
same names at runtime; :func:`repro.observability.slo.tuning_slos`
builds the matching alert rules.
"""

from __future__ import annotations

from repro.tuning.bank import BANK_POLICIES

#: (name, kind) of every tuning metric, for docs and tests.
TUNING_METRICS = (
    ("tuning.promotions", "counter"),
    ("tuning.demotions", "counter"),
    ("tuning.prunes", "counter"),
    ("tuning.active_candidate", "gauge"),
    ("tuning.alive_candidates", "gauge"),
    ("tuning.kpi_delta", "gauge"),
    ("tuning.online_score", "gauge"),
    ("tuning.static_score", "gauge"),
    ("tuning.demotions.window", "counter_series"),
    ("tuning.bank.regret.window", "histogram_series"),
    ("tuning.bank.switches", "counter"),
    ("tuning.bank.share", "gauge"),
    ("tuning.bank.regret", "histogram"),
)


def register_tuning_metrics(registry, window_s=None) -> None:
    """Create every ``tuning.*`` metric in ``registry`` (idempotent).

    Per-policy metrics (switches, shares, regret histograms) register one
    labelled child per bank policy; ``window_s`` sizes the windowed
    series feeding the tuning SLOs.
    """
    registry.counter("tuning.promotions")
    registry.counter("tuning.demotions")
    registry.counter("tuning.prunes")
    registry.gauge("tuning.active_candidate")
    registry.gauge("tuning.alive_candidates")
    #: Incumbent-vs-challenger objective delta of the latest window.
    registry.gauge("tuning.kpi_delta")
    registry.gauge("tuning.online_score")
    registry.gauge("tuning.static_score")
    registry.counter_series("tuning.demotions.window", window_s)
    registry.histogram_series("tuning.bank.regret.window", window_s)
    for policy in BANK_POLICIES:
        registry.counter("tuning.bank.switches", labels={"policy": policy})
        registry.gauge("tuning.bank.share", labels={"policy": policy})
        registry.histogram("tuning.bank.regret", labels={"policy": policy})
