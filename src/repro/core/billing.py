"""Serverless billing semantics (Section 2.2).

"Customers are billed per second for compute resources only while they use
these resources. ... During logical pause, the resources are still
available but customers are not billed."

The provider, however, pays for every allocated second.  The gap between
the two -- idle allocated time -- is exactly the COGS the proactive policy
optimises, so this module turns a KPI report into the provider-efficiency
view: billed seconds, allocated seconds, and the unbilled idle exposure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.kpi import KpiReport


@dataclass(frozen=True)
class BillingReport:
    """Provider-vs-customer accounting for one simulation run."""

    policy: str
    #: Seconds the customer pays for (demand served with resources up).
    customer_billed_s: int
    #: Seconds the provider keeps compute allocated (billed or not).
    provider_allocated_s: int
    #: Allocated seconds nobody pays for: logical pauses and pre-warm idle.
    unbilled_idle_s: int
    #: Demand seconds the provider failed to serve (reactive-resume gaps);
    #: not billed, but a quality-of-service debt.
    unserved_demand_s: int

    @property
    def allocation_efficiency(self) -> float:
        """Fraction of allocated time that is billed (1.0 is the optimum
        of Figure 2(c): allocation equals demand)."""
        if self.provider_allocated_s == 0:
            return 0.0
        return self.customer_billed_s / self.provider_allocated_s

    @property
    def unbilled_fraction(self) -> float:
        if self.provider_allocated_s == 0:
            return 0.0
        return self.unbilled_idle_s / self.provider_allocated_s


def billing_report(kpis: KpiReport) -> BillingReport:
    """Derive the billing view from the Section 8 KPI accounting.

    Billed time is the used quadrant (D=1, A=1); allocated time is used +
    idle; unserved demand is the unavailable quadrant.
    """
    allocated = kpis.used_s + kpis.idle.total_s
    return BillingReport(
        policy=kpis.policy,
        customer_billed_s=kpis.used_s,
        provider_allocated_s=allocated,
        unbilled_idle_s=kpis.idle.total_s,
        unserved_demand_s=kpis.unavailable_s,
    )
