"""Columnar-engine equivalence properties.

The struct-of-arrays engine (:mod:`repro.simulation.columnar`) and the
lean fleet path (:mod:`repro.simulation.fleet`) both claim byte-identical
observables to the per-actor reference.  These tests pin that claim over
seeded multi-region scenarios:

* actor vs columnar with the full stores: same KPI report, same
  per-database outcome ledgers, same resume-operation iterations, same
  history contents, same hot-path counters -- including under an armed
  fault plan (same injector consult/fire ledger) and a control-plane
  outage window;
* lean fleet backends vs the full stores: same KPI report for both
  policies;
* serial vs worker-pool sharding: identical merged and per-shard KPIs.
"""

import dataclasses

import pytest

from repro.config import DEFAULT_CONFIG
from repro.core.prediction_cache import HOT_PATH
from repro.errors import SimulationError, TraceError
from repro.faults import FaultPlan, FaultSpec, chaos
from repro.parallel import SerialExecutor
from repro.simulation.fleet import (
    merge_kpi_reports,
    shard_bounds,
    simulate_fleet,
    simulate_fleet_sharded,
)
from repro.simulation.region import SimulationSettings, simulate_region
from repro.types import SECONDS_PER_DAY as DAY
from repro.workload.fleetgen import FleetShardSpec
from repro.workload.regions import RegionPreset, generate_region_traces

CONFIG = dataclasses.replace(DEFAULT_CONFIG, history_days=2)

ARMED_PLAN = FaultPlan.of(
    FaultSpec("predictor.exception", probability=0.25),
    FaultSpec("resume.scan.unavailable", probability=0.10),
    FaultSpec("cluster.node.crash", probability=0.02),
)


def _region_traces(seed, n=40, span_days=9):
    return generate_region_traces(
        RegionPreset.EU1, n, span_days=span_days, seed=seed
    )


def _region_settings(span_days=9, **overrides):
    return SimulationSettings(
        eval_start=(span_days - 1) * DAY, eval_end=span_days * DAY, **overrides
    )


def _run_both_engines(traces, policy, config, settings):
    results = {}
    snapshots = {}
    for engine in ("actor", "columnar"):
        HOT_PATH.reset()
        results[engine] = simulate_region(
            traces, policy, config, dataclasses.replace(settings, engine=engine)
        )
        snapshots[engine] = HOT_PATH.snapshot()
    return results, snapshots


def _assert_ledgers_identical(results, snapshots):
    actor, columnar = results["actor"], results["columnar"]
    assert columnar.kpis().to_dict() == actor.kpis().to_dict()
    assert snapshots["columnar"] == snapshots["actor"]
    assert columnar.cluster_moves == actor.cluster_moves
    for mine, theirs in zip(columnar.outcomes, actor.outcomes):
        assert vars(mine) == vars(theirs)
    assert [
        (it.time, it.scan_failures, tuple(it.database_ids))
        for it in columnar.resume_iterations
    ] == [
        (it.time, it.scan_failures, tuple(it.database_ids))
        for it in actor.resume_iterations
    ]
    assert set(columnar.histories) == set(actor.histories)
    for database_id, store in columnar.histories.items():
        reference = actor.histories[database_id]
        assert store.login_timestamps() == reference.login_timestamps()
        assert store.login_version == reference.login_version


class TestColumnarMatchesActor:
    @pytest.mark.parametrize("seed", [0, 3, 11])
    @pytest.mark.parametrize("policy", ["proactive", "reactive"])
    def test_full_ledger_equivalence(self, seed, policy):
        traces = _region_traces(seed)
        results, snapshots = _run_both_engines(
            traces, policy, DEFAULT_CONFIG, _region_settings()
        )
        _assert_ledgers_identical(results, snapshots)

    def test_equivalence_with_maintenance_and_outage(self):
        traces = _region_traces(seed=7)
        settings = _region_settings(
            maintenance_per_week=1.0,
            prorp_outages=((8 * DAY + 3600, 8 * DAY + 5 * 3600),),
        )
        results, snapshots = _run_both_engines(
            traces, "proactive", DEFAULT_CONFIG, settings
        )
        _assert_ledgers_identical(results, snapshots)

    @pytest.mark.parametrize("chaos_seed", [1, 4])
    def test_equivalence_under_armed_fault_plan(self, chaos_seed):
        """Both engines consult and fire the same faults in the same
        order, so the injector ledger -- not just the KPIs -- matches."""
        traces = _region_traces(seed=5)
        settings = _region_settings()
        ledgers = {}
        results = {}
        for engine in ("actor", "columnar"):
            HOT_PATH.reset()
            with chaos(ARMED_PLAN, seed=chaos_seed) as injector:
                results[engine] = simulate_region(
                    traces,
                    "proactive",
                    DEFAULT_CONFIG,
                    dataclasses.replace(settings, engine=engine),
                )
                ledgers[engine] = injector.snapshot()
        assert ledgers["columnar"] == ledgers["actor"]
        assert ledgers["columnar"]["fires"], "the armed plan never fired"
        assert (
            results["columnar"].kpis().to_dict()
            == results["actor"].kpis().to_dict()
        )
        for mine, theirs in zip(
            results["columnar"].outcomes, results["actor"].outcomes
        ):
            assert vars(mine) == vars(theirs)


class TestLeanFleetMatchesFullStores:
    @pytest.mark.parametrize("seed", [0, 7])
    @pytest.mark.parametrize("policy", ["proactive", "reactive"])
    def test_kpi_equivalence(self, seed, policy):
        spec = FleetShardSpec(
            n_databases=150, span_days=5, seed=seed, new_database_fraction=0.15
        )
        fleet = spec.materialize()
        settings = SimulationSettings(
            eval_start=4 * DAY,
            eval_end=5 * DAY,
            n_nodes=-(-fleet.n // 48),
            node_capacity=64,
        )
        lean = simulate_fleet(fleet, policy, CONFIG, settings)
        full = simulate_region(fleet.to_traces(), policy, CONFIG, settings)
        assert lean.kpis.to_dict() == full.kpis().to_dict()
        assert lean.n_databases == fleet.n
        assert lean.events_dispatched > 0

    def test_prewarm_path_engages(self):
        spec = FleetShardSpec(n_databases=200, span_days=4, seed=1)
        settings = SimulationSettings(
            eval_start=3 * DAY, eval_end=4 * DAY, n_nodes=5, node_capacity=64
        )
        result = simulate_fleet(spec, "proactive", CONFIG, settings)
        assert result.prewarms > 0
        assert result.kpis.workflows.proactive_resumes > 0
        assert result.resume_op_runs > 0


class TestShardedDeterminism:
    def test_serial_and_pooled_merges_identical(self):
        spec = FleetShardSpec(n_databases=600, span_days=4, seed=3)
        settings = SimulationSettings(
            eval_start=3 * DAY, eval_end=4 * DAY, n_nodes=4, node_capacity=64
        )
        serial = simulate_fleet_sharded(
            spec, "proactive", CONFIG, settings,
            n_shards=3, executor=SerialExecutor(),
        )
        pooled = simulate_fleet_sharded(
            spec, "proactive", CONFIG, settings, n_shards=3, workers=3
        )
        assert serial.kpis.to_dict() == pooled.kpis.to_dict()
        assert [s.to_dict() for s in serial.shard_kpis] == [
            s.to_dict() for s in pooled.shard_kpis
        ]
        assert serial.events_dispatched == pooled.events_dispatched
        assert serial.n_shards == 3

    def test_merge_is_fieldwise_sum_of_shards(self):
        spec = FleetShardSpec(n_databases=300, span_days=4, seed=9)
        settings = SimulationSettings(
            eval_start=3 * DAY, eval_end=4 * DAY, n_nodes=4, node_capacity=64
        )
        sharded = simulate_fleet_sharded(
            spec, "proactive", CONFIG, settings,
            n_shards=4, executor=SerialExecutor(),
        )
        merged = merge_kpi_reports(sharded.shard_kpis)
        assert merged.to_dict() == sharded.kpis.to_dict()
        assert merged.n_databases == 300

    def test_merge_rejects_mismatched_windows(self):
        spec = FleetShardSpec(n_databases=60, span_days=4, seed=0)
        base = SimulationSettings(
            eval_start=3 * DAY, eval_end=4 * DAY, n_nodes=2, node_capacity=64
        )
        other = dataclasses.replace(base, eval_start=2 * DAY)
        a = simulate_fleet(spec, "reactive", CONFIG, base).kpis
        b = simulate_fleet(spec, "reactive", CONFIG, other).kpis
        with pytest.raises(SimulationError):
            merge_kpi_reports([a, b])

    def test_shard_bounds_partition_the_fleet(self):
        bounds = shard_bounds(10, 3)
        assert bounds[0][0] == 0 and bounds[-1][1] == 10
        assert all(lo < hi for lo, hi in bounds)
        assert all(
            bounds[i][1] == bounds[i + 1][0] for i in range(len(bounds) - 1)
        )
        assert shard_bounds(2, 8) == [(0, 1), (1, 2)]


class TestFleetgenDeterminism:
    def test_materialize_is_pure(self):
        spec = FleetShardSpec(n_databases=500, span_days=5, seed=42)
        a = spec.materialize(100, 300)
        b = spec.materialize(100, 300)
        assert a.ids == b.ids
        assert (a.sess_offsets == b.sess_offsets).all()
        assert (a.starts == b.starts).all()
        assert (a.ends == b.ends).all()
        assert (a.created_at == b.created_at).all()

    def test_sessions_are_sorted_and_well_formed(self):
        fleet = FleetShardSpec(n_databases=300, span_days=9, seed=2).materialize()
        assert list(fleet.ids) == sorted(fleet.ids)
        for d in range(fleet.n):
            lo, hi = int(fleet.sess_offsets[d]), int(fleet.sess_offsets[d + 1])
            starts, ends = fleet.starts[lo:hi], fleet.ends[lo:hi]
            assert (ends > starts).all()
            assert (starts[1:] >= ends[:-1]).all(), "sessions overlap"
            if hi > lo:
                assert fleet.created_at[d] <= starts[0]

    def test_spec_validation(self):
        with pytest.raises(TraceError):
            FleetShardSpec(n_databases=0)
        with pytest.raises(TraceError):
            FleetShardSpec(n_databases=10, span_days=1)
        with pytest.raises(TraceError):
            FleetShardSpec(n_databases=10).materialize(5, 3)


class TestLeanGates:
    def _settings(self, **overrides):
        return SimulationSettings(
            eval_start=3 * DAY, eval_end=4 * DAY, n_nodes=2, node_capacity=64,
            **overrides,
        )

    def test_rejects_fault_injection(self):
        spec = FleetShardSpec(n_databases=20, span_days=4, seed=0)
        with chaos(ARMED_PLAN, seed=0):
            with pytest.raises(SimulationError, match="fault injection"):
                simulate_fleet(spec, "proactive", CONFIG, self._settings())

    @pytest.mark.parametrize(
        "overrides, match",
        [
            ({"maintenance_per_week": 1.0}, "maintenance"),
            ({"collect_timelines": True}, "timelines"),
            ({"measure_prediction_latency": True}, "latency"),
            ({"use_fast_predictor": False}, "predictor"),
        ],
    )
    def test_rejects_unsupported_settings(self, overrides, match):
        spec = FleetShardSpec(n_databases=20, span_days=4, seed=0)
        with pytest.raises(SimulationError, match=match):
            simulate_fleet(
                spec, "proactive", CONFIG, self._settings(**overrides)
            )

    def test_rejects_analytic_policies(self):
        spec = FleetShardSpec(n_databases=20, span_days=4, seed=0)
        with pytest.raises(SimulationError, match="policies"):
            simulate_fleet(spec, "optimal", CONFIG, self._settings())
