"""Prediction-aware tenant placement (future-work direction (3)).

"The proactive resource allocation policy must align with the data-driven
tenant placement and load balancing algorithms to amplify the business
impact": reclaimed resources only save money if another database on the
same node can reuse them, and proactive resumes only stay cheap if they do
not all land on the same node at the same minute.

The advisor keeps, per node, a histogram of *predicted* resume times (from
the metadata store's ``start_of_pred_activity``) and scores candidate nodes
for a database by the predicted concurrent-resume pressure around that
database's own predicted activity.  Placing anti-correlated databases
together flattens each node's resume peaks.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List

from repro.cluster.cluster import Cluster
from repro.cluster.node import Node
from repro.errors import CapacityError
from repro.types import SECONDS_PER_MINUTE

#: Resolution of the predicted-resume histogram.
DEFAULT_BUCKET_S = 5 * SECONDS_PER_MINUTE


@dataclass(frozen=True)
class PlacementScore:
    node_id: str
    #: Predicted resumes on the node within the window around the
    #: database's own predicted start (lower is better).
    predicted_pressure: int
    residents: int


class PlacementAdvisor:
    """Scores nodes by predicted resume pressure."""

    def __init__(self, cluster: Cluster, bucket_s: int = DEFAULT_BUCKET_S):
        if bucket_s <= 0:
            raise CapacityError("bucket width must be positive")
        self._cluster = cluster
        self._bucket_s = bucket_s
        # node id -> {bucket index -> count of predicted resumes}.
        self._histograms: Dict[str, Dict[int, int]] = defaultdict(
            lambda: defaultdict(int)
        )
        # database -> (node id, bucket) so predictions can be retracted.
        self._registrations: Dict[str, tuple] = {}

    # ------------------------------------------------------------------
    # Prediction bookkeeping
    # ------------------------------------------------------------------

    def record_prediction(self, database_id: str, node_id: str, pred_start: int) -> None:
        """Register (or update) a database's predicted resume time."""
        self.clear_prediction(database_id)
        if pred_start <= 0:
            return  # no prediction: contributes no pressure
        bucket = pred_start // self._bucket_s
        self._histograms[node_id][bucket] += 1
        self._registrations[database_id] = (node_id, bucket)

    def clear_prediction(self, database_id: str) -> None:
        registration = self._registrations.pop(database_id, None)
        if registration is None:
            return
        node_id, bucket = registration
        histogram = self._histograms[node_id]
        histogram[bucket] -= 1
        if histogram[bucket] <= 0:
            del histogram[bucket]

    def node_pressure(self, node_id: str, pred_start: int, window_buckets: int = 2) -> int:
        """Predicted resumes on a node within +/- ``window_buckets`` of the
        given predicted start."""
        if pred_start <= 0:
            return 0
        histogram = self._histograms.get(node_id)
        if not histogram:
            return 0
        center = pred_start // self._bucket_s
        return sum(
            histogram.get(center + offset, 0)
            for offset in range(-window_buckets, window_buckets + 1)
        )

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------

    def score_nodes(self, pred_start: int) -> List[PlacementScore]:
        """Every node scored for a database with the given predicted start,
        best (least pressure, then fewest residents) first."""
        scores = [
            PlacementScore(
                node_id=node.node_id,
                predicted_pressure=self.node_pressure(node.node_id, pred_start),
                residents=len(node.residents),
            )
            for node in self._cluster.nodes
        ]
        scores.sort(key=lambda s: (s.predicted_pressure, s.residents, s.node_id))
        return scores

    def suggest_node(self, pred_start: int) -> Node:
        """The node a new (or moving) database should land on."""
        best = self.score_nodes(pred_start)[0]
        for node in self._cluster.nodes:
            if node.node_id == best.node_id:
                return node
        raise CapacityError(f"node {best.node_id!r} vanished")  # pragma: no cover

    def place(self, database_id: str, pred_start: int) -> Node:
        """Place a database on the suggested node and register its
        prediction."""
        node = self.suggest_node(pred_start)
        self._cluster.place(database_id, node)
        self.record_prediction(database_id, node.node_id, pred_start)
        return node

    def peak_pressure(self, node_id: str) -> int:
        """The node's worst predicted-resume bucket (load-balance metric)."""
        histogram = self._histograms.get(node_id)
        if not histogram:
            return 0
        return max(histogram.values())
