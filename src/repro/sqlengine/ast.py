"""Typed AST for the supported SQL subset."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Literal:
    value: object  # int, float, str, or None


@dataclass(frozen=True)
class Param:
    name: str


@dataclass(frozen=True)
class ColumnRef:
    name: str


@dataclass(frozen=True)
class BinaryOp:
    op: str  # '=', '<>', '<', '<=', '>', '>=', '+', '-', '*', '/', 'AND', 'OR'
    left: "Expression"
    right: "Expression"


@dataclass(frozen=True)
class UnaryOp:
    op: str  # 'NOT', '-'
    operand: "Expression"


@dataclass(frozen=True)
class IsNull:
    operand: "Expression"
    negated: bool


@dataclass(frozen=True)
class Between:
    operand: "Expression"
    low: "Expression"
    high: "Expression"
    negated: bool = False


@dataclass(frozen=True)
class InList:
    operand: "Expression"
    items: Tuple["Expression", ...]
    negated: bool = False


@dataclass(frozen=True)
class Aggregate:
    func: str  # 'MIN', 'MAX', 'COUNT'
    argument: Optional["Expression"]  # None for COUNT(*)


Expression = Union[
    Literal, Param, ColumnRef, BinaryOp, UnaryOp, IsNull, Between, InList, Aggregate
]


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem:
    expression: Expression
    alias: Optional[str] = None
    star: bool = False


@dataclass(frozen=True)
class OrderItem:
    column: str
    descending: bool = False


@dataclass(frozen=True)
class Select:
    items: Tuple[SelectItem, ...]
    table: Optional[str]
    where: Optional[Expression] = None
    group_by: Optional[str] = None
    order_by: Tuple[OrderItem, ...] = ()
    limit: Optional[int] = None


@dataclass(frozen=True)
class Insert:
    table: str
    columns: Tuple[str, ...]
    values: Tuple[Expression, ...]


@dataclass(frozen=True)
class Delete:
    table: str
    where: Optional[Expression] = None


@dataclass(frozen=True)
class Assignment:
    column: str
    value: Expression


@dataclass(frozen=True)
class Update:
    table: str
    assignments: Tuple[Assignment, ...]
    where: Optional[Expression] = None


@dataclass(frozen=True)
class ColumnDef:
    name: str
    type_name: str  # BIGINT, INT, FLOAT, TEXT
    primary_key: bool = False
    not_null: bool = False


@dataclass(frozen=True)
class CreateTable:
    table: str
    columns: Tuple[ColumnDef, ...]


@dataclass(frozen=True)
class CreateIndex:
    table: str
    column: str


@dataclass(frozen=True)
class Explain:
    """EXPLAIN <statement>: return the planner's decision as rows."""

    statement: "Statement"


Statement = Union[Select, Insert, Delete, Update, CreateTable, CreateIndex, Explain]
