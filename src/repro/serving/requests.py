"""Typed request/response model of the serving gateway.

The gateway speaks a small, explicit vocabulary: four request types
(predict, resume-scan, health, metrics) and one response type per request, plus a
family of typed rejection responses (:class:`Overloaded`,
:class:`RateLimited`, :class:`DeadlineExpired`, :class:`Shutdown`,
:class:`Unavailable`, :class:`InvalidRequest`).  Rejections are *values*,
not exceptions: a shed request costs one object allocation and the client
always learns why it was refused -- the load-shedding contract of the
admission layer (``docs/serving.md``).

Everything is a frozen dataclass with a JSON codec (:func:`decode_request`
/ :func:`encode_response`, plus the :func:`encode_request` /
:func:`decode_response` inverses the sharded router forwards with) so the
same model serves the in-process API, the JSON-over-TCP front end, the
router -> worker hop, and the scripted CLI ``serve --once`` mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, ClassVar, Dict, Optional, Tuple, Union

from repro.errors import ProRPError
from repro.types import PredictedActivity


class ServingProtocolError(ProRPError):
    """A request document could not be decoded into a typed request."""


# ---------------------------------------------------------------------------
# Requests
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PredictRequest:
    """Predict the next activity of one database.

    ``logins`` is the database's sorted login-timestamp history (the
    serving analogue of ``HistoryStore.login_array()``); ``now`` anchors
    Algorithm 4's candidate windows.  Requests sharing ``(region, config,
    now)`` are coalesced into one ``FastPredictor.predict_fleet`` call by
    the micro-batcher.  ``deadline_ms`` is the client's remaining latency
    budget at send time: admission rejects it once expired, and the
    dispatcher re-checks after the queue wait.

    A request may carry ``database_id`` *instead of* inline ``logins``:
    the server resolves the history from its fleet registry (in-process)
    or the shared-memory arena (sharded workers), so the hot path never
    serialises login arrays -- and the identity makes the result
    cacheable under the history's ``login_version``.  Carrying both is a
    protocol error; inline logins remain the anonymous fallback.
    """

    kind: ClassVar[str] = "predict"

    request_id: str
    logins: Tuple[int, ...]
    now: int
    region: str = "EU1"
    config: str = "default"
    tenant: str = "default"
    deadline_ms: Optional[float] = None
    database_id: Optional[str] = None


@dataclass(frozen=True)
class ResumeScanRequest:
    """One iteration of the proactive resume scan (Algorithm 5) over the
    server's registered fleet: predict every physically paused database of
    ``region`` and return those whose predicted activity starts inside
    ``[now + prewarm_s, now + prewarm_s + period_s)``."""

    kind: ClassVar[str] = "resume_scan"

    request_id: str
    now: int
    prewarm_s: int = 600
    period_s: int = 60
    region: str = "EU1"
    config: str = "default"
    tenant: str = "default"
    deadline_ms: Optional[float] = None


@dataclass(frozen=True)
class HealthRequest:
    """Liveness/stats probe; never queued, never shed."""

    kind: ClassVar[str] = "health"

    request_id: str
    tenant: str = "default"


@dataclass(frozen=True)
class MetricsRequest:
    """OpenMetrics scrape of the live registry; never queued, never shed
    (a monitoring plane that can be shed by the overload it should be
    observing is useless)."""

    kind: ClassVar[str] = "metrics"

    request_id: str
    tenant: str = "default"


Request = Union[PredictRequest, ResumeScanRequest, HealthRequest, MetricsRequest]


# ---------------------------------------------------------------------------
# Responses
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PredictResponse:
    kind: ClassVar[str] = "predict"

    request_id: str
    prediction: PredictedActivity
    #: How many requests shared the ``predict_fleet`` evaluation.
    batch_size: int
    queue_wait_ms: float


@dataclass(frozen=True)
class ResumeScanResponse:
    kind: ClassVar[str] = "resume_scan"

    request_id: str
    database_ids: Tuple[str, ...]
    #: Paused databases the scan evaluated.
    scanned: int
    queue_wait_ms: float


@dataclass(frozen=True)
class HealthResponse:
    kind: ClassVar[str] = "health"

    request_id: str
    status: str
    queue_depth: int
    in_flight: int
    served: int
    shed: int
    stats: Dict[str, int] = field(default_factory=dict)


@dataclass(frozen=True)
class MetricsResponse:
    """The OpenMetrics exposition text (empty registry => bare ``# EOF``)."""

    kind: ClassVar[str] = "metrics"

    request_id: str
    body: str
    #: Number of metric entries the snapshot covered.
    metric_count: int = 0


@dataclass(frozen=True)
class ErrorResponse:
    """Base of the typed rejection family; ``kind`` names the reason."""

    kind: ClassVar[str] = "error"

    request_id: str
    message: str = ""


@dataclass(frozen=True)
class Overloaded(ErrorResponse):
    """Shed: the bounded queue (queued + in-flight) is full."""

    kind: ClassVar[str] = "overloaded"


@dataclass(frozen=True)
class RateLimited(ErrorResponse):
    """Shed: the tenant's token bucket is empty."""

    kind: ClassVar[str] = "rate_limited"


@dataclass(frozen=True)
class DeadlineExpired(ErrorResponse):
    """Shed: the client's deadline passed before the work would start."""

    kind: ClassVar[str] = "deadline_expired"


@dataclass(frozen=True)
class Shutdown(ErrorResponse):
    """Shed: the server is draining; queued work is rejected, not lost."""

    kind: ClassVar[str] = "shutdown"


@dataclass(frozen=True)
class Unavailable(ErrorResponse):
    """The predictor backend failed (retries exhausted or breaker open)."""

    kind: ClassVar[str] = "unavailable"


@dataclass(frozen=True)
class InvalidRequest(ErrorResponse):
    """The request document could not be decoded."""

    kind: ClassVar[str] = "invalid"


Response = Union[
    PredictResponse,
    ResumeScanResponse,
    HealthResponse,
    MetricsResponse,
    ErrorResponse,
]


# ---------------------------------------------------------------------------
# JSON codec
# ---------------------------------------------------------------------------

_REQUEST_TYPES: Dict[str, type] = {
    cls.kind: cls
    for cls in (PredictRequest, ResumeScanRequest, HealthRequest, MetricsRequest)
}


def _coerce_logins(value: Any) -> Tuple[int, ...]:
    """``logins`` from a JSON document as a tuple of ints, or a typed
    protocol error: a scalar, a string, or non-integer elements must
    surface as :class:`InvalidRequest`, never reach numpy."""
    if isinstance(value, (str, bytes)):
        raise ServingProtocolError("logins must be an array of integers")
    try:
        items = tuple(value)
    except TypeError as exc:
        raise ServingProtocolError(
            "logins must be an array of integers"
        ) from exc
    for item in items:
        if isinstance(item, bool) or not isinstance(item, int):
            raise ServingProtocolError(
                f"logins elements must be integers, got {item!r}"
            )
    return items


def decode_request(doc: Dict[str, Any]) -> Request:
    """Build a typed request from a decoded JSON object.

    The document carries ``{"type": <kind>, ...fields}``; unknown types
    and unknown/missing fields raise :class:`ServingProtocolError` so the
    front end can answer with :class:`InvalidRequest` instead of dying.
    """
    if not isinstance(doc, dict):
        raise ServingProtocolError("request document must be a JSON object")
    request_type = doc.get("type")
    cls = _REQUEST_TYPES.get(request_type)
    if cls is None:
        raise ServingProtocolError(f"unknown request type {request_type!r}")
    known = {f.name for f in fields(cls)}
    kwargs = {}
    for name, value in doc.items():
        if name == "type":
            continue
        if name not in known:
            raise ServingProtocolError(
                f"unknown field {name!r} for {request_type!r} request"
            )
        kwargs[name] = _coerce_logins(value) if name == "logins" else value
    if cls is PredictRequest:
        database_id = kwargs.get("database_id")
        if database_id is not None and not isinstance(database_id, str):
            raise ServingProtocolError("database_id must be a string")
        if database_id is not None and kwargs.get("logins"):
            raise ServingProtocolError(
                "a predict request carries database_id or inline logins, "
                "not both"
            )
        # A by-id request legitimately omits the logins array.
        kwargs.setdefault("logins", ())
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise ServingProtocolError(f"bad {request_type!r} request: {exc}") from exc


def encode_request(request: Request) -> Dict[str, Any]:
    """The request as a JSON-serialisable object (inverse of
    :func:`decode_request`): ``{"type": <kind>, ...non-default fields}``.

    Default-valued fields are omitted so router -> worker forwarding of
    small by-id requests stays small on the wire.
    """
    doc: Dict[str, Any] = {"type": request.kind}
    for f in fields(request):
        value = getattr(request, f.name)
        if f.name == "logins":
            if value:
                doc["logins"] = list(value)
            continue
        if value == f.default:
            continue
        doc[f.name] = value
    return doc


_ERROR_TYPES: Dict[str, type] = {
    cls.kind: cls
    for cls in (
        Overloaded,
        RateLimited,
        DeadlineExpired,
        Shutdown,
        Unavailable,
        InvalidRequest,
        ErrorResponse,
    )
}


def decode_response(doc: Dict[str, Any]) -> Response:
    """Build a typed response from a decoded JSON object (inverse of
    :func:`encode_response`) -- the router uses this to type worker
    replies before handing them back to clients."""
    if not isinstance(doc, dict):
        raise ServingProtocolError("response document must be a JSON object")
    response_type = doc.get("type")
    if response_type == "predict":
        p = doc.get("prediction")
        prediction = (
            PredictedActivity.none()
            if p is None
            else PredictedActivity(p["start"], p["end"], p["confidence"])
        )
        return PredictResponse(
            request_id=doc["request_id"],
            prediction=prediction,
            batch_size=doc.get("batch_size", 1),
            queue_wait_ms=doc.get("queue_wait_ms", 0.0),
        )
    if response_type == "resume_scan":
        return ResumeScanResponse(
            request_id=doc["request_id"],
            database_ids=tuple(doc.get("database_ids", ())),
            scanned=doc.get("scanned", 0),
            queue_wait_ms=doc.get("queue_wait_ms", 0.0),
        )
    if response_type == "health":
        return HealthResponse(
            request_id=doc["request_id"],
            status=doc["status"],
            queue_depth=doc.get("queue_depth", 0),
            in_flight=doc.get("in_flight", 0),
            served=doc.get("served", 0),
            shed=doc.get("shed", 0),
            stats=dict(doc.get("stats", {})),
        )
    if response_type == "metrics":
        return MetricsResponse(
            request_id=doc["request_id"],
            body=doc.get("body", ""),
            metric_count=doc.get("metric_count", 0),
        )
    cls = _ERROR_TYPES.get(response_type)
    if cls is None:
        raise ServingProtocolError(f"unknown response type {response_type!r}")
    return cls(request_id=doc["request_id"], message=doc.get("message", ""))


def encode_response(response: Response) -> Dict[str, Any]:
    """The response as a JSON-serialisable object (``type`` discriminated)."""
    doc: Dict[str, Any] = {"type": response.kind, "request_id": response.request_id}
    if isinstance(response, PredictResponse):
        p = response.prediction
        doc["prediction"] = (
            None
            if p.is_empty
            else {"start": p.start, "end": p.end, "confidence": p.confidence}
        )
        doc["batch_size"] = response.batch_size
        doc["queue_wait_ms"] = round(response.queue_wait_ms, 3)
    elif isinstance(response, ResumeScanResponse):
        doc["database_ids"] = list(response.database_ids)
        doc["scanned"] = response.scanned
        doc["queue_wait_ms"] = round(response.queue_wait_ms, 3)
    elif isinstance(response, HealthResponse):
        doc.update(
            status=response.status,
            queue_depth=response.queue_depth,
            in_flight=response.in_flight,
            served=response.served,
            shed=response.shed,
            stats=dict(response.stats),
        )
    elif isinstance(response, MetricsResponse):
        doc["body"] = response.body
        doc["metric_count"] = response.metric_count
    else:
        doc["message"] = response.message
    return doc
