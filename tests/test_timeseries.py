"""Windowed time-series: absolute-window alignment, overflow folding,
and executor-deterministic merges (`repro.observability.timeseries`)."""

import random

import pytest

from repro.errors import ProRPError
from repro.observability import (
    NULL_TRACER,
    OBS,
    CounterSeries,
    GaugeSeries,
    HistogramSeries,
    MetricsRegistry,
    observed,
)
from repro.parallel import MultiprocessExecutor

W = 900  # window width used throughout


# ----------------------------------------------------------------------
# Counter series
# ----------------------------------------------------------------------


class TestCounterSeries:
    def test_windows_align_to_absolute_clock(self):
        series = CounterSeries("c", window_s=W)
        series.inc(0)
        series.inc(W - 1)
        series.inc(W)  # first instant of window 1
        series.inc(2 * W + 10, n=3)
        assert series.window_items() == [(0, 2), (W, 1), (2 * W, 3)]
        assert series.total() == 6

    def test_rollover_is_order_independent(self):
        """Window contents are a function of timestamps, not call order."""
        stamps = [(i * 137) % (10 * W) for i in range(200)]
        ordered = CounterSeries("c", window_s=W)
        shuffled = CounterSeries("c", window_s=W)
        for t in stamps:
            ordered.inc(t)
        rng = random.Random(7)
        rng.shuffle(stamps)
        for t in stamps:
            shuffled.inc(t)
        assert ordered.window_items() == shuffled.window_items()
        assert ordered.total() == shuffled.total()

    def test_eviction_folds_into_overflow(self):
        series = CounterSeries("c", window_s=W, capacity=2)
        series.inc(0, n=5)
        series.inc(W, n=7)
        series.inc(2 * W, n=11)  # evicts window 0
        assert series.window_items() == [(W, 7), (2 * W, 11)]
        assert series.overflow == 5
        assert series.dropped_windows == 1
        assert series.total() == 23
        # A late write into an evicted window still lands in the total.
        series.inc(10, n=2)
        assert series.total() == 25
        assert series.overflow == 7

    def test_add_interval_distributes_across_windows(self):
        series = CounterSeries("c", window_s=W)
        series.add_interval(100, 2 * W + 200)
        assert series.window_items() == [(0, W - 100), (W, W), (2 * W, 200)]
        assert series.total() == 2 * W + 100
        series.add_interval(50, 50)  # empty interval: no-op
        assert series.total() == 2 * W + 100

    def test_sum_last_excludes_the_filling_window(self):
        series = CounterSeries("c", window_s=W)
        series.inc(0, n=1)
        series.inc(W, n=2)
        series.inc(2 * W, n=4)  # the window 2*W..3*W is still filling
        assert series.sum_last(2 * W, W) == 2
        assert series.sum_last(2 * W, 2 * W) == 3
        assert series.sum_last(2 * W + 10, W) == 2

    def test_validation(self):
        with pytest.raises(ProRPError):
            CounterSeries("c", window_s=0)
        with pytest.raises(ProRPError):
            CounterSeries("c", capacity=0)
        series = CounterSeries("c")
        with pytest.raises(ProRPError):
            series.inc(0, n=-1)

    def test_merge_rejects_mismatched_window(self):
        a = CounterSeries("c", window_s=W)
        b = CounterSeries("c", window_s=2 * W)
        with pytest.raises(ProRPError):
            a.merge(b)


# ----------------------------------------------------------------------
# Gauge series
# ----------------------------------------------------------------------


class TestGaugeSeries:
    def test_last_write_wins_within_and_across_windows(self):
        series = GaugeSeries("g", window_s=W)
        assert series.last is None
        series.set(10, 1)
        series.set(20, 2)  # same window: later write wins
        assert series.last == 2
        series.set(W + 1, 9)
        assert series.last == 9
        assert series.window_items() == [(0, 2), (W, 9)]

    def test_overflow_marker_preserves_last(self):
        series = GaugeSeries("g", window_s=W, capacity=1)
        series.set(0, 5)
        series.set(W, 6)  # evicts window 0
        series.set(5 * W, 7)  # evicts window 1
        assert series.last == 7
        series.windows.clear()
        # Even with every window gone the newest evicted value survives.
        assert series.last == 6

    def test_max_last_over_complete_windows(self):
        series = GaugeSeries("g", window_s=W)
        series.set(0, 3)
        series.set(W, 8)
        series.set(2 * W, 1)
        assert series.max_last(2 * W, 2 * W) == 8
        assert series.max_last(10 * W, W) is None


# ----------------------------------------------------------------------
# Histogram series
# ----------------------------------------------------------------------


class TestHistogramSeries:
    def test_percentiles_and_counts_per_window_span(self):
        series = HistogramSeries("h", window_s=W, buckets=[1.0, 10.0, 100.0])
        for value in (0.5, 5.0, 50.0, 50.0):
            series.observe(0, value)
        series.observe(W, 5000.0)
        assert series.total_count() == 5
        assert series.count_last(W, W) == 4
        p = series.percentile_last(W, W, 99.0)
        assert 10.0 <= p <= 50.0  # interpolated, clamped to observed max
        assert series.percentile_last(10 * W, W, 99.0) == 0.0
        with pytest.raises(ProRPError):
            series.percentile_last(W, W, 150.0)

    def test_worst_exemplar_tracks_the_max_observation(self):
        series = HistogramSeries("h", window_s=W, buckets=[10.0])
        series.observe(0, 3.0, exemplar="span:a")
        series.observe(0, 9.0, exemplar="span:b")
        series.observe(W, 4.0, exemplar="span:c")
        assert series.worst_exemplar() == (9.0, "span:b")

    def test_bucket_layouts_must_match_for_merge(self):
        a = HistogramSeries("h", window_s=W, buckets=[1.0, 2.0])
        b = HistogramSeries("h", window_s=W, buckets=[1.0, 3.0])
        with pytest.raises(ProRPError):
            a.merge(b)
        with pytest.raises(ProRPError):
            HistogramSeries("h", buckets=[2.0, 1.0])


# ----------------------------------------------------------------------
# Merge determinism: serial == split-and-merged, any order
# ----------------------------------------------------------------------


def _record(series, stamps):
    for t in stamps:
        series.inc(t)


class TestMergeDeterminism:
    def test_split_merge_equals_serial(self):
        stamps = [(i * 61) % (40 * W) for i in range(500)]
        serial = CounterSeries("c", window_s=W, capacity=8)
        _record(serial, stamps)
        for split in (100, 250, 400):
            left = CounterSeries("c", window_s=W, capacity=8)
            right = CounterSeries("c", window_s=W, capacity=8)
            _record(left, stamps[:split])
            _record(right, stamps[split:])
            left.merge(right)
            assert left.window_items() == serial.window_items()
            assert left.total() == serial.total()

    def test_registry_merge_unifies_labelled_series(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.counter_series("s", window_s=W, labels={"region": "eu"}).inc(0, 2)
        b.counter_series("s", window_s=W, labels={"region": "eu"}).inc(W, 3)
        b.counter_series("s", window_s=W, labels={"region": "us"}).inc(0, 5)
        a.merge(b)
        eu = a.get("s", {"region": "eu"})
        assert eu.window_items() == [(0, 2), (W, 3)]
        assert a.get("s", {"region": "us"}).total() == 5


# ----------------------------------------------------------------------
# Multiprocess executor: pooled run == serial run
# ----------------------------------------------------------------------


def _windowed_worker(context, item):
    """Sweep worker that streams into the ambient windowed series."""
    if OBS.enabled:
        OBS.metrics.counter_series("sweep.items", window_s=W).inc(
            t=item * 300, n=1
        )
        OBS.metrics.histogram_series(
            "sweep.value", window_s=W, buckets=[4.0, 16.0]
        ).observe(item * 300, float(item))
    return item


class TestExecutorDeterminism:
    def test_pooled_merge_matches_serial_run(self):
        items = list(range(24))

        with observed(tracer=NULL_TRACER) as serial_run:
            MultiprocessExecutor(workers=1).run(_windowed_worker, None, items)
            serial_counter = serial_run.metrics.get("sweep.items")
            serial_hist = serial_run.metrics.get("sweep.value")

        with observed(tracer=NULL_TRACER) as pooled_run:
            executor = MultiprocessExecutor(workers=3, chunk_size=4)
            executor.run(_windowed_worker, None, items)
            if executor.last_stats.fallback_reason is not None:
                pytest.skip("pool unavailable on this platform")
            pooled_counter = pooled_run.metrics.get("sweep.items")
            pooled_hist = pooled_run.metrics.get("sweep.value")

        assert pooled_counter.window_items() == serial_counter.window_items()
        assert pooled_counter.total() == serial_counter.total()
        assert pooled_hist.merged_counts() == serial_hist.merged_counts()
        assert pooled_hist.total_count() == serial_hist.total_count()
        assert pooled_hist.total_sum() == serial_hist.total_sum()
