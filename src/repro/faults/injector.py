"""The central fault injector: deterministic, seed-driven fire decisions.

Each fault point gets its own PRNG stream, seeded from ``(seed, point)``,
so whether a point fires at its n-th consultation depends only on the
plan, the seed, and the consultation count of *that point* -- not on
which other points exist, how often they are consulted, or which process
evaluated the simulation.  Identical seed + plan therefore reproduces the
exact same fault schedule across serial and multiprocess runs.

The injector also serves as the run's fault ledger: consultations, fires,
and resilience events (retries, breaker transitions) are counted here and
mirrored into the live metrics registry when observability is enabled.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.faults.plan import FaultPlan
from repro.observability.runtime import OBS


class FaultInjector:
    """Evaluates fault points against a :class:`FaultPlan`.

    Hot paths consult it via :meth:`should_fire` (boolean faults) or
    :meth:`latency_s` (latency-spike payloads); both are deterministic for
    a given (plan, seed, consultation sequence).
    """

    def __init__(self, plan: Optional[FaultPlan] = None, seed: int = 0):
        self._plan = plan if plan is not None else FaultPlan.empty()
        self._seed = seed
        self._rngs: Dict[str, random.Random] = {}
        #: point -> times the point was consulted while present in the plan.
        self.consults: Dict[str, int] = {}
        #: point -> times the point actually fired.
        self.fires: Dict[str, int] = {}
        #: free-form resilience event counts (retries, breaker opens, ...).
        self.events: Dict[str, int] = {}

    @property
    def plan(self) -> FaultPlan:
        return self._plan

    @property
    def seed(self) -> int:
        return self._seed

    def _rng(self, point: str) -> random.Random:
        rng = self._rngs.get(point)
        if rng is None:
            rng = random.Random(f"{self._seed}:{point}")
            self._rngs[point] = rng
        return rng

    # ------------------------------------------------------------------
    # Fire decisions
    # ------------------------------------------------------------------

    def should_fire(self, point: str, now: Optional[int] = None) -> bool:
        """One consultation of ``point`` at sim-time ``now``.

        Returns True when the plan says the fault fires.  Points absent
        from the plan never fire and consume no randomness, so adding a
        point to a plan cannot perturb the schedule of the others.
        """
        spec = self._plan.get(point)
        if spec is None:
            return False
        self.consults[point] = self.consults.get(point, 0) + 1
        if not spec.active(now):
            return False
        fired = self.fires.get(point, 0)
        if spec.max_fires is not None and fired >= spec.max_fires:
            return False
        if spec.probability <= 0.0:
            return False
        if spec.probability < 1.0 and self._rng(point).random() >= spec.probability:
            return False
        self.fires[point] = fired + 1
        if OBS.enabled:
            OBS.metrics.counter(f"faults.injected.{point}").inc()
        return True

    def latency_s(self, point: str, now: Optional[int] = None) -> float:
        """The latency payload of ``point``: its ``latency_s`` when the
        point fires at this consultation, else 0.0."""
        if self.should_fire(point, now):
            spec = self._plan.get(point)
            return spec.latency_s if spec is not None else 0.0
        return 0.0

    # ------------------------------------------------------------------
    # Resilience event ledger
    # ------------------------------------------------------------------

    def note(self, event: str, n: int = 1) -> None:
        """Count a resilience event (e.g. ``retry.resume.scan``,
        ``breaker.predictor.open``) against this run's ledger."""
        self.events[event] = self.events.get(event, 0) + n
        if OBS.enabled:
            OBS.metrics.counter(f"faults.{event}").inc(n)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def total_fires(self) -> int:
        return sum(self.fires.values())

    def total_consults(self) -> int:
        return sum(self.consults.values())

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        """A picklable summary: per-point consults/fires plus events."""
        return {
            "consults": dict(self.consults),
            "fires": dict(self.fires),
            "events": dict(self.events),
        }

    # ------------------------------------------------------------------
    # Durability (control-plane checkpoints)
    # ------------------------------------------------------------------

    def state_snapshot(self) -> Dict[str, object]:
        """The injector's full resumable state as a JSON-able document:
        plan, seed, every per-point PRNG stream, and the ledger.  Restoring
        it continues the exact fault schedule from where it stopped --
        what the durable workflow engine's checkpoints rely on."""
        return {
            "seed": self._seed,
            "plan": self._plan.to_dict(),
            "rngs": {
                point: [state[0], list(state[1]), state[2]]
                for point, state in (
                    (point, rng.getstate()) for point, rng in self._rngs.items()
                )
            },
            "consults": dict(self.consults),
            "fires": dict(self.fires),
            "events": dict(self.events),
        }

    def restore_state(self, doc: Dict[str, object]) -> None:
        """Restore the state captured by :meth:`state_snapshot`.  The
        injector must have been constructed with the same plan and seed
        (both travel in the document for the caller to rebuild from)."""
        self._rngs = {}
        for point, state in doc["rngs"].items():
            rng = random.Random()
            rng.setstate((state[0], tuple(state[1]), state[2]))
            self._rngs[point] = rng
        self.consults = {k: int(v) for k, v in doc["consults"].items()}
        self.fires = {k: int(v) for k, v in doc["fires"].items()}
        self.events = {k: int(v) for k, v in doc["events"].items()}
