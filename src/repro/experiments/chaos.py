"""Chaos experiment: sweep fault rate against the paper's KPIs.

Every row arms the fault injector with one plan (by default a uniform plan
over a small set of high-impact fault points), simulates the proactive
policy over the same fleet, and reports QoS, COGS, and the resilience
ledger (fault fires, scan retries, predictor breaker opens).  Rate 0.0 is
the control: its KPIs are byte-identical to an un-chaosed run, which the
test suite asserts.

Determinism: each sweep task arms ``FAULTS`` *inside* the worker function
with a per-point-seeded injector, so a task's fault schedule depends only
on (plan, seed) -- not on which process ran it or in what order.  Serial
and multiprocess executors therefore produce identical rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis import format_table
from repro.config import DEFAULT_CONFIG
from repro.core.policy import PolicyKind
from repro.experiments.common import (
    BENCH_SCALE,
    ExperimentScale,
    region_fleet,
    sweep_map,
)
from repro.faults import FaultPlan, FaultSpec, chaos
from repro.observability import (
    NULL_TRACER,
    AlertLedger,
    MetricsRegistry,
    SloMonitor,
    simulation_slos,
)
from repro.observability.runtime import observed
from repro.parallel import SweepExecutor
from repro.simulation.region import simulate_region
from repro.telemetry.emitter import emit_simulation_telemetry
from repro.telemetry.offline import evaluate_offline_kpis
from repro.telemetry.store import TelemetryStore
from repro.workload.regions import RegionPreset

#: The x-axis of the default chaos sweep: per-consultation fault
#: probability applied uniformly to every swept point.
DEFAULT_FAULT_RATES = (0.0, 0.02, 0.05, 0.1)

#: High-impact fault points swept by default: predictor failures trip the
#: breaker into reactive fallback, scan outages starve the pre-warm cycle
#: (bounded by its retry policy), and node crashes stretch resume latency.
DEFAULT_POINTS = (
    "predictor.exception",
    "resume.scan.unavailable",
    "cluster.node.crash",
)


@dataclass(frozen=True)
class ChaosResult:
    """One row per swept plan, in sweep order."""

    rows_by_rate: List[Dict[str, object]]

    def rows(self) -> List[Dict[str, object]]:
        return self.rows_by_rate

    def qos_monotonic(self, tolerance: float = 0.0) -> bool:
        """Whether QoS is non-increasing as the fault rate grows (within
        ``tolerance`` percentage points of slack per step).  Only
        meaningful for the rate sweep; rows are compared in sweep order."""
        qos = [float(row["qos_percent"]) for row in self.rows_by_rate]
        return all(b <= a + tolerance for a, b in zip(qos, qos[1:]))

    def table(self) -> str:
        rows = [
            [
                row["fault_rate"],
                round(float(row["qos_percent"]), 1),
                round(float(row["idle_percent"]), 2),
                round(float(row["unavailable_percent"]), 2),
                row["logins_reactive_faulted"],
                row["fault_fires"],
                row["scan_retries"],
                row["breaker_opens"],
            ]
            for row in self.rows_by_rate
        ]
        return format_table(
            [
                "fault rate",
                "QoS%",
                "idle%",
                "unavail%",
                "faulted logins",
                "fires",
                "retries",
                "breaker opens",
            ],
            rows,
            title="Chaos: fault rate vs QoS/COGS (uniform plan over swept points)",
        )


def _chaos_worker(
    context: Tuple[str, ExperimentScale], item: Tuple[object, Dict[str, object]]
) -> Dict[str, object]:
    """One sweep task: arm the plan, simulate, report KPIs + fault ledger.

    Arming happens here, inside the worker, so the multiprocess backend
    reproduces the serial schedule exactly (see the module docstring).
    """
    preset_value, scale = context
    rate, plan_doc = item
    plan = FaultPlan.from_dict(plan_doc)
    traces = region_fleet(RegionPreset(preset_value), scale)
    with chaos(plan, seed=scale.seed) as injector:
        result = simulate_region(
            traces, PolicyKind.PROACTIVE, DEFAULT_CONFIG, scale.settings()
        )
        kpis = result.kpis()
        ledger = injector.snapshot()
    events = ledger["events"]
    return {
        "fault_rate": rate,
        "qos_percent": round(kpis.qos_percent, 3),
        "idle_percent": round(kpis.idle_percent, 3),
        "unavailable_percent": round(kpis.unavailable_percent, 3),
        "logins_total": kpis.logins.total,
        "logins_reactive": kpis.logins.reactive,
        "logins_reactive_faulted": kpis.logins.reactive_faulted,
        "fault_fires": sum(ledger["fires"].values()),
        "fault_consults": sum(ledger["consults"].values()),
        "scan_retries": events.get("retry.resume.scan", 0),
        "breaker_opens": events.get("breaker.predictor.open", 0),
    }


def run_chaos(
    scale: ExperimentScale = BENCH_SCALE,
    preset: RegionPreset = RegionPreset.EU1,
    fault_rates: Sequence[float] = DEFAULT_FAULT_RATES,
    points: Sequence[str] = DEFAULT_POINTS,
    plan: Optional[FaultPlan] = None,
    executor: Optional[SweepExecutor] = None,
    workers: Optional[int] = None,
) -> ChaosResult:
    """Run the chaos sweep.

    With the default arguments this sweeps ``fault_rates`` as uniform
    plans over ``points``.  An explicit ``plan`` replaces the sweep with a
    single run of exactly that plan (its row's ``fault_rate`` is the
    string ``"plan"``).
    """
    if plan is not None:
        items: List[Tuple[object, Dict[str, object]]] = [("plan", plan.to_dict())]
    else:
        items = [
            (rate, FaultPlan.uniform(points, rate).to_dict())
            for rate in fault_rates
        ]
    rows = sweep_map(
        _chaos_worker, (preset.value, scale), items, executor, workers
    )
    return ChaosResult(rows)


# -- SLO alerting scenario ----------------------------------------------


@dataclass(frozen=True)
class SloChaosResult:
    """Outcome of :func:`run_slo_chaos`: the alert ledger round trip and
    the streaming-vs-batch KPI reconciliation."""

    fast_window_s: int
    fault_window: Tuple[int, int]
    latency_window: Tuple[int, int]
    unavailable_fired_at: Optional[float]
    unavailable_cleared_at: Optional[float]
    latency_fired_at: Optional[float]
    latency_cleared_at: Optional[float]
    alert_events: List[Dict[str, object]] = field(default_factory=list)
    #: Streaming totals summed from the windowed ``slo.*`` series.
    streaming: Dict[str, float] = field(default_factory=dict)
    #: The same quantities from the simulator's ``KpiReport``.
    report: Dict[str, float] = field(default_factory=dict)
    #: Offline recomputation from the emitted telemetry stream.
    offline: Dict[str, float] = field(default_factory=dict)

    @property
    def alert_roundtrip_ok(self) -> bool:
        """The breaker alert fired within one fast window of the fault
        window (which is where the breaker can open) and later cleared;
        the latency alert did the same for its own window."""
        a_start, a_end = self.fault_window
        b_start, b_end = self.latency_window
        checks = [
            self.unavailable_fired_at is not None
            and a_start <= self.unavailable_fired_at
            <= a_end + self.fast_window_s,
            self.unavailable_cleared_at is not None
            and self.unavailable_cleared_at > self.unavailable_fired_at,
            self.latency_fired_at is not None
            and b_start <= self.latency_fired_at <= b_end + self.fast_window_s,
            self.latency_cleared_at is not None
            and self.latency_cleared_at > self.latency_fired_at,
        ]
        return all(checks)

    @property
    def equivalence_ok(self) -> bool:
        """Summed windowed series == KpiReport == offline telemetry."""
        s, r, o = self.streaming, self.report, self.offline
        return (
            s["logins"] == r["logins"] == o["logins"]
            and s["reactive"] == r["reactive"]
            and s["reactive_resume"] == r["reactive_resumes"]
            == o["reactive_resumes"]
            and s["proactive_resume"] == r["proactive_resumes"]
            and s["used_s"] == r["used_s"]
            and s["unavailable_s"] == r["unavailable_s"]
            and s["idle_s"] == r["idle_s"]
        )

    @property
    def ok(self) -> bool:
        return self.alert_roundtrip_ok and self.equivalence_ok

    def table(self) -> str:
        rows = [
            [
                event["name"],
                event["state"],
                event["severity"],
                int(event["time"]),
                round(float(event["value"]), 3),
            ]
            for event in self.alert_events
        ]
        return format_table(
            ["alert", "state", "severity", "sim time", "value"],
            rows,
            title=(
                "SLO chaos: predictor outage + latency spike "
                f"(roundtrip {'ok' if self.alert_roundtrip_ok else 'FAILED'}, "
                f"streaming==batch {'ok' if self.equivalence_ok else 'FAILED'})"
            ),
        )


def run_slo_chaos(
    scale: ExperimentScale = BENCH_SCALE,
    preset: RegionPreset = RegionPreset.EU1,
    fast_window_s: int = 900,
    latency_s: float = 0.25,
) -> SloChaosResult:
    """Chaos scenario for the SLO pipeline (the alerting round trip).

    Arms two scheduled faults against a proactive run watched by the
    stock :func:`~repro.observability.slo.simulation_slos` rule set:

    * ``predictor.exception`` at p=1.0 for the first two fast windows of
      the evaluation window -- every prediction fails, the predictor
      circuit breaker opens, and the ``predictor_unavailable`` threshold
      alert must fire within one fast window and clear once the breaker
      re-closes after its recovery period;
    * ``predictor.latency`` (+``latency_s`` per call) over a later,
      disjoint window -- the ``predictor_latency_p99`` alert must fire
      and clear the same way.

    The run also reconciles the streaming KPI series against both the
    simulator's :class:`~repro.core.kpi.KpiReport` and the offline
    telemetry recomputation (:func:`evaluate_offline_kpis`) -- the
    streaming == batch equivalence this scenario exists to pin.
    """
    settings = scale.settings(
        use_fast_predictor=False,  # route predictions through the
        # instrumented reference predictor so the latency fault lands
        region_label=preset.value,
        slo_window_s=fast_window_s,
    )
    eval_start, eval_end = settings.eval_start, settings.eval_end
    # Both fault windows sit in business hours of the first evaluation
    # day: the synthetic weekday fleets predict a handful of times per
    # fast window there, enough for the breaker's five consecutive
    # failures (a window at the quiet day boundary would see none).
    fault_window = (
        eval_start + 32 * fast_window_s,
        eval_start + 40 * fast_window_s,
    )
    latency_window = (
        eval_start + 60 * fast_window_s,
        eval_start + 68 * fast_window_s,
    )
    if latency_window[1] > eval_end:
        raise ValueError(
            "evaluation window too short for the SLO chaos schedule "
            f"(needs >= {68 * fast_window_s} s, has {eval_end - eval_start})"
        )
    plan = FaultPlan.of(
        FaultSpec(
            point="predictor.exception",
            probability=1.0,
            windows=(fault_window,),
        ),
        FaultSpec(
            point="predictor.latency",
            probability=1.0,
            latency_s=latency_s,
            windows=(latency_window,),
        ),
    )

    traces = region_fleet(preset, scale)
    labels = {"region": preset.value}
    metrics = MetricsRegistry()
    ledger = AlertLedger()
    monitor = SloMonitor(
        metrics,
        simulation_slos(labels=labels, fast_window_s=fast_window_s),
        ledger=ledger,
    )
    with chaos(plan, seed=scale.seed):
        with observed(tracer=NULL_TRACER, metrics=metrics, slo=monitor):
            result = simulate_region(
                traces, PolicyKind.PROACTIVE, DEFAULT_CONFIG, settings
            )
            monitor.drain(eval_end)

    kpis = result.kpis()
    store = TelemetryStore()
    emit_simulation_telemetry(result, traces, store)
    offline = evaluate_offline_kpis(store, start=eval_start, end=eval_end)

    def total(name: str) -> float:
        series = metrics.get(name, labels)
        return series.total() if series is not None else 0.0

    streaming = {
        "logins": total("slo.qos.logins"),
        "reactive": total("slo.qos.reactive"),
        "reactive_resume": total("slo.workflows.reactive_resume"),
        "proactive_resume": total("slo.workflows.proactive_resume"),
        "used_s": round(total("slo.cogs.used_s"), 6),
        "unavailable_s": round(total("slo.cogs.unavailable_s"), 6),
        "idle_s": round(total("slo.cogs.idle_s"), 6),
    }
    report = {
        "logins": float(kpis.logins.total),
        "reactive": float(kpis.logins.reactive),
        "reactive_resumes": float(kpis.workflows.reactive_resumes),
        "proactive_resumes": float(kpis.workflows.proactive_resumes),
        "used_s": float(kpis.used_s),
        "unavailable_s": float(kpis.unavailable_s),
        "idle_s": float(
            kpis.idle.logical_pause_s
            + kpis.idle.correct_proactive_s
            + kpis.idle.wrong_proactive_s
            + kpis.maintenance_s
        ),
    }
    offline_doc = {
        "logins": float(offline.logins_total),
        "reactive_resumes": float(offline.reactive_resumes),
        "proactive_resumes": float(offline.proactive_resumes),
    }
    return SloChaosResult(
        fast_window_s=fast_window_s,
        fault_window=fault_window,
        latency_window=latency_window,
        unavailable_fired_at=ledger.first_time(
            "predictor_unavailable", "firing"
        ),
        unavailable_cleared_at=ledger.first_time(
            "predictor_unavailable", "cleared"
        ),
        latency_fired_at=ledger.first_time("predictor_latency_p99", "firing"),
        latency_cleared_at=ledger.first_time(
            "predictor_latency_p99", "cleared"
        ),
        alert_events=[
            {
                "time": event.time,
                "name": event.name,
                "state": event.state,
                "severity": event.severity,
                "value": event.value,
                "detail": event.detail,
            }
            for event in ledger.events
        ],
        streaming=streaming,
        report=report,
        offline=offline_doc,
    )
