"""Per-database activity archetypes.

Each archetype is a generator of activity sessions for one database over a
time span, parameterised by a random source.  The archetypes mirror the
usage classes the paper's telemetry analysis reports: stable usage, daily
patterns, weekly patterns, and short unpredictable spikes (Section 1).

All archetypes emit *customer* activity only; system maintenance operations
are modelled separately (:func:`maintenance_sessions`) because the paper's
tracker deliberately excludes them from the history (Section 3.3).
"""

from __future__ import annotations

import random
from typing import List

from repro.types import (
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
    SECONDS_PER_MINUTE,
    Session,
    merge_sessions,
)

DAY = SECONDS_PER_DAY
HOUR = SECONDS_PER_HOUR
MINUTE = SECONDS_PER_MINUTE


class Archetype:
    """Base class: produces sessions over [start, end)."""

    name = "abstract"

    def sessions(self, start: int, end: int, rng: random.Random) -> List[Session]:
        raise NotImplementedError

    def generate(self, start: int, end: int, rng: random.Random) -> List[Session]:
        """Sessions clipped to [start, end), merged and validated."""
        raw = [s for s in self.sessions(start, end, rng)]
        clipped = []
        for session in raw:
            s, e = max(session.start, start), min(session.end, end)
            if e > s:
                clipped.append(Session(s, e))
        return merge_sessions(clipped)


def _gauss_clamped(rng: random.Random, mu: float, sigma: float, lo: float, hi: float) -> float:
    return min(hi, max(lo, rng.gauss(mu, sigma)))


class DailyBusinessHours(Archetype):
    """A production OLTP database behind a business application: activity
    bursts through the working day with short breaks, idle overnight.

    The short intra-day breaks create the many sub-hour idle intervals of
    Figure 3(a); the overnight gap dominates total idle time (Figure 3(b)).
    """

    name = "daily_business_hours"

    def __init__(
        self,
        workday_start_h: float = 9.0,
        workday_end_h: float = 17.0,
        start_jitter_min: float = 45.0,
        end_jitter_min: float = 50.0,
        breaks_per_day: float = 4.0,
        break_minutes: float = 30.0,
        weekdays_only: bool = True,
        skip_day_probability: float = 0.03,
        timezone_offset_h: float = 0.0,
    ):
        self.workday_start_h = workday_start_h
        self.workday_end_h = workday_end_h
        self.start_jitter_min = start_jitter_min
        self.end_jitter_min = end_jitter_min
        self.breaks_per_day = breaks_per_day
        self.break_minutes = break_minutes
        self.weekdays_only = weekdays_only
        self.skip_day_probability = skip_day_probability
        self.timezone_offset_h = timezone_offset_h

    def sessions(self, start: int, end: int, rng: random.Random) -> List[Session]:
        out: List[Session] = []
        first_day = start // DAY
        last_day = (end - 1) // DAY
        for day in range(first_day, last_day + 1):
            if self.weekdays_only and day % 7 >= 5:  # days 5,6 of each week
                continue
            if rng.random() < self.skip_day_probability:
                continue
            day_base = day * DAY + int(self.timezone_offset_h * HOUR)
            work_start = day_base + int(
                _gauss_clamped(
                    rng,
                    self.workday_start_h * HOUR,
                    self.start_jitter_min * MINUTE,
                    self.workday_start_h * HOUR - 2 * HOUR,
                    self.workday_start_h * HOUR + 2 * HOUR,
                )
            )
            work_end = day_base + int(
                _gauss_clamped(
                    rng,
                    self.workday_end_h * HOUR,
                    self.end_jitter_min * MINUTE,
                    self.workday_end_h * HOUR - 2 * HOUR,
                    self.workday_end_h * HOUR + 3 * HOUR,
                )
            )
            if work_end <= work_start:
                continue
            out.extend(self._split_workday(work_start, work_end, rng))
        return out

    def _split_workday(
        self, work_start: int, work_end: int, rng: random.Random
    ) -> List[Session]:
        """Cut the workday into activity bursts separated by short breaks."""
        n_breaks = max(0, int(rng.gauss(self.breaks_per_day, 1.0)))
        if n_breaks == 0:
            return [Session(work_start, work_end)]
        span = work_end - work_start
        cut_points = sorted(
            rng.randint(1, span - 1) for _ in range(n_breaks)
        )
        sessions: List[Session] = []
        cursor = work_start
        for cut in cut_points:
            break_len = int(
                max(3 * MINUTE, rng.expovariate(1.0 / (self.break_minutes * MINUTE)))
            )
            cut_abs = work_start + cut
            if cut_abs - cursor > 5 * MINUTE and cut_abs + break_len < work_end:
                sessions.append(Session(cursor, cut_abs))
                cursor = cut_abs + break_len
        if work_end > cursor:
            sessions.append(Session(cursor, work_end))
        return sessions


class NightlyJob(Archetype):
    """A highly predictable batch job (ETL, reporting) at a fixed hour."""

    name = "nightly_job"

    def __init__(
        self,
        job_hour: float = 2.0,
        jitter_min: float = 10.0,
        duration_min: float = 40.0,
        duration_jitter_min: float = 15.0,
        skip_day_probability: float = 0.02,
    ):
        self.job_hour = job_hour
        self.jitter_min = jitter_min
        self.duration_min = duration_min
        self.duration_jitter_min = duration_jitter_min
        self.skip_day_probability = skip_day_probability

    def sessions(self, start: int, end: int, rng: random.Random) -> List[Session]:
        out: List[Session] = []
        for day in range(start // DAY, (end - 1) // DAY + 1):
            if rng.random() < self.skip_day_probability:
                continue
            job_start = day * DAY + int(
                self.job_hour * HOUR + rng.gauss(0, self.jitter_min * MINUTE)
            )
            duration = int(
                max(
                    5 * MINUTE,
                    rng.gauss(
                        self.duration_min * MINUTE,
                        self.duration_jitter_min * MINUTE,
                    ),
                )
            )
            out.append(Session(job_start, job_start + duration))
        return out


class WeeklyBatch(Archetype):
    """Weekly processing: a few hours once a week (weekly seasonality)."""

    name = "weekly_batch"

    def __init__(
        self,
        weekday: int = 0,
        start_hour: float = 6.0,
        jitter_min: float = 30.0,
        duration_h: float = 3.0,
    ):
        if not 0 <= weekday < 7:
            raise ValueError("weekday must be in [0, 7)")
        self.weekday = weekday
        self.start_hour = start_hour
        self.jitter_min = jitter_min
        self.duration_h = duration_h

    def sessions(self, start: int, end: int, rng: random.Random) -> List[Session]:
        out: List[Session] = []
        for day in range(start // DAY, (end - 1) // DAY + 1):
            if day % 7 != self.weekday:
                continue
            batch_start = day * DAY + int(
                self.start_hour * HOUR + rng.gauss(0, self.jitter_min * MINUTE)
            )
            duration = int(
                max(30 * MINUTE, rng.gauss(self.duration_h * HOUR, HOUR / 2))
            )
            out.append(Session(batch_start, batch_start + duration))
        return out


class Stable(Archetype):
    """Continuously used database: serverless brings it little benefit, but
    fleets contain them (Section 1: databases with stable usage)."""

    name = "stable"

    def __init__(self, gap_per_day: float = 0.3, gap_minutes: float = 20.0):
        self.gap_per_day = gap_per_day
        self.gap_minutes = gap_minutes

    def sessions(self, start: int, end: int, rng: random.Random) -> List[Session]:
        out: List[Session] = []
        cursor = start
        while cursor < end:
            # Long on-interval, occasionally interrupted by a brief gap.
            on_len = int(rng.expovariate(self.gap_per_day / DAY)) + HOUR
            session_end = min(cursor + on_len, end)
            out.append(Session(cursor, session_end))
            gap = int(max(2 * MINUTE, rng.expovariate(1.0 / (self.gap_minutes * MINUTE))))
            cursor = session_end + gap
        return out


def _episode(
    episode_start: int,
    rng: random.Random,
    max_sessions: int,
    session_minutes: float,
    gap_minutes: float,
) -> List[Session]:
    """A visit: a handful of sessions separated by sub-hour breaks.

    Visits are how interactive usage actually looks (connect, work, step
    away, come back); the intra-visit gaps produce the mass of sub-hour
    idle intervals in Figure 3(a) while the inter-visit gaps carry nearly
    all the idle duration of Figure 3(b).
    """
    sessions: List[Session] = []
    cursor = episode_start
    for _ in range(rng.randint(1, max_sessions)):
        duration = int(
            max(4 * MINUTE, rng.expovariate(1.0 / (session_minutes * MINUTE)))
        )
        sessions.append(Session(cursor, cursor + duration))
        cursor += duration + int(
            max(2 * MINUTE, rng.expovariate(1.0 / (gap_minutes * MINUTE)))
        )
    return sessions


class BurstyDev(Archetype):
    """A development/test database: visit episodes around a per-database
    preferred hour (developers keep their own schedule), a couple of days
    apart.  Semi-predictable: the daily detector often catches the habit."""

    name = "bursty_dev"

    def __init__(
        self,
        days_between_episodes: float = 2.5,
        preferred_hour: float = 14.0,
        hour_jitter_h: float = 2.5,
        sessions_per_episode: int = 3,
        session_minutes: float = 40.0,
        gap_minutes: float = 25.0,
    ):
        self.days_between_episodes = days_between_episodes
        self.preferred_hour = preferred_hour
        self.hour_jitter_h = hour_jitter_h
        self.sessions_per_episode = sessions_per_episode
        self.session_minutes = session_minutes
        self.gap_minutes = gap_minutes

    def sessions(self, start: int, end: int, rng: random.Random) -> List[Session]:
        out: List[Session] = []
        day = start // DAY
        while day * DAY < end:
            # Episode on this day with probability 1/days_between.
            if rng.random() < 1.0 / self.days_between_episodes:
                hour = rng.gauss(self.preferred_hour, self.hour_jitter_h)
                episode_start = day * DAY + int(min(23.0, max(0.0, hour)) * HOUR)
                if episode_start >= start:
                    out.extend(
                        _episode(
                            episode_start,
                            rng,
                            self.sessions_per_episode,
                            self.session_minutes,
                            self.gap_minutes,
                        )
                    )
            day += 1
        return out


class Sporadic(Archetype):
    """A rarely used database: visit episodes days apart at uniformly
    random times -- genuinely unpredictable, the long tail that dominates
    a serverless fleet and the total idle time of Figure 3(b)."""

    name = "sporadic"

    def __init__(
        self,
        days_between_sessions: float = 4.0,
        session_minutes: float = 45.0,
        sessions_per_episode: int = 2,
        gap_minutes: float = 20.0,
    ):
        self.days_between_sessions = days_between_sessions
        self.session_minutes = session_minutes
        self.sessions_per_episode = sessions_per_episode
        self.gap_minutes = gap_minutes

    def sessions(self, start: int, end: int, rng: random.Random) -> List[Session]:
        out: List[Session] = []
        cursor = start + int(rng.uniform(0, self.days_between_sessions * DAY))
        while cursor < end:
            episode = _episode(
                cursor,
                rng,
                self.sessions_per_episode,
                self.session_minutes,
                self.gap_minutes,
            )
            out.extend(episode)
            cursor = episode[-1].end + int(
                rng.expovariate(1.0 / (self.days_between_sessions * DAY))
            )
        return out


class Dormant(Archetype):
    """An almost-dead database: one short visit every week or three.  Vast
    serverless fleets carry many of these; they are why total idle time is
    dominated by multi-day intervals (Figure 3(b))."""

    name = "dormant"

    def __init__(self, days_between_sessions: float = 14.0, session_minutes: float = 30.0):
        self.days_between_sessions = days_between_sessions
        self.session_minutes = session_minutes

    def sessions(self, start: int, end: int, rng: random.Random) -> List[Session]:
        out: List[Session] = []
        cursor = start + int(rng.uniform(0, self.days_between_sessions * DAY))
        while cursor < end:
            duration = int(
                max(5 * MINUTE, rng.expovariate(1.0 / (self.session_minutes * MINUTE)))
            )
            out.append(Session(cursor, cursor + duration))
            cursor += duration + int(
                rng.expovariate(1.0 / (self.days_between_sessions * DAY))
            )
        return out


def maintenance_sessions(
    start: int, end: int, rng: random.Random, per_week: float = 2.0
) -> List[Session]:
    """System maintenance operations (backups, stats refresh).

    These resume resources but are *not* customer activity: the tracker of
    Section 3.3 excludes them from ``sys.pause_resume_history`` so they do
    not pollute predictions.
    """
    out: List[Session] = []
    cursor = start
    mean_gap = 7 * DAY / per_week
    while cursor < end:
        cursor += int(rng.expovariate(1.0 / mean_gap))
        duration = int(rng.uniform(5 * MINUTE, 30 * MINUTE))
        if cursor < end:
            out.append(Session(cursor, cursor + duration))
            cursor += duration
    return out
