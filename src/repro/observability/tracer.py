"""Nested-span tracing for the live ProRP code paths.

A :class:`Tracer` produces :class:`SpanRecord`\\ s: named, wall-clock-timed
intervals with attributes and a parent link.  The simulation is single
threaded, so trace context propagation is a plain stack -- a span opened
by the engine's event dispatch is the parent of every span opened by the
policy, predictor, resume scan, or SQL engine while that event runs.

Spans carry two clocks: wall time (``perf_counter_ns`` relative to the
tracer's epoch, what Chrome's trace viewer renders) and, when the caller
provides a ``t`` attribute, the simulation timestamp the work happened at.

The :data:`NULL_TRACER` is the off-by-default stand-in: its ``span`` call
returns a shared, do-nothing context manager, so instrumentation left in
place costs one guard check plus nothing.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass
class SpanRecord:
    """One finished span."""

    span_id: int
    parent_id: Optional[int]
    name: str
    #: Nanoseconds since the tracer's epoch.
    start_ns: int
    duration_ns: int
    attributes: Dict[str, Any] = field(default_factory=dict)

    @property
    def end_ns(self) -> int:
        return self.start_ns + self.duration_ns

    def to_dict(self) -> Dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_ns": self.start_ns,
            "duration_ns": self.duration_ns,
            "attributes": self.attributes,
        }


class _ActiveSpan:
    """Context manager for one open span."""

    __slots__ = ("_tracer", "span_id", "parent_id", "name", "attributes", "_start_ns")

    def __init__(
        self,
        tracer: "Tracer",
        span_id: int,
        parent_id: Optional[int],
        name: str,
        attributes: Dict[str, Any],
    ):
        self._tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attributes = attributes
        self._start_ns = 0

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def __enter__(self) -> "_ActiveSpan":
        self._start_ns = time.perf_counter_ns() - self._tracer.epoch_ns
        self._tracer._stack.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        end_ns = time.perf_counter_ns() - self._tracer.epoch_ns
        if exc_type is not None:
            self.attributes["error"] = exc_type.__name__
        popped = self._tracer._stack.pop()
        assert popped is self, "span stack corrupted (overlapping exits)"
        self._tracer.spans.append(
            SpanRecord(
                span_id=self.span_id,
                parent_id=self.parent_id,
                name=self.name,
                start_ns=self._start_ns,
                duration_ns=max(0, end_ns - self._start_ns),
                attributes=self.attributes,
            )
        )


class Tracer:
    """Collects finished spans (in completion order: children first)."""

    def __init__(self) -> None:
        self.epoch_ns = time.perf_counter_ns()
        self.spans: List[SpanRecord] = []
        self._stack: List[_ActiveSpan] = []
        self._ids = itertools.count(1)

    def span(self, name: str, **attributes: Any) -> _ActiveSpan:
        """Open a child of the current span (root when the stack is empty)."""
        parent = self._stack[-1].span_id if self._stack else None
        return _ActiveSpan(self, next(self._ids), parent, name, attributes)

    @property
    def current_span(self) -> Optional[_ActiveSpan]:
        return self._stack[-1] if self._stack else None

    @property
    def depth(self) -> int:
        return len(self._stack)

    def roots(self) -> List[SpanRecord]:
        """Finished spans with no parent."""
        return [s for s in self.spans if s.parent_id is None]

    def children_of(self, span_id: int) -> List[SpanRecord]:
        """Finished direct children of one span, in completion order."""
        return [s for s in self.spans if s.parent_id == span_id]


class _NullSpan:
    """The do-nothing span: shared, reentrant, attribute-free."""

    __slots__ = ()

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracing disabled: every ``span()`` is the same no-op."""

    __slots__ = ()
    spans: List[SpanRecord] = []
    current_span = None
    depth = 0

    def span(self, name: str, **attributes: Any) -> _NullSpan:
        return _NULL_SPAN

    def roots(self) -> List[SpanRecord]:
        return []

    def children_of(self, span_id: int) -> List[SpanRecord]:
        return []


NULL_TRACER = NullTracer()
