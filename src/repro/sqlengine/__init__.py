"""A minimal SQL engine over the storage substrate.

The paper implements its history maintenance and prediction algorithms as
SQL stored procedures against ``sys.pause_resume_history`` (Algorithms 2-4)
and queries ``sys.databases`` from the proactive resume operation
(Algorithm 5).  This package provides exactly the SQL surface those
procedures need, from scratch:

* lexer (:mod:`repro.sqlengine.lexer`) and recursive-descent parser
  (:mod:`repro.sqlengine.parser`) producing a typed AST
  (:mod:`repro.sqlengine.ast`);
* a planner (:mod:`repro.sqlengine.planner`) that turns conjunctive
  predicates on indexed columns into clustered/secondary index range scans
  and everything else into filtered full scans;
* an executor (:mod:`repro.sqlengine.executor`) with ``@parameter``
  binding, the aggregates ``MIN``/``MAX``/``COUNT``, ``ORDER BY``/``LIMIT``,
  and ``INSERT``/``DELETE``/``UPDATE``/``CREATE TABLE``.

Entry point::

    engine = SqlEngine(database)
    engine.execute("SELECT MIN(time_snapshot) AS t FROM sys.pause_resume_history")
"""

from repro.sqlengine.engine import SqlEngine, StatementResult
from repro.sqlengine.procedures import SqlHistoryProcedures, SqlMetadataProcedures

__all__ = [
    "SqlEngine",
    "StatementResult",
    "SqlHistoryProcedures",
    "SqlMetadataProcedures",
]
