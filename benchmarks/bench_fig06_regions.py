"""Figure 6 bench: reactive vs proactive KPIs across EU1/EU2/US1/US2.

Paper shape: QoS rises from 60-68% to 80-90%; logical-pause idle falls
(5-12% -> 3-7%) while small wrong (1-4%) and correct (1-5%) proactive
idle components appear.
"""

from repro.experiments.common import BENCH_SCALE
from repro.experiments.fig6 import run_fig6


def bench_fig6_regions(benchmark, record_table):
    result = benchmark.pedantic(
        run_fig6, args=(BENCH_SCALE,), rounds=1, iterations=1
    )
    record_table("fig06_regions", result.table())
    for row in result.rows():
        assert row["proactive_qos_percent"] > row["reactive_qos_percent"]
        assert row["proactive_idle_logical"] < row["reactive_idle_percent"]
