"""Crash-safe file replacement: temp file + fsync + atomic rename.

Both durability layers (history snapshots, control-plane checkpoints)
persist whole documents that a reader must see either entirely or not at
all.  A naive ``write_text`` truncates the destination first, so a crash
mid-write leaves a half-written file that the read path then rejects as
corrupt -- losing the previous good copy.  The standard fix, implemented
here once:

1. write the new bytes to a temporary file *in the same directory* (so
   the final rename never crosses a filesystem boundary);
2. flush and ``os.fsync`` the temp file so the data is on stable storage
   before it can become visible under the destination name;
3. ``os.replace`` the temp file over the destination -- atomic on POSIX
   and Windows: readers see the old document or the new one, never a mix;
4. best-effort fsync of the containing directory so the rename itself
   survives a power cut (skipped where directories cannot be opened).

A crash at any step leaves the destination untouched; the stray temp
file, when one survives, is ignored by readers and overwritten by the
next attempt.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Union


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> None:
    """Atomically replace ``path`` with ``data`` (see module docstring)."""
    path = Path(path)
    tmp = path.with_name(f".{path.name}.tmp.{os.getpid()}")
    try:
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    _fsync_dir(path.parent)


def atomic_write_text(
    path: Union[str, Path], text: str, encoding: str = "utf-8"
) -> None:
    """Atomically replace ``path`` with ``text``."""
    atomic_write_bytes(path, text.encode(encoding))


def _fsync_dir(directory: Path) -> None:
    """Flush a directory entry; best-effort (not all platforms allow
    opening directories)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)
