"""Figure 7: validation across consecutive evaluation days.

The paper re-evaluates the Figure 6 KPIs on four consecutive days
(September 1-4, 2023) to show the result is stable over time.  This driver
runs the same comparison on four consecutive one-day windows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis import format_table
from repro.config import DEFAULT_CONFIG
from repro.core.kpi import KpiReport
from repro.experiments.common import (
    BENCH_SCALE,
    ExperimentScale,
    region_fleet,
    sweep_map,
)
from repro.parallel import SweepExecutor
from repro.simulation.region import simulate_region
from repro.types import SECONDS_PER_DAY
from repro.workload.regions import RegionPreset

DAY = SECONDS_PER_DAY


@dataclass(frozen=True)
class DayComparison:
    day_index: int
    reactive: KpiReport
    proactive: KpiReport


@dataclass(frozen=True)
class Fig7Result:
    days: List[DayComparison]

    def rows(self) -> List[Dict[str, object]]:
        return [
            {
                "day": comparison.day_index,
                "reactive_qos_percent": comparison.reactive.qos_percent,
                "proactive_qos_percent": comparison.proactive.qos_percent,
                "reactive_idle_percent": comparison.reactive.idle_percent,
                "proactive_idle_percent": comparison.proactive.idle_percent,
            }
            for comparison in self.days
        ]

    def table(self) -> str:
        rows = [
            [
                f"day {r['day']}",
                round(r["reactive_qos_percent"], 1),
                round(r["proactive_qos_percent"], 1),
                round(r["reactive_idle_percent"], 2),
                round(r["proactive_idle_percent"], 2),
            ]
            for r in self.rows()
        ]
        return format_table(
            ["eval day", "QoS% react", "QoS% proact", "idle% react", "idle% proact"],
            rows,
            title=(
                "Figure 7: validation across evaluation days "
                "[paper: stable QoS 60-68 vs 80-90 and idle 5-12 vs 7-14 "
                "on all four days]"
            ),
        )


def _fig7_task(context: Tuple, item: Tuple[int, str]) -> KpiReport:
    """One (evaluation day, policy) cell of Figure 7, worker-side."""
    preset, scale, n_days = context
    day_index, policy = item
    traces = region_fleet(preset, scale)
    eval_end = scale.eval_end - (n_days - 1 - day_index) * DAY
    settings = scale.settings(eval_start=eval_end - DAY, eval_end=eval_end)
    return simulate_region(traces, policy, DEFAULT_CONFIG, settings).kpis()


def run_fig7(
    scale: ExperimentScale = BENCH_SCALE,
    preset: RegionPreset = RegionPreset.EU1,
    n_days: int = 4,
    executor: Optional[SweepExecutor] = None,
    workers: Optional[int] = None,
) -> Fig7Result:
    """Evaluate ``n_days`` consecutive one-day windows ending at the trace
    tail (each day gets its own warm-up).  Each (day, policy) pair is an
    independent simulation fanned out through the sweep executor."""
    items = [(i, policy) for i in range(n_days)
             for policy in ("reactive", "proactive")]
    kpis = sweep_map(_fig7_task, (preset, scale, n_days), items, executor, workers)
    days: List[DayComparison] = []
    for i in range(n_days):
        days.append(
            DayComparison(i + 1, reactive=kpis[2 * i], proactive=kpis[2 * i + 1])
        )
    return Fig7Result(days)
