"""Tests for the fault-injection and resilience subsystem.

Covers the declarative plans, the deterministic injector, the resilience
primitives (retry/deadline/breaker), the runtime switch, every wired
fault point, and the chaos experiment's determinism guarantees: an armed
empty plan is byte-identical to a disarmed run, and serial vs
multiprocess chaos sweeps produce identical rows.
"""

import pytest

from repro.cluster import Cluster
from repro.config import DEFAULT_CONFIG
from repro.controlplane.workflows import (
    CRASH_POINT,
    STUCK_POINT,
    WorkflowEngine,
    WorkflowKind,
    WorkflowState,
)
from repro.core.policy import PolicyKind
from repro.core.resume_service import SCAN_FAULT_POINT, ProactiveResumeOperation
from repro.errors import (
    ConfigError,
    DeadlineExceededError,
    FaultPlanError,
    SqlExecutionError,
    StorageError,
)
from repro.experiments.chaos import DEFAULT_POINTS, run_chaos
from repro.experiments.common import TEST_SCALE, region_fleet
from repro.faults import (
    FAULTS,
    BreakerState,
    CircuitBreaker,
    Deadline,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    arm,
    chaos,
    disarm,
)
from repro.parallel.multiprocess import MultiprocessExecutor
from repro.parallel.serial import SerialExecutor
from repro.simulation.actor import PREDICTOR_FAULT_POINT
from repro.simulation.region import simulate_region
from repro.sqlengine.engine import EXECUTE_FAULT_POINT, SqlEngine
from repro.storage.database import Database
from repro.storage.durability import (
    CORRUPT_FAULT_POINT,
    RESTORE_FAULT_POINT,
    read_snapshot,
    restore_history,
    snapshot_history,
    write_snapshot,
)
from repro.storage.history import HistoryStore
from repro.storage.metadata import MetadataStore
from repro.types import EventType
from repro.workload.regions import RegionPreset


@pytest.fixture(autouse=True)
def _disarmed():
    """Every test starts and ends with fault injection off."""
    disarm()
    yield
    disarm()


# ---------------------------------------------------------------------------
# Plans
# ---------------------------------------------------------------------------


class TestFaultSpec:
    def test_defaults(self):
        spec = FaultSpec("sql.execute")
        assert spec.probability == 1.0
        assert spec.windows == ()
        assert spec.max_fires is None
        assert spec.active(0) and spec.active(None)

    def test_validation(self):
        with pytest.raises(FaultPlanError):
            FaultSpec("")
        with pytest.raises(FaultPlanError):
            FaultSpec("p", probability=1.5)
        with pytest.raises(FaultPlanError):
            FaultSpec("p", max_fires=-1)
        with pytest.raises(FaultPlanError):
            FaultSpec("p", latency_s=-0.1)
        with pytest.raises(FaultPlanError):
            FaultSpec("p", windows=((10, 10),))
        with pytest.raises(FaultPlanError):
            FaultSpec("p", windows=((1, 2, 3),))

    def test_windows_schedule(self):
        spec = FaultSpec("p", windows=((100, 200), (300, 400)))
        assert not spec.active(99)
        assert spec.active(100)
        assert not spec.active(200)
        assert spec.active(350)
        # A consultation without a timestamp ignores the schedule.
        assert spec.active(None)

    def test_dict_round_trip(self):
        spec = FaultSpec("p", probability=0.5, windows=((1, 2),), max_fires=3,
                         latency_s=0.25)
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_fields_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultSpec.from_dict({"point": "p", "probabilty": 0.5})


class TestFaultPlan:
    def test_of_and_mapping_surface(self):
        plan = FaultPlan.of(FaultSpec("a"), FaultSpec("b", probability=0.5))
        assert len(plan) == 2
        assert "a" in plan and "c" not in plan
        assert plan.get("b").probability == 0.5
        assert plan.points() == ["a", "b"]

    def test_duplicate_point_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.of(FaultSpec("a"), FaultSpec("a"))

    def test_uniform(self):
        plan = FaultPlan.uniform(["a", "b"], probability=0.1, latency_s=1.0)
        assert plan.get("a").probability == 0.1
        assert plan.get("b").latency_s == 1.0

    def test_json_file_round_trip(self, tmp_path):
        plan = FaultPlan.of(
            FaultSpec("a", probability=0.2, windows=((0, 10),)),
            FaultSpec("b", max_fires=1, latency_s=2.0),
        )
        path = tmp_path / "plan.json"
        plan.save(path)
        assert FaultPlan.load(path) == plan

    def test_load_errors(self, tmp_path):
        with pytest.raises(FaultPlanError):
            FaultPlan.load(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        with pytest.raises(FaultPlanError):
            FaultPlan.load(bad)
        with pytest.raises(FaultPlanError):
            FaultPlan.from_dict({"points": {"a": 1}})


# ---------------------------------------------------------------------------
# Injector
# ---------------------------------------------------------------------------


class TestFaultInjector:
    def test_deterministic_schedule(self):
        plan = FaultPlan.of(FaultSpec("p", probability=0.3))

        def schedule():
            injector = FaultInjector(plan, seed=7)
            return [injector.should_fire("p") for _ in range(50)]

        first = schedule()
        assert first == schedule()
        assert any(first) and not all(first)

    def test_different_seeds_differ(self):
        plan = FaultPlan.of(FaultSpec("p", probability=0.5))
        fires = []
        for seed in (0, 1):
            inj = FaultInjector(plan, seed=seed)
            fires.append([inj.should_fire("p") for _ in range(64)])
        assert fires[0] != fires[1]

    def test_absent_point_consumes_no_randomness(self):
        """Consulting points outside the plan must not perturb the
        schedule of points inside it."""
        plan = FaultPlan.of(FaultSpec("p", probability=0.3))
        lone = FaultInjector(plan, seed=3)
        noisy = FaultInjector(plan, seed=3)
        lone_fires = []
        noisy_fires = []
        for _ in range(100):
            lone_fires.append(lone.should_fire("p"))
            noisy.should_fire("other.point")
            noisy_fires.append(noisy.should_fire("p"))
        assert lone_fires == noisy_fires
        assert "other.point" not in noisy.consults

    def test_probability_extremes(self):
        plan = FaultPlan.of(FaultSpec("on"), FaultSpec("off", probability=0.0))
        inj = FaultInjector(plan)
        assert all(inj.should_fire("on") for _ in range(10))
        assert not any(inj.should_fire("off") for _ in range(10))
        assert inj.fires["on"] == 10
        assert inj.fires.get("off") is None
        assert inj.consults["off"] == 10

    def test_max_fires_cap(self):
        plan = FaultPlan.of(FaultSpec("p", max_fires=2))
        inj = FaultInjector(plan)
        assert [inj.should_fire("p") for _ in range(5)] == [
            True, True, False, False, False
        ]
        assert inj.total_fires() == 2
        assert inj.total_consults() == 5

    def test_windows_respected(self):
        plan = FaultPlan.of(FaultSpec("p", windows=((100, 200),)))
        inj = FaultInjector(plan)
        assert not inj.should_fire("p", now=50)
        assert inj.should_fire("p", now=150)
        assert not inj.should_fire("p", now=250)

    def test_latency_payload(self):
        plan = FaultPlan.of(FaultSpec("p", latency_s=0.5, max_fires=1))
        inj = FaultInjector(plan)
        assert inj.latency_s("p") == 0.5
        assert inj.latency_s("p") == 0.0  # cap reached
        assert inj.latency_s("unknown") == 0.0

    def test_note_and_snapshot(self):
        inj = FaultInjector(FaultPlan.of(FaultSpec("p", max_fires=1)))
        inj.should_fire("p")
        inj.note("retry.resume.scan")
        inj.note("retry.resume.scan", n=2)
        snap = inj.snapshot()
        assert snap["fires"] == {"p": 1}
        assert snap["consults"] == {"p": 1}
        assert snap["events"] == {"retry.resume.scan": 3}


# ---------------------------------------------------------------------------
# Resilience primitives
# ---------------------------------------------------------------------------


class TestRetryPolicy:
    def test_delays_exponential_and_capped(self):
        policy = RetryPolicy(max_attempts=5, base_delay_s=1.0, multiplier=2.0,
                             max_delay_s=5.0)
        assert policy.delays() == [1.0, 2.0, 4.0, 5.0]

    def test_jitter_bounded_and_deterministic(self):
        policy = RetryPolicy(max_attempts=4, base_delay_s=10.0, jitter=0.2,
                             seed=5)
        delays = policy.delays()
        assert delays == RetryPolicy(max_attempts=4, base_delay_s=10.0,
                                     jitter=0.2, seed=5).delays()
        nominal = [10.0, 20.0, 40.0]
        for got, base in zip(delays, nominal):
            bounded = min(base, 60.0)
            assert bounded * 0.8 <= got <= bounded * 1.2

    def test_call_retries_then_succeeds(self):
        attempts = []
        retries = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise StorageError("transient")
            return "ok"

        policy = RetryPolicy(max_attempts=3)
        result = policy.call(
            flaky, on_retry=lambda a, d, e: retries.append((a, d))
        )
        assert result == "ok"
        assert len(attempts) == 3
        assert [a for a, _ in retries] == [1, 2]

    def test_call_exhausts_and_reraises(self):
        def always_down():
            raise StorageError("down")

        slept = []
        with pytest.raises(StorageError):
            RetryPolicy(max_attempts=3).call(always_down, sleep=slept.append)
        assert len(slept) == 2  # no sleep after the final failure

    def test_non_retryable_error_propagates_immediately(self):
        calls = []

        def boom():
            calls.append(1)
            raise ValueError("logic bug")

        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=3).call(boom)
        assert len(calls) == 1

    def test_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ConfigError):
            RetryPolicy(jitter=2.0)


class TestDeadline:
    def test_expires_on_injected_clock(self):
        t = {"now": 0.0}
        deadline = Deadline(10.0, clock=lambda: t["now"])
        assert deadline.remaining_s() == 10.0
        deadline.check()
        t["now"] = 10.0
        assert deadline.expired
        with pytest.raises(DeadlineExceededError):
            deadline.check("resume scan")


class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3, recovery_s=100)
        for t in range(2):
            breaker.record_failure(t)
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure(2)
        assert breaker.state is BreakerState.OPEN
        assert breaker.opens == 1
        assert not breaker.allow(50)
        assert breaker.tripped(50)

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure(0)
        breaker.record_success(1)
        breaker.record_failure(2)
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_probe_success_closes(self):
        breaker = CircuitBreaker(failure_threshold=1, recovery_s=100)
        breaker.record_failure(0)
        assert not breaker.allow(99)
        assert breaker.allow(100)  # recovery window over: probe allowed
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_success(100)
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_probe_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, recovery_s=100)
        breaker.record_failure(0)
        assert breaker.allow(100)
        breaker.record_failure(100)
        assert breaker.state is BreakerState.OPEN
        assert breaker.opens == 2
        assert not breaker.allow(150)

    def test_open_noted_in_fault_ledger(self):
        injector = arm(FaultPlan.empty())
        breaker = CircuitBreaker(failure_threshold=1, name="predictor")
        breaker.record_failure(0)
        assert injector.events == {"breaker.predictor.open": 1}


# ---------------------------------------------------------------------------
# Runtime switch
# ---------------------------------------------------------------------------


class TestRuntime:
    def test_disarmed_by_default(self):
        assert not FAULTS.enabled
        assert FAULTS.injector is None

    def test_arm_disarm(self):
        injector = arm(FaultPlan.of(FaultSpec("p")), seed=9)
        assert FAULTS.enabled
        assert FAULTS.injector is injector
        assert injector.seed == 9
        disarm()
        assert not FAULTS.enabled

    def test_chaos_context_restores_prior_state(self):
        outer = arm(FaultPlan.empty(), seed=1)
        with chaos(FaultPlan.of(FaultSpec("p"))) as inner:
            assert FAULTS.injector is inner
        assert FAULTS.enabled and FAULTS.injector is outer
        disarm()
        with chaos(FaultPlan.empty()):
            assert FAULTS.enabled
        assert not FAULTS.enabled


# ---------------------------------------------------------------------------
# Wired fault points
# ---------------------------------------------------------------------------


def _history_with_events():
    store = HistoryStore()
    store.insert_history(0, EventType.ACTIVITY_START)
    store.insert_history(3600, EventType.ACTIVITY_END)
    return store


class TestInjectionSites:
    def test_sql_execute_fault(self):
        engine = SqlEngine(Database("db"))
        engine.execute("CREATE TABLE t (x INT PRIMARY KEY)")
        arm(FaultPlan.of(FaultSpec(EXECUTE_FAULT_POINT, max_fires=1)))
        with pytest.raises(SqlExecutionError, match="injected"):
            engine.execute("SELECT x FROM t")
        # Cap reached: the engine works again.
        assert engine.execute("SELECT x FROM t").rowcount == 0

    def test_snapshot_restore_unavailable(self):
        snapshot = snapshot_history(_history_with_events(), "db-1")
        arm(FaultPlan.of(FaultSpec(RESTORE_FAULT_POINT, max_fires=1)))
        with pytest.raises(StorageError, match="injected"):
            restore_history(snapshot)
        assert restore_history(snapshot).tuple_count == 2

    def test_snapshot_corruption_caught_by_checksum(self, tmp_path):
        snapshot = snapshot_history(_history_with_events(), "db-1")
        path = tmp_path / "snap.json"
        arm(FaultPlan.of(FaultSpec(CORRUPT_FAULT_POINT)))
        write_snapshot(snapshot, path)
        disarm()
        with pytest.raises(StorageError, match="checksum"):
            read_snapshot(path)

    def test_cluster_node_crash_fails_over(self):
        cluster = Cluster(n_nodes=2, node_capacity=4, resume_latency_s=10,
                          resume_latency_jitter_s=0, move_latency_s=30)
        cluster.place("db-1")
        home = cluster.node_of("db-1").node_id
        arm(FaultPlan.of(FaultSpec("cluster.node.crash", max_fires=1)))
        outcome = cluster.allocate("db-1")
        assert outcome.moved
        assert outcome.node_id != home
        assert outcome.latency_s == 10 + 2 * 30
        assert cluster.moves == 1
        # Next allocation is fault-free and stays put.
        cluster.release("db-1")
        assert not cluster.allocate("db-1").moved

    def test_cluster_node_crash_recovers_in_place_when_full(self):
        cluster = Cluster(n_nodes=1, node_capacity=4, resume_latency_s=10,
                          resume_latency_jitter_s=0, move_latency_s=30)
        cluster.place("db-1")
        arm(FaultPlan.of(FaultSpec("cluster.node.crash", max_fires=1)))
        outcome = cluster.allocate("db-1")
        assert not outcome.moved
        assert outcome.latency_s == 10 + 2 * 30
        assert cluster.is_allocated("db-1")

    def test_workflow_crash_point_goes_terminal(self):
        injector = FaultInjector(
            FaultPlan.of(FaultSpec(CRASH_POINT, max_fires=1))
        )
        engine = WorkflowEngine(injector=injector)
        crashed = engine.submit(WorkflowKind.REACTIVE_RESUME, "db-1", now=0)
        survivor = engine.submit(WorkflowKind.REACTIVE_RESUME, "db-2", now=0)
        engine.tick(0)
        assert crashed.state is WorkflowState.FAILED
        assert crashed.terminal
        assert survivor.state is WorkflowState.RUNNING
        completed = engine.tick(60)
        assert completed == [survivor]

    def test_workflow_stuck_via_injector_plan(self):
        injector = FaultInjector(
            FaultPlan.of(FaultSpec(STUCK_POINT, max_fires=1))
        )
        engine = WorkflowEngine(injector=injector)
        first = engine.submit(WorkflowKind.PHYSICAL_PAUSE, "db-1", now=0)
        engine.tick(0)
        assert first.state is WorkflowState.STUCK
        assert engine.stuck_workflows(now=600, stuck_after_s=300) == [first]

    def _scan_operation(self):
        metadata = MetadataStore()
        metadata.register("db-1", created_at=0, node_id="node-000")
        # Predicted start inside the (now + k, now + k + period] scan
        # window of Algorithm 5 for now=0, k=600, period=60.
        metadata.record_physical_pause("db-1", pred_start=650)
        return ProactiveResumeOperation(
            metadata, prewarm_s=600, period_s=60,
            on_prewarm=lambda db_id, now: None,
        )

    def test_resume_scan_retries_through_transient_fault(self):
        operation = self._scan_operation()
        arm(FaultPlan.of(FaultSpec(SCAN_FAULT_POINT, max_fires=2)))
        record = operation.run_once(now=0)
        # Two injected failures, third attempt scans: pre-warm still found.
        assert record.scan_failures == 2
        assert record.batch_size == 1
        assert operation.scan_failures == 2
        assert operation.failed_iterations == 0
        assert FAULTS.injector.events["retry.resume.scan"] == 2

    def test_resume_scan_exhaustion_skips_iteration(self):
        operation = self._scan_operation()
        arm(FaultPlan.of(FaultSpec(SCAN_FAULT_POINT)))  # always down
        record = operation.run_once(now=0)
        assert record.batch_size == 0
        assert record.scan_failures == 3
        assert operation.failed_iterations == 1

    def test_predictor_faults_trip_breaker_and_attribute_logins(self):
        traces = region_fleet(RegionPreset.EU1, TEST_SCALE)
        plan = FaultPlan.of(FaultSpec(PREDICTOR_FAULT_POINT))  # always fail
        with chaos(plan, seed=TEST_SCALE.seed) as injector:
            result = simulate_region(
                traces, PolicyKind.PROACTIVE, DEFAULT_CONFIG,
                TEST_SCALE.settings(),
            )
            kpis = result.kpis()
        assert injector.events.get("breaker.predictor.open", 0) >= 1
        # With the predictor permanently down the fleet is reactive-only:
        # no pre-warms, and fault attribution covers the reactive logins
        # taken while degraded.
        assert kpis.workflows.proactive_resumes == 0
        assert kpis.logins.reactive_faulted > 0
        assert kpis.logins.reactive_faulted <= kpis.logins.reactive
        assert 0.0 < kpis.logins.fault_affected_percent <= 100.0


# ---------------------------------------------------------------------------
# Chaos experiment determinism
# ---------------------------------------------------------------------------


class TestChaosDeterminism:
    def test_armed_empty_plan_is_byte_identical_to_disarmed(self):
        traces = region_fleet(RegionPreset.EU1, TEST_SCALE)
        baseline = simulate_region(
            traces, PolicyKind.PROACTIVE, DEFAULT_CONFIG, TEST_SCALE.settings()
        ).kpis()
        with chaos(FaultPlan.empty(), seed=TEST_SCALE.seed) as injector:
            armed = simulate_region(
                traces, PolicyKind.PROACTIVE, DEFAULT_CONFIG,
                TEST_SCALE.settings(),
            ).kpis()
        assert armed.to_dict() == baseline.to_dict()
        assert injector.total_fires() == 0

    def test_zero_rate_row_matches_baseline(self):
        traces = region_fleet(RegionPreset.EU1, TEST_SCALE)
        baseline = simulate_region(
            traces, PolicyKind.PROACTIVE, DEFAULT_CONFIG, TEST_SCALE.settings()
        ).kpis()
        row = run_chaos(scale=TEST_SCALE, fault_rates=(0.0,)).rows()[0]
        assert row["qos_percent"] == round(baseline.qos_percent, 3)
        assert row["idle_percent"] == round(baseline.idle_percent, 3)
        assert row["fault_fires"] == 0

    def test_serial_and_multiprocess_rows_identical(self):
        kwargs = dict(scale=TEST_SCALE, fault_rates=(0.0, 0.2))
        serial = run_chaos(executor=SerialExecutor(), **kwargs).rows()
        parallel = run_chaos(
            executor=MultiprocessExecutor(workers=2), **kwargs
        ).rows()
        assert serial == parallel

    def test_qos_degrades_with_fault_rate(self):
        result = run_chaos(scale=TEST_SCALE, fault_rates=(0.0, 0.3))
        rows = result.rows()
        assert rows[0]["qos_percent"] > rows[1]["qos_percent"]
        assert rows[1]["fault_fires"] > 0
        assert result.qos_monotonic()
        assert "QoS" in result.table()

    def test_explicit_plan_single_run(self):
        plan = FaultPlan.uniform(DEFAULT_POINTS, probability=0.1)
        rows = run_chaos(scale=TEST_SCALE, plan=plan).rows()
        assert len(rows) == 1
        assert rows[0]["fault_rate"] == "plan"
        assert rows[0]["fault_fires"] > 0
