"""Windowed time-series metrics: ring-buffered per-window aggregates.

The cumulative registry (:mod:`repro.observability.metrics`) answers
"how many so far"; the SLO layer needs "how many in the last N minutes".
These series types bucket observations into fixed-width windows aligned
to the absolute clock -- window ``i`` covers ``[i*window_s, (i+1)*window_s)``
-- so rollover is a pure function of the timestamp, never of call order.
That alignment is what makes worker merges deterministic: a serial run
and a :class:`~repro.parallel.MultiprocessExecutor` run that record the
same (timestamp, value) pairs produce identical window contents after
:meth:`MetricsRegistry.merge`, regardless of how the work was chunked.

A series retains the newest ``capacity`` windows (relative to the newest
index ever seen); older windows fold into an ``overflow`` aggregate that
still counts toward :meth:`total`, so whole-run sums are exact no matter
how small the ring is.  The clock is whatever the caller passes --
simulation seconds in the engines, ``time.monotonic()`` in the serving
gateway -- the series only ever does integer window arithmetic on it.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ProRPError
from repro.observability.metrics import LATENCY_BUCKETS_MS

Number = Union[int, float]

#: Default window width in (sim or wall) seconds: 15 minutes, the fast
#: burn-rate window used by the stock SLOs.
DEFAULT_WINDOW_S = 900

#: Default ring capacity.  1024 x 900 s is ~10.6 simulated days -- wider
#: than any experiment's evaluation window, so eviction only matters for
#: long-lived serving processes (where the overflow aggregate keeps the
#: totals exact anyway).
DEFAULT_WINDOW_CAPACITY = 1024


class _SeriesBase:
    """Shared window bookkeeping for the three series kinds.

    Subclasses store per-window payloads in ``windows`` (index -> payload)
    and must implement ``_fold_overflow(payload)`` to absorb an evicted
    window and ``_merge_window(idx, payload)`` to fold a peer's window in.
    """

    __slots__ = ("name", "labels", "window_s", "capacity", "windows",
                 "dropped_windows", "_max_idx")

    def __init__(
        self,
        name: str,
        window_s: Number = DEFAULT_WINDOW_S,
        capacity: int = DEFAULT_WINDOW_CAPACITY,
        labels: Optional[Dict[str, str]] = None,
    ):
        if window_s <= 0:
            raise ProRPError(f"series {name!r}: window_s must be > 0")
        if capacity < 1:
            raise ProRPError(f"series {name!r}: capacity must be >= 1")
        self.name = name
        self.labels = dict(labels) if labels else None
        self.window_s = window_s
        self.capacity = capacity
        self.windows: Dict[int, object] = {}
        self.dropped_windows = 0
        self._max_idx: Optional[int] = None

    def index(self, t: Number) -> int:
        return int(t // self.window_s)

    def window_start(self, idx: int) -> Number:
        return idx * self.window_s

    def _floor_idx(self) -> Optional[int]:
        """Oldest index still retained; anything older folds to overflow."""
        if self._max_idx is None:
            return None
        return self._max_idx - self.capacity + 1

    def _is_overflow(self, idx: int) -> bool:
        floor = self._floor_idx()
        return floor is not None and idx < floor

    def _touch(self, idx: int):
        """Get-or-create the window for ``idx``, evicting anything the
        ring no longer covers.  Caller has checked ``_is_overflow``."""
        if self._max_idx is None or idx > self._max_idx:
            self._max_idx = idx
            floor = idx - self.capacity + 1
            for old in sorted(k for k in self.windows if k < floor):
                self._fold_overflow(old, self.windows.pop(old))
                self.dropped_windows += 1
        win = self.windows.get(idx)
        if win is None:
            win = self._new_window()
            self.windows[idx] = win
        return win

    def _check_mergeable(self, other: "_SeriesBase") -> None:
        if other.window_s != self.window_s:
            raise ProRPError(
                f"series {self.name!r}: cannot merge window_s="
                f"{other.window_s} into window_s={self.window_s}"
            )

    def merge(self, other: "_SeriesBase") -> None:
        self._check_mergeable(other)
        self._merge_overflow(other)
        self.dropped_windows += other.dropped_windows
        if other._max_idx is not None and (
            self._max_idx is None or other._max_idx > self._max_idx
        ):
            # Adopt the peer's newer high-water mark first so its old
            # windows route to overflow exactly as a serial run would.
            self._touch(other._max_idx)
        for idx in sorted(other.windows):
            payload = other.windows[idx]
            if self._is_overflow(idx):
                self._fold_overflow(idx, payload)
                self.dropped_windows += 1
            else:
                self._merge_window(idx, payload)

    # -- subclass hooks -------------------------------------------------
    def _new_window(self):  # pragma: no cover - abstract
        raise NotImplementedError

    def _fold_overflow(self, idx: int, payload) -> None:  # pragma: no cover
        raise NotImplementedError

    def _merge_window(self, idx: int, payload) -> None:  # pragma: no cover
        raise NotImplementedError

    def _merge_overflow(self, other) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class CounterSeries(_SeriesBase):
    """Per-window monotone counts (logins, sheds, idle seconds, ...)."""

    __slots__ = ("overflow",)
    kind = "counter_series"

    def __init__(self, name, window_s=DEFAULT_WINDOW_S,
                 capacity=DEFAULT_WINDOW_CAPACITY, labels=None):
        super().__init__(name, window_s, capacity, labels)
        self.overflow: Number = 0

    def inc(self, t: Number, n: Number = 1) -> None:
        if n < 0:
            raise ProRPError(f"series {self.name!r} cannot decrease (inc {n})")
        idx = self.index(t)
        if self._is_overflow(idx):
            self.overflow += n
            return
        win = self._touch(idx)
        self.windows[idx] = win + n

    def add_interval(self, start: Number, end: Number, weight: Number = 1) -> None:
        """Distribute ``(end - start) * weight`` across the windows the
        interval overlaps (used for idle/used/unavailable second streams)."""
        if end <= start:
            return
        idx = self.index(start)
        while self.window_start(idx) < end:
            lo = max(start, self.window_start(idx))
            hi = min(end, self.window_start(idx + 1))
            if hi > lo:
                self.inc(lo, (hi - lo) * weight)
            idx += 1

    def total(self) -> Number:
        return self.overflow + sum(self.windows.values())

    def value_at(self, t: Number) -> Number:
        return self.windows.get(self.index(t), 0)

    def sum_last(self, now: Number, span_s: Number) -> Number:
        """Sum of the complete windows covering ``[now - span_s, now)``.

        The window containing ``now`` itself is excluded -- it is still
        filling, and including it would make evaluations racy.
        """
        end_idx = self.index(now)
        n_windows = max(1, int(-(-span_s // self.window_s)))
        return sum(
            self.windows.get(idx, 0)
            for idx in range(end_idx - n_windows, end_idx)
        )

    def window_items(self) -> List[Tuple[Number, Number]]:
        """``(window_start, value)`` pairs, oldest first."""
        return [(self.window_start(i), self.windows[i])
                for i in sorted(self.windows)]

    def _new_window(self):
        return 0

    def _fold_overflow(self, idx, payload) -> None:
        self.overflow += payload

    def _merge_window(self, idx, payload) -> None:
        win = self._touch(idx)
        self.windows[idx] = win + payload

    def _merge_overflow(self, other) -> None:
        self.overflow += other.overflow

    def snapshot(self) -> Dict[str, object]:
        return {
            "window_s": self.window_s,
            "total": self.total(),
            "windows": len(self.windows),
            "dropped_windows": self.dropped_windows,
            "overflow": self.overflow,
        }


class GaugeSeries(_SeriesBase):
    """Per-window last-written value (breaker state, queue depth, ...).

    Within a window, later writes win; across windows the newest window
    wins.  ``last`` is the newest value ever written, which is what the
    threshold SLOs evaluate ("is the breaker open *right now*").
    """

    __slots__ = ("overflow_idx", "overflow_value")
    kind = "gauge_series"

    def __init__(self, name, window_s=DEFAULT_WINDOW_S,
                 capacity=DEFAULT_WINDOW_CAPACITY, labels=None):
        super().__init__(name, window_s, capacity, labels)
        self.overflow_idx: Optional[int] = None
        self.overflow_value: Optional[Number] = None

    def set(self, t: Number, value: Number) -> None:
        idx = self.index(t)
        if self._is_overflow(idx):
            if self.overflow_idx is None or idx >= self.overflow_idx:
                self.overflow_idx, self.overflow_value = idx, value
            return
        self._touch(idx)
        self.windows[idx] = value

    @property
    def last(self) -> Optional[Number]:
        if self.windows:
            return self.windows[max(self.windows)]
        return self.overflow_value

    def window_items(self) -> List[Tuple[Number, Number]]:
        return [(self.window_start(i), self.windows[i])
                for i in sorted(self.windows)]

    def max_last(self, now: Number, span_s: Number) -> Optional[Number]:
        """Max over the complete windows covering ``[now - span_s, now)``."""
        end_idx = self.index(now)
        n_windows = max(1, int(-(-span_s // self.window_s)))
        values = [self.windows[idx]
                  for idx in range(end_idx - n_windows, end_idx)
                  if idx in self.windows]
        return max(values) if values else None

    def _new_window(self):
        return None

    def _fold_overflow(self, idx, payload) -> None:
        # Keep the newest evicted window as the overflow marker so
        # ``last`` survives even when every window has rolled out.
        if self.overflow_idx is None or idx >= self.overflow_idx:
            self.overflow_idx, self.overflow_value = idx, payload

    def _merge_window(self, idx, payload) -> None:
        self._touch(idx)
        self.windows[idx] = payload  # peer merge is "later": last write wins

    def _merge_overflow(self, other) -> None:
        if other.overflow_idx is not None and (
            self.overflow_idx is None or other.overflow_idx >= self.overflow_idx
        ):
            self.overflow_idx = other.overflow_idx
            self.overflow_value = other.overflow_value

    def snapshot(self) -> Dict[str, object]:
        return {
            "window_s": self.window_s,
            "last": self.last,
            "windows": len(self.windows),
            "dropped_windows": self.dropped_windows,
        }


class _HistWindow:
    """One window of histogram deltas, plus the worst-observation exemplar."""

    __slots__ = ("counts", "count", "sum", "min", "max", "exemplar")

    def __init__(self, n_buckets: int):
        self.counts = [0] * n_buckets
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        #: ``(value, token)`` of the largest observation in this window --
        #: the span/request id operators pivot to when a window's p99 pages.
        self.exemplar: Optional[Tuple[float, str]] = None

    def observe(self, bucket: int, value: float, token: Optional[str]) -> None:
        self.counts[bucket] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
            if token is not None:
                self.exemplar = (value, token)

    def fold(self, other: "_HistWindow") -> None:
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.sum += other.sum
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
            self.exemplar = other.exemplar


class HistogramSeries(_SeriesBase):
    """Per-window histogram deltas over a fixed bucket layout.

    Unlike the cumulative :class:`~repro.observability.metrics.Histogram`
    there is no raw-sample buffer: percentiles are bucket-interpolated,
    which is what a scrape-based monitoring plane has anyway.
    """

    __slots__ = ("buckets", "overflow")
    kind = "histogram_series"

    def __init__(self, name, window_s=DEFAULT_WINDOW_S, buckets=None,
                 capacity=DEFAULT_WINDOW_CAPACITY, labels=None):
        super().__init__(name, window_s, capacity, labels)
        bounds = list(LATENCY_BUCKETS_MS if buckets is None else buckets)
        if not bounds or any(nxt <= prev for prev, nxt in zip(bounds, bounds[1:])):
            raise ProRPError(
                f"series {name!r} needs strictly increasing bucket bounds"
            )
        self.buckets = bounds
        self.overflow = _HistWindow(len(bounds) + 1)

    def observe(self, t: Number, value: Number,
                exemplar: Optional[str] = None) -> None:
        value = float(value)
        bucket = bisect.bisect_left(self.buckets, value)
        idx = self.index(t)
        if self._is_overflow(idx):
            self.overflow.observe(bucket, value, exemplar)
            return
        win = self._touch(idx)
        win.observe(bucket, value, exemplar)

    def total_count(self) -> int:
        return self.overflow.count + sum(w.count for w in self.windows.values())

    def total_sum(self) -> float:
        return self.overflow.sum + sum(w.sum for w in self.windows.values())

    def merged_counts(self) -> List[int]:
        """Bucket counts summed over overflow + every retained window."""
        counts = list(self.overflow.counts)
        for win in self.windows.values():
            for i, c in enumerate(win.counts):
                counts[i] += c
        return counts

    def worst_exemplar(self) -> Optional[Tuple[float, str]]:
        """The exemplar of the largest observation across retained windows."""
        best = None
        for win in self.windows.values():
            if win.exemplar is not None and (
                best is None or win.exemplar[0] > best[0]
            ):
                best = win.exemplar
        return best

    def _windows_in(self, now: Number, span_s: Number) -> List["_HistWindow"]:
        end_idx = self.index(now)
        n_windows = max(1, int(-(-span_s // self.window_s)))
        return [self.windows[idx]
                for idx in range(end_idx - n_windows, end_idx)
                if idx in self.windows]

    def percentile_last(self, now: Number, span_s: Number, p: float) -> float:
        """Bucket-interpolated percentile over the complete windows in
        ``[now - span_s, now)``; 0.0 when no observations landed there."""
        if not 0.0 <= p <= 100.0:
            raise ProRPError(f"percentile {p} outside [0, 100]")
        wins = self._windows_in(now, span_s)
        if not wins:
            return 0.0
        counts = [0] * (len(self.buckets) + 1)
        lo_obs: Optional[float] = None
        hi_obs: Optional[float] = None
        for win in wins:
            for i, c in enumerate(win.counts):
                counts[i] += c
            if win.min is not None and (lo_obs is None or win.min < lo_obs):
                lo_obs = win.min
            if win.max is not None and (hi_obs is None or win.max > hi_obs):
                hi_obs = win.max
        return _bucket_percentile(counts, self.buckets, p, lo_obs, hi_obs)

    def count_last(self, now: Number, span_s: Number) -> int:
        return sum(w.count for w in self._windows_in(now, span_s))

    def _new_window(self):
        return _HistWindow(len(self.buckets) + 1)

    def _fold_overflow(self, idx, payload) -> None:
        self.overflow.fold(payload)

    def _merge_window(self, idx, payload) -> None:
        win = self._touch(idx)
        win.fold(payload)

    def _merge_overflow(self, other) -> None:
        self.overflow.fold(other.overflow)

    def _check_mergeable(self, other) -> None:
        super()._check_mergeable(other)
        if other.buckets != self.buckets:
            raise ProRPError(
                f"series {self.name!r}: cannot merge differing bucket layouts"
            )

    def snapshot(self) -> Dict[str, object]:
        worst = self.worst_exemplar()
        return {
            "window_s": self.window_s,
            "count": self.total_count(),
            "sum": round(self.total_sum(), 6),
            "windows": len(self.windows),
            "dropped_windows": self.dropped_windows,
            "worst_exemplar": list(worst) if worst else None,
        }


def _bucket_percentile(
    counts: Sequence[int],
    buckets: Sequence[float],
    p: float,
    lo_obs: Optional[float],
    hi_obs: Optional[float],
) -> float:
    """Linear interpolation inside the owning bucket, clamped to the
    observed [min, max] (same scheme as ``Histogram._bucket_percentile``)."""
    total = sum(counts)
    if total == 0:
        return 0.0
    target = p / 100.0 * total
    cumulative = 0
    for i, bucket_count in enumerate(counts):
        if cumulative + bucket_count >= target:
            lo = buckets[i - 1] if i > 0 else 0.0
            hi = buckets[i] if i < len(buckets) else (hi_obs or lo)
            if lo_obs is not None:
                lo = max(lo, lo_obs)
            if hi_obs is not None:
                hi = min(hi, hi_obs)
            if bucket_count == 0 or hi < lo:
                return hi
            fraction = (target - cumulative) / bucket_count
            return lo + (hi - lo) * fraction
        cumulative += bucket_count
    return hi_obs or 0.0


Series = Union[CounterSeries, GaugeSeries, HistogramSeries]
