"""Figure 10 bench: overhead CDFs of the online components.

Paper shape: histories are KB-scale with a heavy tail (avg <= 500 tuples /
7 KB, max > 4K tuples / <= 74 KB); prediction latency is sub-second with a
long tail (avg <= 90 ms, max <= 700 ms).  The latency panel times the
*reference* predictor, matching the in-engine stored procedure.
"""

from repro.experiments.fig10 import run_fig10


def bench_fig10_overhead(benchmark, record_table):
    result = benchmark.pedantic(run_fig10, rounds=1, iterations=1)
    record_table("fig10_overhead", result.table())
    assert result.history_kb.max() < 74
    assert result.prediction_latency_ms.max() < 1000
    # Heavy tail: the max is far above the mean, as in the paper.
    assert result.tuple_counts.max() > 4 * result.tuple_counts.mean()
