"""Shared experiment plumbing: scales, fleet caching, and windows.

The paper evaluates on hundreds of thousands of production databases; the
drivers default to a laptop-scale fleet that preserves the figure shapes.
``ExperimentScale`` makes the size explicit and lets the benchmarks and
the test suite choose smaller fleets.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import lru_cache
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.parallel import SweepExecutor, resolve_executor
from repro.simulation.region import SimulationSettings
from repro.types import SECONDS_PER_DAY, ActivityTrace
from repro.workload.regions import RegionPreset, generate_region_traces

DAY = SECONDS_PER_DAY


@dataclass(frozen=True)
class ExperimentScale:
    """Fleet size and evaluation window of one experiment run.

    ``eval_end_day`` places the window inside the span; the default leaves
    two tail days so predictions at the window edge still have future
    activity to hit, and puts the default 2-day window on weekdays (the
    synthetic weekday-only databases would otherwise be quiet; the paper's
    production fleet has weekend activity everywhere).
    """

    n_databases: int = 250
    span_days: int = 35
    eval_days: int = 2
    warmup_days: int = 1
    seed: int = 0
    eval_end_day: Optional[int] = None

    def __post_init__(self) -> None:
        end_day = self.end_day
        if end_day > self.span_days:
            raise ValueError(
                f"eval_end_day={end_day} is beyond span_days={self.span_days}"
            )
        if end_day - self.eval_days - self.warmup_days <= 0:
            raise ValueError(
                f"span leaves no history before the {self.eval_days}-day "
                f"evaluation window ending on day {end_day}"
            )

    @property
    def end_day(self) -> int:
        if self.eval_end_day is not None:
            return self.eval_end_day
        return self.span_days - 2

    @property
    def eval_start(self) -> int:
        return (self.end_day - self.eval_days) * DAY

    @property
    def eval_end(self) -> int:
        return self.end_day * DAY

    def settings(self, **overrides) -> SimulationSettings:
        base = dict(
            eval_start=self.eval_start,
            eval_end=self.eval_end,
            warmup_s=self.warmup_days * DAY,
            seed=self.seed,
        )
        base.update(overrides)
        return SimulationSettings(**base)

    def smaller(
        self, n_databases: int, eval_days: Optional[int] = None
    ) -> "ExperimentScale":
        return replace(
            self,
            n_databases=n_databases,
            eval_days=eval_days if eval_days is not None else self.eval_days,
        )


#: The default scale used by the benchmark harness: 400 databases over a
#: 3-weekday evaluation window.
BENCH_SCALE = ExperimentScale(n_databases=400, eval_days=3)

#: A tiny scale for the test suite.
TEST_SCALE = ExperimentScale(n_databases=60, eval_days=1)


@lru_cache(maxsize=16)
def _cached_fleet(
    preset_value: str, n_databases: int, span_days: int, seed: int
) -> Tuple[ActivityTrace, ...]:
    preset = RegionPreset(preset_value)
    return tuple(
        generate_region_traces(preset, n_databases, span_days=span_days, seed=seed)
    )


def region_fleet(
    preset: RegionPreset, scale: ExperimentScale
) -> List[ActivityTrace]:
    """A (cached) region fleet at the requested scale."""
    return list(
        _cached_fleet(preset.value, scale.n_databases, scale.span_days, scale.seed)
    )


def sweep_map(
    worker: Callable[[Any, Any], Any],
    context: Any,
    items: Sequence[Any],
    executor: Optional[SweepExecutor] = None,
    workers: Optional[int] = None,
) -> List[Any]:
    """Fan an experiment sweep out through the shared executor layer.

    Every driver with independent per-knob / per-region simulations routes
    its loop body through here; ``worker`` must be a module-level function
    (the multiprocess backend pickles it by reference) and results come
    back in ``items`` order, so driver output is identical for any
    backend.  Trace generation is deterministic, so workers rebuild their
    region fleets from the (tiny) preset + scale description instead of
    shipping traces across the process boundary; the per-process
    ``region_fleet`` cache amortises that across a worker's tasks.
    """
    backend = resolve_executor(executor, workers)
    return backend.run(worker, context, items)
