"""The paper's future-work directions, implemented (Section 11).

1. Proactive auto-scale in small capacity increments: a reactive scaler
   throttles demand spikes during its reaction lag; the proactive envelope
   scaler pre-provisions the historical per-time-of-day demand.
2. Automated knob selection: sensitivity analysis ranks the Table 1 knobs
   by KPI impact (confidence and window dominate, as the paper's manual
   choice assumed).
3. Prediction-aware tenant placement: databases predicted to resume at the
   same minute are spread across nodes, flattening pre-warm bursts.
4. Prediction-aligned maintenance: backups scheduled inside predicted
   online windows stop resuming databases just for maintenance.

Run:  python examples/future_work.py
"""

from repro.analysis import format_table
from repro.autoscale import (
    ProactiveScaler,
    ReactiveScaler,
    capacity_from_activity,
    evaluate_scaler,
)
from repro.cluster import Cluster
from repro.cluster.placement import PlacementAdvisor
from repro.config import ProRPConfig
from repro.maintenance import (
    MaintenanceKind,
    MaintenanceOperation,
    NaiveScheduler,
    PredictiveScheduler,
    evaluate_schedule,
)
from repro.maintenance.scheduler import build_histories
from repro.simulation import SimulationSettings
from repro.training import TrainingPipeline
from repro.training.knob_selection import rank_knobs
from repro.types import (
    ActivityTrace,
    Session,
    SECONDS_PER_DAY as DAY,
    SECONDS_PER_HOUR as HOUR,
    SECONDS_PER_MINUTE as MIN,
)
from repro.workload import RegionPreset, generate_region_traces


def daily_traces(n):
    return [
        ActivityTrace(
            f"db-{i}",
            [Session(d * DAY + 9 * HOUR, d * DAY + 17 * HOUR) for d in range(30)],
        )
        for i in range(n)
    ]


def autoscale_demo() -> None:
    activity = daily_traces(1)[0]
    capacity = capacity_from_activity(activity, span_end=30 * DAY, seed=5)
    window = (29 * DAY, 30 * DAY)
    rows = []
    for scaler in (
        ReactiveScaler(reaction_slots=1, cooldown_slots=6),
        ProactiveScaler(history_days=14, quantile=0.8),
    ):
        ev = evaluate_scaler(scaler, capacity, *window)
        rows.append(
            [
                ev.scaler,
                round(ev.throttled_percent, 2),
                round(ev.overprovisioned_percent, 2),
            ]
        )
    print(
        format_table(
            ["scaler", "throttled % of demand", "over-provisioned % of alloc"],
            rows,
            title="(1) Multi-level auto-scale: one bursty daily database",
        )
    )
    print()


def knob_selection_demo() -> None:
    traces = generate_region_traces(RegionPreset.EU1, 60, span_days=31, seed=6)
    settings = SimulationSettings(eval_start=29 * DAY, eval_end=30 * DAY)
    impacts = rank_knobs(
        TrainingPipeline(traces, settings),
        ProRPConfig(),
        {
            "confidence": [0.1, 0.5, 0.8],
            "window_s": [1 * HOUR, 7 * HOUR],
            "prewarm_s": [1 * MIN, 15 * MIN],
        },
    )
    rows = [
        [impact.knob, round(impact.impact, 1), round(impact.qos_spread, 1)]
        for impact in impacts
    ]
    print(
        format_table(
            ["knob", "objective spread", "QoS spread"],
            rows,
            title="(2) Automated knob selection: sensitivity ranking",
        )
    )
    print()


def placement_demo() -> None:
    cluster = Cluster(n_nodes=4, node_capacity=32)
    advisor = PlacementAdvisor(cluster)
    # 12 databases all predicted to resume at 09:00 sharp.
    for i in range(12):
        advisor.place(f"correlated-{i}", 9 * HOUR)
    rows = [
        [node.node_id, advisor.peak_pressure(node.node_id)]
        for node in cluster.nodes
    ]
    print(
        format_table(
            ["node", "peak predicted resumes / 5 min"],
            rows,
            title="(3) Prediction-aware placement of 12 correlated databases",
        )
    )
    print()


def maintenance_demo() -> None:
    traces = {t.database_id: t for t in daily_traces(12)}
    operations = [
        MaintenanceOperation.with_default_duration(
            db_id, MaintenanceKind.BACKUP, 28 * DAY, 29 * DAY
        )
        for db_id in traces
    ]
    histories = build_histories(list(traces.values()), as_of=28 * DAY, history_days=28)
    rows = []
    for name, schedule in (
        ("naive", [NaiveScheduler().schedule(op) for op in operations]),
        (
            "predictive",
            [
                PredictiveScheduler(histories, ProRPConfig()).schedule(op)
                for op in operations
            ],
        ),
    ):
        ev = evaluate_schedule(schedule, traces, name)
        rows.append([name, ev.total, round(ev.online_percent, 1), ev.extra_resumes])
    print(
        format_table(
            ["scheduler", "ops", "% while online", "extra resumes"],
            rows,
            title="(4) Maintenance inside predicted-online windows",
        )
    )


def main() -> None:
    autoscale_demo()
    knob_selection_demo()
    placement_demo()
    maintenance_demo()


if __name__ == "__main__":
    main()
