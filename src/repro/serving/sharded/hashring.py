"""Consistent hashing of regions onto worker shards.

The router places each *region* (the unit of prediction locality --
databases never share prediction state across regions, per the paper's
per-region fleets and "Serverless in the Wild"'s partitioning argument)
on a ring of virtual nodes.  ``sha1`` keys the ring because it is stable
across processes and runs -- Python's ``hash()`` is salted per process,
which would scatter every restart's routing.

Replica candidates for a key are the first R *distinct* workers walking
clockwise from the key's point; the router tries them in order and sheds
only when every candidate's outstanding-request window is full or its
breaker is open.  Adding/removing a worker moves only the ring arcs it
owned -- the classic consistent-hashing property, which keeps worker
respawn from re-routing the whole fleet.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigError

#: Virtual nodes per worker: enough to even out region placement for
#: single-digit worker counts without bloating ring rebuilds.
DEFAULT_VNODES = 64


def _point(key: str) -> int:
    return int.from_bytes(
        hashlib.sha1(key.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """An immutable-after-build consistent-hash ring over worker ids."""

    def __init__(self, workers: Sequence[int], vnodes: int = DEFAULT_VNODES):
        if not workers:
            raise ConfigError("hash ring needs at least one worker")
        if vnodes < 1:
            raise ConfigError("vnodes must be at least 1")
        self.workers = tuple(sorted(set(workers)))
        self.vnodes = vnodes
        points: List[Tuple[int, int]] = []
        for worker in self.workers:
            for v in range(vnodes):
                points.append((_point(f"worker:{worker}:{v}"), worker))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [w for _, w in points]

    def candidates(self, key: str, replicas: int = 2) -> Tuple[int, ...]:
        """The first ``replicas`` distinct workers clockwise from
        ``key``'s ring point, primary first."""
        want = min(replicas, len(self.workers))
        start = bisect.bisect(self._points, _point(key)) % len(self._points)
        out: List[int] = []
        for step in range(len(self._points)):
            owner = self._owners[(start + step) % len(self._points)]
            if owner not in out:
                out.append(owner)
                if len(out) == want:
                    break
        return tuple(out)

    def primary(self, key: str) -> int:
        return self.candidates(key, replicas=1)[0]

    def assignment(self, keys: Sequence[str]) -> Dict[str, int]:
        """``key -> primary worker`` for a whole key set (used by tests
        and the bench to report shard balance)."""
        return {key: self.primary(key) for key in keys}
