"""Command-line interface for the ProRP reproduction.

Subcommands::

    python -m repro simulate --region EU1 --databases 200 --policy proactive
    python -m repro figures --which fig6 fig9 --databases 250
    python -m repro tune --region US1 --databases 150
    python -m repro tune-online --databases 60 --drift dst_shift
    python -m repro observe --databases 50 --chrome-trace trace.json
    python -m repro chaos --fault-rates 0.0 0.1 --check-monotonic
    python -m repro serve --port 7077
    python -m repro serve --loadgen 8 --requests-per-client 25

``simulate`` prints the KPI report of one policy on one region fleet;
``figures`` regenerates evaluation figures (tables to stdout); ``tune``
runs the training pipeline over the window/confidence grid;
``tune-online`` replaces that offline sweep with the windowed online
knob tuner + predictor bank (docs/tuning.md); ``observe``
runs one instrumented simulation and exports its trace and metrics;
``chaos`` sweeps an injected fault rate against QoS/COGS
(docs/resilience.md); ``serve`` runs the online prediction/resume
gateway (docs/serving.md) -- over TCP, as a one-shot scripted run
(``--once``), or against the built-in load generator (``--loadgen``).
``simulate``/``figures``/``tune`` also accept the export flags
(``--trace-out``, ``--metrics-out``, ``--chrome-trace``); passing any of
them turns the instrumentation on for that run.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis import format_table
from repro.config import ProRPConfig
from repro.core.billing import billing_report
from repro.experiments.common import ExperimentScale
from repro.observability import OBS, disable, enable, exporters
from repro.simulation.region import simulate_region
from repro.training import ParameterGrid, TrainingPipeline
from repro.types import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.workload.regions import RegionPreset, generate_region_traces

DAY = SECONDS_PER_DAY
HOUR = SECONDS_PER_HOUR

#: figure name -> experiment runner factory (imported lazily).
FIGURES = ("fig3", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ProRP reproduction: proactive resume and pause of "
        "resources for serverless databases (SIGMOD-Companion 2024).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser("simulate", help="run one policy on one region")
    _common_fleet_args(simulate)
    _policy_args(simulate)
    _observability_args(simulate)

    figures = sub.add_parser("figures", help="regenerate evaluation figures")
    _common_fleet_args(figures)
    figures.add_argument(
        "--which",
        nargs="+",
        choices=list(FIGURES) + ["all"],
        default=["all"],
        help="which figures to regenerate",
    )
    _workers_arg(figures)
    _observability_args(figures)

    tune = sub.add_parser("tune", help="run the training pipeline")
    _common_fleet_args(tune)
    _workers_arg(tune)
    _observability_args(tune)

    tune_online = sub.add_parser(
        "tune-online",
        help="windowed online knob tuning + predictor bank against the "
        "static baseline (docs/tuning.md)",
    )
    tune_online.add_argument(
        "--databases", type=int, default=60,
        help="synthetic fleet size (columnar lean engine)",
    )
    tune_online.add_argument("--span-days", type=int, default=15)
    tune_online.add_argument("--seed", type=int, default=1)
    tune_online.add_argument(
        "--windows", type=int, default=3,
        help="aligned one-day evaluation windows to drive the tuner over",
    )
    tune_online.add_argument(
        "--start-day", type=int, default=None,
        help="day the first window opens (default: span-days - windows)",
    )
    tune_online.add_argument(
        "--policies", nargs="+", default=None, metavar="POLICY",
        help="predictor-bank policies (default: sliding hybrid_histogram "
        "survival); pass --no-bank to disable the bank entirely",
    )
    tune_online.add_argument(
        "--no-bank", action="store_true",
        help="run the tuner without the predictor bank (the online series "
        "is the active candidate's plain evaluation)",
    )
    tune_online.add_argument(
        "--drift",
        choices=["none", "archetype_switch", "dst_shift", "migration"],
        default="none",
        help="inject a workload drift the static baseline cannot follow",
    )
    tune_online.add_argument(
        "--drift-day", type=int, default=None,
        help="day the drift lands (default: 2/3 through the span)",
    )
    tune_online.add_argument(
        "--shift-minutes", type=int, default=60,
        help="schedule shift for dst_shift/migration drifts",
    )
    tune_online.add_argument(
        "--state-dir", metavar="PATH", default=None,
        help="journal tuner decisions to a WAL + checkpoints here; an "
        "existing directory is recovered and the run resumes from the "
        "first un-journaled window (docs/durability.md)",
    )
    _workers_arg(tune_online)
    _observability_args(tune_online)

    chaos = sub.add_parser(
        "chaos",
        help="fault-injection sweep: fault rate vs QoS/COGS "
        "(see docs/resilience.md)",
    )
    _common_fleet_args(chaos)
    _workers_arg(chaos)
    chaos.add_argument(
        "--fault-rates",
        type=float,
        nargs="+",
        default=None,
        help="per-consultation fault probabilities to sweep "
        "(default: 0.0 0.02 0.05 0.1)",
    )
    chaos.add_argument(
        "--points",
        nargs="+",
        default=None,
        metavar="POINT",
        help="fault points for the uniform sweep plan "
        "(default: predictor.exception resume.scan.unavailable "
        "cluster.node.crash)",
    )
    chaos.add_argument(
        "--plan",
        metavar="PATH",
        default=None,
        help="JSON fault plan file; replaces the rate sweep with a single "
        "run of exactly this plan",
    )
    chaos.add_argument(
        "--check-monotonic",
        action="store_true",
        help="exit non-zero unless QoS is non-increasing as the fault "
        "rate grows (0.5pp slack per step for sampling noise)",
    )
    chaos.add_argument(
        "--slo-scenario",
        action="store_true",
        help="run the SLO alerting scenario instead of the rate sweep: "
        "a scheduled predictor outage + latency spike must fire and "
        "clear the stock alerts, and the streaming KPI series must "
        "reconcile with the offline telemetry (docs/observability.md)",
    )
    chaos.add_argument(
        "--crash-recovery",
        action="store_true",
        help="run the control-plane crash-recovery scenario instead of "
        "the rate sweep: kill the durable workflow engine at a random "
        "journal append mid-day, recover from WAL + checkpoint, and "
        "require byte-identical KPI reports and per-database outcome "
        "ledgers with every workflow executed exactly once "
        "(docs/durability.md)",
    )
    chaos.add_argument(
        "--crash-mode",
        choices=["crash", "torn", "corrupt"],
        default=None,
        help="with --crash-recovery: how the journal append dies "
        "(default: seeded random choice)",
    )

    digest = sub.add_parser(
        "digest", help="full operator report: all policies + drill-downs"
    )
    _common_fleet_args(digest)

    observe = sub.add_parser(
        "observe",
        help="run one instrumented simulation; print the live metrics "
        "snapshot and export the trace",
    )
    _common_fleet_args(observe)
    _policy_args(observe)
    _observability_args(observe)
    observe.add_argument(
        "--top",
        action="store_true",
        help="watch the run with the stock SLO rule set and print the "
        "'observe top' dashboard (windowed sparklines + alert ledger) "
        "instead of the flat metrics snapshot",
    )

    serve = sub.add_parser(
        "serve",
        help="run the online prediction/resume gateway "
        "(see docs/serving.md)",
    )
    serve.add_argument(
        "--region",
        choices=[preset.value for preset in RegionPreset],
        default="EU1",
    )
    serve.add_argument(
        "--databases", type=int, default=40,
        help="synthetic fleet size registered with the gateway",
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=7077,
        help="TCP port (0 picks a free port)",
    )
    serve.add_argument(
        "--once", action="store_true",
        help="serve one scripted request batch in-process, then shut "
        "down cleanly (no TCP listener)",
    )
    serve.add_argument(
        "--loadgen", type=int, default=0, metavar="CLIENTS",
        help="drive the in-process gateway with a closed-loop load "
        "generator instead of listening on TCP",
    )
    serve.add_argument(
        "--requests-per-client", type=int, default=25,
        help="closed-loop requests each --loadgen client issues",
    )
    serve.add_argument(
        "--queue-depth", type=int, default=256,
        help="admission bound on queued + in-flight requests",
    )
    serve.add_argument(
        "--max-batch-size", type=int, default=64,
        help="micro-batcher flush size (1 disables batching)",
    )
    serve.add_argument(
        "--linger-ms", type=float, default=2.0,
        help="micro-batcher max linger before a partial batch flushes",
    )
    serve.add_argument(
        "--tenant-rate", type=float, default=0.0,
        help="per-tenant token-bucket rate in requests/s (0 = unlimited)",
    )
    serve.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="worker processes for the shared-nothing sharded tier "
        "(consistent-hash router + shared-memory history arena); 1 runs "
        "the classic in-process gateway (docs/serving.md)",
    )
    serve.add_argument(
        "--router-window", type=int, default=32,
        help="with --shards > 1: outstanding-request window per worker "
        "connection before the router sheds Overloaded",
    )
    serve.add_argument(
        "--replicas", type=int, default=2,
        help="with --shards > 1: ring replica candidates tried per "
        "region before shedding",
    )
    _observability_args(serve)
    serve.add_argument(
        "--openmetrics-out", metavar="PATH", default=None,
        help="with --once: issue a 'metrics' request after the scripted "
        "batch and write its OpenMetrics body to PATH (implies "
        "observability on)",
    )
    serve.add_argument(
        "--state-dir", metavar="PATH", default=None,
        help="durable control-plane directory: resume-scan pre-warms are "
        "journaled as PROACTIVE_RESUME workflows to a WAL here, stop() "
        "checkpoints it, and an existing directory is recovered on "
        "startup (docs/durability.md)",
    )
    return parser


def _policy_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--policy",
        choices=["reactive", "proactive", "optimal", "provisioned"],
        default="proactive",
    )
    parser.add_argument(
        "--confidence", type=float, default=0.1, help="threshold c (Table 1)"
    )
    parser.add_argument(
        "--window-hours", type=float, default=7.0, help="window size w"
    )


def _observability_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="write completed spans as JSONL (one span per line)",
    )
    parser.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="write the metrics snapshot (JSON when PATH ends in .json, "
        "plain text otherwise)",
    )
    parser.add_argument(
        "--chrome-trace", metavar="PATH", default=None,
        help="write a Chrome trace-event file (open in chrome://tracing "
        "or Perfetto)",
    )


def _common_fleet_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--region",
        choices=[preset.value for preset in RegionPreset],
        default="EU1",
    )
    parser.add_argument("--databases", type=int, default=200)
    parser.add_argument("--eval-days", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)


def _workers_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the sweep (1 = serial; results are "
        "identical for any worker count)",
    )


def _scale(args: argparse.Namespace) -> ExperimentScale:
    return ExperimentScale(
        n_databases=args.databases, eval_days=args.eval_days, seed=args.seed
    )


def cmd_simulate(args: argparse.Namespace) -> int:
    scale = _scale(args)
    traces = generate_region_traces(
        RegionPreset(args.region), args.databases, span_days=scale.span_days,
        seed=args.seed,
    )
    config = ProRPConfig(
        confidence=args.confidence, window_s=int(args.window_hours * HOUR)
    )
    result = simulate_region(traces, args.policy, config, scale.settings())
    _print_kpi_table(args, result)
    return 0


def _print_kpi_table(args: argparse.Namespace, result) -> None:
    kpis = result.kpis()
    billing = billing_report(kpis)
    print(
        format_table(
            ["metric", "value"],
            [
                ["policy", kpis.policy],
                ["databases", kpis.n_databases],
                ["QoS % (logins served)", round(kpis.qos_percent, 2)],
                ["idle % of fleet time", round(kpis.idle_percent, 2)],
                ["  logical pause %", round(kpis.idle_logical_pause_percent, 2)],
                ["  correct pre-warm %", round(kpis.idle_correct_proactive_percent, 2)],
                ["  wrong pre-warm %", round(kpis.idle_wrong_proactive_percent, 2)],
                ["unavailable %", round(kpis.unavailable_percent, 3)],
                ["reactive resumes", kpis.workflows.reactive_resumes],
                ["proactive resumes", kpis.workflows.proactive_resumes],
                ["physical pauses", kpis.workflows.physical_pauses],
                ["allocation efficiency", round(billing.allocation_efficiency, 3)],
            ],
            title=f"{args.region}: {args.databases} databases, "
            f"{args.eval_days}-day evaluation",
        )
    )


def cmd_observe(args: argparse.Namespace) -> int:
    """One instrumented run: KPI table plus the live metrics snapshot.

    ``main`` has already enabled observability; the exports happen there
    so they also cover ``simulate``/``figures``/``tune`` with the flags.
    With ``--top`` the run is additionally watched by the stock SLO rule
    set and summarised as the ``observe top`` dashboard.
    """
    monitor = ledger = None
    if args.top:
        from repro.observability import (
            AlertLedger,
            SloMonitor,
            simulation_slos,
        )

        ledger = AlertLedger()
        monitor = SloMonitor(OBS.metrics, simulation_slos(), ledger=ledger)
        OBS.slo = monitor
    status = cmd_simulate(args)
    print()
    if monitor is not None:
        from repro.observability import render_top

        monitor.drain(_scale(args).settings().eval_end)
        OBS.slo = None
        print(render_top(
            OBS.metrics,
            ledger=ledger,
            title=f"{args.region} {args.policy} observe top",
        ))
    else:
        print(OBS.metrics.format_snapshot(
            title=f"{args.region} {args.policy} live metrics"
        ))
    spans = OBS.tracer.spans
    if spans:
        total_ms = max(s.start_ns + s.duration_ns for s in spans) / 1e6
        print(f"\n{len(spans)} spans recorded over {total_ms:.1f} ms")
    return status


def cmd_figures(args: argparse.Namespace) -> int:
    which = list(FIGURES) if "all" in args.which else args.which
    scale = _scale(args)
    for name in which:
        result = _run_figure(name, scale, workers=args.workers)
        print(result.table())
        print()
    return 0


def _run_figure(name: str, scale: ExperimentScale, workers: int = 1):
    # fig3 (trace statistics) and fig10 (one instrumented run) have no
    # sweep to fan out; every other driver takes ``workers``.
    if name == "fig3":
        from repro.experiments.fig3 import run_fig3

        return run_fig3(scale)
    if name == "fig6":
        from repro.experiments.fig6 import run_fig6

        return run_fig6(scale, workers=workers)
    if name == "fig7":
        from repro.experiments.fig7 import run_fig7

        return run_fig7(scale, workers=workers)
    if name == "fig8":
        from repro.experiments.fig8 import run_fig8

        return run_fig8(scale, workers=workers)
    if name == "fig9":
        from repro.experiments.fig9 import run_fig9

        return run_fig9(scale, workers=workers)
    if name == "fig10":
        from repro.experiments.fig10 import run_fig10

        return run_fig10(scale.smaller(scale.n_databases, eval_days=1))
    if name == "fig11":
        from repro.experiments.fig11 import run_fig11

        return run_fig11(scale, workers=workers)
    if name == "fig12":
        from repro.experiments.fig12 import run_fig12

        return run_fig12(scale, workers=workers)
    raise ValueError(f"unknown figure {name!r}")  # pragma: no cover


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.experiments.chaos import (
        DEFAULT_FAULT_RATES,
        DEFAULT_POINTS,
        run_chaos,
        run_slo_chaos,
    )
    from repro.faults import FaultPlan

    if args.crash_recovery:
        from repro.experiments.crash_recovery import run_crash_recovery

        result = run_crash_recovery(
            scale=_scale(args),
            preset=RegionPreset(args.region),
            crash_mode=args.crash_mode,
            seed=args.seed,
        )
        print(result.table())
        if not result.ok:
            print(
                "FAIL: crash recovery diverged "
                f"(crashed={result.crashed}, "
                f"reports_identical={result.reports_identical}, "
                f"ledgers_identical={result.ledgers_identical}, "
                f"exactly_once={result.exactly_once}, "
                f"none_lost={result.none_lost})"
            )
            return 1
        print(
            "OK: recovered run byte-identical to uninterrupted run; "
            "every workflow executed exactly once"
        )
        return 0

    if args.slo_scenario:
        result = run_slo_chaos(
            scale=_scale(args), preset=RegionPreset(args.region)
        )
        print(result.table())
        if not result.ok:
            print("FAIL: SLO chaos scenario did not round-trip")
            return 1
        print("OK: alerts fired and cleared; streaming == batch totals")
        return 0

    plan = FaultPlan.load(args.plan) if args.plan else None
    result = run_chaos(
        scale=_scale(args),
        preset=RegionPreset(args.region),
        fault_rates=tuple(args.fault_rates or DEFAULT_FAULT_RATES),
        points=tuple(args.points or DEFAULT_POINTS),
        plan=plan,
        workers=args.workers,
    )
    print(result.table())
    if args.check_monotonic:
        if plan is not None or len(result.rows()) < 2:
            print("--check-monotonic needs a rate sweep of >= 2 rates")
            return 2
        if not result.qos_monotonic(tolerance=0.5):
            print("FAIL: QoS did not degrade monotonically with fault rate")
            return 1
        print("OK: QoS non-increasing across the fault-rate sweep")
    return 0


def cmd_tune(args: argparse.Namespace) -> int:
    scale = _scale(args)
    traces = generate_region_traces(
        RegionPreset(args.region), args.databases, span_days=scale.span_days,
        seed=args.seed,
    )
    pipeline = TrainingPipeline(traces, scale.settings())
    from repro.tuning.candidates import validate_knob_candidates

    grid_values = {
        "window_s": [2 * HOUR, 5 * HOUR, 7 * HOUR],
        "confidence": [0.1, 0.3, 0.5],
    }
    # Same validation path as tune-online: bad knob names or values fail
    # here, at configuration time, not deep inside the sweep.
    validate_knob_candidates(ProRPConfig(), grid_values)
    grid = ParameterGrid(grid_values)
    report = pipeline.run(ProRPConfig(), grid, workers=args.workers)
    rows = [
        [
            candidate.config.window_s // HOUR,
            candidate.config.confidence,
            round(candidate.kpis.qos_percent, 1),
            round(candidate.kpis.idle_percent, 2),
            round(candidate.score, 1),
        ]
        for candidate in report.candidates
    ]
    print(
        format_table(
            ["window (h)", "confidence", "QoS %", "idle %", "score"],
            rows,
            title=f"Training sweep on {args.region}",
        )
    )
    best = report.best.config
    print(
        f"\nselected: window = {best.window_s // HOUR}h, "
        f"confidence = {best.confidence}"
    )
    return 0


def cmd_tune_online(args: argparse.Namespace) -> int:
    """Drive the online knob tuner + predictor bank and print the
    per-window decision log alongside the online-vs-static verdict."""
    from pathlib import Path

    from repro.config import DEFAULT_CONFIG
    from repro.simulation.region import SimulationSettings
    from repro.tuning.candidates import candidate_population, default_candidates
    from repro.tuning.controller import OnlineKnobTuner
    from repro.tuning.driver import run_online_tuning
    from repro.tuning.metrics import register_tuning_metrics
    from repro.workload.fleetgen import DriftSpec, FleetShardSpec

    if args.windows < 1:
        print("--windows must be >= 1")
        return 2
    start_day = (
        args.start_day
        if args.start_day is not None
        else max(1, args.span_days - args.windows)
    )
    if start_day + args.windows > args.span_days:
        print(
            f"--start-day {start_day} + --windows {args.windows} overruns "
            f"the {args.span_days}-day span"
        )
        return 2
    base = FleetShardSpec(
        n_databases=args.databases, span_days=args.span_days, seed=args.seed
    )
    fleet = base
    if args.drift != "none":
        drift_day = (
            args.drift_day
            if args.drift_day is not None
            else args.span_days * 2 // 3
        )
        fleet = DriftSpec(
            base,
            kind=args.drift,
            at_day=drift_day,
            shift_minutes=args.shift_minutes,
        )
    if OBS.enabled:
        register_tuning_metrics(OBS.metrics)
    # Clamp the baseline's history to the synthetic span: with the
    # production 28-day retention every database on a short fleet would
    # stay "new" (unpredictable, Section 4) and both arms would score a
    # meaningless 0.
    baseline = DEFAULT_CONFIG.with_overrides(
        history_days=min(
            DEFAULT_CONFIG.history_days, max(2, args.span_days // 2)
        )
    )
    challengers = tuple(
        candidate_population(baseline, default_candidates(baseline))
    )
    policies: tuple = ()
    if not args.no_bank:
        policies = tuple(
            args.policies
            if args.policies
            else ("sliding", "hybrid_histogram", "survival")
        )
    tuner = None
    if args.state_dir and (Path(args.state_dir) / "wal").exists():
        tuner = OnlineKnobTuner.recover(baseline, challengers, args.state_dir)
        print(
            f"recovered tuner from {args.state_dir}: resuming at window "
            f"{tuner.expected_window}, active candidate {tuner.active_index}"
        )
    report = run_online_tuning(
        fleet,
        baseline,
        challengers,
        n_windows=args.windows,
        settings=SimulationSettings(
            eval_start=start_day * DAY, eval_end=(start_day + 1) * DAY
        ),
        policies=policies,
        online_warmup_s=3 * DAY,
        state_dir=args.state_dir,
        tuner=tuner,
        workers=args.workers,
    )
    rows = []
    for outcome in report.windows:
        decision = outcome.decision
        event = "-"
        if decision.promoted is not None:
            event = f"promoted #{decision.promoted}"
        elif decision.demoted:
            event = "demoted to baseline"
        elif decision.pruned:
            event = f"pruned {list(decision.pruned)}"
        rows.append(
            [
                outcome.window,
                decision.active,
                len(decision.alive),
                round(outcome.online_score, 2),
                round(outcome.static_score, 2),
                event,
            ]
        )
    print(
        format_table(
            ["window", "active", "alive", "online", "static", "event"],
            rows,
            title=f"online tuning: {args.databases} databases, "
            f"{len(challengers)} challengers, drift={args.drift}",
        )
    )
    print(
        f"\nonline {report.online_score:.2f} vs static "
        f"{report.static_score:.2f} "
        f"(QoS {report.online_kpis.qos_percent:.1f}% vs "
        f"{report.static_kpis.qos_percent:.1f}%, idle "
        f"{report.online_kpis.idle_percent:.1f}% vs "
        f"{report.static_kpis.idle_percent:.1f}%) -- "
        + ("online dominates" if report.dominates_static else "static wins")
    )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import json
    import signal

    from repro.serving import (
        HealthRequest,
        MetricsRequest,
        PredictionServer,
        PredictRequest,
        ResumeScanRequest,
        ServingSettings,
        closed_loop,
        encode_response,
        fleet_login_arrays,
        serve_tcp,
    )

    now = 29 * DAY
    settings = ServingSettings(
        max_queue_depth=args.queue_depth,
        max_batch_size=args.max_batch_size,
        max_linger_ms=args.linger_ms,
        tenant_rate=args.tenant_rate,
    )
    fleets = fleet_login_arrays(
        RegionPreset(args.region),
        args.databases,
        now=now,
        seed=args.seed,
    )

    if args.shards > 1:
        return _cmd_serve_sharded(args, settings, fleets, now)

    def build_server() -> PredictionServer:
        slo_monitor = None
        if OBS.enabled:
            from repro.observability import SloMonitor, serving_slos

            slo_monitor = SloMonitor(OBS.metrics, serving_slos())
        control_plane = None
        if args.state_dir:
            from repro.controlplane.durability import (
                DurableWorkflowEngine,
                segment_paths,
            )

            if segment_paths(args.state_dir):
                control_plane = DurableWorkflowEngine.recover(args.state_dir)
                info = control_plane.recovery_info
                print(
                    f"recovered control plane from {args.state_dir}: "
                    f"{len(control_plane.workflows)} workflows "
                    f"({info['replayed']} replayed past checkpoint "
                    f"lsn {info['checkpoint_lsn']})"
                )
            else:
                control_plane = DurableWorkflowEngine(args.state_dir)
        server = PredictionServer(
            settings=settings,
            slo_monitor=slo_monitor,
            control_plane=control_plane,
        )
        for i, logins in enumerate(fleets):
            server.register_database(
                args.region, f"db-{i}", logins, paused=True
            )
        return server

    async def run_once() -> int:
        """The scripted smoke run: a batchable predict burst, one
        deliberately expired deadline (exercising the shed path), one
        resume scan, one health probe."""
        server = build_server()
        requests = [
            PredictRequest(
                f"predict-{i}",
                tuple(fleets[i % len(fleets)]),
                now,
                region=args.region,
            )
            for i in range(min(4, len(fleets)))
        ]
        requests.append(
            PredictRequest(
                "predict-expired",
                tuple(fleets[0]),
                now,
                region=args.region,
                deadline_ms=0.0,
            )
        )
        requests.append(ResumeScanRequest("scan-0", now, region=args.region))
        requests.append(HealthRequest("health-0"))
        if args.openmetrics_out:
            requests.append(MetricsRequest("metrics-0"))
        responses = await server.serve_script(requests)
        for response in responses:
            doc = encode_response(response)
            if args.openmetrics_out and doc.get("type") == "metrics":
                with open(args.openmetrics_out, "w", encoding="utf-8") as fh:
                    fh.write(doc["body"])
                print(
                    f"wrote {doc['metric_count']} metric families to "
                    f"{args.openmetrics_out}"
                )
                continue
            print(json.dumps(doc))
        print(f"served {server.stats.served} requests; shut down cleanly")
        return 0

    async def run_loadgen() -> int:
        server = build_server()
        await server.start()
        report = await closed_loop(
            server,
            fleets,
            now,
            clients=args.loadgen,
            requests_per_client=args.requests_per_client,
            region=args.region,
            seed=args.seed,
        )
        await server.stop()
        summary = report.summary()
        print(
            format_table(
                ["metric", "value"],
                [[k, v] for k, v in summary.items()],
                title=f"closed-loop {args.loadgen} clients on "
                f"{len(fleets)} databases",
            )
        )
        print("shut down cleanly")
        return 0

    async def run_tcp() -> int:
        server = build_server()
        listener = await serve_tcp(server, host=args.host, port=args.port)
        host, port = listener.sockets[0].getsockname()[:2]
        print(f"serving JSON-over-TCP on {host}:{port} (Ctrl-C to drain)")
        stop_event = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(sig, stop_event.set)
        await stop_event.wait()
        listener.close()
        await listener.wait_closed()
        await server.stop()
        print(
            f"served {server.stats.served} requests, "
            f"shed {server.admission.total_shed()}; shut down cleanly"
        )
        return 0

    if args.once:
        return asyncio.run(run_once())
    if args.loadgen > 0:
        return asyncio.run(run_loadgen())
    return asyncio.run(run_tcp())


def _cmd_serve_sharded(args, settings, fleets, now: int) -> int:
    """``serve --shards N``: the multi-process tier.  The synthetic
    fleet is partitioned into sub-regions (the consistent-hash shard
    key), registered into a shared-memory arena, and served by N spawned
    workers behind the router."""
    import asyncio
    import json
    import signal

    from repro.serving import (
        HealthRequest,
        MetricsRequest,
        PredictRequest,
        ResumeScanRequest,
        closed_loop,
        encode_response,
        serve_tcp,
    )
    from repro.serving.sharded import RouterSettings, ShardRouter

    database_ids = [f"db-{i}" for i in range(len(fleets))]
    # Enough sub-regions that every worker owns some shards; each
    # database's requests carry its sub-region so routing is stable.
    n_partitions = max(8, args.shards * 4)
    regions = [
        f"{args.region}-s{i % n_partitions}" for i in range(len(fleets))
    ]
    fleet: dict = {}
    for database_id, logins, region in zip(database_ids, fleets, regions):
        fleet.setdefault(region, []).append((database_id, logins, True))
    router = ShardRouter.build(
        fleet,
        n_workers=args.shards,
        worker_settings=settings,
        settings=RouterSettings(
            window=args.router_window, replicas=args.replicas
        ),
    )

    async def run_once() -> int:
        requests = [
            PredictRequest(
                f"predict-{i}",
                (),
                now,
                region=regions[i],
                database_id=database_ids[i],
            )
            for i in range(min(4, len(database_ids)))
        ]
        requests.append(
            ResumeScanRequest("scan-0", now, region=regions[0])
        )
        requests.append(HealthRequest("health-0"))
        if args.openmetrics_out:
            requests.append(MetricsRequest("metrics-0"))
        responses = await router.serve_script(requests)
        for response in responses:
            doc = encode_response(response)
            if args.openmetrics_out and doc.get("type") == "metrics":
                with open(args.openmetrics_out, "w", encoding="utf-8") as fh:
                    fh.write(doc["body"])
                print(
                    f"wrote {doc['metric_count']} metric families "
                    f"(merged across {args.shards} workers) to "
                    f"{args.openmetrics_out}"
                )
                continue
            print(json.dumps(doc))
        print(
            f"routed {router.stats.routed} requests across "
            f"{args.shards} workers; shut down cleanly"
        )
        return 0

    async def run_loadgen() -> int:
        await router.start()
        report = await closed_loop(
            router,
            fleets,
            now,
            clients=args.loadgen,
            requests_per_client=args.requests_per_client,
            seed=args.seed,
            database_ids=database_ids,
            regions=regions,
        )
        await router.stop()
        summary = report.summary()
        summary["router_shed_overloaded"] = router.stats.shed_overloaded
        summary["router_max_outstanding"] = router.stats.max_outstanding
        print(
            format_table(
                ["metric", "value"],
                [[k, v] for k, v in summary.items()],
                title=f"closed-loop {args.loadgen} clients, "
                f"{args.shards} workers, {len(fleets)} databases",
            )
        )
        print("shut down cleanly")
        return 0

    async def run_tcp() -> int:
        listener = await serve_tcp(router, host=args.host, port=args.port)
        host, port = listener.sockets[0].getsockname()[:2]
        print(
            f"serving JSON-over-TCP on {host}:{port} via {args.shards} "
            f"workers (Ctrl-C to drain)"
        )
        stop_event = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(sig, stop_event.set)
        await stop_event.wait()
        listener.close()
        await listener.wait_closed()
        await router.stop()
        print(
            f"routed {router.stats.routed} requests, shed "
            f"{router.stats.shed_overloaded} at the router; "
            f"shut down cleanly"
        )
        return 0

    if args.once:
        return asyncio.run(run_once())
    if args.loadgen > 0:
        return asyncio.run(run_loadgen())
    return asyncio.run(run_tcp())


def cmd_digest(args: argparse.Namespace) -> int:
    from repro.report import region_digest

    scale = _scale(args)
    traces = generate_region_traces(
        RegionPreset(args.region), args.databases, span_days=scale.span_days,
        seed=args.seed,
    )
    print(
        region_digest(
            traces,
            scale.settings(),
            title=f"{args.region}: {args.databases} databases, "
            f"{args.eval_days}-day window",
        )
    )
    return 0


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "simulate":
        return cmd_simulate(args)
    if args.command == "observe":
        return cmd_observe(args)
    if args.command == "figures":
        return cmd_figures(args)
    if args.command == "tune":
        return cmd_tune(args)
    if args.command == "tune-online":
        return cmd_tune_online(args)
    if args.command == "chaos":
        return cmd_chaos(args)
    if args.command == "serve":
        return cmd_serve(args)
    if args.command == "digest":
        return cmd_digest(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    chrome_trace = getattr(args, "chrome_trace", None)
    openmetrics_out = getattr(args, "openmetrics_out", None)
    observing = args.command == "observe" or any(
        (trace_out, metrics_out, chrome_trace, openmetrics_out)
    )
    if not observing:
        return _dispatch(args)
    runtime = enable()
    try:
        status = _dispatch(args)
        if trace_out:
            n = exporters.write_spans_jsonl(runtime.tracer.spans, trace_out)
            print(f"wrote {n} spans to {trace_out}")
        if chrome_trace:
            n = exporters.write_chrome_trace(runtime.tracer.spans, chrome_trace)
            print(f"wrote {n} trace events to {chrome_trace}")
        if metrics_out:
            exporters.write_metrics_snapshot(
                runtime.metrics, metrics_out, title=f"repro {args.command}"
            )
            print(f"wrote {len(runtime.metrics)} metrics to {metrics_out}")
        return status
    finally:
        disable()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
