"""Executor: evaluates planned statements against a storage Database.

Implements SQL NULL semantics where they matter for the paper's procedures:
aggregates over an empty set return NULL (Algorithm 4 line 25 tests
``IF @firstLogin IS NOT NULL``), comparisons involving NULL are not true,
and COUNT(*) of an empty set is 0.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional

from repro.errors import SqlBindingError, SqlExecutionError
from repro.observability.runtime import OBS
from repro.sqlengine import ast
from repro.sqlengine.planner import ScanPlan, plan_scan
from repro.storage.database import Database
from repro.storage.schema import Column, ColumnType, TableSchema
from repro.storage.table import Table

Row = Dict[str, Any]
Params = Dict[str, Any]


# ---------------------------------------------------------------------------
# Expression evaluation
# ---------------------------------------------------------------------------


def evaluate(expression: ast.Expression, row: Optional[Row], params: Params) -> Any:
    """Evaluate an expression against one row (row may be None for
    constant expressions such as index bounds or INSERT values)."""
    if isinstance(expression, ast.Literal):
        return expression.value
    if isinstance(expression, ast.Param):
        if expression.name not in params:
            raise SqlBindingError(f"unbound parameter @{expression.name}")
        return params[expression.name]
    if isinstance(expression, ast.ColumnRef):
        if row is None:
            raise SqlExecutionError(
                f"column {expression.name!r} referenced in a row-free context"
            )
        if expression.name not in row:
            raise SqlExecutionError(f"unknown column {expression.name!r}")
        return row[expression.name]
    if isinstance(expression, ast.UnaryOp):
        value = evaluate(expression.operand, row, params)
        if expression.op == "NOT":
            if value is None:
                return None
            return not _truthy(value)
        if value is None:
            return None
        return -value
    if isinstance(expression, ast.IsNull):
        value = evaluate(expression.operand, row, params)
        return (value is not None) if expression.negated else (value is None)
    if isinstance(expression, ast.Between):
        value = evaluate(expression.operand, row, params)
        low = evaluate(expression.low, row, params)
        high = evaluate(expression.high, row, params)
        if value is None or low is None or high is None:
            return None
        _check_comparable(value, low)
        _check_comparable(value, high)
        inside = low <= value <= high
        return not inside if expression.negated else inside
    if isinstance(expression, ast.InList):
        value = evaluate(expression.operand, row, params)
        if value is None:
            return None
        saw_null = False
        for item in expression.items:
            candidate = evaluate(item, row, params)
            if candidate is None:
                saw_null = True
                continue
            _check_comparable(value, candidate)
            if value == candidate:
                return not expression.negated
        if saw_null:
            return None  # SQL three-valued IN semantics
        return expression.negated
    if isinstance(expression, ast.BinaryOp):
        return _evaluate_binary(expression, row, params)
    if isinstance(expression, ast.Aggregate):
        raise SqlExecutionError(
            f"aggregate {expression.func} outside a SELECT item list"
        )
    raise SqlExecutionError(f"cannot evaluate {expression!r}")


def _truthy(value: Any) -> bool:
    return bool(value)


def _evaluate_binary(expression: ast.BinaryOp, row: Optional[Row], params: Params) -> Any:
    op = expression.op
    if op == "AND":
        left = evaluate(expression.left, row, params)
        if left is not None and not _truthy(left):
            return False
        right = evaluate(expression.right, row, params)
        if right is not None and not _truthy(right):
            return False
        if left is None or right is None:
            return None
        return True
    if op == "OR":
        left = evaluate(expression.left, row, params)
        if left is not None and _truthy(left):
            return True
        right = evaluate(expression.right, row, params)
        if right is not None and _truthy(right):
            return True
        if left is None or right is None:
            return None
        return False
    left = evaluate(expression.left, row, params)
    right = evaluate(expression.right, row, params)
    if left is None or right is None:
        return None
    if op in ("=", "<>", "<", "<=", ">", ">="):
        _check_comparable(left, right)
        if op == "=":
            return left == right
        if op == "<>":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        return left >= right
    _check_numeric(left, op)
    _check_numeric(right, op)
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise SqlExecutionError("division by zero")
        # Integer division stays integral, matching T-SQL's BIGINT math in
        # the paper's procedures (@h*24*60*60 etc.).
        if isinstance(left, int) and isinstance(right, int):
            quotient = left // right
            # T-SQL truncates toward zero.
            if quotient < 0 and left % right != 0:
                quotient += 1
            return quotient
        return left / right
    raise SqlExecutionError(f"unsupported operator {op!r}")


def _check_comparable(left: Any, right: Any) -> None:
    numeric = (int, float)
    if isinstance(left, numeric) and isinstance(right, numeric):
        return
    if isinstance(left, str) and isinstance(right, str):
        return
    raise SqlExecutionError(
        f"cannot compare {type(left).__name__} with {type(right).__name__}"
    )


def _check_numeric(value: Any, op: str) -> None:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise SqlExecutionError(f"operator {op!r} requires numeric operands")


# ---------------------------------------------------------------------------
# Statement execution
# ---------------------------------------------------------------------------


class Executor:
    """Executes parsed statements against a :class:`Database`."""

    def __init__(self, database: Database):
        self._database = database

    # -- scans ----------------------------------------------------------

    def _rows_for_plan(self, plan: ScanPlan, params: Params) -> Iterator[Row]:
        if OBS.enabled:
            OBS.metrics.counter(f"sql.scans.{plan.kind}").inc()
            return self._count_rows(self._plan_rows(plan, params))
        return self._plan_rows(plan, params)

    @staticmethod
    def _count_rows(rows: Iterable[Row]) -> Iterator[Row]:
        """Pass rows through, counting them in the live registry."""
        counter = OBS.metrics.counter("sql.rows_scanned")
        for row in rows:
            counter.inc()
            yield row

    def _plan_rows(self, plan: ScanPlan, params: Params) -> Iterator[Row]:
        table = self._database.table(plan.table)
        if plan.kind == "full":
            rows: Iterable[Row] = table.scan()
        else:
            lo = hi = None
            include_lo = include_hi = True
            if plan.lower is not None:
                lo = evaluate(plan.lower.expression, None, params)
                include_lo = plan.lower.inclusive
            if plan.upper is not None:
                hi = evaluate(plan.upper.expression, None, params)
                include_hi = plan.upper.inclusive
            if plan.kind == "clustered":
                rows = table.key_range(lo, hi, include_lo, include_hi)
            else:
                rows = self._secondary_rows(
                    table, plan.index_column, lo, hi, include_lo, include_hi
                )
        if plan.residual is None:
            yield from rows
            return
        for row in rows:
            if evaluate(plan.residual, row, params) is True:
                yield row

    @staticmethod
    def _secondary_rows(
        table: Table,
        column: str,
        lo: Any,
        hi: Any,
        include_lo: bool,
        include_hi: bool,
    ) -> Iterator[Row]:
        # The secondary index API is inclusive; strict bounds become a
        # post-filter on the indexed value.
        for row in table.secondary_range(column, lo, hi):
            value = row[column]
            if not include_lo and lo is not None and value == lo:
                continue
            if not include_hi and hi is not None and value == hi:
                continue
            yield row

    def _plan(self, table_name: str, where: Optional[ast.Expression]) -> ScanPlan:
        table = self._database.table(table_name)
        secondary = [
            c for c in table.indexed_columns if c != table.schema.primary_key
        ]
        return plan_scan(table_name, where, table.schema.primary_key, secondary)

    # -- SELECT ----------------------------------------------------------

    def select(self, statement: ast.Select, params: Params) -> List[Row]:
        if statement.table is None:
            return [self._project_row(statement.items, None, params, index=0)]
        plan = self._plan(statement.table, statement.where)
        rows = self._rows_for_plan(plan, params)
        if statement.group_by is not None:
            out = self._grouped(statement, rows, params)
        elif _has_aggregates(statement.items):
            return [self._aggregate(statement.items, rows, params)]
        else:
            out = [
                self._project_row(statement.items, row, params, index=i)
                for i, row in enumerate(rows)
            ]
        for order in reversed(statement.order_by):
            out.sort(
                key=lambda r: _null_safe_key(r[order.column]),
                reverse=order.descending,
            )
        if statement.limit is not None:
            out = out[: statement.limit]
        return out

    def _grouped(
        self, statement: ast.Select, rows: Iterator[Row], params: Params
    ) -> List[Row]:
        """GROUP BY one column: each item must be that column or an
        aggregate; groups come out in first-seen order (re-orderable with
        ORDER BY)."""
        key = statement.group_by
        for item in statement.items:
            if item.star:
                raise SqlExecutionError("SELECT * is not valid with GROUP BY")
            expression = item.expression
            is_key = isinstance(expression, ast.ColumnRef) and expression.name == key
            if not is_key and not isinstance(expression, ast.Aggregate):
                raise SqlExecutionError(
                    f"non-aggregated column in GROUP BY query: {expression!r}"
                )
        groups: Dict[Any, List[Row]] = {}
        for row in rows:
            if key not in row:
                raise SqlExecutionError(f"unknown GROUP BY column {key!r}")
            groups.setdefault(row[key], []).append(row)
        out: List[Row] = []
        for value, members in groups.items():
            projected: Row = {}
            for i, item in enumerate(statement.items):
                expression = item.expression
                if isinstance(expression, ast.ColumnRef):
                    projected[item.alias or key] = value
                else:
                    aggregated = self._aggregate(
                        [ast.SelectItem(expression, item.alias)],
                        iter(members),
                        params,
                    )
                    projected.update(aggregated)
            out.append(projected)
        return out

    def _project_row(
        self,
        items: Iterable[ast.SelectItem],
        row: Optional[Row],
        params: Params,
        index: int,
    ) -> Row:
        projected: Row = {}
        for i, item in enumerate(items):
            if item.star:
                if row is None:
                    raise SqlExecutionError("SELECT * requires a table")
                projected.update(row)
                continue
            name = item.alias or _default_name(item.expression, i)
            projected[name] = evaluate(item.expression, row, params)
        return projected

    def _aggregate(
        self, items: Iterable[ast.SelectItem], rows: Iterator[Row], params: Params
    ) -> Row:
        materialized = list(rows)
        out: Row = {}
        for i, item in enumerate(items):
            if item.star or not isinstance(item.expression, ast.Aggregate):
                raise SqlExecutionError(
                    "cannot mix aggregates with plain columns (no GROUP BY support)"
                )
            aggregate = item.expression
            name = item.alias or aggregate.func.lower()
            if aggregate.func == "COUNT":
                if aggregate.argument is None:
                    out[name] = len(materialized)
                else:
                    out[name] = sum(
                        1
                        for row in materialized
                        if evaluate(aggregate.argument, row, params) is not None
                    )
                continue
            values = [
                value
                for row in materialized
                if (value := evaluate(aggregate.argument, row, params)) is not None
            ]
            if not values:
                out[name] = None
            elif aggregate.func == "MIN":
                out[name] = min(values)
            else:
                out[name] = max(values)
        return out

    # -- INSERT / DELETE / UPDATE / CREATE --------------------------------

    def insert(self, statement: ast.Insert, params: Params) -> int:
        table = self._database.table(statement.table)
        row = {
            column: evaluate(value, None, params)
            for column, value in zip(statement.columns, statement.values)
        }
        table.insert(row)
        return 1

    def delete(self, statement: ast.Delete, params: Params) -> int:
        table = self._database.table(statement.table)
        plan = self._plan(statement.table, statement.where)
        doomed = [
            row[table.schema.primary_key]
            for row in self._rows_for_plan(plan, params)
        ]
        for pk in doomed:
            table.delete_by_key(pk)
        return len(doomed)

    def update(self, statement: ast.Update, params: Params) -> int:
        table = self._database.table(statement.table)
        plan = self._plan(statement.table, statement.where)
        matched = list(self._rows_for_plan(plan, params))
        count = 0
        for row in matched:
            changes = {
                assignment.column: evaluate(assignment.value, row, params)
                for assignment in statement.assignments
            }
            pk = row[table.schema.primary_key]
            if table.update_by_key(pk, changes):
                count += 1
        return count

    def create_table(self, statement: ast.CreateTable) -> int:
        primary_keys = [c.name for c in statement.columns if c.primary_key]
        if len(primary_keys) != 1:
            raise SqlExecutionError(
                f"CREATE TABLE {statement.table!r} needs exactly one PRIMARY KEY "
                f"column, got {len(primary_keys)}"
            )
        columns = tuple(
            Column(
                definition.name,
                ColumnType[definition.type_name],
                nullable=not (definition.not_null or definition.primary_key),
            )
            for definition in statement.columns
        )
        schema = TableSchema(statement.table, columns, primary_keys[0])
        self._database.create_table(schema)
        return 0

    def create_index(self, statement: ast.CreateIndex) -> int:
        self._database.table(statement.table).create_index(statement.column)
        return 0

    # -- EXPLAIN -----------------------------------------------------------

    def explain(self, statement: ast.Statement) -> List[Row]:
        """Describe the access path the planner chose, without executing.

        One row per plan: statement kind, scan kind (clustered / secondary /
        full), the index column, which bounds exist (and their
        inclusivity), and whether a residual filter remains.
        """
        if isinstance(statement, ast.Select):
            kind, table, where = "SELECT", statement.table, statement.where
        elif isinstance(statement, ast.Delete):
            kind, table, where = "DELETE", statement.table, statement.where
        elif isinstance(statement, ast.Update):
            kind, table, where = "UPDATE", statement.table, statement.where
        else:
            raise SqlExecutionError(
                f"EXPLAIN does not support {type(statement).__name__}"
            )
        if table is None:
            return [{"statement": kind, "scan": "constant", "table": None,
                     "index_column": None, "bounds": "", "residual": False}]
        plan = self._plan(table, where)
        bounds = []
        if plan.lower is not None:
            bounds.append(">=" if plan.lower.inclusive else ">")
        if plan.upper is not None:
            bounds.append("<=" if plan.upper.inclusive else "<")
        return [
            {
                "statement": kind,
                "scan": plan.kind,
                "table": table,
                "index_column": plan.index_column,
                "bounds": " ".join(bounds),
                "residual": plan.residual is not None,
            }
        ]


def _has_aggregates(items: Iterable[ast.SelectItem]) -> bool:
    return any(isinstance(item.expression, ast.Aggregate) for item in items)


def _default_name(expression: ast.Expression, index: int) -> str:
    if isinstance(expression, ast.ColumnRef):
        return expression.name
    if isinstance(expression, ast.Aggregate):
        return expression.func.lower()
    return f"column_{index}"


class _NullLow:
    """NULLs sort first, as in SQL Server ORDER BY."""

    __slots__ = ()

    def __lt__(self, other: Any) -> bool:
        return not isinstance(other, _NullLow)

    def __gt__(self, other: Any) -> bool:
        return False

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, _NullLow)


_NULL_LOW = _NullLow()


def _null_safe_key(value: Any) -> Any:
    return _NULL_LOW if value is None else value
