"""Equivalence tests: the SQL-text stored procedures (Algorithms 2/3/5)
must behave exactly like the direct B-tree implementations."""

from hypothesis import given, settings, strategies as st

from repro.sqlengine.procedures import SqlHistoryProcedures, SqlMetadataProcedures
from repro.storage.history import HistoryStore
from repro.storage.metadata import DatabaseState, MetadataStore
from repro.types import SECONDS_PER_DAY, SECONDS_PER_MINUTE, EventType

DAY = SECONDS_PER_DAY
MIN = SECONDS_PER_MINUTE


class TestSqlHistoryProcedures:
    def test_insert_history_uniqueness(self):
        proc = SqlHistoryProcedures()
        assert proc.insert_history(100, EventType.ACTIVITY_START) is True
        assert proc.insert_history(100, EventType.ACTIVITY_END) is False
        assert proc.tuple_count == 1

    def test_delete_old_history_matches_algorithm3(self):
        proc = SqlHistoryProcedures()
        now = 100 * DAY
        oldest = now - 50 * DAY
        proc.insert_history(oldest, EventType.ACTIVITY_START)
        proc.insert_history(now - 40 * DAY, EventType.ACTIVITY_END)
        proc.insert_history(now - 5 * DAY, EventType.ACTIVITY_START)
        result = proc.delete_old_history(28, now)
        assert result.old is True
        assert result.deleted == 1
        assert proc.min_timestamp() == oldest

    def test_first_last_login_filters_and_bounds(self):
        proc = SqlHistoryProcedures()
        proc.insert_history(10, EventType.ACTIVITY_END)
        proc.insert_history(20, EventType.ACTIVITY_START)
        proc.insert_history(30, EventType.ACTIVITY_START)
        assert proc.first_last_login(10, 30) == (20, 30)
        assert proc.first_last_login(35, 40) == (None, None)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=60 * DAY),
            st.sampled_from([EventType.ACTIVITY_START, EventType.ACTIVITY_END]),
        ),
        min_size=0,
        max_size=60,
    ),
    st.integers(min_value=60 * DAY, max_value=90 * DAY),
    st.integers(min_value=1, max_value=35),
)
def test_history_backends_equivalent(events, now, h):
    """Direct B-tree store and SQL procedures stay observationally equal
    through inserts, trims, and window queries."""
    direct = HistoryStore()
    via_sql = SqlHistoryProcedures()
    for t, event_type in events:
        assert direct.insert_history(t, event_type) == via_sql.insert_history(
            t, event_type
        )
    assert direct.tuple_count == via_sql.tuple_count
    assert direct.min_timestamp() == via_sql.min_timestamp()
    r1 = direct.delete_old_history(h, now)
    r2 = via_sql.delete_old_history(h, now)
    assert (r1.old, r1.deleted, r1.min_timestamp) == (r2.old, r2.deleted, r2.min_timestamp)
    assert direct.all_events() == via_sql.all_events()
    assert list(direct.login_timestamps()) == list(via_sql.login_timestamps())
    # Window queries across the retained range agree.
    for lo in range(0, 60 * DAY, 13 * DAY):
        hi = lo + 9 * DAY
        assert direct.first_last_login(lo, hi) == via_sql.first_last_login(lo, hi)


class TestSqlMetadataProcedures:
    def test_prewarm_scan_matches_direct_store(self):
        direct = MetadataStore()
        via_sql = SqlMetadataProcedures()
        now, k = 1000 * MIN, 5 * MIN
        starts = {
            "a": now + k - 1,
            "b": now + k,
            "c": now + k + 30,
            "d": now + k + MIN,
            "e": now + k + MIN + 1,
            "f": 0,  # new database: no prediction
        }
        for db_id, start in starts.items():
            direct.register(db_id)
            direct.record_physical_pause(db_id, start)
            via_sql.register(db_id)
            via_sql.record_physical_pause(db_id, start)
        got_direct = sorted(direct.databases_to_prewarm(now, k, MIN))
        got_sql = sorted(via_sql.databases_to_prewarm(now, k, MIN))
        assert got_direct == got_sql == ["b", "c", "d"]

    def test_state_filter(self):
        via_sql = SqlMetadataProcedures()
        via_sql.register("a")
        via_sql.record_physical_pause("a", 500)
        via_sql.set_state("a", DatabaseState.RESUMED.value)
        assert via_sql.databases_to_prewarm(0, 100, 1000) == []
