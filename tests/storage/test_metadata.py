"""Tests for the region metadata store and Algorithm 5's scan query."""

import pytest

from repro.errors import DuplicateKeyError, StorageError
from repro.storage.metadata import DatabaseState, MetadataStore
from repro.types import SECONDS_PER_MINUTE

MIN = SECONDS_PER_MINUTE


class TestRegistration:
    def test_register_and_get(self):
        store = MetadataStore()
        store.register("db-1", node_id="node-a", created_at=100)
        record = store.get("db-1")
        assert record.database_id == "db-1"
        assert record.state == DatabaseState.RESUMED
        assert record.start_of_pred_activity == 0
        assert record.node_id == "node-a"
        assert record.created_at == 100
        assert not record.has_prediction

    def test_register_duplicate_rejected(self):
        store = MetadataStore()
        store.register("db-1")
        with pytest.raises(DuplicateKeyError):
            store.register("db-1")

    def test_get_unregistered_raises(self):
        store = MetadataStore()
        with pytest.raises(StorageError):
            store.get("nope")

    def test_len_counts_databases(self):
        store = MetadataStore()
        for i in range(5):
            store.register(f"db-{i}")
        assert len(store) == 5


class TestStateTransitions:
    def test_set_state(self):
        store = MetadataStore()
        store.register("db-1")
        store.set_state("db-1", DatabaseState.LOGICAL_PAUSE)
        assert store.get("db-1").state == DatabaseState.LOGICAL_PAUSE

    def test_set_state_unregistered_raises(self):
        store = MetadataStore()
        with pytest.raises(StorageError):
            store.set_state("nope", DatabaseState.RESUMED)

    def test_record_physical_pause_stores_prediction(self):
        """Algorithm 1 line 31: InsertMetadata(nextActivity.start)."""
        store = MetadataStore()
        store.register("db-1")
        store.record_physical_pause("db-1", pred_start=5000)
        record = store.get("db-1")
        assert record.state == DatabaseState.PHYSICAL_PAUSE
        assert record.start_of_pred_activity == 5000
        assert record.has_prediction

    def test_clear_prediction(self):
        store = MetadataStore()
        store.register("db-1")
        store.record_physical_pause("db-1", 5000)
        store.clear_prediction("db-1")
        assert store.get("db-1").start_of_pred_activity == 0

    def test_set_node(self):
        store = MetadataStore()
        store.register("db-1")
        store.set_node("db-1", "node-b")
        assert store.get("db-1").node_id == "node-b"

    def test_state_counts(self):
        store = MetadataStore()
        store.register("a")
        store.register("b")
        store.register("c")
        store.record_physical_pause("c", 100)
        counts = store.state_counts()
        assert counts[DatabaseState.RESUMED] == 2
        assert counts[DatabaseState.PHYSICAL_PAUSE] == 1


class TestPrewarmScan:
    """The SELECT of Algorithm 5: physically paused databases whose
    predicted activity starts during the k-th minute from now."""

    def _store(self):
        store = MetadataStore()
        now = 1000 * MIN
        k = 5 * MIN
        # Predicted starts relative to now + k.
        layout = {
            "too-early": now + k - 1,
            "at-window-start": now + k + 1,
            "mid-window": now + k + 30,
            "at-window-end": now + k + MIN,
            "too-late": now + k + MIN + 1,
        }
        for db_id, start in layout.items():
            store.register(db_id)
            store.record_physical_pause(db_id, start)
        return store, now, k

    def test_selects_only_window(self):
        store, now, k = self._store()
        selected = store.databases_to_prewarm(now, k, MIN)
        assert set(selected) == {"at-window-start", "mid-window", "at-window-end"}

    def test_ignores_non_paused_states(self):
        store, now, k = self._store()
        store.set_state("mid-window", DatabaseState.RESUMED)
        selected = store.databases_to_prewarm(now, k, MIN)
        assert "mid-window" not in selected

    def test_ignores_no_prediction_sentinel(self):
        store = MetadataStore()
        store.register("db-1")
        store.record_physical_pause("db-1", 0)  # new database: no prediction
        assert store.databases_to_prewarm(10 * MIN, 5 * MIN, MIN) == []

    def test_wider_period_selects_more(self):
        store, now, k = self._store()
        selected = store.databases_to_prewarm(now, k, 2 * MIN)
        assert "too-late" in selected

    def test_databases_in_state(self):
        store, _, __ = self._store()
        assert len(store.databases_in_state(DatabaseState.PHYSICAL_PAUSE)) == 5
        assert store.databases_in_state(DatabaseState.RESUMED) == []
