"""Core value types shared across the ProRP reproduction.

Time is modelled exactly as in the paper (Section 2.1): a linearly ordered
set of time points.  Concretely we use integer epoch seconds, matching the
``time_snapshot BIGINT`` column of ``sys.pause_resume_history`` (Section 5).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import TraceError

#: Number of seconds per minute/hour/day, used everywhere a knob expressed
#: in human units (Table 1) is converted to epoch seconds.
SECONDS_PER_MINUTE = 60
SECONDS_PER_HOUR = 60 * SECONDS_PER_MINUTE
SECONDS_PER_DAY = 24 * SECONDS_PER_HOUR


class EventType(enum.IntEnum):
    """``event_type`` column values of ``sys.pause_resume_history``.

    The paper stores ``1`` for the start of customer activity and ``0`` for
    the end of activity (Section 5).
    """

    ACTIVITY_END = 0
    ACTIVITY_START = 1


@dataclass(frozen=True)
class HistoryEvent:
    """One tuple of ``sys.pause_resume_history``: (time_snapshot, event_type)."""

    time_snapshot: int
    event_type: EventType

    def __post_init__(self) -> None:
        if self.time_snapshot < 0:
            raise TraceError(
                f"time_snapshot must be non-negative, got {self.time_snapshot}"
            )


@dataclass(frozen=True)
class Session:
    """A contiguous interval of customer activity ``[start, end)``.

    A session corresponds to an ACTIVITY_START event at ``start`` followed by
    an ACTIVITY_END event at ``end``.
    """

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise TraceError(
                f"session end ({self.end}) must be after start ({self.start})"
            )

    @property
    def duration(self) -> int:
        """Length of the session in seconds."""
        return self.end - self.start

    def contains(self, t: int) -> bool:
        """Whether time point ``t`` falls inside the session."""
        return self.start <= t < self.end

    def overlaps(self, other: "Session") -> bool:
        """Whether this session shares any time point with ``other``."""
        return self.start < other.end and other.start < self.end


#: Sentinel meaning "no prediction": the paper encodes the absence of a
#: predicted activity as ``nextActivity.start = 0`` (Algorithm 1, line 10).
NO_PREDICTION_SENTINEL = 0


@dataclass(frozen=True)
class PredictedActivity:
    """Result of the next-activity prediction (Algorithm 4).

    ``start == end == 0`` encodes "no activity predicted", mirroring the
    output parameters of the stored procedure.  ``confidence`` is the
    probability of activity in the selected window (windows-with-activity /
    history-length); it is 0.0 for the no-prediction sentinel.
    """

    start: int
    end: int
    confidence: float = 0.0

    @property
    def is_empty(self) -> bool:
        """Whether this is the no-prediction sentinel."""
        return self.start == NO_PREDICTION_SENTINEL

    @staticmethod
    def none() -> "PredictedActivity":
        """The no-prediction sentinel value."""
        return PredictedActivity(NO_PREDICTION_SENTINEL, NO_PREDICTION_SENTINEL, 0.0)


class AllocationState(enum.Enum):
    """Resource allocation state of one database at one point in time.

    These refine the binary A(d, t) of Definition 2.1: the first three all
    mean "resources allocated" (A=1) while PHYSICALLY_PAUSED and RESUMING
    mean "resources reclaimed / not yet available" (A=0).
    """

    #: Resources allocated and the customer is using them (D=1, A=1).
    ACTIVE = "active"
    #: Resources allocated, customer idle: logical pause or post-pre-warm
    #: idle time (D=0, A=1) -- the COGS the paper measures.
    IDLE_ALLOCATED = "idle_allocated"
    #: Resources reclaimed (A=0).
    PHYSICALLY_PAUSED = "physically_paused"
    #: Customer demanded resources but allocation is still in flight
    #: (D=1, A=0): the QoS gap of a reactive resume.
    RESUMING = "resuming"

    @property
    def allocated(self) -> bool:
        """Whether resources are allocated (A(d, t) = 1) in this state."""
        return self in (AllocationState.ACTIVE, AllocationState.IDLE_ALLOCATED)


@dataclass(frozen=True)
class AllocationInterval:
    """A maximal interval ``[start, end)`` with a constant allocation state."""

    start: int
    end: int
    state: AllocationState

    @property
    def duration(self) -> int:
        return self.end - self.start


class ActivityTrace:
    """The full customer-activity timeline of one database.

    A trace is an ordered sequence of non-overlapping :class:`Session`
    objects plus the database creation time, which the paper uses to decide
    whether a database is "old" (existed for at least the history length
    ``h``) and therefore predictable (Algorithm 3).
    """

    def __init__(
        self,
        database_id: str,
        sessions: Sequence[Session],
        created_at: Optional[int] = None,
    ):
        self.database_id = database_id
        self.sessions: Tuple[Session, ...] = tuple(sessions)
        self._validate()
        if created_at is None:
            created_at = self.sessions[0].start if self.sessions else 0
        if self.sessions and created_at > self.sessions[0].start:
            raise TraceError(
                f"database {database_id} created at {created_at} after its "
                f"first session at {self.sessions[0].start}"
            )
        self.created_at = created_at

    def _validate(self) -> None:
        previous: Optional[Session] = None
        for session in self.sessions:
            if previous is not None and session.start < previous.end:
                raise TraceError(
                    f"sessions of {self.database_id} overlap or are unsorted: "
                    f"{previous} then {session}"
                )
            previous = session

    def __len__(self) -> int:
        return len(self.sessions)

    def __iter__(self) -> Iterator[Session]:
        return iter(self.sessions)

    def __repr__(self) -> str:
        return (
            f"ActivityTrace({self.database_id!r}, {len(self.sessions)} sessions, "
            f"created_at={self.created_at})"
        )

    @property
    def span(self) -> Tuple[int, int]:
        """(first session start, last session end); (created, created) if empty."""
        if not self.sessions:
            return (self.created_at, self.created_at)
        return (self.sessions[0].start, self.sessions[-1].end)

    def events(self) -> List[HistoryEvent]:
        """Flatten sessions into the (timestamp, event_type) event stream.

        This is exactly what the activity tracker of Section 5 would insert
        into ``sys.pause_resume_history``.
        """
        out: List[HistoryEvent] = []
        for session in self.sessions:
            out.append(HistoryEvent(session.start, EventType.ACTIVITY_START))
            out.append(HistoryEvent(session.end, EventType.ACTIVITY_END))
        return out

    def idle_intervals(self) -> List[Session]:
        """Gaps between consecutive sessions (the paper's "idle intervals")."""
        gaps: List[Session] = []
        for before, after in zip(self.sessions, self.sessions[1:]):
            if after.start > before.end:
                gaps.append(Session(before.end, after.start))
        return gaps

    def demand_at(self, t: int) -> int:
        """Resource demand D(d, t) per Definition 2.1 (binary)."""
        for session in self.sessions:
            if session.contains(t):
                return 1
            if session.start > t:
                break
        return 0

    def active_seconds(self, start: int, end: int) -> int:
        """Total demanded seconds within ``[start, end)``."""
        total = 0
        for session in self.sessions:
            if session.end <= start:
                continue
            if session.start >= end:
                break
            total += min(session.end, end) - max(session.start, start)
        return total

    def slice(self, start: int, end: int) -> "ActivityTrace":
        """Sessions clipped to ``[start, end)``, keeping the creation time."""
        clipped: List[Session] = []
        for session in self.sessions:
            s = max(session.start, start)
            e = min(session.end, end)
            if e > s:
                clipped.append(Session(s, e))
        return ActivityTrace(self.database_id, clipped, created_at=self.created_at)


def merge_sessions(sessions: Iterable[Session], gap: int = 0) -> List[Session]:
    """Merge overlapping (or nearly-touching, within ``gap``) sessions.

    Used by workload generators that superimpose several activity processes
    for one database: the history store only sees the merged on/off signal.
    """
    ordered = sorted(sessions, key=lambda s: (s.start, s.end))
    merged: List[Session] = []
    for session in ordered:
        if merged and session.start <= merged[-1].end + gap:
            last = merged[-1]
            if session.end > last.end:
                merged[-1] = Session(last.start, session.end)
        else:
            merged.append(session)
    return merged
