"""Tests for the live tracing / metrics layer (repro.observability).

The contract under test: instrumentation is off by default and invisible
when off; enabled runs produce correctly nested spans and exact metric
percentiles; exports are valid Chrome trace-event / JSONL documents; and
per-worker registries merge deterministically across the multiprocess
sweep boundary.
"""

import json

import pytest

from repro.errors import ProRPError
from repro.observability import (
    NULL_TRACER,
    OBS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Tracer,
    chrome_trace_events,
    disable,
    enable,
    exponential_buckets,
    observed,
    write_chrome_trace,
    write_metrics_snapshot,
    write_spans_jsonl,
)
from repro.parallel import MultiprocessExecutor
from repro.simulation import SimulationSettings, simulate_region
from repro.simulation.engine import EventQueue
from repro.telemetry import (
    Component,
    TelemetryStore,
    emit_observability_telemetry,
)
from repro.types import SECONDS_PER_DAY
from repro.workload import RegionPreset, generate_region_traces

DAY = SECONDS_PER_DAY


@pytest.fixture(autouse=True)
def _observability_off():
    """Every test starts and ends with the process-wide default."""
    disable()
    yield
    disable()


# ----------------------------------------------------------------------
# The runtime switch
# ----------------------------------------------------------------------


class TestRuntime:
    def test_disabled_by_default(self):
        assert not OBS.enabled
        assert OBS.tracer is NULL_TRACER
        assert OBS.metrics is None

    def test_enable_disable_roundtrip(self):
        runtime = enable()
        assert OBS.enabled
        assert isinstance(runtime.tracer, Tracer)
        assert isinstance(runtime.metrics, MetricsRegistry)
        disable()
        assert not OBS.enabled
        assert OBS.tracer is NULL_TRACER

    def test_observed_restores_prior_state(self):
        with observed() as runtime:
            assert OBS.enabled
            inner = runtime.metrics
            with observed(tracer=NULL_TRACER):
                assert OBS.tracer is NULL_TRACER
                assert OBS.metrics is not inner
            assert OBS.metrics is inner
            assert isinstance(OBS.tracer, Tracer)
        assert not OBS.enabled

    def test_null_tracer_is_reentrant_noop(self):
        with NULL_TRACER.span("a") as a:
            with NULL_TRACER.span("b") as b:
                assert a is b
                a.set_attribute("ignored", 1)
        assert NULL_TRACER.spans == []


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------


class TestTracer:
    def test_nesting_and_completion_order(self):
        tracer = Tracer()
        with tracer.span("outer", t=10):
            with tracer.span("inner.first"):
                pass
            with tracer.span("inner.second"):
                with tracer.span("leaf"):
                    pass
        # Children complete before parents.
        assert [s.name for s in tracer.spans] == [
            "inner.first", "leaf", "inner.second", "outer",
        ]
        outer = tracer.spans[-1]
        assert outer.parent_id is None
        assert outer.attributes == {"t": 10}
        children = tracer.children_of(outer.span_id)
        assert [s.name for s in children] == ["inner.first", "inner.second"]
        assert tracer.roots() == [outer]
        assert all(
            s.start_ns >= outer.start_ns and s.end_ns <= outer.end_ns
            for s in children
        )

    def test_depth_and_current_span(self):
        tracer = Tracer()
        assert tracer.depth == 0 and tracer.current_span is None
        with tracer.span("a") as a:
            assert tracer.depth == 1 and tracer.current_span is a
            a.set_attribute("db", "db-1")
        assert tracer.depth == 0
        assert tracer.spans[0].attributes == {"db": "db-1"}

    def test_exception_records_error_attribute(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("failing"):
                raise ValueError("boom")
        assert tracer.spans[0].attributes["error"] == "ValueError"
        assert tracer.depth == 0

    def test_engine_dispatch_spans_nest_under_events(self):
        """Deterministic engine order -> deterministic span tree."""
        queue = EventQueue(start=0)
        with observed() as runtime:
            def nested(now):
                with OBS.tracer.span("work.step", t=now):
                    pass

            queue.schedule(5, nested)
            queue.schedule(7, nested)
            queue.run_all()
            spans = runtime.tracer.spans
            dispatched = runtime.metrics.counter("engine.events_dispatched").value
        assert [s.name for s in spans] == [
            "work.step", "engine.event", "work.step", "engine.event",
        ]
        assert [s.attributes["t"] for s in spans] == [5, 5, 7, 7]
        for child, parent in zip(spans[0::2], spans[1::2]):
            assert child.parent_id == parent.span_id
        assert dispatched == 2


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------


class TestMetrics:
    def test_counter(self):
        c = Counter("n")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ProRPError):
            c.inc(-1)

    def test_gauge_merge_last_write_wins(self):
        a, b = Gauge("g"), Gauge("g")
        a.set(1)
        b.set(2)
        a.merge(b)
        assert a.value == 2
        a.merge(Gauge("g"))  # unset gauge does not clobber
        assert a.value == 2

    def test_histogram_bucket_edges(self):
        h = Histogram("h", buckets=[1.0, 10.0, 100.0])
        for v in (0.5, 1.0, 1.5, 10.0, 99.9, 100.0, 1e6):
            h.observe(v)
        # bisect_left: a value equal to a bound lands in that bound's bucket.
        assert h.counts == [2, 2, 2, 1]
        assert h.count == 7
        assert h.min == 0.5 and h.max == 1e6

    def test_histogram_exact_percentiles(self):
        h = Histogram("h", buckets=exponential_buckets(1.0, 2.0, 12))
        for v in range(1, 101):
            h.observe(float(v))
        assert h.percentile(50.0) == 50.0
        assert h.percentile(95.0) == 95.0
        assert h.percentile(99.0) == 99.0
        assert h.percentile(0.0) == 1.0
        assert h.percentile(100.0) == 100.0

    def test_histogram_interpolates_after_sample_overflow(self):
        h = Histogram("h", buckets=[10.0, 20.0, 40.0], sample_limit=8)
        for v in range(1, 33):  # 32 observations, buffer keeps 8
            h.observe(float(v))
        assert len(h.samples) == 8 and h.count == 32
        p50 = h.percentile(50.0)
        assert 10.0 <= p50 <= 20.0  # true median is 16.5
        assert h.percentile(100.0) == 32.0

    def test_histogram_rejects_bad_buckets(self):
        with pytest.raises(ProRPError):
            Histogram("h", buckets=[])
        with pytest.raises(ProRPError):
            Histogram("h", buckets=[1.0, 1.0, 2.0])
        with pytest.raises(ProRPError):
            Histogram("h", buckets=[2.0, 1.0])

    def test_registry_get_or_create_and_type_conflicts(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        with pytest.raises(ProRPError):
            reg.gauge("x")
        assert "x" in reg and len(reg) == 1

    def test_registry_merge_preserves_order_and_sums(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("first").inc(1)
        a.histogram("lat", buckets=[1.0, 2.0]).observe(0.5)
        b.counter("first").inc(2)
        b.histogram("lat", buckets=[1.0, 2.0]).observe(1.5)
        b.counter("new").inc(7)
        a.merge(b)
        assert a.names() == ["first", "lat", "new"]
        assert a.counter("first").value == 3
        assert a.histogram("lat").count == 2
        assert a.counter("new").value == 7

    def test_merge_rejects_differing_bucket_layouts(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=[1.0, 2.0]).observe(1.0)
        b.histogram("h", buckets=[1.0, 3.0]).observe(1.0)
        with pytest.raises(ProRPError):
            a.merge(b)

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(1.5)
        reg.histogram("h", buckets=[1.0, 2.0]).observe(0.5)
        snap = reg.snapshot()
        assert snap["c"] == {"kind": "counter", "value": 3}
        assert snap["g"] == {"kind": "gauge", "value": 1.5}
        assert snap["h"]["kind"] == "histogram"
        assert snap["h"]["count"] == 1
        text = reg.format_snapshot("test")
        assert text.startswith("# test: 3 metrics")
        assert "h histogram count=1" in text


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------


def _sample_tracer() -> Tracer:
    tracer = Tracer()
    with tracer.span("engine.event", t=5):
        with tracer.span("predictor.fast"):
            pass
    return tracer


class TestExporters:
    def test_chrome_trace_shape(self, tmp_path):
        tracer = _sample_tracer()
        path = tmp_path / "trace.json"
        n = write_chrome_trace(tracer.spans, path)
        assert n == 2
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert len(events) == 2
        assert all(e["ph"] == "X" for e in events)
        # Sorted by start time: the parent (earlier ts) comes first.
        parent, child = events
        assert parent["name"] == "engine.event"
        assert parent["cat"] == "engine"
        assert parent["args"]["t"] == 5
        assert child["args"]["parent_id"] == parent["args"]["span_id"]
        assert child["ts"] >= parent["ts"]
        assert child["ts"] + child["dur"] <= parent["ts"] + parent["dur"] + 1e-9

    def test_spans_jsonl_roundtrip(self, tmp_path):
        tracer = _sample_tracer()
        path = tmp_path / "spans.jsonl"
        assert write_spans_jsonl(tracer.spans, path) == 2
        lines = path.read_text().splitlines()
        records = [json.loads(line) for line in lines]
        assert [r["name"] for r in records] == ["predictor.fast", "engine.event"]
        assert records[0]["parent_id"] == records[1]["span_id"]

    def test_chrome_trace_events_of_nothing(self):
        assert chrome_trace_events([]) == []

    def test_metrics_snapshot_text_and_json(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        text_path = tmp_path / "metrics.txt"
        write_metrics_snapshot(reg, text_path, title="t")
        assert text_path.read_text().startswith("# t: 1 metrics")
        json_path = tmp_path / "metrics.json"
        write_metrics_snapshot(reg, json_path)
        assert json.loads(json_path.read_text())["c"]["value"] == 1


# ----------------------------------------------------------------------
# Instrumented simulation
# ----------------------------------------------------------------------


def _small_fleet(n=6, days=8, seed=3):
    traces = generate_region_traces(
        RegionPreset.EU1, n, span_days=days, seed=seed
    )
    span_end = max(t.span[1] for t in traces)
    settings = SimulationSettings(
        eval_start=span_end - 1 * DAY, eval_end=span_end
    )
    return traces, settings


class TestInstrumentedSimulation:
    def test_run_produces_spans_and_metrics(self):
        traces, settings = _small_fleet()
        with observed() as runtime:
            result = simulate_region(traces, "proactive", settings=settings)
            spans = runtime.tracer.spans
            registry = runtime.metrics
        assert result.kpis().n_databases == len(traces)
        roots = [s for s in spans if s.parent_id is None]
        assert [s.name for s in roots] == ["simulate.region"]
        assert roots[0].attributes["n_databases"] == len(traces)
        names = {s.name for s in spans}
        assert "engine.event" in names
        assert "resume.scan" in names
        dispatched = registry.counter("engine.events_dispatched").value
        assert dispatched > 0
        assert len([s for s in spans if s.name == "engine.event"]) == dispatched
        assert registry.counter("resume.scan.iterations").value > 0
        assert registry.histogram("history.tuples").count == len(traces)
        # Every engine.event nests (transitively) under the root span.
        assert all(s.parent_id is not None for s in spans if s is not roots[0])

    def test_disabled_run_keeps_results_identical(self):
        traces, settings = _small_fleet()
        plain = simulate_region(traces, "proactive", settings=settings)
        with observed():
            traced = simulate_region(traces, "proactive", settings=settings)
        assert plain.kpis() == traced.kpis()

    def test_registry_latency_matches_offline_measurement(self):
        """The live histogram and the actor's own perf_counter timing
        measure the same predictor calls; their means agree within 5%."""
        # Databases must have accumulated a full history_days of lifespan
        # before the predictor runs, so give the fleet a 33-day span.
        traces, settings = _small_fleet(n=4, days=33)
        settings = SimulationSettings(
            eval_start=settings.eval_start,
            eval_end=settings.eval_end,
            measure_prediction_latency=True,
        )
        with observed(tracer=NULL_TRACER) as runtime:
            result = simulate_region(traces, "proactive", settings=settings)
            histogram = runtime.metrics.histogram("predictor.reference.latency_ms")
        offline_ms = [s * 1000.0 for s in result.kpis().prediction_latencies_s]
        assert histogram.count == len(offline_ms) > 0
        offline_mean = sum(offline_ms) / len(offline_ms)
        assert histogram.mean == pytest.approx(offline_mean, rel=0.05)


# ----------------------------------------------------------------------
# Multiprocess registry merge
# ----------------------------------------------------------------------


def _metered_square(context, item):
    """Sweep worker that records into the ambient (per-chunk) registry."""
    if OBS.enabled:
        OBS.metrics.counter("worker.tasks").inc()
        OBS.metrics.histogram(
            "worker.item", buckets=[2.0, 4.0, 8.0]
        ).observe(item)
    return item * item


class TestWorkerRegistryMerge:
    def test_merge_across_two_workers(self):
        items = list(range(8))
        with observed(tracer=NULL_TRACER) as runtime:
            executor = MultiprocessExecutor(workers=2, chunk_size=2)
            out = executor.run(_metered_square, None, items)
            assert out == [i * i for i in items]
            if executor.last_stats.fallback_reason is not None:
                pytest.skip("pool unavailable on this platform")
            assert runtime.metrics.counter("worker.tasks").value == len(items)
            histogram = runtime.metrics.histogram("worker.item")
            assert histogram.count == len(items)
            # Ordered merge: sample order follows chunk submission order.
            assert histogram.samples == [float(i) for i in items]

    def test_disabled_parent_ships_no_registries(self):
        executor = MultiprocessExecutor(workers=2, chunk_size=2)
        out = executor.run(_metered_square, None, [1, 2, 3, 4])
        assert out == [1, 4, 9, 16]
        assert OBS.metrics is None


# ----------------------------------------------------------------------
# Telemetry adapter
# ----------------------------------------------------------------------


class TestTelemetryAdapter:
    def test_spans_drain_into_store(self):
        tracer = Tracer()
        with tracer.span("resume.scan", t=100, batch_size=3):
            pass
        with tracer.span("predictor.reference", t=200, db="db-7"):
            pass
        with tracer.span("sql.execute", kind="select"):  # no t: skipped
            pass
        store = TelemetryStore()
        assert emit_observability_telemetry(tracer.spans, store) == 2
        events = list(store.scan())
        by_component = {e.component: e for e in events}
        resume = by_component[Component.RESUME_OPERATION]
        assert resume.time == 100
        assert resume.payload == {"batch_size": 3}
        obs = by_component[Component.OBSERVABILITY]
        assert obs.time == 200
        assert obs.database_id == "db-7"
        assert obs.payload["span"] == "predictor.reference"
        assert obs.payload["duration_us"] >= 0

    def test_component_roundtrips_through_json(self):
        from repro.telemetry import TelemetryEvent

        event = TelemetryEvent(1, "db", Component.OBSERVABILITY, {"span": "x"})
        assert TelemetryEvent.from_json(event.to_json()) == event
