"""Headline benchmark for the serving gateway.

Two experiments against the in-process :class:`PredictionServer`:

* **Closed-loop latency/throughput sweep** at 1, 8, and 64 concurrent
  clients, micro-batched gateway (default knobs) vs a per-request
  baseline (``max_batch_size=1``, identical otherwise).  At >= 8 clients
  the batcher must win on p99 latency *or* throughput: concurrent
  requests coalesce into one ``predict_fleet`` grid pass instead of
  paying one pass each.
* **Overload**: an open-loop arrival storm far past capacity against a
  small queue bound.  The gateway must shed (typed ``Overloaded``)
  rather than queue without bound: the run asserts a positive shed
  fraction and that observed depth never exceeded the bound.

Baselines are committed under ``benchmarks/results/``: the full run
writes ``BENCH_serving.json``, ``--quick`` writes
``BENCH_serving_quick.json``.  CI re-runs the quick variant to a scratch
directory and ``benchmarks/check_regression.py`` compares the ratio
metrics against the committed quick baseline.

Run directly for a human-readable report::

    PYTHONPATH=src python benchmarks/bench_serving.py          # full
    PYTHONPATH=src python benchmarks/bench_serving.py --quick  # CI
    PYTHONPATH=src python benchmarks/bench_serving.py --quick --out /tmp/fresh.json

or through pytest (quick scale)::

    PYTHONPATH=src python -m pytest benchmarks/bench_serving.py -q
"""

from __future__ import annotations

import asyncio
import json
import sys
from pathlib import Path
from typing import Dict, List

from repro.serving import (
    PredictionServer,
    ServingSettings,
    closed_loop,
    fleet_login_arrays,
    open_loop,
)
from repro.types import SECONDS_PER_DAY

DAY = SECONDS_PER_DAY
NOW = 29 * DAY

RESULTS_DIR = Path(__file__).resolve().parent / "results"
BASELINE_PATH = RESULTS_DIR / "BENCH_serving.json"
QUICK_BASELINE_PATH = RESULTS_DIR / "BENCH_serving_quick.json"

CLIENT_COUNTS = (1, 8, 64)

#: Overload run: arrivals far past capacity against a small queue bound.
#: The batched gateway absorbs >10k rps on one event loop, so the storm
#: has to offer several times that to force the shed path.
OVERLOAD_QUEUE_DEPTH = 16
OVERLOAD_RATE_RPS = 60_000.0


def _settings(batched: bool) -> ServingSettings:
    return ServingSettings(
        max_batch_size=64 if batched else 1,
        max_linger_ms=2.0,
    )


def _closed_run(
    fleets, clients: int, requests_per_client: int, batched: bool
) -> Dict[str, object]:
    async def run():
        server = PredictionServer(settings=_settings(batched))
        await server.start()
        report = await closed_loop(
            server,
            fleets,
            NOW,
            clients=clients,
            requests_per_client=requests_per_client,
            seed=clients,
        )
        await server.stop()
        assert report.completed == report.offered and report.errors == 0
        summary = report.summary()
        summary["mean_batch_size"] = round(
            server.batcher.batched_requests / max(1, server.batcher.batches), 2
        )
        return summary

    return asyncio.run(run())


def _best_of(reps: int, fn) -> Dict[str, object]:
    """Re-run a measurement and keep the best run (max throughput) --
    the closed-loop analogue of min-of-N timing."""
    best = None
    for _ in range(reps):
        result = fn()
        if best is None or result["throughput_rps"] > best["throughput_rps"]:
            best = result
    return best


def _overload_run(fleets, n_requests: int) -> Dict[str, object]:
    async def run():
        server = PredictionServer(
            settings=ServingSettings(max_queue_depth=OVERLOAD_QUEUE_DEPTH)
        )
        await server.start()
        report = await open_loop(
            server,
            fleets,
            NOW,
            rate_rps=OVERLOAD_RATE_RPS,
            n_requests=n_requests,
            seed=1,
        )
        await server.stop()
        admission = server.admission.snapshot()
        summary = report.summary()
        summary["shed_fraction"] = round(report.shed / report.offered, 3)
        summary["max_depth"] = server.stats.max_depth
        summary["queue_bound"] = OVERLOAD_QUEUE_DEPTH
        # Server-side view of the same storm: per-reason shed decisions
        # and the depth the admission layer was holding the line at.
        summary["admission_shed_by_reason"] = dict(admission["shed"])
        summary["queue_depth"] = {
            "bound": admission["max_queue_depth"],
            "max_observed": server.stats.max_depth,
        }
        return summary

    return asyncio.run(run())


def run_bench(quick: bool = False) -> dict:
    n_databases = 40 if quick else 120
    requests_per_client = 10 if quick else 40
    reps = 2 if quick else 3
    overload_requests = 200 if quick else 1000
    fleets = fleet_login_arrays(n_databases=n_databases, now=NOW, seed=0)

    closed: Dict[str, Dict[str, object]] = {}
    for clients in CLIENT_COUNTS:
        batched = _best_of(
            reps,
            lambda c=clients: _closed_run(fleets, c, requests_per_client, True),
        )
        per_request = _best_of(
            reps,
            lambda c=clients: _closed_run(fleets, c, requests_per_client, False),
        )
        closed[str(clients)] = {
            "batched": batched,
            "per_request": per_request,
            "p99_speedup": round(
                per_request["p99_ms"] / batched["p99_ms"], 2
            ) if batched["p99_ms"] > 0 else 0.0,
            "throughput_speedup": round(
                batched["throughput_rps"] / per_request["throughput_rps"], 2
            ) if per_request["throughput_rps"] > 0 else 0.0,
        }

    return {
        "quick": quick,
        "n_databases": n_databases,
        "requests_per_client": requests_per_client,
        "closed_loop": closed,
        "overload": _overload_run(fleets, overload_requests),
    }


def _check(result: dict) -> None:
    # The headline claim: at >= 8 concurrent clients the micro-batcher
    # beats per-request dispatch on p99 latency or throughput.
    for clients in ("8", "64"):
        row = result["closed_loop"][clients]
        assert max(row["p99_speedup"], row["throughput_speedup"]) > 1.0, (
            f"micro-batching lost to per-request at {clients} clients: "
            f"p99 {row['p99_speedup']}x, throughput "
            f"{row['throughput_speedup']}x"
        )
        assert row["batched"]["mean_batch_size"] > 1.0, (
            f"no coalescing happened at {clients} clients"
        )
    overload = result["overload"]
    assert overload["shed_fraction"] > 0.0, (
        "the overload run shed nothing; admission control is inert"
    )
    assert overload["max_depth"] <= overload["queue_bound"], (
        f"queue depth {overload['max_depth']} exceeded the bound "
        f"{overload['queue_bound']}"
    )
    assert overload["completed"] + overload["shed"] == overload["offered"]


def _report(result: dict) -> str:
    lines = [
        f"Serving gateway, {result['n_databases']} databases, "
        f"{result['requests_per_client']} requests/client"
        + (" (quick)" if result["quick"] else ""),
        "  clients  mode         p50 ms  p99 ms  rps     batch",
    ]
    for clients in CLIENT_COUNTS:
        row = result["closed_loop"][str(clients)]
        for mode in ("batched", "per_request"):
            s = row[mode]
            lines.append(
                f"  {clients:>7}  {mode:<11}  {s['p50_ms']:>6}  "
                f"{s['p99_ms']:>6}  {s['throughput_rps']:>6}  "
                f"{s['mean_batch_size']:>5}"
            )
        lines.append(
            f"           -> p99 {row['p99_speedup']}x, "
            f"throughput {row['throughput_speedup']}x"
        )
    overload = result["overload"]
    lines.append(
        f"  overload: {overload['offered']} offered at "
        f"{OVERLOAD_RATE_RPS:.0f} rps, queue bound "
        f"{overload['queue_bound']}: {overload['completed']} served, "
        f"{overload['shed']} shed ({overload['shed_fraction']:.0%}), "
        f"max depth {overload['max_depth']}, p99 {overload['p99_ms']} ms"
    )
    reasons = ", ".join(
        f"{reason}={count}"
        for reason, count in sorted(overload["admission_shed_by_reason"].items())
        if count
    )
    lines.append(f"  shed by reason: {reasons or 'none'}")
    return "\n".join(lines)


def bench_serving(record_table) -> None:
    """Pytest entry: quick scale."""
    result = run_bench(quick=True)
    record_table("serving", _report(result))
    _check(result)


def main(argv: List[str]) -> int:
    quick = "--quick" in argv
    if "--out" in argv:
        out = Path(argv[argv.index("--out") + 1])
    else:
        out = QUICK_BASELINE_PATH if quick else BASELINE_PATH
    result = run_bench(quick=quick)
    print(_report(result))
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out}")
    _check(result)
    print("ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
