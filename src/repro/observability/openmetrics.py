"""OpenMetrics/Prometheus text exposition for the metrics registry.

Zero-dependency renderer producing the OpenMetrics text format: one
``# TYPE`` line per metric family, ``_total`` suffixes on counters,
cumulative ``_bucket{le="..."}`` lines plus ``_sum``/``_count`` for
histograms, and a terminating ``# EOF``.  Windowed series render as
their scrape-equivalent aggregates (a counter series exports its exact
running total, a histogram series its merged bucket deltas with the
worst-observation exemplar attached to the ``+Inf`` bucket).

The serving gateway serves this text live for a ``metrics`` request
(``repro.serving``), and ``benchmarks/check_openmetrics.py`` validates
the line format in CI.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.errors import ProRPError
from repro.observability.metrics import MetricsRegistry

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_OK = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*$")

#: registry kind -> OpenMetrics family type
_FAMILY_TYPES = {
    "counter": "counter",
    "counter_series": "counter",
    "gauge": "gauge",
    "gauge_series": "gauge",
    "histogram": "histogram",
    "histogram_series": "histogram",
}


def sanitize_name(name: str) -> str:
    """Registry names use dots (``serving.requests.predict``); the
    exposition format allows ``[a-zA-Z0-9_:]`` only."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    if not _NAME_OK.match(cleaned):  # pragma: no cover - defensive
        raise ProRPError(f"cannot sanitize metric name {name!r}")
    return cleaned


def _escape_label_value(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _labels_text(labels: Optional[Dict[str, str]],
                 extra: Optional[List[Tuple[str, str]]] = None) -> str:
    pairs: List[Tuple[str, str]] = []
    if labels:
        for key in sorted(labels):
            name = re.sub(r"[^a-zA-Z0-9_]", "_", key)
            if not _LABEL_OK.match(name):
                name = "_" + name
            pairs.append((name, _escape_label_value(labels[key])))
    if extra:
        pairs.extend(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in pairs)
    return "{" + inner + "}"


def _fmt(value: float) -> str:
    """Compact float formatting (no trailing zeros, ints stay ints)."""
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return format(value, ".10g")


def _histogram_lines(
    fam: str,
    labels: Optional[Dict[str, str]],
    buckets: List[float],
    counts: List[int],
    total_sum: float,
    exemplar: Optional[Tuple[float, str]],
) -> List[str]:
    # ``counts`` has ``len(buckets) + 1`` entries, the last being the
    # implicit overflow bucket (everything above the top bound).
    lines = []
    cumulative = 0
    for bound, count in zip(buckets, counts):
        cumulative += count
        text = _labels_text(labels, [("le", format(bound, ".6g"))])
        lines.append(f"{fam}_bucket{text} {cumulative}")
    cumulative += counts[len(buckets)]
    text = _labels_text(labels, [("le", "+Inf")])
    inf_line = f"{fam}_bucket{text} {cumulative}"
    if exemplar is not None:
        value, token = exemplar
        inf_line += f' # {{trace_id="{_escape_label_value(token)}"}} {_fmt(value)}'
    lines.append(inf_line)
    lines.append(f"{fam}_sum{_labels_text(labels)} {_fmt(total_sum)}")
    lines.append(f"{fam}_count{_labels_text(labels)} {cumulative}")
    return lines


def render_openmetrics(registry: Optional[MetricsRegistry]) -> str:
    """The full exposition document, terminated with ``# EOF``."""
    if registry is None:
        return "# EOF\n"
    # Group labelled variants under one family, preserving first-seen
    # order; a family must keep one exposition type.
    families: Dict[str, Tuple[str, List[object]]] = {}
    for _key, metric in registry.items():
        fam = sanitize_name(metric.name)
        ftype = _FAMILY_TYPES[metric.kind]
        if fam not in families:
            families[fam] = (ftype, [metric])
        else:
            seen_type, members = families[fam]
            if seen_type != ftype:
                raise ProRPError(
                    f"metric family {fam!r} mixes exposition types "
                    f"({seen_type} vs {ftype})"
                )
            members.append(metric)
    lines: List[str] = []
    for fam, (ftype, members) in families.items():
        lines.append(f"# TYPE {fam} {ftype}")
        for metric in members:
            labels = metric.labels
            kind = metric.kind
            if kind == "counter":
                lines.append(
                    f"{fam}_total{_labels_text(labels)} {_fmt(metric.value)}"
                )
            elif kind == "counter_series":
                lines.append(
                    f"{fam}_total{_labels_text(labels)} {_fmt(metric.total())}"
                )
            elif kind == "gauge":
                if metric.value is not None:
                    lines.append(
                        f"{fam}{_labels_text(labels)} {_fmt(metric.value)}"
                    )
            elif kind == "gauge_series":
                if metric.last is not None:
                    lines.append(
                        f"{fam}{_labels_text(labels)} {_fmt(metric.last)}"
                    )
            elif kind == "histogram":
                lines.extend(
                    _histogram_lines(
                        fam, labels, metric.buckets, metric.counts,
                        metric.sum, None,
                    )
                )
            elif kind == "histogram_series":
                lines.extend(
                    _histogram_lines(
                        fam, labels, metric.buckets, metric.merged_counts(),
                        metric.total_sum(), metric.worst_exemplar(),
                    )
                )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"
