"""Tests for the customer view (read-only, human-readable) and history
durability (snapshots, restores, node moves)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import StorageError
from repro.storage.durability import (
    move_history,
    read_snapshot,
    restore_history,
    snapshot_history,
    write_snapshot,
)
from repro.storage.history import HistoryStore
from repro.storage.view import CustomerHistoryView
from repro.types import EventType


def sample_store():
    store = HistoryStore()
    store.insert_history(0, EventType.ACTIVITY_START)          # 1970-01-01 00:00
    store.insert_history(3600, EventType.ACTIVITY_END)         # 01:00
    store.insert_history(90000, EventType.ACTIVITY_START)      # day 2, 01:00
    return store


class TestCustomerView:
    def test_rows_human_readable(self):
        view = CustomerHistoryView(sample_store())
        rows = view.rows()
        assert rows[0].time_utc == "1970-01-01 00:00:00"
        assert rows[0].event == "activity start"
        assert rows[1].event == "activity end"
        assert len(view) == 3

    def test_rows_time_filtered(self):
        view = CustomerHistoryView(sample_store())
        rows = view.rows(start=3600, end=90000)
        assert [r.event for r in rows] == ["activity end", "activity start"]

    def test_view_reflects_trims(self):
        store = sample_store()
        view = CustomerHistoryView(store)
        store.delete_old_history(history_days=1, now=90000 + 86400)
        # Oldest tuple survives as witness; the 3600 tuple is trimmed.
        assert len(view) == 2

    def test_view_is_read_only(self):
        view = CustomerHistoryView(sample_store())
        with pytest.raises(StorageError):
            view.insert(1, EventType.ACTIVITY_START)
        with pytest.raises(StorageError):
            view.delete(1)
        with pytest.raises(StorageError):
            view.update(1)

    def test_iteration(self):
        events = [r.event for r in CustomerHistoryView(sample_store())]
        assert events == ["activity start", "activity end", "activity start"]


class TestDurability:
    def test_snapshot_restore_round_trip(self):
        store = sample_store()
        snapshot = snapshot_history(store, "db-1")
        restored = restore_history(snapshot)
        assert restored.all_events() == store.all_events()
        assert restored.tuple_count == 3

    def test_snapshot_counts(self):
        snapshot = snapshot_history(sample_store(), "db-1")
        assert snapshot.tuple_count == 3
        assert snapshot.database_id == "db-1"

    def test_corrupt_snapshot_rejected(self):
        snapshot = snapshot_history(sample_store(), "db-1")
        corrupt = type(snapshot)(
            database_id=snapshot.database_id,
            events=snapshot.events[:-1],  # drop a tuple, keep the checksum
            checksum=snapshot.checksum,
        )
        with pytest.raises(StorageError):
            restore_history(corrupt)

    def test_file_round_trip(self, tmp_path):
        snapshot = snapshot_history(sample_store(), "db-1")
        path = tmp_path / "backup.json"
        write_snapshot(snapshot, path)
        loaded = read_snapshot(path)
        assert loaded == snapshot
        assert restore_history(loaded).tuple_count == 3

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "backup.json"
        path.write_text('{"version": 99, "events": []}')
        with pytest.raises(StorageError):
            read_snapshot(path)

    def test_move_preserves_prediction_inputs(self):
        """The durability design principle (Section 3.3): after a load-
        balancing move, predictions continue uninterrupted because the
        history moved with the database."""
        from repro.config import ProRPConfig
        from repro.core.predictor import predict_next_activity
        from repro.types import SECONDS_PER_DAY as DAY, SECONDS_PER_HOUR as HOUR

        store = HistoryStore()
        for day in range(28):
            store.insert_history(day * DAY + 9 * HOUR, EventType.ACTIVITY_START)
        _, moved = move_history(store, "db-1")
        now = 27 * DAY + 18 * HOUR
        config = ProRPConfig()
        assert predict_next_activity(moved, config, now) == predict_next_activity(
            store, config, now
        )

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=10**7),
                st.sampled_from([EventType.ACTIVITY_START, EventType.ACTIVITY_END]),
            ),
            unique_by=lambda pair: pair[0],
            max_size=60,
        )
    )
    def test_round_trip_any_history(self, events):
        store = HistoryStore()
        for t, event_type in events:
            store.insert_history(t, event_type)
        _, restored = move_history(store, "fuzz")
        assert restored.all_events() == store.all_events()
        assert list(restored.login_timestamps()) == list(store.login_timestamps())


class TestSingleByteCorruption:
    """The whole-document file checksum (snapshot format v2) must catch
    every single-byte corruption of a persisted snapshot: flip any byte,
    and the read either fails with StorageError or -- for flips that do
    not survive JSON canonicalization, e.g. whitespace-to-whitespace --
    parses back to exactly the original snapshot."""

    def _written(self, tmp_path):
        snapshot = snapshot_history(sample_store(), "db-1")
        path = tmp_path / "backup.json"
        write_snapshot(snapshot, path)
        return snapshot, path, path.read_bytes()

    def test_every_position_low_bit_flip_caught(self, tmp_path):
        snapshot, path, raw = self._written(tmp_path)
        undetected = []
        for i in range(len(raw)):
            corrupt = bytearray(raw)
            corrupt[i] ^= 0x01
            path.write_bytes(bytes(corrupt))
            try:
                loaded = read_snapshot(path)
            except StorageError:
                continue
            if loaded != snapshot:
                undetected.append(i)
        assert undetected == [], (
            f"byte flips at {undetected} yielded a wrong snapshot "
            "without a StorageError"
        )

    def test_sampled_byte_and_mask_flips_caught(self, tmp_path):
        import random

        snapshot, path, raw = self._written(tmp_path)
        rng = random.Random(20240806)
        samples = [
            (rng.randrange(len(raw)), rng.randrange(1, 256)) for _ in range(300)
        ]
        for position, mask in samples:
            corrupt = bytearray(raw)
            corrupt[position] ^= mask
            path.write_bytes(bytes(corrupt))
            try:
                loaded = read_snapshot(path)
            except StorageError:
                continue
            assert loaded == snapshot, (
                f"flip at byte {position} with mask {mask:#x} went undetected"
            )


class TestInterruptedSnapshotWrite:
    """Crashing partway through ``write_snapshot`` must never destroy the
    previous good snapshot: the new bytes go to a temp file and only an
    atomic rename makes them visible, so an interruption at any step
    leaves the destination readable and equal to the old document."""

    def _written(self, tmp_path):
        original = snapshot_history(sample_store(), "db-1")
        path = tmp_path / "backup.json"
        write_snapshot(original, path)
        bigger = sample_store()
        bigger.insert_history(180000, EventType.ACTIVITY_END)
        newer = snapshot_history(bigger, "db-1")
        return original, newer, path

    def test_crash_before_rename_preserves_previous_snapshot(
        self, tmp_path, monkeypatch
    ):
        original, newer, path = self._written(tmp_path)

        def killed_replace(src, dst):
            raise OSError("injected: process died before the rename")

        monkeypatch.setattr("repro.storage.atomic.os.replace", killed_replace)
        with pytest.raises(OSError):
            write_snapshot(newer, path)
        monkeypatch.undo()
        # The old snapshot is intact and the stray temp file was removed.
        assert read_snapshot(path) == original
        assert [p.name for p in tmp_path.iterdir()] == ["backup.json"]

    def test_crash_during_temp_write_preserves_previous_snapshot(
        self, tmp_path, monkeypatch
    ):
        original, newer, path = self._written(tmp_path)

        def killed_fsync(fd):
            raise OSError("injected: device lost before flush completed")

        monkeypatch.setattr("repro.storage.atomic.os.fsync", killed_fsync)
        with pytest.raises(OSError):
            write_snapshot(newer, path)
        monkeypatch.undo()
        assert read_snapshot(path) == original
        assert [p.name for p in tmp_path.iterdir()] == ["backup.json"]
