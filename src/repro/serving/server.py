"""The in-process async gateway and its JSON-over-TCP front end.

Request flow (``docs/serving.md`` has the full diagram)::

    client -> submit() -> AdmissionController -> bounded queue
           -> dispatch loop -> handler task -> MicroBatcher
           -> FastPredictor.predict_fleet (breaker + retry guarded)
           -> response future

The server is a single asyncio event loop: handlers are coroutine tasks,
the predictor evaluation itself is synchronous numpy (micro-batched, so
one grid pass answers many requests).  Admission bounds queued +
in-flight work and sheds the rest with typed rejections; the dispatch
loop measures queue wait, re-checks deadlines, and hints the batcher to
flush the moment the queue drains.

Resilience wiring mirrors the simulator's proactive policy: the
``serving.handler`` fault point can fail an evaluation, a
:class:`~repro.faults.resilience.RetryPolicy` absorbs transients, and a
:class:`~repro.faults.resilience.CircuitBreaker` opens after repeated
failures so a broken predictor back end answers ``Unavailable``
immediately instead of burning the queue.

``stop()`` is the graceful-shutdown contract: new arrivals are rejected
with :class:`~repro.serving.requests.Shutdown`, queued-but-unstarted
requests are drained and rejected the same way, in-flight batches are
flushed and awaited, and the metrics snapshot is exported when
configured.  No request future is ever left pending -- a regression test
pins that.
"""

from __future__ import annotations

import asyncio
import json
import time

import numpy as np
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.config import DEFAULT_CONFIG, ProRPConfig
from repro.core.fast_predictor import get_fast_predictor
from repro.errors import (
    CircuitOpenError,
    ConfigError,
    FaultInjectedError,
    ProRPError,
)
from repro.faults.resilience import CircuitBreaker, RetryPolicy
from repro.faults.runtime import FAULTS
from repro.observability import exporters
from repro.observability.metrics import LATENCY_BUCKETS_MS
from repro.observability.openmetrics import render_openmetrics
from repro.observability.runtime import OBS
from repro.serving.admission import AdmissionController, AdmissionPolicy
from repro.serving.batcher import MicroBatcher
from repro.serving.requests import (
    HealthRequest,
    HealthResponse,
    InvalidRequest,
    MetricsRequest,
    MetricsResponse,
    PredictRequest,
    PredictResponse,
    Request,
    Response,
    ResumeScanRequest,
    ResumeScanResponse,
    ServingProtocolError,
    Shutdown,
    Unavailable,
    decode_request,
    encode_response,
)
from repro.types import PredictedActivity

#: Fault point consulted once per batch evaluation: the predictor back
#: end fails (retried, then breaker-accounted).
HANDLER_FAULT_POINT = "serving.handler"

#: Names pre-registered into the metrics registry at start() so a
#: snapshot always carries the serving namespace, even before traffic.
_PREREGISTERED_COUNTERS = (
    "serving.requests.predict",
    "serving.requests.resume_scan",
    "serving.requests.health",
    "serving.requests.metrics",
    "serving.admitted",
    "serving.served",
    "serving.errors",
    "serving.shed.queue_full",
    "serving.shed.rate_limited",
    "serving.shed.deadline",
    "serving.shed.shutdown",
    "serving.cache.hits",
    "serving.cache.misses",
    "serving.health.probes",
    "serving.health.metrics_scrapes",
    "slo.evaluations",
    "slo.alerts.fired",
    "slo.alerts.cleared",
)

#: Wall-clock window for the gateway's live series (shed/latency per
#: tenant): one second, matching the serving SLOs' fast window.
SERVING_WINDOW_S = 1.0


@dataclass(frozen=True)
class ServingSettings:
    """Gateway knobs: queueing, batching, rate limiting, resilience."""

    max_queue_depth: int = 256
    max_batch_size: int = 64
    max_linger_ms: float = 2.0
    tenant_rate: float = 0.0
    tenant_burst: float = 8.0
    retry_attempts: int = 2
    breaker_failure_threshold: int = 5
    breaker_recovery_s: float = 1.0
    #: Bound on the by-id prediction cache (entries); 0 disables it.
    #: Only identity-carrying requests (``database_id``) are cacheable --
    #: the key includes the history's login version, so a router-side
    #: append invalidates exactly the affected database.
    prediction_cache_size: int = 8192
    #: Predictor-bank policies (:data:`repro.tuning.bank.BANK_POLICIES`)
    #: routing identity-carrying predictions and resume scans.  Empty
    #: (the default) or ``("sliding",)`` leaves the batched
    #: FastPredictor path byte-identical; richer banks re-rank each
    #: database's prediction *after* the batched evaluation, so the
    #: micro-batching hot path is untouched.  ``append_login`` is the
    #: bank's login-feedback hook.
    predictor_bank: Tuple[str, ...] = ()
    #: When set, ``stop()`` flushes the live metrics snapshot here
    #: (JSON when the path ends in .json, plain text otherwise).
    metrics_out: Optional[str] = None

    def admission_policy(self) -> AdmissionPolicy:
        return AdmissionPolicy(
            max_queue_depth=self.max_queue_depth,
            tenant_rate=self.tenant_rate,
            tenant_burst=self.tenant_burst,
        )


@dataclass
class ServerStats:
    """Always-on plain-int accounting (the HOT_PATH discipline)."""

    served: int = 0
    errors: int = 0
    max_depth: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)

    def count(self, kind: str) -> None:
        self.by_kind[kind] = self.by_kind.get(kind, 0) + 1


class _QueueEntry:
    __slots__ = ("request", "future", "enqueued_at")

    def __init__(self, request: Request, future: asyncio.Future, enqueued_at: float):
        self.request = request
        self.future = future
        self.enqueued_at = enqueued_at


_STOP = object()


class PredictionServer:
    """The online gateway over the fleet-prediction hot path.

    ``configs`` maps the config names requests carry to knob sets; the
    default maps ``"default"`` to :data:`repro.config.DEFAULT_CONFIG`.
    ``clock`` is injectable for deterministic queue-wait/deadline tests.
    """

    def __init__(
        self,
        configs: Optional[Dict[str, ProRPConfig]] = None,
        settings: Optional[ServingSettings] = None,
        clock: Callable[[], float] = time.monotonic,
        slo_monitor=None,
        control_plane=None,
    ):
        self.settings = settings if settings is not None else ServingSettings()
        self._configs = dict(configs) if configs else {"default": DEFAULT_CONFIG}
        self._clock = clock
        #: Optional :class:`repro.observability.slo.SloMonitor` ticked on
        #: every served request; its ledger feeds the health endpoint.
        self.slo_monitor = slo_monitor
        #: Optional :class:`repro.controlplane.durability.
        #: DurableWorkflowEngine`: each resume scan's selected databases
        #: become journaled PROACTIVE_RESUME workflows, and ``stop()``
        #: checkpoints the engine before the gateway exits so a restart
        #: recovers exactly the workflows it was driving.
        self.control_plane = control_plane
        self.admission = AdmissionController(
            self.settings.admission_policy(), clock=clock
        )
        self.batcher = MicroBatcher(
            self._run_batch,
            max_batch_size=self.settings.max_batch_size,
            max_linger_s=self.settings.max_linger_ms / 1000.0,
        )
        self._retry = RetryPolicy(
            max_attempts=max(1, self.settings.retry_attempts),
            base_delay_s=0.0,
            jitter=0.0,
        )
        self._breaker = CircuitBreaker(
            failure_threshold=self.settings.breaker_failure_threshold,
            recovery_s=self.settings.breaker_recovery_s,
            name="serving.predictor",
        )
        self.stats = ServerStats()
        #: config name -> PredictorBank, keyed per (region, database id).
        #: Built eagerly so bad policy names fail at construction time.
        self._banks: Dict[str, "PredictorBank"] = {}
        if self.settings.predictor_bank:
            from repro.tuning.bank import PredictorBank

            self._banks = {
                name: PredictorBank(self.settings.predictor_bank, config)
                for name, config in self._configs.items()
            }
        #: region -> database id -> (sorted logins, physically paused?).
        #: Values may be plain dicts (in-process registry) or read-only
        #: shared-memory views (:meth:`attach_fleet` on sharded workers);
        #: both speak ``get``/``__getitem__``/``items``.
        self._fleet: Dict[str, Dict[str, Tuple[Sequence[int], bool]]] = {}
        #: (region, database id) -> registration stamp; the in-process
        #: analogue of the arena's per-database login version, keyed into
        #: the prediction cache so re-registration/appends invalidate.
        self._login_versions: Dict[Tuple[str, str], int] = {}
        self._version_stamp = 0
        #: by-id prediction memo: (region, config, database id, login
        #: version, now) -> PredictedActivity, FIFO-bounded.
        self._cache: Dict[tuple, "PredictedActivity"] = {}
        self._queue: "asyncio.Queue" = asyncio.Queue()
        self._in_flight: set = set()
        self._dispatch_task: Optional[asyncio.Task] = None
        self._started = False
        self._stopping = False

    # ------------------------------------------------------------------
    # Fleet registry (the resume scan's metadata substitute)
    # ------------------------------------------------------------------

    def register_database(
        self,
        region: str,
        database_id: str,
        logins: Sequence[int],
        paused: bool = True,
    ) -> None:
        """Register one database's login history for resume scans and
        by-id predictions.  Re-registering bumps the login version, so
        cached predictions for the old history become unreachable."""
        self._fleet.setdefault(region, {})[database_id] = (logins, paused)
        self._version_stamp += 1
        self._login_versions[(region, database_id)] = self._version_stamp

    def attach_fleet(self, views: Dict[str, object]) -> None:
        """Serve the fleet from externally-owned views (the sharded
        worker's read-only :class:`~repro.serving.sharded.arena.
        SharedHistoryArena` mapping).  Each region view must speak
        ``get``/``__getitem__``/``items`` yielding ``(logins, paused)``
        and, when it can, ``login_version(database_id)``; the writer (the
        router) owns all mutation."""
        self._fleet = dict(views)  # type: ignore[assignment]

    def set_paused(self, region: str, database_id: str, paused: bool) -> None:
        logins, _ = self._fleet[region][database_id]
        self._fleet[region][database_id] = (logins, paused)

    def append_login(self, region: str, database_id: str, ts: int) -> None:
        """Append one login to a registered history (ascending, deduped
        on timestamp, mirroring ``HistoryStore`` semantics) and bump the
        login version so cached predictions invalidate."""
        logins, paused = self._fleet[region][database_id]
        if logins and ts < logins[-1]:
            raise ConfigError(
                f"login {ts} is older than the newest history entry "
                f"{logins[-1]} for {database_id!r}"
            )
        if logins and ts == logins[-1]:
            return
        self._fleet[region][database_id] = (tuple(logins) + (ts,), paused)
        self._version_stamp += 1
        self._login_versions[(region, database_id)] = self._version_stamp
        for bank in self._banks.values():
            bank.observe_login((region, database_id), ts)

    def _resolve_database(
        self, region: str, database_id: str
    ) -> Tuple[Sequence[int], int]:
        """``(logins, login_version)`` for a by-id request, or a typed
        protocol error when the database is not registered."""
        fleet = self._fleet.get(region)
        entry = fleet.get(database_id) if fleet is not None else None
        if entry is None:
            raise ServingProtocolError(
                f"unknown database {database_id!r} in region {region!r}"
            )
        logins, _paused = entry
        version_of = getattr(fleet, "login_version", None)
        if version_of is not None:
            return logins, version_of(database_id)
        return logins, self._login_versions.get((region, database_id), 0)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Start the dispatch loop; idempotent until stopped."""
        self._ensure_started()

    def _ensure_started(self) -> None:
        """The synchronous body of :meth:`start`, callable from the
        fast path (it only creates the dispatch task, so it needs a
        running event loop but never awaits)."""
        if self._started:
            return
        if self._stopping:
            raise ConfigError("a stopped PredictionServer cannot restart")
        self._started = True
        if OBS.enabled:
            for name in _PREREGISTERED_COUNTERS:
                OBS.metrics.counter(name)
            OBS.metrics.histogram(
                "serving.queue.wait_ms", buckets=LATENCY_BUCKETS_MS
            )
            OBS.metrics.histogram(
                "serving.latency_ms", buckets=LATENCY_BUCKETS_MS
            )
            OBS.metrics.gauge("serving.queue.depth").set(0)
            # The windowed streams the serving SLO rules evaluate; created
            # up front so a scrape shows the families even before traffic.
            OBS.metrics.counter_series(
                "serving.requests.window", window_s=SERVING_WINDOW_S
            )
            OBS.metrics.counter_series(
                "serving.shed.window", window_s=SERVING_WINDOW_S
            )
            OBS.metrics.histogram_series(
                "serving.latency_ms.window",
                window_s=SERVING_WINDOW_S,
                buckets=LATENCY_BUCKETS_MS,
            )
        self._dispatch_task = asyncio.get_running_loop().create_task(
            self._dispatch_loop()
        )

    async def stop(self) -> None:
        """Graceful shutdown: reject queued work, drain in-flight work.

        Ordering matters: close admission first (new arrivals see
        ``Shutdown``), drain the queue (FIFO entries the dispatcher has
        not started get ``Shutdown``), stop the dispatcher, then flush
        the batcher until every in-flight handler resolved.  Finally
        export the metrics snapshot when configured.
        """
        if not self._started or self._stopping:
            self._stopping = True
            return
        self._stopping = True
        self.batcher.immediate = True
        drained: List[_QueueEntry] = []
        while not self._queue.empty():
            entry = self._queue.get_nowait()
            if entry is not _STOP:
                drained.append(entry)
        for entry in drained:
            self.admission.shed["shutdown"] += 1
            if OBS.enabled:
                OBS.metrics.counter("serving.shed.shutdown").inc()
                OBS.metrics.counter_series(
                    "serving.shed.window", window_s=SERVING_WINDOW_S
                ).inc(self._clock())
            self._resolve(
                entry,
                Shutdown(entry.request.request_id, "server stopped while queued"),
            )
        self._queue.put_nowait(_STOP)
        if self._dispatch_task is not None:
            await self._dispatch_task
            self._dispatch_task = None
        while self._in_flight:
            self.batcher.flush_all()
            await asyncio.gather(
                *list(self._in_flight), return_exceptions=True
            )
        if self.control_plane is not None:
            # Every in-flight handler has resolved, so no further resume
            # scans can submit workflows: checkpoint + close the durable
            # engine so a restart recovers without replaying the full WAL.
            self.control_plane.close()
        if self.settings.metrics_out and OBS.enabled and OBS.metrics is not None:
            exporters.write_metrics_snapshot(
                OBS.metrics, self.settings.metrics_out, title="serving"
            )

    @property
    def stopping(self) -> bool:
        return self._stopping

    def depth(self) -> int:
        """Current logical queue depth: queued plus in-flight requests."""
        return self._queue.qsize() + len(self._in_flight)

    # ------------------------------------------------------------------
    # Request entry point
    # ------------------------------------------------------------------

    async def submit(self, request: Request) -> Response:
        """Serve one request; always returns a typed response."""
        response, future = self.submit_nowait(request)
        if response is not None:
            return response
        return await future  # type: ignore[return-value]

    def submit_nowait(
        self, request: Request
    ) -> Tuple[Optional[Response], Optional["asyncio.Future"]]:
        """Admit one request without awaiting it.

        Returns ``(response, None)`` when the request resolves
        synchronously -- health/metrics probes, typed admission
        rejections, and by-id prediction-cache hits -- else ``(None,
        future)`` with the request enqueued for the dispatch loop;
        awaiting the future yields the typed response.  The sharded
        worker's pipelined front end calls this directly so the cache-hit
        hot path never allocates a task or future.  Must be called from
        within a running event loop.
        """
        if OBS.enabled:
            OBS.metrics.counter(f"serving.requests.{request.kind}").inc()
            OBS.metrics.counter_series(
                "serving.requests.window", window_s=SERVING_WINDOW_S
            ).inc(self._clock())
        if isinstance(request, HealthRequest):
            return self._health(request), None
        if isinstance(request, MetricsRequest):
            return self._metrics(request), None
        if not self._started and not self._stopping:
            self._ensure_started()
        rejection = self.admission.admit(
            request, depth=self.depth(), stopping=self._stopping
        )
        if rejection is not None:
            return rejection, None
        if (
            isinstance(request, PredictRequest)
            and request.database_id is not None
        ):
            fast = self._fast_predict(request)
            if fast is not None:
                return fast, None
        loop = asyncio.get_running_loop()
        entry = _QueueEntry(request, loop.create_future(), self._clock())
        self._queue.put_nowait(entry)
        depth = self.depth()
        if depth > self.stats.max_depth:
            self.stats.max_depth = depth
        if OBS.enabled:
            OBS.metrics.gauge("serving.queue.depth").set(depth)
        return None, entry.future

    def _fast_predict(self, request: PredictRequest) -> Optional[Response]:
        """The synchronous by-id path: resolve the history, probe the
        prediction cache.  A hit (or a typed resolution error) answers
        immediately; ``None`` means cache miss -- fall through to the
        batched path, which fills the cache."""
        try:
            self._config(request.config)
            _, version = self._resolve_database(
                request.region, request.database_id
            )
        except ServingProtocolError as exc:
            self.stats.served += 1
            self.stats.count("invalid")
            if OBS.enabled:
                OBS.metrics.counter("serving.served").inc()
            return InvalidRequest(request.request_id, str(exc))
        key = (
            request.region,
            request.config,
            request.database_id,
            version,
            request.now,
        )
        hit = self._cache.get(key)
        if hit is None:
            self.stats.cache_misses += 1
            if OBS.enabled:
                OBS.metrics.counter("serving.cache.misses").inc()
            return None
        self.stats.cache_hits += 1
        self.stats.served += 1
        self.stats.count("predict")
        if OBS.enabled:
            OBS.metrics.counter("serving.cache.hits").inc()
            OBS.metrics.counter("serving.served").inc()
        return PredictResponse(
            request_id=request.request_id,
            prediction=hit,
            batch_size=1,
            queue_wait_ms=0.0,
        )

    def _cache_put(self, key: tuple, prediction: PredictedActivity) -> None:
        limit = self.settings.prediction_cache_size
        if limit <= 0:
            return
        cache = self._cache
        if key not in cache and len(cache) >= limit:
            del cache[next(iter(cache))]  # FIFO eviction
        cache[key] = prediction

    def _health(self, request: HealthRequest) -> HealthResponse:
        if OBS.enabled:
            OBS.metrics.counter("serving.health.probes").inc()
        status = "stopping" if self._stopping else (
            "ok" if self._started else "idle"
        )
        stats = {
            "errors": self.stats.errors,
            "max_depth": self.stats.max_depth,
            "batches": self.batcher.batches,
            "batched_requests": self.batcher.batched_requests,
            "breaker_opens": self._breaker.opens,
            "cache_hits": self.stats.cache_hits,
            "cache_misses": self.stats.cache_misses,
            **{f"shed_{k}": v for k, v in self.admission.shed.items()},
        }
        if self._banks:
            stats["bank_switches"] = sum(
                bank.switches for bank in self._banks.values()
            )
            for bank in self._banks.values():
                bank.publish_shares()
        if self.slo_monitor is not None:
            ledger = self.slo_monitor.ledger
            active = ledger.active()
            stats["slo_alerts_active"] = len(active)
            stats["slo_alerts_fired"] = ledger.fired_count()
            stats["slo_alerts_cleared"] = ledger.cleared_count()
            if active:
                status = "degraded" if status == "ok" else status
        return HealthResponse(
            request_id=request.request_id,
            status=status,
            queue_depth=self.depth(),
            in_flight=len(self._in_flight),
            served=self.stats.served,
            shed=self.admission.total_shed(),
            stats=stats,
        )

    def _metrics(self, request: MetricsRequest) -> MetricsResponse:
        """Synchronous OpenMetrics scrape -- like health, it bypasses
        admission so the monitoring plane survives overload."""
        if OBS.enabled:
            OBS.metrics.counter("serving.health.metrics_scrapes").inc()
            registry = OBS.metrics
        else:
            registry = None
        return MetricsResponse(
            request_id=request.request_id,
            body=render_openmetrics(registry),
            metric_count=len(registry) if registry is not None else 0,
        )

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            entry = await self._queue.get()
            if entry is _STOP:
                return
            waited_ms = (self._clock() - entry.enqueued_at) * 1000.0
            if OBS.enabled:
                OBS.metrics.histogram(
                    "serving.queue.wait_ms", buckets=LATENCY_BUCKETS_MS
                ).observe(waited_ms)
            deadline_ms = getattr(entry.request, "deadline_ms", None)
            if deadline_ms is not None and waited_ms > deadline_ms:
                self._resolve(
                    entry,
                    self.admission.shed_deadline(
                        entry.request.request_id,
                        waited_ms,
                        tenant=getattr(entry.request, "tenant", "default"),
                    ),
                )
                continue
            task = loop.create_task(self._handle(entry, waited_ms))
            self._in_flight.add(task)
            task.add_done_callback(self._in_flight.discard)
            if self._queue.qsize() == 0:
                # The burst is fully dispatched; once the handler tasks
                # have joined their batches (they run before this
                # callback), flush rather than waiting out the linger.
                loop.call_soon(self.batcher.flush_ready)

    async def _handle(self, entry: _QueueEntry, waited_ms: float) -> None:
        started = time.perf_counter()
        request = entry.request
        try:
            if isinstance(request, PredictRequest):
                response = await self._handle_predict(request, waited_ms)
            elif isinstance(request, ResumeScanRequest):
                response = await self._handle_resume_scan(request, waited_ms)
            else:  # pragma: no cover - admission admits typed requests only
                response = InvalidRequest(
                    request.request_id, f"unhandled request {request!r}"
                )
        except CircuitOpenError as exc:
            response = self._error(request.request_id, f"breaker open: {exc}")
        except ProRPError as exc:
            response = self._error(request.request_id, str(exc))
        except Exception as exc:  # noqa: BLE001 - the future must resolve
            # Anything the typed handlers missed (e.g. a ValueError from
            # numpy coercion of malformed logins) would otherwise strand
            # this future -- and, via the batcher, every co-batched one.
            response = self._error(
                request.request_id, f"internal error: {exc!r}"
            )
        self._resolve(entry, response)
        if OBS.enabled:
            total_ms = (time.perf_counter() - started) * 1000.0 + waited_ms
            OBS.metrics.histogram(
                "serving.latency_ms", buckets=LATENCY_BUCKETS_MS
            ).observe(total_ms)
            now = self._clock()
            # The per-tenant windowed stream the latency SLO evaluates;
            # the exemplar pins each window's worst request by id, so a
            # paging p99 links straight to the offending trace.
            OBS.metrics.histogram_series(
                "serving.latency_ms.window",
                window_s=SERVING_WINDOW_S,
                buckets=LATENCY_BUCKETS_MS,
            ).observe(now, total_ms, exemplar=request.request_id)
            OBS.metrics.histogram_series(
                "serving.tenant.latency_ms",
                window_s=SERVING_WINDOW_S,
                buckets=LATENCY_BUCKETS_MS,
                labels={"tenant": getattr(request, "tenant", "default")},
            ).observe(now, total_ms, exemplar=request.request_id)
            if self.slo_monitor is not None:
                self.slo_monitor.maybe_evaluate(now)

    def _error(self, request_id: str, message: str) -> Unavailable:
        self.stats.errors += 1
        if OBS.enabled:
            OBS.metrics.counter("serving.errors").inc()
        return Unavailable(request_id, message)

    def _resolve(self, entry: _QueueEntry, response: Response) -> None:
        if not entry.future.done():
            self.stats.served += 1
            self.stats.count(response.kind)
            if OBS.enabled:
                OBS.metrics.counter("serving.served").inc()
            entry.future.set_result(response)

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------

    def _config(self, name: str) -> ProRPConfig:
        config = self._configs.get(name)
        if config is None:
            raise ServingProtocolError(f"unknown config {name!r}")
        return config

    def _bank_predict(
        self,
        config_name: str,
        region: str,
        database_id: str,
        logins: Sequence[int],
        now: int,
        sliding: PredictedActivity,
    ) -> PredictedActivity:
        """Route one identity-carrying prediction through the predictor
        bank.  The batched FastPredictor result doubles as the bank's
        sliding arm (and the hybrid fallback), so a ``("sliding",)`` bank
        -- or no bank at all -- returns ``sliding`` unchanged."""
        bank = self._banks.get(config_name)
        if bank is None:
            return sliding
        return bank.predict(
            (region, database_id),
            now,
            lambda: np.asarray(logins, dtype=np.int64),
            lambda: sliding,
        )

    async def _handle_predict(
        self, request: PredictRequest, waited_ms: float
    ) -> Response:
        self._config(request.config)  # validate before batching
        logins: Sequence[int] = request.logins
        cache_key: Optional[tuple] = None
        if request.database_id is not None:
            logins, version = self._resolve_database(
                request.region, request.database_id
            )
            cache_key = (
                request.region,
                request.config,
                request.database_id,
                version,
                request.now,
            )
        prediction, batch_size = await self.batcher.submit(
            (request.region, request.config), logins, request.now
        )
        if request.database_id is not None:
            prediction = self._bank_predict(
                request.config,
                request.region,
                request.database_id,
                logins,
                request.now,
                prediction,
            )
        if cache_key is not None:
            self._cache_put(cache_key, prediction)
        return PredictResponse(
            request_id=request.request_id,
            prediction=prediction,
            batch_size=batch_size,
            queue_wait_ms=waited_ms,
        )

    async def _handle_resume_scan(
        self, request: ResumeScanRequest, waited_ms: float
    ) -> Response:
        """Algorithm 5 over the registered fleet: predict every paused
        database in one batched evaluation, pre-warm those whose start
        falls in the k-th window from now."""
        fleet = self._fleet.get(request.region, {})
        paused = [
            (database_id, logins)
            for database_id, (logins, is_paused) in fleet.items()
            if is_paused
        ]
        if not paused:
            return ResumeScanResponse(
                request_id=request.request_id,
                database_ids=(),
                scanned=0,
                queue_wait_ms=waited_ms,
            )
        key = (request.region, request.config)
        predictions = self._run_batch(
            key, [logins for _, logins in paused], request.now
        )
        if self._banks:
            predictions = [
                self._bank_predict(
                    request.config,
                    request.region,
                    database_id,
                    logins,
                    request.now,
                    prediction,
                )
                for (database_id, logins), prediction in zip(
                    paused, predictions
                )
            ]
        window_start = request.now + request.prewarm_s
        window_end = window_start + request.period_s
        selected = tuple(
            database_id
            for (database_id, _), prediction in zip(paused, predictions)
            if not prediction.is_empty
            and window_start <= prediction.start < window_end
        )
        if OBS.enabled:
            OBS.metrics.counter("serving.resume_scan.prewarms").inc(
                len(selected)
            )
        if self.control_plane is not None and selected:
            from repro.controlplane.workflows import WorkflowKind

            for database_id in selected:
                self.control_plane.submit(
                    WorkflowKind.PROACTIVE_RESUME, database_id, request.now
                )
            self.control_plane.tick(request.now)
        return ResumeScanResponse(
            request_id=request.request_id,
            database_ids=selected,
            scanned=len(paused),
            queue_wait_ms=waited_ms,
        )

    # ------------------------------------------------------------------
    # Guarded predictor evaluation
    # ------------------------------------------------------------------

    def _run_batch(
        self, key: Tuple[str, str], fleet_logins: List[Sequence[int]], now: int
    ) -> List[PredictedActivity]:
        """The batcher's evaluation callback (the resume scan calls it
        directly): resolve the config and run ``predict_fleet`` behind
        the breaker and retry policy."""
        _, config_name = key
        config = self._config(config_name)
        breaker_now = self._clock()
        if not self._breaker.allow(breaker_now):
            raise CircuitOpenError(
                "serving.predictor breaker is open; shedding evaluation"
            )

        def attempt() -> List[PredictedActivity]:
            if FAULTS.enabled and FAULTS.injector is not None:
                if FAULTS.injector.should_fire(HANDLER_FAULT_POINT):
                    raise FaultInjectedError(
                        HANDLER_FAULT_POINT,
                        "injected: serving handler backend failure",
                    )
            predictor = get_fast_predictor(config)
            return predictor.predict_fleet(fleet_logins, now)

        def on_retry(attempt_no: int, delay_s: float, error: BaseException) -> None:
            if FAULTS.enabled and FAULTS.injector is not None:
                FAULTS.injector.note("retry.serving.handler")
            if OBS.enabled:
                OBS.metrics.counter("serving.retries").inc()

        try:
            # Retries are immediate (no sleeps): the event loop must not
            # block, and transient injected faults clear on re-roll.
            results = self._retry.call(
                attempt, retry_on=(ProRPError,), on_retry=on_retry
            )
        except ProRPError:
            self._breaker.record_failure(self._clock())
            raise
        self._breaker.record_success(self._clock())
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Convenience: one-shot in-process serving
    # ------------------------------------------------------------------

    async def serve_script(self, requests: List[Request]) -> List[Response]:
        """Start, serve ``requests`` concurrently, stop.  The CLI's
        ``serve --once`` mode and tests drive the server through this."""
        await self.start()
        try:
            return list(
                await asyncio.gather(*(self.submit(r) for r in requests))
            )
        finally:
            await self.stop()


# ---------------------------------------------------------------------------
# JSON-over-TCP front end
# ---------------------------------------------------------------------------


async def handle_connection(
    server: PredictionServer,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """One client connection: newline-delimited JSON requests in,
    newline-delimited JSON responses out.  Requests on a single
    connection are handled serially -- each is answered before the next
    line is read -- so co-batching happens across connections, not
    within one."""
    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            text = line.decode("utf-8", errors="replace").strip()
            if not text:
                continue
            try:
                request = decode_request(json.loads(text))
            except (json.JSONDecodeError, ServingProtocolError) as exc:
                response: Response = InvalidRequest("?", str(exc))
            else:
                response = await server.submit(request)
            writer.write(
                (json.dumps(encode_response(response)) + "\n").encode("utf-8")
            )
            await writer.drain()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown race
            pass


async def serve_tcp(
    server: PredictionServer, host: str = "127.0.0.1", port: int = 0
) -> asyncio.AbstractServer:
    """Expose ``server`` over TCP; returns the listening asyncio server
    (``.sockets[0].getsockname()`` reveals the bound port when 0)."""
    await server.start()

    async def _on_connect(reader, writer):
        await handle_connection(server, reader, writer)

    return await asyncio.start_server(_on_connect, host=host, port=port)
