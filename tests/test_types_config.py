"""Tests for core value types and the Table 1 configuration."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import DEFAULT_CONFIG, ProRPConfig, Seasonality
from repro.errors import ConfigError, TraceError
from repro.types import (
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
    SECONDS_PER_MINUTE,
    ActivityTrace,
    AllocationState,
    EventType,
    HistoryEvent,
    PredictedActivity,
    Session,
    merge_sessions,
)

DAY = SECONDS_PER_DAY
HOUR = SECONDS_PER_HOUR


class TestSession:
    def test_duration_and_contains(self):
        session = Session(10, 20)
        assert session.duration == 10
        assert session.contains(10) and session.contains(19)
        assert not session.contains(20) and not session.contains(9)

    def test_invalid_session_rejected(self):
        with pytest.raises(TraceError):
            Session(10, 10)
        with pytest.raises(TraceError):
            Session(10, 5)

    def test_overlaps(self):
        assert Session(0, 10).overlaps(Session(5, 15))
        assert not Session(0, 10).overlaps(Session(10, 20))


class TestHistoryEvent:
    def test_negative_timestamp_rejected(self):
        with pytest.raises(TraceError):
            HistoryEvent(-1, EventType.ACTIVITY_START)

    def test_event_type_values_match_paper(self):
        assert int(EventType.ACTIVITY_START) == 1
        assert int(EventType.ACTIVITY_END) == 0


class TestPredictedActivity:
    def test_sentinel(self):
        none = PredictedActivity.none()
        assert none.is_empty
        assert none.start == none.end == 0
        assert none.confidence == 0.0

    def test_real_prediction_not_empty(self):
        assert not PredictedActivity(100, 200, 0.5).is_empty


class TestAllocationState:
    def test_allocated_flags(self):
        assert AllocationState.ACTIVE.allocated
        assert AllocationState.IDLE_ALLOCATED.allocated
        assert not AllocationState.PHYSICALLY_PAUSED.allocated
        assert not AllocationState.RESUMING.allocated


class TestActivityTrace:
    def test_overlapping_sessions_rejected(self):
        with pytest.raises(TraceError):
            ActivityTrace("t", [Session(0, 10), Session(5, 15)])

    def test_unsorted_sessions_rejected(self):
        with pytest.raises(TraceError):
            ActivityTrace("t", [Session(10, 20), Session(0, 5)])

    def test_created_after_first_session_rejected(self):
        with pytest.raises(TraceError):
            ActivityTrace("t", [Session(0, 10)], created_at=5)

    def test_events_alternate(self):
        trace = ActivityTrace("t", [Session(0, 10), Session(20, 30)])
        events = trace.events()
        assert [e.event_type for e in events] == [
            EventType.ACTIVITY_START,
            EventType.ACTIVITY_END,
            EventType.ACTIVITY_START,
            EventType.ACTIVITY_END,
        ]

    def test_idle_intervals(self):
        trace = ActivityTrace("t", [Session(0, 10), Session(20, 30), Session(30, 40)])
        assert trace.idle_intervals() == [Session(10, 20)]

    def test_demand_at(self):
        trace = ActivityTrace("t", [Session(10, 20)])
        assert trace.demand_at(15) == 1
        assert trace.demand_at(5) == 0
        assert trace.demand_at(20) == 0

    def test_active_seconds_clipping(self):
        trace = ActivityTrace("t", [Session(0, 100), Session(200, 300)])
        assert trace.active_seconds(50, 250) == 50 + 50

    def test_slice(self):
        trace = ActivityTrace("t", [Session(0, 100), Session(200, 300)])
        clipped = trace.slice(50, 250)
        assert [(s.start, s.end) for s in clipped] == [(50, 100), (200, 250)]
        assert clipped.created_at == trace.created_at

    def test_span_empty_trace(self):
        trace = ActivityTrace("t", [], created_at=42)
        assert trace.span == (42, 42)


class TestMergeSessions:
    def test_merges_overlaps(self):
        merged = merge_sessions([Session(0, 10), Session(5, 20), Session(30, 40)])
        assert merged == [Session(0, 20), Session(30, 40)]

    def test_merges_touching_with_gap(self):
        merged = merge_sessions([Session(0, 10), Session(12, 20)], gap=2)
        assert merged == [Session(0, 20)]

    def test_keeps_disjoint(self):
        merged = merge_sessions([Session(0, 10), Session(12, 20)])
        assert len(merged) == 2

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1000),
                st.integers(min_value=1, max_value=100),
            ),
            max_size=30,
        )
    )
    def test_merge_properties(self, raw):
        sessions = [Session(s, s + d) for s, d in raw]
        merged = merge_sessions(sessions)
        # Sorted, non-overlapping, gaps strictly positive.
        for a, b in zip(merged, merged[1:]):
            assert b.start > a.end
        # Coverage preserved: every original time point is covered.
        for session in sessions:
            assert any(
                m.start <= session.start and session.end <= m.end for m in merged
            )


class TestProRPConfig:
    def test_table1_defaults(self):
        config = DEFAULT_CONFIG
        assert config.logical_pause_s == 7 * HOUR
        assert config.history_days == 28
        assert config.horizon_s == DAY
        assert config.confidence == 0.1
        assert config.window_s == 7 * HOUR
        assert config.slide_s == 5 * SECONDS_PER_MINUTE
        assert config.prewarm_s == 5 * SECONDS_PER_MINUTE
        assert config.seasonality is Seasonality.DAILY

    def test_windows_per_horizon(self):
        # (24h - 7h) / 5min + 1 = 205 candidate windows.
        assert DEFAULT_CONFIG.windows_per_horizon == 205

    def test_seasonality_periods(self):
        assert DEFAULT_CONFIG.seasonality_periods_in_history == 28
        weekly = ProRPConfig(seasonality=Seasonality.WEEKLY)
        assert weekly.seasonality_periods_in_history == 4

    def test_from_paper_units(self):
        config = ProRPConfig.from_paper_units(
            logical_pause_hours=6, window_hours=2, slide_minutes=10
        )
        assert config.logical_pause_s == 6 * HOUR
        assert config.window_s == 2 * HOUR
        assert config.slide_s == 600

    def test_with_overrides_validates(self):
        with pytest.raises(ConfigError):
            DEFAULT_CONFIG.with_overrides(confidence=0.0)

    @pytest.mark.parametrize(
        "field,value",
        [
            ("logical_pause_s", 0),
            ("history_days", -1),
            ("horizon_s", 0),
            ("confidence", 1.5),
            ("window_s", 0),
            ("slide_s", 0),
            ("prewarm_s", -5),
            ("resume_operation_period_s", 0),
        ],
    )
    def test_invalid_knobs_rejected(self, field, value):
        with pytest.raises(ConfigError):
            ProRPConfig(**{field: value})

    def test_window_larger_than_horizon_rejected(self):
        with pytest.raises(ConfigError):
            ProRPConfig(window_s=2 * DAY)

    def test_weekly_needs_whole_weeks(self):
        with pytest.raises(ConfigError):
            ProRPConfig(history_days=10, seasonality=Seasonality.WEEKLY)

    def test_dict_round_trip(self):
        config = ProRPConfig(confidence=0.3, seasonality=Seasonality.WEEKLY)
        assert ProRPConfig.from_dict(config.to_dict()) == config
