"""Storage substrate: B-tree clustered index, typed tables, and the two
ProRP stores (``sys.pause_resume_history`` and ``sys.databases``).

The paper persists per-database history in an internal SQL table with a
clustered B-tree index on ``time_snapshot`` (Section 5).  This package
implements that stack from scratch:

* :mod:`repro.storage.btree` -- an order-configurable B-tree with point and
  range operations, all O(log n) as the paper's complexity analysis assumes.
* :mod:`repro.storage.schema` / :mod:`repro.storage.table` -- typed columns,
  uniqueness constraints, clustered and secondary indexes.
* :mod:`repro.storage.database` -- a named collection of tables (one logical
  "database" per simulated tenant plus the region metadata database).
* :mod:`repro.storage.history` -- the history store with the semantics of
  Algorithms 2 (InsertHistory) and 3 (DeleteOldHistory).
* :mod:`repro.storage.metadata` -- the ``sys.databases`` metadata store read
  by the proactive resume operation (Algorithm 5).
"""

from repro.storage.btree import BTree
from repro.storage.database import Database
from repro.storage.history import DeleteOldHistoryResult, HistoryStore
from repro.storage.metadata import DatabaseRecord, DatabaseState, MetadataStore
from repro.storage.schema import Column, ColumnType, TableSchema
from repro.storage.table import Table

__all__ = [
    "BTree",
    "Column",
    "ColumnType",
    "TableSchema",
    "Table",
    "Database",
    "HistoryStore",
    "DeleteOldHistoryResult",
    "MetadataStore",
    "DatabaseRecord",
    "DatabaseState",
]
