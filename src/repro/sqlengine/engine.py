"""The SQL engine facade: parse -> plan -> execute with a statement cache.

The stored procedures of Algorithms 2-4 execute the same parameterized
statements thousands of times per simulation, so parsed ASTs are cached by
SQL text (prepared-statement behaviour).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.errors import SqlExecutionError
from repro.faults.runtime import FAULTS
from repro.observability.runtime import OBS
from repro.sqlengine import ast
from repro.sqlengine.executor import Executor, Row
from repro.sqlengine.parser import parse
from repro.storage.database import Database

#: Fault point consulted once per executed statement: a transient engine
#: failure (deadlock victim, connection reset) surfaced as
#: :class:`SqlExecutionError` so callers exercise their retry paths.
EXECUTE_FAULT_POINT = "sql.execute"


@dataclass(frozen=True)
class StatementResult:
    """Outcome of one statement: result rows for SELECT, affected-row count
    for mutations, 0 rows affected for DDL."""

    rows: List[Row]
    rowcount: int

    def scalar(self) -> Any:
        """The single value of a one-row, one-column result (or None)."""
        if not self.rows:
            return None
        row = self.rows[0]
        if len(row) != 1:
            raise ValueError(f"scalar() on a {len(row)}-column row")
        return next(iter(row.values()))


class SqlEngine:
    """Executes SQL text against one storage :class:`Database`."""

    def __init__(self, database: Database):
        self.database = database
        self._executor = Executor(database)
        self._statement_cache: Dict[str, ast.Statement] = {}

    def prepare(self, sql: str) -> ast.Statement:
        """Parse (with caching) one SQL statement."""
        statement = self._statement_cache.get(sql)
        if statement is None:
            statement = parse(sql)
            self._statement_cache[sql] = statement
            if OBS.enabled:
                OBS.metrics.counter("sql.statements_parsed").inc()
        return statement

    def execute(self, sql: str, params: Optional[Dict[str, Any]] = None) -> StatementResult:
        """Parse, plan, and execute one statement with ``@param`` bindings."""
        statement = self.prepare(sql)
        if FAULTS.enabled and FAULTS.injector.should_fire(EXECUTE_FAULT_POINT):
            raise SqlExecutionError(
                "injected: transient failure executing statement"
            )
        if OBS.enabled:
            kind = type(statement).__name__.lower()
            OBS.metrics.counter(f"sql.executed.{kind}").inc()
            with OBS.tracer.span("sql.execute", kind=kind):
                return self._execute(statement, params)
        return self._execute(statement, params)

    def _execute(
        self, statement: ast.Statement, params: Optional[Dict[str, Any]]
    ) -> StatementResult:
        bound = params or {}
        if isinstance(statement, ast.Select):
            rows = self._executor.select(statement, bound)
            return StatementResult(rows=rows, rowcount=len(rows))
        if isinstance(statement, ast.Insert):
            return StatementResult(rows=[], rowcount=self._executor.insert(statement, bound))
        if isinstance(statement, ast.Delete):
            return StatementResult(rows=[], rowcount=self._executor.delete(statement, bound))
        if isinstance(statement, ast.Update):
            return StatementResult(rows=[], rowcount=self._executor.update(statement, bound))
        if isinstance(statement, ast.CreateTable):
            return StatementResult(rows=[], rowcount=self._executor.create_table(statement))
        if isinstance(statement, ast.CreateIndex):
            return StatementResult(rows=[], rowcount=self._executor.create_index(statement))
        if isinstance(statement, ast.Explain):
            rows = self._executor.explain(statement.statement)
            return StatementResult(rows=rows, rowcount=len(rows))
        raise TypeError(f"unhandled statement type {type(statement).__name__}")

    def exists(self, sql: str, params: Optional[Dict[str, Any]] = None) -> bool:
        """``IF EXISTS (SELECT ...)`` helper used by Algorithm 2."""
        return bool(self.execute(sql, params).rows)
