"""Sweep execution primitives shared by every backend.

A *sweep* is the canonical offline workload of the paper's Section 8
training pipeline: evaluate many independent candidate configurations
against one shared fleet of traces.  Each candidate is a *task*; a
:class:`SweepExecutor` maps a picklable ``worker(context, item)`` function
over the task items and returns the results **in submission order**, so a
sweep report is byte-identical no matter which backend (or worker count)
produced it.

The ``context`` argument carries the state shared by every task (the
fleet traces, the simulation settings).  Backends are expected to ship it
to each worker exactly once -- see
:class:`repro.parallel.multiprocess.MultiprocessExecutor` -- never once
per task.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, TypeVar

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")

#: A sweep task body: ``worker(context, item) -> result``.  Backends that
#: cross a process boundary require it to be a module-level function.
SweepWorker = Callable[[Any, Any], Any]


@dataclass(frozen=True)
class TaskRecord:
    """Telemetry of one completed sweep task."""

    index: int
    wall_s: float
    worker: str


@dataclass
class SweepStats:
    """Telemetry of one executor run (tasks queued/completed, wall time).

    ``speedup`` compares the summed per-task wall time against the
    end-to-end wall time: for a serial run it hovers around 1.0, for a
    parallel run it approaches the effective worker count.
    """

    backend: str
    workers: int
    tasks_queued: int = 0
    tasks_completed: int = 0
    n_chunks: int = 0
    wall_s: float = 0.0
    task_wall_s: float = 0.0
    tasks: List[TaskRecord] = field(default_factory=list)
    fallback_reason: Optional[str] = None

    @property
    def speedup(self) -> float:
        if self.wall_s <= 0.0:
            return 0.0
        return self.task_wall_s / self.wall_s


class SweepExecutor(abc.ABC):
    """Maps a worker function over sweep items, preserving item order.

    ``run`` is synchronous and returns one result per item; ``last_stats``
    holds the :class:`SweepStats` of the most recent run.  Passing a
    :class:`repro.telemetry.TelemetryStore` as ``telemetry_store`` makes
    every run append its per-task records to the store (the same stream
    the Section 9.1 components feed).
    """

    name = "abstract"

    def __init__(self, telemetry_store: Optional[Any] = None):
        self.last_stats: Optional[SweepStats] = None
        self._telemetry_store = telemetry_store

    @abc.abstractmethod
    def run(
        self, worker: SweepWorker, context: Any, items: Sequence[Any]
    ) -> List[Any]:
        """Evaluate ``worker(context, item)`` for every item, in order."""

    def _finish(self, stats: SweepStats) -> None:
        """Record ``stats`` and emit telemetry if a store is attached."""
        self.last_stats = stats
        if self._telemetry_store is not None:
            from repro.telemetry.emitter import emit_sweep_telemetry

            emit_sweep_telemetry(stats, self._telemetry_store)


def chunked(items: Sequence[ItemT], size: int) -> List[List[ItemT]]:
    """Split ``items`` into consecutive chunks of at most ``size``.

    The last chunk may be shorter; every item appears exactly once and
    concatenating the chunks reproduces the input order.
    """
    if size <= 0:
        raise ValueError(f"chunk size must be positive, got {size}")
    return [list(items[i : i + size]) for i in range(0, len(items), size)]


def merge_ordered(
    indexed_results: Sequence[tuple], n_items: int
) -> List[Any]:
    """Reassemble ``(index, result)`` pairs into submission order.

    Backends that execute chunks concurrently collect results in
    completion order; this restores the order the items were submitted
    in and verifies the sweep is complete (every index exactly once).
    """
    slots: List[Any] = [_MISSING] * n_items
    for index, result in indexed_results:
        if not 0 <= index < n_items:
            raise ValueError(f"task index {index} outside sweep of {n_items}")
        if slots[index] is not _MISSING:
            raise ValueError(f"task index {index} produced two results")
        slots[index] = result
    missing = [i for i, slot in enumerate(slots) if slot is _MISSING]
    if missing:
        raise ValueError(f"sweep incomplete: no result for tasks {missing}")
    return slots


class _Missing:
    """Sentinel distinguishing 'no result yet' from a None result."""

    def __repr__(self) -> str:  # pragma: no cover
        return "<missing>"


_MISSING = _Missing()
