"""The online knob tuner: successive halving with a guarded incumbent.

Replaces Section 8's offline monthly grid sweep with a bandit-style
controller.  A small population of candidate ``(l, c, w)`` configs is
evaluated every aligned window against live KPI feedback; losers are
pruned (successive halving), a challenger that beats both the baseline
and the active config for ``promote_after`` consecutive windows is
promoted, and the paper's static config is a *guarded incumbent*: it is
never pruned, it is scored in every window, and any active challenger
that scores below it is demoted immediately (the never-worse-than-
baseline rule).

Durability rides on the existing control plane: every window's scores
are journaled to a :class:`~repro.controlplane.durability.wal.WriteAheadLog`
*before* the pure state transition applies them, and periodic
checkpoints bound replay.  Because ``_apply_window`` is deterministic,
recovery (checkpoint + journal replay) reproduces the exact tuner state
and decision sequence -- a ``chaos --crash-recovery``-style kill changes
nothing (pinned by ``tests/test_tuning.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.config import ProRPConfig
from repro.controlplane.durability.checkpoint import (
    load_latest_checkpoint,
    write_checkpoint,
)
from repro.controlplane.durability.wal import WriteAheadLog, read_log
from repro.errors import ConfigError, TuningError
from repro.observability.runtime import OBS

#: WAL record type for one evaluated window.
WINDOW_RECORD = "tuning.window"


@dataclass(frozen=True)
class TunerSettings:
    """Hysteresis and halving knobs for the online tuner."""

    #: Consecutive winning windows a challenger needs before promotion.
    promote_after: int = 2
    #: A challenger must beat max(baseline, active) by this score margin.
    promote_margin: float = 0.1
    #: The active config is demoted the moment it scores below
    #: ``baseline - demote_margin`` (0 = strictly never worse).
    demote_margin: float = 0.0
    #: Prune the bottom half of surviving challengers every N windows.
    halve_every: int = 2
    #: Halving never cuts the challenger population below this floor.
    min_challengers: int = 1

    def __post_init__(self) -> None:
        if self.promote_after < 1:
            raise ConfigError(
                f"promote_after must be >= 1, got {self.promote_after}"
            )
        if self.promote_margin < 0 or self.demote_margin < 0:
            raise ConfigError("promotion/demotion margins must be >= 0")
        if self.halve_every < 1:
            raise ConfigError(
                f"halve_every must be >= 1, got {self.halve_every}"
            )
        if self.min_challengers < 0:
            raise ConfigError(
                f"min_challengers must be >= 0, got {self.min_challengers}"
            )


DEFAULT_TUNER_SETTINGS = TunerSettings()


@dataclass(frozen=True)
class TuningDecision:
    """What one evaluated window changed."""

    window: int
    #: Candidate index serving production traffic after this window.
    active: int
    #: Candidate indices still being evaluated (always includes 0).
    alive: Tuple[int, ...]
    #: Challenger promoted to active this window, if any.
    promoted: Optional[int] = None
    #: True when the active challenger fell below the baseline guard.
    demoted: bool = False
    #: Challengers dropped by successive halving this window.
    pruned: Tuple[int, ...] = ()

    def to_dict(self) -> Dict[str, object]:
        return {
            "window": self.window,
            "active": self.active,
            "alive": list(self.alive),
            "promoted": self.promoted,
            "demoted": self.demoted,
            "pruned": list(self.pruned),
        }


@dataclass
class _TunerState:
    """The mutable tuner state; everything recovery must reproduce."""

    active: int = 0
    alive: List[int] = field(default_factory=list)
    window: int = 0
    streaks: Dict[int, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "active": self.active,
            "alive": list(self.alive),
            "window": self.window,
            "streaks": {str(k): v for k, v in self.streaks.items()},
        }

    @classmethod
    def from_dict(cls, document: Mapping[str, object]) -> "_TunerState":
        return cls(
            active=int(document["active"]),  # type: ignore[arg-type]
            alive=[int(i) for i in document["alive"]],  # type: ignore[union-attr]
            window=int(document["window"]),  # type: ignore[arg-type]
            streaks={
                int(k): int(v)
                for k, v in document["streaks"].items()  # type: ignore[union-attr]
            },
        )


class OnlineKnobTuner:
    """Successive-halving knob tuner with a journaled decision log.

    ``candidates[0]`` is always the guarded baseline (the paper's static
    config); the rest are challengers.  Drive it by calling
    :meth:`record_window` once per aligned evaluation window with the
    objective score of every *alive* candidate.
    """

    def __init__(
        self,
        baseline: ProRPConfig,
        challengers: Sequence[ProRPConfig] = (),
        state_dir: Optional[Union[str, Path]] = None,
        settings: Optional[TunerSettings] = None,
    ):
        self.candidates: Tuple[ProRPConfig, ...] = (baseline,) + tuple(challengers)
        self.settings = settings or DEFAULT_TUNER_SETTINGS
        self._state = _TunerState(alive=list(range(len(self.candidates))))
        self.decisions: List[TuningDecision] = []
        self._state_dir: Optional[Path] = None
        self._wal: Optional[WriteAheadLog] = None
        if state_dir is not None:
            self._state_dir = Path(state_dir)
            self._wal = WriteAheadLog(self._state_dir / "wal")

    # -- read-only views ---------------------------------------------------

    @property
    def baseline(self) -> ProRPConfig:
        return self.candidates[0]

    @property
    def active_index(self) -> int:
        return self._state.active

    @property
    def active_config(self) -> ProRPConfig:
        return self.candidates[self._state.active]

    @property
    def alive_indices(self) -> Tuple[int, ...]:
        return tuple(self._state.alive)

    @property
    def expected_window(self) -> int:
        """The next window index :meth:`record_window` will accept."""
        return self._state.window

    # -- the journaled transition ------------------------------------------

    def record_window(
        self, scores: Mapping[int, float], now: int = 0
    ) -> TuningDecision:
        """Journal one window's candidate scores, then apply them.

        ``scores`` maps candidate index -> objective score for this
        window; every alive candidate (the baseline included) must be
        present.  ``now`` stamps the WAL record with simulation time.
        Journal-before-apply: a crash between the two leaves a journaled
        window that recovery replays, so the post-recovery decision is
        identical to the one the crash interrupted.
        """
        window = self._state.window
        clean = self._check_scores(window, scores)
        if self._wal is not None:
            self._wal.append(
                {
                    "type": WINDOW_RECORD,
                    "window": window,
                    "scores": {str(i): s for i, s in clean.items()},
                },
                now=now,
            )
        decision = self._apply_window(window, clean)
        # Windowed series feed the tuning SLOs; written here (not in the
        # pure transition) so journal replay stays metric-free.
        if OBS.enabled and decision.demoted:
            OBS.metrics.counter_series("tuning.demotions.window").inc(now)
        return decision

    def _check_scores(
        self, window: int, scores: Mapping[int, float]
    ) -> Dict[int, float]:
        clean = {int(i): float(s) for i, s in scores.items()}
        missing = [i for i in self._state.alive if i not in clean]
        if missing:
            raise TuningError(
                f"window {window}: missing scores for alive candidates "
                f"{missing} (the baseline incumbent must always be scored)"
            )
        unknown = [i for i in clean if i not in self._state.alive]
        if unknown:
            raise TuningError(
                f"window {window}: scores for non-alive candidates {unknown}"
            )
        return clean

    def _apply_window(
        self, window: int, scores: Dict[int, float]
    ) -> TuningDecision:
        """Pure, deterministic state transition for one scored window."""
        state = self._state
        settings = self.settings
        baseline_score = scores[0]
        active_score = scores[state.active]

        # Never-worse-than-baseline guard: immediate demotion.
        demoted = False
        if state.active != 0 and active_score < baseline_score - settings.demote_margin:
            state.active = 0
            state.streaks.clear()
            demoted = True
            active_score = baseline_score

        # Promotion bookkeeping: a challenger must beat both the baseline
        # and whatever is active, by a margin, for consecutive windows.
        bar = max(baseline_score, active_score) + settings.promote_margin
        promoted: Optional[int] = None
        for i in state.alive:
            if i == 0 or i == state.active:
                continue
            if scores[i] > bar:
                state.streaks[i] = state.streaks.get(i, 0) + 1
            else:
                state.streaks[i] = 0
        ready = [
            i
            for i in state.alive
            if i not in (0, state.active)
            and state.streaks.get(i, 0) >= settings.promote_after
        ]
        if ready:
            # Highest score wins; ties break toward the earlier candidate.
            promoted = max(ready, key=lambda i: (scores[i], -i))
            state.active = promoted
            state.streaks.clear()

        # Successive halving on a fixed cadence: drop the bottom half of
        # the challengers (never the baseline, never the active config).
        pruned: Tuple[int, ...] = ()
        if (window + 1) % settings.halve_every == 0:
            prunable = [i for i in state.alive if i not in (0, state.active)]
            n_challengers = len([i for i in state.alive if i != 0])
            drop = min(
                len(prunable),
                n_challengers - settings.min_challengers,
                len(prunable) // 2 if len(prunable) > 1 else len(prunable),
            )
            if drop > 0:
                # Worst score first; ties drop the later candidate.
                prunable.sort(key=lambda i: (scores[i], -i))
                pruned = tuple(sorted(prunable[:drop]))
                state.alive = [i for i in state.alive if i not in pruned]
                for i in pruned:
                    state.streaks.pop(i, None)

        state.window = window + 1
        decision = TuningDecision(
            window=window,
            active=state.active,
            alive=tuple(state.alive),
            promoted=promoted,
            demoted=demoted,
            pruned=pruned,
        )
        self.decisions.append(decision)
        if OBS.enabled:
            metrics = OBS.metrics
            if promoted is not None:
                metrics.counter("tuning.promotions").inc()
            if demoted:
                metrics.counter("tuning.demotions").inc()
            if pruned:
                metrics.counter("tuning.prunes").inc(len(pruned))
            metrics.gauge("tuning.active_candidate").set(state.active)
            metrics.gauge("tuning.alive_candidates").set(len(state.alive))
            metrics.gauge("tuning.kpi_delta").set(
                scores[state.active] - baseline_score
            )
        return decision

    # -- durability --------------------------------------------------------

    def checkpoint(self) -> None:
        """Persist the current state; bounds journal replay at recovery."""
        if self._state_dir is None:
            raise TuningError("tuner has no state_dir to checkpoint into")
        if self._wal is not None:
            self._wal.sync()
        write_checkpoint(
            self._state_dir / "checkpoints",
            self._state.to_dict(),
            last_lsn=self._state.window,
        )

    def close(self) -> None:
        if self._wal is not None:
            self._wal.close()

    @classmethod
    def recover(
        cls,
        baseline: ProRPConfig,
        challengers: Sequence[ProRPConfig],
        state_dir: Union[str, Path],
        settings: Optional[TunerSettings] = None,
    ) -> "OnlineKnobTuner":
        """Rebuild a tuner from its checkpoint + journal.

        Loads the newest valid checkpoint, then replays every journaled
        window past it through the same pure transition.  Windows the
        journal holds twice (a crashed driver re-submitting) deduplicate
        by index; a gap in the window sequence is a corrupt journal and
        raises :class:`TuningError`.
        """
        state_dir = Path(state_dir)
        tuner = cls(baseline, challengers, settings=settings)
        document, _skipped = load_latest_checkpoint(state_dir / "checkpoints")
        if document is not None:
            tuner._state = _TunerState.from_dict(document["state"])  # type: ignore[arg-type]
        records, _truncated = read_log(state_dir / "wal", repair=True)
        for record in records:
            if record.get("type") != WINDOW_RECORD:
                continue
            window = int(record["window"])  # type: ignore[arg-type]
            if window < tuner._state.window:
                continue  # covered by the checkpoint or a duplicate record
            if window > tuner._state.window:
                raise TuningError(
                    f"journal gap: expected window {tuner._state.window}, "
                    f"found {window}"
                )
            scores = {
                int(i): float(s)
                for i, s in record["scores"].items()  # type: ignore[union-attr]
            }
            tuner._apply_window(window, tuner._check_scores(window, scores))
        # Re-attach the journal for new windows.
        tuner._state_dir = state_dir
        tuner._wal = WriteAheadLog(state_dir / "wal")
        return tuner
