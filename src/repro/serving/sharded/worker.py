"""The sharded serving worker process.

Each worker is a full :class:`~repro.serving.server.PredictionServer`
(admission -> micro-batcher -> ``FastPredictor.predict_fleet``) serving
its fleet straight off the shared-memory arena, fronted by a *pipelined*
JSON-over-TCP handler: unlike the public front end (which answers each
line before reading the next), the router's single connection per worker
carries many requests in flight, and responses are written as they
resolve -- out of order, correlated by ``request_id``.  Synchronously
resolvable requests (cache hits, typed rejections, health/metrics) are
answered inline via ``submit_nowait`` without ever allocating a task or
future, which is the cache-hit hot path the sharded bench measures.

Workers are spawned (never forked -- the router's event loop and the
arena mapping must not be inherited) and bootstrapped over a
``multiprocessing.Pipe``: the worker sends ``("ready", port)`` once
listening, then answers control commands -- ``("metrics",)`` with its
pickled :class:`~repro.observability.metrics.MetricsRegistry` (merged at
the router for one fleet-wide OpenMetrics exposition) and ``("stop",)``
by draining the gateway and exiting.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
from dataclasses import dataclass
from typing import Set, Tuple

from repro.serving.requests import (
    InvalidRequest,
    Response,
    ServingProtocolError,
    decode_request,
    encode_response,
)
from repro.serving.server import PredictionServer, ServingSettings
from repro.serving.sharded.arena import ArenaSpec, SharedHistoryArena

#: Above this many buffered outgoing bytes the pipelined handler awaits
#: ``drain()`` before reading more requests, bounding worker memory under
#: a router that outruns the socket.
_DRAIN_THRESHOLD = 1 << 20


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a spawned worker needs, picklable for the spawn pipe."""

    worker_id: int
    arena: ArenaSpec
    settings: ServingSettings
    #: Collect a per-worker metrics registry for router-side merge.
    observability: bool = True
    host: str = "127.0.0.1"


def _write(writer: asyncio.StreamWriter, response: Response) -> None:
    writer.write(
        (json.dumps(encode_response(response)) + "\n").encode("utf-8")
    )


async def handle_pipelined(
    server: PredictionServer,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """One router connection: newline JSON frames in, newline JSON
    frames out, responses in completion order.

    A frame is either one request document or an array of them (the
    router coalesces every request submitted in the same event-loop
    iteration).  Synchronously-resolvable requests of a frame -- cache
    hits, typed rejections, health -- are answered together as one array
    frame; requests that need the batcher resolve individually as their
    futures complete."""
    pending: Set[asyncio.Task] = set()

    async def respond(future: "asyncio.Future") -> None:
        _write(writer, await future)
        try:
            await writer.drain()
        except (ConnectionError, OSError):  # pragma: no cover - router gone
            pass

    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            text = line.decode("utf-8", errors="replace").strip()
            if not text:
                continue
            try:
                frame = json.loads(text)
            except json.JSONDecodeError as exc:
                _write(writer, InvalidRequest("?", str(exc)))
                continue
            docs = frame if isinstance(frame, list) else (frame,)
            sync: list = []
            for doc in docs:
                try:
                    request = decode_request(doc)
                except ServingProtocolError as exc:
                    sync.append(
                        InvalidRequest(
                            str(doc.get("request_id", "?")), str(exc)
                        )
                    )
                    continue
                response, future = server.submit_nowait(request)
                if response is not None:
                    sync.append(response)
                else:
                    task = asyncio.get_running_loop().create_task(
                        respond(future)
                    )
                    pending.add(task)
                    task.add_done_callback(pending.discard)
            if sync:
                if len(sync) == 1:
                    _write(writer, sync[0])
                else:
                    writer.write(
                        (
                            json.dumps(
                                [encode_response(r) for r in sync]
                            )
                            + "\n"
                        ).encode("utf-8")
                    )
                if (
                    writer.transport.get_write_buffer_size()
                    > _DRAIN_THRESHOLD
                ):
                    await writer.drain()
        if pending:
            await asyncio.gather(*list(pending), return_exceptions=True)
        try:
            await writer.drain()
        except (ConnectionError, OSError):  # pragma: no cover
            pass
    finally:
        for task in pending:
            task.cancel()
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown race
            pass


async def _amain(spec: WorkerSpec, conn) -> None:
    if spec.observability:
        from repro.observability.runtime import enable as obs_enable
        from repro.observability.tracer import NULL_TRACER

        obs_enable(tracer=NULL_TRACER)
    arena = SharedHistoryArena.attach(spec.arena)
    server = PredictionServer(settings=spec.settings)
    server.attach_fleet(arena.views())
    await server.start()
    conn_tasks: Set[asyncio.Task] = set()
    conn_writers: Set[asyncio.StreamWriter] = set()

    async def on_connect(reader, writer):
        task = asyncio.current_task()
        conn_tasks.add(task)
        conn_writers.add(writer)
        try:
            await handle_pipelined(server, reader, writer)
        finally:
            conn_tasks.discard(task)
            conn_writers.discard(writer)

    listener = await asyncio.start_server(on_connect, host=spec.host, port=0)
    port = listener.sockets[0].getsockname()[1]
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()

    def on_command() -> None:
        try:
            while conn.poll():
                command = conn.recv()
                if command[0] == "metrics":
                    from repro.observability.runtime import OBS

                    conn.send(
                        ("metrics", OBS.metrics if OBS.enabled else None)
                    )
                elif command[0] == "stop":
                    stop.set()
        except (EOFError, OSError):
            # Router died; drain and exit rather than serving orphaned.
            stop.set()

    loop.add_reader(conn.fileno(), on_command)
    conn.send(("ready", port))
    await stop.wait()
    loop.remove_reader(conn.fileno())
    listener.close()
    await listener.wait_closed()
    await server.stop()
    # The gateway has resolved every future (pending responses are
    # written by the handlers' respond tasks); now EOF the router
    # connections so the pipelined handlers exit instead of being
    # cancelled by loop teardown.
    for conn_writer in list(conn_writers):
        conn_writer.close()
    if conn_tasks:
        await asyncio.gather(*list(conn_tasks), return_exceptions=True)
    try:
        conn.send(
            (
                "stopped",
                {
                    "served": server.stats.served,
                    "shed": server.admission.total_shed(),
                    "cache_hits": server.stats.cache_hits,
                    "cache_misses": server.stats.cache_misses,
                },
            )
        )
    except (BrokenPipeError, OSError):  # pragma: no cover - router gone
        pass
    arena.close()


def worker_main(spec: WorkerSpec, conn) -> None:
    """Spawn entry point (must stay module-level and picklable)."""
    try:
        asyncio.run(_amain(spec, conn))
    finally:
        conn.close()


def spawn_worker(
    spec: WorkerSpec,
) -> Tuple[multiprocessing.Process, "multiprocessing.connection.Connection"]:
    """Start one worker via the spawn context (a fresh interpreter: no
    inherited event loop, no inherited arena mapping); returns the live
    process and the router end of its control pipe.  The caller waits for
    the ``("ready", port)`` bootstrap message."""
    ctx = multiprocessing.get_context("spawn")
    parent_conn, child_conn = ctx.Pipe()
    process = ctx.Process(
        target=worker_main, args=(spec, child_conn), daemon=True
    )
    process.start()
    child_conn.close()
    return process, parent_conn


def await_ready(
    conn, process: multiprocessing.Process, timeout_s: float = 30.0
) -> int:
    """Block for the worker's bootstrap message; returns its TCP port."""
    if not conn.poll(timeout_s):
        raise TimeoutError(
            f"worker pid={process.pid} did not report ready within "
            f"{timeout_s}s"
        )
    tag, port = conn.recv()
    if tag != "ready":  # pragma: no cover - protocol violation
        raise RuntimeError(f"unexpected worker bootstrap message {tag!r}")
    return int(port)


__all__ = [
    "WorkerSpec",
    "worker_main",
    "spawn_worker",
    "await_ready",
    "handle_pipelined",
]
