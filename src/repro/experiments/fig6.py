"""Figure 6: reactive vs proactive KPIs across four regions.

Panel (a): % of first logins after idle intervals served with resources
available (reactive: 60-68%, proactive: 80-90% in the paper).
Panel (b): % of time resources sit idle (reactive: 5-12% from logical
pauses; proactive: 3-7% logical + 1-4% wrong + 1-5% correct proactive).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis import format_table
from repro.config import DEFAULT_CONFIG, ProRPConfig
from repro.core.kpi import KpiReport
from repro.experiments.common import (
    BENCH_SCALE,
    ExperimentScale,
    region_fleet,
    sweep_map,
)
from repro.parallel import SweepExecutor
from repro.simulation.region import simulate_region
from repro.workload.regions import RegionPreset


@dataclass(frozen=True)
class RegionComparison:
    region: str
    reactive: KpiReport
    proactive: KpiReport


@dataclass(frozen=True)
class Fig6Result:
    comparisons: List[RegionComparison]

    def rows(self) -> List[Dict[str, object]]:
        out = []
        for comparison in self.comparisons:
            reactive, proactive = comparison.reactive, comparison.proactive
            out.append(
                {
                    "region": comparison.region,
                    "reactive_qos_percent": reactive.qos_percent,
                    "proactive_qos_percent": proactive.qos_percent,
                    "reactive_idle_percent": reactive.idle_percent,
                    "proactive_idle_percent": proactive.idle_percent,
                    "proactive_idle_logical": proactive.idle_logical_pause_percent,
                    "proactive_idle_correct": proactive.idle_correct_proactive_percent,
                    "proactive_idle_wrong": proactive.idle_wrong_proactive_percent,
                }
            )
        return out

    def table(self) -> str:
        rows = [
            [
                r["region"],
                round(r["reactive_qos_percent"], 1),
                round(r["proactive_qos_percent"], 1),
                round(r["reactive_idle_percent"], 2),
                round(r["proactive_idle_percent"], 2),
                round(r["proactive_idle_logical"], 2),
                round(r["proactive_idle_correct"], 2),
                round(r["proactive_idle_wrong"], 2),
            ]
            for r in self.rows()
        ]
        return format_table(
            [
                "region",
                "QoS% react (6a)",
                "QoS% proact (6a)",
                "idle% react (6b)",
                "idle% proact (6b)",
                "  logical",
                "  correct",
                "  wrong",
            ],
            rows,
            title=(
                "Figure 6: reactive vs proactive across regions "
                "[paper: QoS 60-68 -> 80-90; idle 5-12 -> 3-7 logical "
                "+1-4 wrong +1-5 correct]"
            ),
        )


def _fig6_task(context: Tuple, item: Tuple[RegionPreset, str]) -> KpiReport:
    """One (region, policy) cell of the Figure 6 grid, worker-side."""
    scale, config = context
    preset, policy = item
    traces = region_fleet(preset, scale)
    return simulate_region(traces, policy, config, scale.settings()).kpis()


def run_fig6(
    scale: ExperimentScale = BENCH_SCALE,
    regions: Sequence[RegionPreset] = tuple(RegionPreset),
    config: ProRPConfig = DEFAULT_CONFIG,
    executor: Optional[SweepExecutor] = None,
    workers: Optional[int] = None,
) -> Fig6Result:
    """Every (region, policy) pair is an independent simulation, so the
    whole grid fans out through the sweep executor."""
    items = [(preset, policy) for preset in regions
             for policy in ("reactive", "proactive")]
    kpis = sweep_map(_fig6_task, (scale, config), items, executor, workers)
    comparisons = []
    for i, preset in enumerate(regions):
        comparisons.append(
            RegionComparison(
                preset.value, reactive=kpis[2 * i], proactive=kpis[2 * i + 1]
            )
        )
    return Fig6Result(comparisons)
