"""Tests for KPI accounting (Section 8) and the proactive resume operation
(Algorithm 5)."""

import pytest

from repro.core.kpi import IdleBreakdown, KpiReport, LoginStats, WorkflowCounts
from repro.core.resume_service import ProactiveResumeOperation
from repro.storage.metadata import MetadataStore
from repro.types import SECONDS_PER_MINUTE

MIN = SECONDS_PER_MINUTE


def make_report(**overrides):
    defaults = dict(
        policy="proactive",
        n_databases=10,
        eval_start=0,
        eval_end=1000,
        logins=LoginStats(with_resources=80, reactive=20),
        idle=IdleBreakdown(
            logical_pause_s=300, correct_proactive_s=100, wrong_proactive_s=50
        ),
        workflows=WorkflowCounts(proactive_resumes=5, physical_pauses=7),
        unavailable_s=40,
        used_s=5000,
        saved_s=4510,
    )
    defaults.update(overrides)
    return KpiReport(**defaults)


class TestLoginStats:
    def test_percentages(self):
        stats = LoginStats(with_resources=80, reactive=20)
        assert stats.total == 100
        assert stats.qos_percent == 80.0
        assert stats.reactive_percent == 20.0

    def test_no_logins_yields_zero(self):
        assert LoginStats().qos_percent == 0.0


class TestKpiReport:
    def test_fleet_seconds(self):
        assert make_report().fleet_seconds == 10_000

    def test_idle_breakdown_percentages(self):
        report = make_report()
        assert report.idle_percent == pytest.approx(4.5)
        assert report.idle_logical_pause_percent == pytest.approx(3.0)
        assert report.idle_correct_proactive_percent == pytest.approx(1.0)
        assert report.idle_wrong_proactive_percent == pytest.approx(0.5)

    def test_accounting_identity(self):
        """used + saved + idle + unavailable partitions fleet time
        (the four quadrants of Definition 2.2)."""
        report = make_report()
        assert report.accounted_seconds() == report.fleet_seconds

    def test_to_dict_round_numbers(self):
        data = make_report().to_dict()
        assert data["qos_percent"] == 80.0
        assert data["policy"] == "proactive"
        assert data["physical_pauses"] == 7


class TestProactiveResumeOperation:
    def _setup(self, period_s=MIN, prewarm_s=5 * MIN):
        metadata = MetadataStore()
        prewarmed = []
        operation = ProactiveResumeOperation(
            metadata,
            prewarm_s=prewarm_s,
            period_s=period_s,
            on_prewarm=lambda db, now: prewarmed.append((db, now)),
        )
        return metadata, operation, prewarmed

    def test_run_once_prewarns_matching_databases(self):
        metadata, operation, prewarmed = self._setup()
        now = 100 * MIN
        metadata.register("hit")
        metadata.record_physical_pause("hit", now + 5 * MIN + 30)
        metadata.register("miss")
        metadata.record_physical_pause("miss", now + 30 * MIN)
        record = operation.run_once(now)
        assert record.database_ids == ["hit"]
        assert prewarmed == [("hit", now)]

    def test_iterations_accumulate_batch_sizes(self):
        metadata, operation, _ = self._setup()
        for i in range(6):
            metadata.register(f"db-{i}")
            metadata.record_physical_pause(f"db-{i}", 100 * MIN + 5 * MIN + 10 + i)
        operation.run_once(100 * MIN)
        operation.run_once(101 * MIN)
        assert operation.batch_sizes() == [6, 0]

    def test_batch_sizes_window_filter(self):
        metadata, operation, _ = self._setup()
        operation.run_once(10)
        operation.run_once(20)
        operation.run_once(30)
        assert operation.batch_sizes(start=15, end=30) == [0]

    def test_invalid_period_rejected(self):
        metadata = MetadataStore()
        with pytest.raises(ValueError):
            ProactiveResumeOperation(metadata, 300, 0, lambda d, n: None)

    def test_invalid_retention_rejected(self):
        metadata = MetadataStore()
        with pytest.raises(ValueError):
            ProactiveResumeOperation(
                metadata, 300, MIN, lambda d, n: None, retain_iterations=0
            )

    def test_retention_caps_records_and_rolls_aggregates(self):
        """With ``retain_iterations`` set the in-memory log stays bounded
        while the totals still count every iteration."""
        metadata = MetadataStore()
        operation = ProactiveResumeOperation(
            metadata, 5 * MIN, MIN, lambda d, n: None, retain_iterations=4
        )
        for i in range(10):
            now = (100 + i) * MIN
            metadata.register(f"db-{i}")
            metadata.record_physical_pause(f"db-{i}", now + 5 * MIN + 10)
            operation.run_once(now)
        assert len(operation.iterations) == 4
        assert operation.total_iterations == 10
        assert operation.total_prewarms == 10  # one pre-warm per iteration
        assert operation.rolled_iterations == 6
        assert operation.rolled_prewarms == 6

    def test_retention_preserves_figure11_window(self):
        """``batch_sizes()`` over the retained window must match the
        unbounded operation's answer for the same window -- the retention
        cap only drops records Figure 11 is not plotting."""
        runs = {}
        for retain in (None, 5):
            metadata = MetadataStore()
            operation = ProactiveResumeOperation(
                metadata, 5 * MIN, MIN, lambda d, n: None,
                retain_iterations=retain,
            )
            for i in range(20):
                now = (100 + i) * MIN
                for j in range(i % 3):
                    db = f"db-{i}-{j}"
                    metadata.register(db)
                    metadata.record_physical_pause(db, now + 5 * MIN + 10 + j)
                operation.run_once(now)
            runs[retain] = operation
        window = (115 * MIN, 120 * MIN)  # the last 5 iterations
        assert runs[5].batch_sizes(*window) == runs[None].batch_sizes(*window)
        assert len(runs[5].batch_sizes(*window)) == 5
        assert runs[5].total_prewarms == runs[None].total_prewarms

    def test_longer_period_larger_batches(self):
        """Figure 11's driver: batch size grows with the operation period."""
        now = 1000 * MIN
        batches = {}
        for period in (MIN, 15 * MIN):
            metadata = MetadataStore()
            operation = ProactiveResumeOperation(
                metadata, 5 * MIN, period, lambda d, n: None
            )
            for i in range(100):
                db = f"db-{i}"
                metadata.register(db)
                # Predicted starts spread uniformly over the next 20 minutes.
                metadata.record_physical_pause(db, now + 5 * MIN + i * 12)
            batches[period] = operation.run_once(now).batch_size
        assert batches[15 * MIN] > batches[MIN]
