"""Tests for the monitoring rollups and terminal dashboard."""

import pytest

from repro.errors import ProRPError
from repro.simulation import SimulationSettings, simulate_region
from repro.telemetry import TelemetryStore, emit_simulation_telemetry
from repro.telemetry.events import Component, TelemetryEvent
from repro.telemetry.monitoring import (
    RollupBucket,
    kpi_rollup,
    render_dashboard,
    sparkline,
)
from repro.types import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.workload import RegionPreset, generate_region_traces

DAY = SECONDS_PER_DAY
HOUR = SECONDS_PER_HOUR


def login(t):
    return TelemetryEvent(t, "db", Component.ACTIVITY_TRACKING, {"event_type": 1})


def workflow(t, kind):
    return TelemetryEvent(t, "db", Component.LIFECYCLE, {"workflow": kind})


class TestRollup:
    def test_buckets_and_counts(self):
        store = TelemetryStore()
        store.extend([login(10), login(110), workflow(20, "reactive_resume")])
        rollups = kpi_rollup(store, 0, 200, bucket_s=100)
        assert len(rollups) == 2
        assert rollups[0].logins == 1
        assert rollups[0].reactive_resumes == 1
        assert rollups[1].logins == 1
        assert rollups[1].reactive_resumes == 0

    def test_qos_per_bucket(self):
        bucket = RollupBucket(start=0, logins=4, reactive_resumes=1)
        assert bucket.qos_percent == 75.0
        assert RollupBucket(start=0).qos_percent == 100.0

    def test_invalid_args(self):
        store = TelemetryStore()
        with pytest.raises(ProRPError):
            kpi_rollup(store, 0, 100, bucket_s=0)
        with pytest.raises(ProRPError):
            kpi_rollup(store, 100, 100, bucket_s=10)

    def test_rollup_totals_match_store(self):
        traces = generate_region_traces(RegionPreset.EU1, 40, span_days=32, seed=3)
        settings = SimulationSettings(eval_start=30 * DAY, eval_end=31 * DAY)
        result = simulate_region(traces, "proactive", settings=settings)
        store = TelemetryStore()
        emit_simulation_telemetry(result, traces, store)
        rollups = kpi_rollup(store, 30 * DAY, 31 * DAY, bucket_s=HOUR)
        kpis = result.kpis()
        assert sum(b.logins for b in rollups) == kpis.logins.total
        assert (
            sum(b.proactive_resumes for b in rollups)
            == kpis.workflows.proactive_resumes
        )
        assert (
            sum(b.physical_pauses for b in rollups)
            == kpis.workflows.physical_pauses
        )


class TestSparkline:
    def test_shape(self):
        line = sparkline([0, 1, 2, 3])
        assert len(line) == 4
        assert line[0] == "▁" and line[-1] == "█"

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""


class TestDashboard:
    def test_renders_all_metrics(self):
        rollups = [
            RollupBucket(start=0, logins=3, reactive_resumes=1),
            RollupBucket(start=100, logins=5, proactive_resumes=2),
        ]
        text = render_dashboard(rollups, title="EU1")
        assert "EU1" in text
        assert "logins" in text and "QoS %" in text
        assert "sum" in text and "min" in text

    def test_empty_dashboard(self):
        assert "no data" in render_dashboard([])
