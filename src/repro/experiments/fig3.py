"""Figure 3: fragmentation of idle time.

The paper analyses two months of production telemetry from a large region
and finds that ~72% of idle intervals are within one hour (Figure 3(a))
while those intervals contribute only ~5% of the total idle duration
(Figure 3(b)).  This driver computes both CDFs over a synthetic fleet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis import format_table
from repro.experiments.common import BENCH_SCALE, ExperimentScale, region_fleet
from repro.workload.regions import RegionPreset
from repro.workload.traces import IdleIntervalStats, hours, idle_interval_stats

#: CDF thresholds printed for both panels, in hours.
THRESHOLD_HOURS = (0.25, 0.5, 1, 2, 4, 8, 24, 72, 168)


@dataclass(frozen=True)
class Fig3Result:
    stats: IdleIntervalStats

    def rows(self) -> List[Dict[str, float]]:
        out = []
        for h in THRESHOLD_HOURS:
            threshold = hours(h)
            out.append(
                {
                    "threshold_hours": h,
                    "count_cdf_percent": 100 * self.stats.fraction_of_count_below(threshold),
                    "duration_cdf_percent": 100
                    * self.stats.fraction_of_duration_below(threshold),
                }
            )
        return out

    @property
    def short_interval_count_percent(self) -> float:
        """The paper's headline: % of idle intervals within one hour."""
        return 100 * self.stats.fraction_of_count_below(hours(1))

    @property
    def short_interval_duration_percent(self) -> float:
        """...and the % of total idle time they contribute."""
        return 100 * self.stats.fraction_of_duration_below(hours(1))

    def table(self) -> str:
        rows = [
            [
                r["threshold_hours"],
                round(r["count_cdf_percent"], 1),
                round(r["duration_cdf_percent"], 2),
            ]
            for r in self.rows()
        ]
        return format_table(
            ["idle interval < hours", "% of intervals (3a)", "% of idle time (3b)"],
            rows,
            title=(
                "Figure 3: fragmentation of idle time  "
                f"[paper: 72% of intervals < 1h carrying 5% of idle time; "
                f"measured: {self.short_interval_count_percent:.0f}% / "
                f"{self.short_interval_duration_percent:.1f}%]"
            ),
        )


def run_fig3(
    scale: ExperimentScale = BENCH_SCALE,
    preset: RegionPreset = RegionPreset.EU1,
) -> Fig3Result:
    """Compute the Figure 3 CDFs over the full trace span (the paper uses
    two months of telemetry; we use the whole synthetic span)."""
    traces = region_fleet(preset, scale)
    return Fig3Result(stats=idle_interval_stats(traces))
