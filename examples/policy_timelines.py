"""Figure 2 in ASCII: one database under the three allocation policies.

Replays a perfectly daily database through the reactive, proactive, and
optimal policies with timeline collection enabled, then renders each
policy's allocation as a compact Gantt chart -- the paper's Figure 2:
resource demand (black area), idle allocated time (gray), and the
unavailable gap after a reactive resume (striped).

Run:  python examples/policy_timelines.py
"""

from repro.simulation import SimulationSettings, simulate_region
from repro.types import (
    ActivityTrace,
    AllocationState,
    Session,
    SECONDS_PER_DAY as DAY,
    SECONDS_PER_HOUR as HOUR,
)

#: One timeline character per 15 minutes.
RESOLUTION = 15 * 60

GLYPHS = {
    AllocationState.ACTIVE: "#",       # demand served (used)
    AllocationState.IDLE_ALLOCATED: "=",  # allocated but idle (COGS)
    AllocationState.RESUMING: "!",     # demanded but unavailable (QoS gap)
}


def render(timeline, start, end) -> str:
    cells = ["."] * ((end - start) // RESOLUTION)  # '.' = paused (saved)
    for interval in timeline:
        glyph = GLYPHS[interval.state]
        lo = max(interval.start, start)
        hi = min(interval.end, end)
        for i in range((lo - start) // RESOLUTION, (hi - start) // RESOLUTION):
            cells[i] = glyph
    return "".join(cells)


def main() -> None:
    # 9:00-17:00 daily activity with a lunch break, 31 days.
    sessions = []
    for day in range(31):
        sessions.append(Session(day * DAY + 9 * HOUR, day * DAY + 12 * HOUR))
        sessions.append(
            Session(day * DAY + 12 * HOUR + 30 * 60, day * DAY + 17 * HOUR)
        )
    trace = ActivityTrace("daily-db", sessions, created_at=0)

    window = (29 * DAY, 30 * DAY)
    settings = SimulationSettings(
        eval_start=window[0],
        eval_end=window[1],
        # Exaggerated resume latency (15 min instead of ~45 s) so the
        # reactive policy's availability gap is visible at this resolution.
        resume_latency_s=15 * 60,
        resume_latency_jitter_s=0,
        collect_timelines=True,
    )

    print("One day of a 9:00-17:00 database (one char = 15 min)")
    print("legend: # used   = idle allocated   ! unavailable   . paused\n")
    hours_ruler = "".join(f"{h:<4}" for h in range(0, 24))
    print(f"{'hour':>10}  {hours_ruler}")
    for policy in ("reactive", "proactive", "optimal"):
        result = simulate_region([trace], policy, settings=settings)
        timeline = result.outcomes[0].timeline
        print(f"{policy:>10}  {render(timeline, *window)}")

    print(
        "\nReactive: the 09:00 login hits reclaimed resources (!) and the\n"
        "evening logical pause burns 7 hours of idle allocation (=).\n"
        "Proactive: resources are pre-warmed minutes before 09:00 and\n"
        "physically paused right after 17:00 -- close to the optimal\n"
        "bounding box of demand."
    )


if __name__ == "__main__":
    main()
