"""The durable, exactly-once workflow engine.

:class:`DurableWorkflowEngine` wraps the in-memory
:class:`~repro.controlplane.workflows.WorkflowEngine` with an
event-sourced ledger:

* every state transition (submitted / started / stuck / crashed /
  mitigated / succeeded / failed) is appended to a checksummed, segmented
  :class:`~repro.controlplane.durability.wal.WriteAheadLog` *before* the
  in-memory mutation happens (journal-before-apply);
* every ``checkpoint_every`` records a full-state checkpoint is written
  crash-safely, bounding recovery replay to the WAL suffix;
* :meth:`recover` rebuilds an identical engine from the ledger after a
  crash -- pending/running orders, terminal outcomes, retry counts, the
  id allocator, *and* the fault injector's PRNG streams, so post-recovery
  stuck/crash decisions continue the exact schedule an uninterrupted run
  would have produced.

Exactly-once semantics, from the ledger's point of view:

* a transition whose append was interrupted (crash / torn tail) was never
  applied; recovery truncates it and the transition is re-decided, once,
  after restart;
* a transition that reached the log is applied during replay exactly
  once; replayed events for a workflow that is already terminal are
  deduplicated by ``workflow_id`` (counted in ``recovery_info``), so
  completed work is never re-executed.

Determinism note: replay does not trust the fault injector to re-decide
journaled transitions -- the decision is in the event type -- but it
*re-consults* the injector for each replayed start decision so the PRNG
streams advance exactly as they did live.  A replayed decision that
contradicts the re-consultation means the log was produced under a
different plan or seed, and recovery refuses it.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.controlplane.durability.checkpoint import (
    load_latest_checkpoint,
    write_checkpoint,
)
from repro.controlplane.durability.wal import (
    WriteAheadLog,
    _scan_segment,
    read_log,
    segment_paths,
)
from repro.controlplane.workflows import (
    CRASH_POINT,
    STUCK_POINT,
    Workflow,
    WorkflowEngine,
    WorkflowKind,
    WorkflowState,
)
from repro.errors import WalCorruptionError, WalError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, FaultSpec
from repro.observability.runtime import OBS

#: Transition record types, in the order the engine can emit them.
EVENT_TYPES = (
    "submitted",
    "started",
    "stuck",
    "crashed",
    "mitigated",
    "succeeded",
    "failed",
)

#: Terminal record types -- at most one per workflow id in a clean ledger.
TERMINAL_EVENTS = ("crashed", "succeeded", "failed")


class DurableWorkflowEngine:
    """A :class:`WorkflowEngine` whose state survives process death.

    Use the constructor for a fresh ledger directory and
    :meth:`recover` to resume from an existing one.  The public surface
    mirrors the in-memory engine (submit/tick/retry/fail/monitoring),
    plus checkpointing and ledger introspection.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        max_concurrent: int = 100,
        default_duration_s: int = 45,
        stuck_probability: float = 0.0,
        seed: int = 0,
        plan: Optional[FaultPlan] = None,
        checkpoint_every: int = 256,
        segment_max_bytes: int = 1 << 20,
        fsync: bool = True,
        _recovering: bool = False,
    ):
        self._directory = Path(directory)
        if not _recovering and segment_paths(self._directory):
            raise WalError(
                f"{self._directory} already holds a WAL; use "
                "DurableWorkflowEngine.recover() to resume it"
            )
        if plan is None:
            plan = (
                FaultPlan.of(FaultSpec(STUCK_POINT, probability=stuck_probability))
                if stuck_probability > 0.0
                else FaultPlan.empty()
            )
        self._config = {
            "max_concurrent": max_concurrent,
            "default_duration_s": default_duration_s,
            "stuck_probability": stuck_probability,
            "seed": seed,
        }
        self._plan = plan
        self._injector = FaultInjector(plan, seed=seed)
        self._engine = WorkflowEngine(
            max_concurrent=max_concurrent,
            default_duration_s=default_duration_s,
            stuck_probability=stuck_probability,
            seed=seed,
            injector=self._injector,
            journal=self._journal,
        )
        self._checkpoint_every = checkpoint_every
        self._lsn = 0
        self._last_checkpoint_lsn = 0
        self.recovery_info: Dict[str, int] = {}
        self._wal = WriteAheadLog(
            self._directory,
            segment_max_bytes=segment_max_bytes,
            fsync=fsync,
        )
        if not _recovering:
            self._journal(
                {
                    "type": "open",
                    "config": dict(self._config),
                    "plan": plan.to_dict(),
                }
            )

    # ------------------------------------------------------------------
    # Journal side (write path)
    # ------------------------------------------------------------------

    def _journal(self, event: Dict[str, object]) -> None:
        """The engine's journal-before-apply hook: stamp the LSN and
        append.  A raise here (injected control-plane crash) aborts the
        in-memory mutation -- the transition never happened."""
        document = dict(event)
        document["lsn"] = self._lsn
        self._wal.append(document, now=event.get("at"))
        self._lsn += 1

    def _maybe_checkpoint(self) -> None:
        if (
            self._checkpoint_every > 0
            and self._lsn - self._last_checkpoint_lsn >= self._checkpoint_every
        ):
            self.checkpoint()

    def checkpoint(self) -> Path:
        """Write a full-state checkpoint covering every journaled record.

        Called automatically every ``checkpoint_every`` records, by the
        serving gateway's graceful drain, and by :meth:`close`.
        """
        started = time.perf_counter()
        self._wal.sync()
        path = write_checkpoint(self._directory, self._state_doc(), self._lsn)
        self._last_checkpoint_lsn = self._lsn
        if OBS.enabled:
            OBS.metrics.counter("workflow.checkpoint.writes").inc()
            OBS.metrics.histogram("workflow.checkpoint.write_ms").observe(
                (time.perf_counter() - started) * 1000.0
            )
        return path

    def compact(self) -> int:
        """Drop closed WAL segments fully covered by the newest
        checkpoint; returns how many segments were removed.  The ledger
        is append-only by default -- compaction is an explicit operator
        action that trades replayable history for disk."""
        checkpoint, _ = load_latest_checkpoint(self._directory)
        if checkpoint is None:
            return 0
        covered_below = int(checkpoint["last_lsn"])
        removed = 0
        for path in segment_paths(self._directory)[:-1]:
            records, _ = _scan_segment(path.read_bytes())
            if records and all(
                int(r.get("lsn", covered_below)) < covered_below for r in records
            ):
                path.unlink()
                removed += 1
            else:
                break  # segments are ordered; later ones are newer
        if removed and OBS.enabled:
            OBS.metrics.gauge("workflow.wal.segments").set(
                self._wal.segment_count
            )
        return removed

    def close(self) -> None:
        """Checkpoint and release the log (the graceful-shutdown path)."""
        self.checkpoint()
        self._wal.close()

    # ------------------------------------------------------------------
    # State serialization
    # ------------------------------------------------------------------

    def _state_doc(self) -> Dict[str, object]:
        engine = self._engine
        return {
            "config": dict(self._config),
            "next_id": engine._next_id,
            "workflows": [
                {
                    "wf": w.workflow_id,
                    "kind": w.kind.value,
                    "db": w.database_id,
                    "submitted_at": w.submitted_at,
                    "duration_s": w.duration_s,
                    "state": w.state.value,
                    "started_at": w.started_at,
                    "finished_at": w.finished_at,
                    "retries": w.retries,
                }
                for w in engine.workflows.values()
            ],
            "pending": [w.workflow_id for w in engine._pending],
            "running": [w.workflow_id for w in engine._running],
            "injector": self._injector.state_snapshot(),
        }

    def state_doc(self) -> Dict[str, object]:
        """A canonical snapshot of everything recovery must reproduce --
        the document the crash/recovery property tests compare."""
        return self._state_doc()

    def _restore_state(self, state: Dict[str, object]) -> None:
        engine = self._engine
        engine._next_id = int(state["next_id"])
        engine.workflows = {}
        for doc in state["workflows"]:
            workflow = Workflow(
                workflow_id=int(doc["wf"]),
                kind=WorkflowKind(doc["kind"]),
                database_id=doc["db"],
                submitted_at=int(doc["submitted_at"]),
                duration_s=int(doc["duration_s"]),
                state=WorkflowState(doc["state"]),
                started_at=doc["started_at"],
                finished_at=doc["finished_at"],
                retries=int(doc["retries"]),
            )
            engine.workflows[workflow.workflow_id] = workflow
        engine._pending.clear()
        engine._pending.extend(
            engine.workflows[wf] for wf in state["pending"]
        )
        engine._running = [engine.workflows[wf] for wf in state["running"]]
        self._injector.restore_state(state["injector"])

    # ------------------------------------------------------------------
    # Recovery (read path)
    # ------------------------------------------------------------------

    @classmethod
    def recover(
        cls,
        directory: Union[str, Path],
        checkpoint_every: int = 256,
        segment_max_bytes: int = 1 << 20,
        fsync: bool = True,
    ) -> "DurableWorkflowEngine":
        """Rebuild the engine from ``directory``'s checkpoint + WAL.

        Torn/corrupt tail records are truncated (the transitions they
        held were never applied); the newest valid checkpoint seeds the
        state; the WAL suffix past its LSN is replayed with per-workflow
        deduplication.  The result is ready to ``tick()`` onward.
        """
        directory = Path(directory)
        records, truncated_bytes = read_log(directory, repair=True)
        checkpoint, skipped = load_latest_checkpoint(directory)

        config: Optional[Dict[str, object]] = None
        plan_doc: Optional[Dict[str, object]] = None
        if checkpoint is not None:
            config = dict(checkpoint["state"]["config"])
            plan_doc = checkpoint["state"]["injector"]["plan"]
        elif records and records[0].get("type") == "open":
            config = dict(records[0]["config"])
            plan_doc = records[0]["plan"]
        if config is None:
            raise WalError(
                f"{directory} holds neither a valid checkpoint nor an "
                "open record: nothing to recover"
            )

        engine = cls(
            directory,
            max_concurrent=int(config["max_concurrent"]),
            default_duration_s=int(config["default_duration_s"]),
            stuck_probability=float(config["stuck_probability"]),
            seed=int(config["seed"]),
            plan=FaultPlan.from_dict(plan_doc),
            checkpoint_every=checkpoint_every,
            segment_max_bytes=segment_max_bytes,
            fsync=fsync,
            _recovering=True,
        )
        start_lsn = 0
        if checkpoint is not None:
            engine._restore_state(checkpoint["state"])
            start_lsn = int(checkpoint["last_lsn"])
        engine._lsn = start_lsn
        engine._last_checkpoint_lsn = start_lsn

        replayed = deduped = 0
        for record in records:
            lsn = int(record["lsn"])
            if lsn < start_lsn:
                continue  # covered by the checkpoint
            if lsn != engine._lsn:
                raise WalCorruptionError(
                    f"WAL gap during recovery: expected lsn {engine._lsn}, "
                    f"found {lsn} -- segments are missing or reordered"
                )
            engine._lsn += 1
            if record.get("type") == "open":
                continue
            if engine._replay(record):
                replayed += 1
            else:
                deduped += 1
        engine._last_checkpoint_lsn = min(engine._last_checkpoint_lsn, engine._lsn)
        engine.recovery_info = {
            "replayed": replayed,
            "deduped": deduped,
            "truncated_bytes": truncated_bytes,
            "checkpoints_skipped": skipped,
            "checkpoint_lsn": start_lsn,
        }
        if OBS.enabled:
            OBS.metrics.counter("workflow.recovery.replayed").inc(replayed)
            OBS.metrics.counter("workflow.recovery.deduped").inc(deduped)
            OBS.metrics.counter("workflow.recovery.truncated_bytes").inc(
                truncated_bytes
            )
            OBS.metrics.counter("workflow.recovery.runs").inc()
        return engine

    def _replay(self, record: Dict[str, object]) -> bool:
        """Apply one journaled transition to the in-memory state.

        Returns False when the record was deduplicated (its workflow is
        already terminal / already submitted).  Start decisions re-consult
        the injector so the PRNG streams advance exactly as they did
        live; a disagreement with the journaled outcome is corruption.
        """
        engine = self._engine
        kind = record["type"]
        wf_id = int(record["wf"])
        at = record.get("at")

        if kind == "submitted":
            if wf_id in engine.workflows:
                return False
            workflow = Workflow(
                workflow_id=wf_id,
                kind=WorkflowKind(record["kind"]),
                database_id=record["db"],
                submitted_at=int(at),
                duration_s=int(record["duration_s"]),
            )
            engine.workflows[wf_id] = workflow
            engine._pending.append(workflow)
            engine._next_id = max(engine._next_id, wf_id + 1)
            return True

        workflow = engine.workflows.get(wf_id)
        if workflow is None:
            raise WalCorruptionError(
                f"WAL record {record['lsn']} references unknown workflow "
                f"{wf_id}: its submission record is missing"
            )
        if workflow.terminal:
            return False  # exactly-once: completed work is never redone

        if kind in ("started", "stuck", "crashed"):
            crash_fired = self._injector.should_fire(CRASH_POINT, at)
            if crash_fired != (kind == "crashed"):
                raise WalCorruptionError(
                    f"replayed crash decision for workflow {wf_id} diverges "
                    "from the journal: the log was written under a "
                    "different fault plan or seed"
                )
            if not crash_fired:
                stuck_fired = self._injector.should_fire(STUCK_POINT, at)
                if stuck_fired != (kind == "stuck"):
                    raise WalCorruptionError(
                        f"replayed stuck decision for workflow {wf_id} "
                        "diverges from the journal: the log was written "
                        "under a different fault plan or seed"
                    )
            if not engine._pending or engine._pending[0] is not workflow:
                raise WalCorruptionError(
                    f"WAL record {record['lsn']}: workflow {wf_id} is not "
                    "at the head of the pending queue"
                )
            engine._pending.popleft()
            if kind == "crashed":
                workflow.state = WorkflowState.FAILED
                workflow.started_at = int(at)
                workflow.finished_at = int(at)
            else:
                workflow.state = (
                    WorkflowState.STUCK
                    if kind == "stuck"
                    else WorkflowState.RUNNING
                )
                workflow.started_at = int(at)
                engine._running.append(workflow)
            return True

        if kind == "succeeded":
            engine._running.remove(workflow)
            workflow.state = WorkflowState.SUCCEEDED
            workflow.finished_at = int(at)
            return True

        if kind == "mitigated":
            engine._running.remove(workflow)
            workflow.state = WorkflowState.MITIGATED
            workflow.retries += 1
            workflow.started_at = None
            engine._pending.appendleft(workflow)
            return True

        if kind == "failed":
            if workflow in engine._running:
                engine._running.remove(workflow)
            try:
                engine._pending.remove(workflow)
            except ValueError:
                pass
            workflow.state = WorkflowState.FAILED
            workflow.finished_at = int(at)
            return True

        raise WalCorruptionError(f"unknown WAL record type {kind!r}")

    # ------------------------------------------------------------------
    # WorkflowEngine surface (durable delegation)
    # ------------------------------------------------------------------

    def submit(
        self,
        kind: WorkflowKind,
        database_id: str,
        now: int,
        duration_s: Optional[int] = None,
    ) -> Workflow:
        workflow = self._engine.submit(kind, database_id, now, duration_s)
        self._maybe_checkpoint()
        return workflow

    def tick(self, now: int) -> List[Workflow]:
        completed = self._engine.tick(now)
        self._maybe_checkpoint()
        return completed

    def retry(self, workflow: Workflow, now: int) -> None:
        self._engine.retry(workflow, now)
        self._maybe_checkpoint()

    def fail(self, workflow: Workflow, now: int) -> None:
        self._engine.fail(workflow, now)
        self._maybe_checkpoint()

    def stuck_workflows(self, now: int, stuck_after_s: int) -> List[Workflow]:
        return self._engine.stuck_workflows(now, stuck_after_s)

    @property
    def workflows(self) -> Dict[int, Workflow]:
        return self._engine.workflows

    @property
    def injector(self) -> FaultInjector:
        return self._engine.injector

    @property
    def pending_count(self) -> int:
        return self._engine.pending_count

    @property
    def running_count(self) -> int:
        return self._engine.running_count

    def queue_depth(self, kind: WorkflowKind) -> int:
        return self._engine.queue_depth(kind)

    def drained(self) -> bool:
        return self._engine.drained()

    # ------------------------------------------------------------------
    # Ledger introspection
    # ------------------------------------------------------------------

    @property
    def directory(self) -> Path:
        return self._directory

    @property
    def lsn(self) -> int:
        """Log sequence number of the next record to be appended."""
        return self._lsn

    def wal_stats(self) -> Dict[str, int]:
        return {
            "lsn": self._lsn,
            "records_appended": self._wal.records_appended,
            "segments": self._wal.segment_count,
            "last_checkpoint_lsn": self._last_checkpoint_lsn,
        }

    def submitted_counts(self) -> Dict[Tuple[str, str, int], int]:
        """Multiset of ``(database_id, kind, submitted_at)`` over every
        known workflow -- what a submission driver compares against its
        schedule to resubmit idempotently after recovery."""
        counts: Dict[Tuple[str, str, int], int] = {}
        for workflow in self._engine.workflows.values():
            key = (
                workflow.database_id,
                workflow.kind.value,
                workflow.submitted_at,
            )
            counts[key] = counts.get(key, 0) + 1
        return counts

    def read_ledger(self) -> List[Dict[str, object]]:
        """Every record currently in the WAL (no repair), oldest first."""
        records, _ = read_log(self._directory, repair=False)
        return records


def terminal_record_counts(
    records: List[Dict[str, object]],
) -> Dict[int, int]:
    """Terminal (crashed/succeeded/failed) records per workflow id -- the
    exactly-once audit: a clean ledger has at most one per id."""
    counts: Dict[int, int] = {}
    for record in records:
        if record.get("type") in TERMINAL_EVENTS:
            wf = int(record["wf"])
            counts[wf] = counts.get(wf, 0) + 1
    return counts
