"""Fleet generation: draw databases from a weighted archetype mixture."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Tuple

from repro.errors import TraceError
from repro.types import SECONDS_PER_DAY, ActivityTrace, Session
from repro.workload.archetypes import (
    Archetype,
    BurstyDev,
    DailyBusinessHours,
    Dormant,
    NightlyJob,
    Sporadic,
    Stable,
    WeeklyBatch,
)

DAY = SECONDS_PER_DAY

#: A factory gets the per-database RNG so parameters vary across databases
#: (the paper's challenge: resource usage patterns vary per database).
ArchetypeFactory = Callable[[random.Random], Archetype]


@dataclass(frozen=True)
class FleetSpec:
    """Weighted mixture of archetype factories plus fleet-level knobs."""

    mixture: Tuple[Tuple[str, float, ArchetypeFactory], ...]
    #: Fraction of databases created *during* the span (new databases whose
    #: history is too short to predict -- Section 4 / Figure 12).
    new_database_fraction: float = 0.05
    #: Global time-zone offset in hours (regions live in different zones).
    timezone_offset_h: float = 0.0

    def __post_init__(self) -> None:
        if not self.mixture:
            raise TraceError("a fleet spec needs at least one archetype")
        total = sum(weight for _, weight, __ in self.mixture)
        if total <= 0:
            raise TraceError("archetype weights must sum to a positive value")
        if not 0 <= self.new_database_fraction < 1:
            raise TraceError("new_database_fraction must be in [0, 1)")

    def pick(self, rng: random.Random) -> Tuple[str, Archetype]:
        total = sum(weight for _, weight, __ in self.mixture)
        roll = rng.uniform(0, total)
        acc = 0.0
        for name, weight, factory in self.mixture:
            acc += weight
            if roll <= acc:
                return name, factory(rng)
        name, _, factory = self.mixture[-1]
        return name, factory(rng)


def default_spec() -> FleetSpec:
    """A generic serverless fleet: dominated by rarely-used databases, with
    meaningful daily/nightly/weekly pattern populations (Section 1)."""
    return FleetSpec(
        mixture=(
            ("sporadic", 0.28, lambda r: Sporadic(
                days_between_sessions=r.uniform(3.0, 9.0),
                session_minutes=r.uniform(20, 90),
                sessions_per_episode=3,
            )),
            ("dormant", 0.22, lambda r: Dormant(
                days_between_sessions=r.uniform(8.0, 21.0),
                session_minutes=r.uniform(10, 60),
            )),
            ("bursty_dev", 0.14, lambda r: BurstyDev(
                days_between_episodes=r.uniform(1.5, 4.0),
                sessions_per_episode=4,
                preferred_hour=r.uniform(8.0, 20.0),
                session_minutes=r.uniform(20, 60),
            )),
            ("daily", 0.20, lambda r: DailyBusinessHours(
                workday_start_h=r.uniform(7.5, 10.0),
                workday_end_h=r.uniform(16.0, 19.0),
                breaks_per_day=r.uniform(4.0, 7.0),
                start_jitter_min=r.uniform(30.0, 60.0),
                weekdays_only=r.random() < 0.45,
            )),
            ("nightly", 0.07, lambda r: NightlyJob(
                job_hour=r.uniform(0.0, 5.0),
                duration_min=r.uniform(20, 90),
            )),
            ("chatty", 0.01, lambda r: DailyBusinessHours(
                workday_start_h=7.0 + r.uniform(-1, 1),
                workday_end_h=22.0 + r.uniform(-1, 1),
                breaks_per_day=r.uniform(30, 80),
                break_minutes=r.uniform(3, 8),
                weekdays_only=False,
                skip_day_probability=0.0,
            )),
            ("weekly", 0.04, lambda r: WeeklyBatch(
                weekday=r.randrange(7),
                start_hour=r.uniform(1.0, 22.0),
                duration_h=r.uniform(1.0, 5.0),
            )),
            ("stable", 0.04, lambda r: Stable()),
        ),
        new_database_fraction=0.05,
    )


def generate_fleet(
    spec: FleetSpec,
    n_databases: int,
    span_days: int,
    seed: object = 0,
    id_prefix: str = "db",
) -> List[ActivityTrace]:
    """Generate ``n_databases`` traces over ``span_days`` days.

    Each database gets an independent RNG derived from ``seed`` so fleets
    are reproducible and insensitive to generation order.  "New" databases
    are created inside the final third of the span, which leaves them less
    than the default 28-day history at evaluation time.
    """
    if n_databases <= 0:
        raise TraceError("n_databases must be positive")
    if span_days <= 0:
        raise TraceError("span_days must be positive")
    span = span_days * DAY
    traces: List[ActivityTrace] = []
    for i in range(n_databases):
        rng = random.Random(f"{seed}:{id_prefix}:{i}")
        name, archetype = spec.pick(rng)
        created_at = 0
        if rng.random() < spec.new_database_fraction:
            created_at = int(rng.uniform(span * 2 / 3, span * 0.95))
        sessions = archetype.generate(created_at, span, rng)
        database_id = f"{id_prefix}-{name}-{i:05d}"
        traces.append(
            ActivityTrace(
                database_id,
                sessions,
                created_at=created_at if sessions else created_at,
            )
        )
    return traces


# ---------------------------------------------------------------------------
# Scalar drift transforms (the per-trace mirror of fleetgen.DriftSpec)
# ---------------------------------------------------------------------------


def _repair_sessions(sessions: List[Session]) -> List[Session]:
    """Sort and de-overlap: a later session starts no earlier than the
    previous one ends; sessions emptied by that clamp are dropped."""
    out: List[Session] = []
    for session in sorted(sessions, key=lambda s: (s.start, s.end)):
        start, end = session.start, session.end
        if out and start < out[-1].end:
            start = out[-1].end
        if end > start:
            out.append(Session(start, end))
    return out


def switch_archetypes(
    traces_a: List[ActivityTrace], traces_b: List[ActivityTrace], at_day: int
) -> List[ActivityTrace]:
    """Mid-trace archetype switch: each database follows its ``traces_a``
    schedule before day ``at_day`` and its ``traces_b`` schedule after (a
    session straddling the switch is truncated at it).  Both fleets must
    be positionally aligned (same length, e.g. two ``generate_fleet``
    calls with different seeds or specs)."""
    if len(traces_a) != len(traces_b):
        raise TraceError(
            f"archetype switch needs aligned fleets, got "
            f"{len(traces_a)} vs {len(traces_b)} traces"
        )
    t = at_day * DAY
    out: List[ActivityTrace] = []
    for a, b in zip(traces_a, traces_b):
        sessions = [
            Session(s.start, min(s.end, t)) for s in a.sessions if s.start < t
        ] + [s for s in b.sessions if s.start >= t]
        out.append(
            ActivityTrace(
                a.database_id,
                _repair_sessions(sessions),
                created_at=min(a.created_at, b.created_at),
            )
        )
    return out


def shift_schedule(
    traces: List[ActivityTrace], at_day: int, shift_minutes: int
) -> List[ActivityTrace]:
    """DST/holiday schedule shift: every session starting on or after day
    ``at_day`` moves by ``shift_minutes`` (may be negative)."""
    t = at_day * DAY
    shift_s = shift_minutes * 60
    out: List[ActivityTrace] = []
    for trace in traces:
        sessions = [
            Session(s.start + shift_s, s.end + shift_s)
            if s.start >= t and s.start + shift_s >= 0
            else s
            for s in trace.sessions
        ]
        out.append(
            ActivityTrace(
                trace.database_id,
                _repair_sessions(sessions),
                created_at=trace.created_at,
            )
        )
    return out


def migrate_fleet(
    traces: List[ActivityTrace],
    at_day: int,
    shift_minutes: int,
    fraction: float = 0.3,
    seed: object = 0,
) -> List[ActivityTrace]:
    """Region-mix change: a deterministic ``fraction`` of databases shifts
    its schedule by ``shift_minutes`` from day ``at_day`` onward (tenants
    migrating in from another timezone)."""
    if not 0.0 < fraction <= 1.0:
        raise TraceError(f"migration fraction must be in (0, 1], got {fraction}")
    out: List[ActivityTrace] = []
    for trace in traces:
        rng = random.Random(f"{seed}:migrate:{trace.database_id}")
        if rng.random() < fraction:
            out.extend(shift_schedule([trace], at_day, shift_minutes))
        else:
            out.append(trace)
    return out
