"""Fleet-scale benchmark: the columnar engine's scaling curve.

Three sections, all on synthetic :class:`FleetShardSpec` fleets (4-day
span, 1-day warm-up, final-day evaluation, ``history_days=2`` so the
fleet turns "old" mid-run and the proactive pre-warm path engages):

* **curve**: simulated-day wall clock and event throughput at 1k and 10k
  databases (``--quick``), extended to 100k and 1M sharded across the
  :mod:`repro.parallel` executors at full scale.  The full run is the
  acceptance proof that a million-database simulated day completes on
  one box.
* **engine_comparison**: the same 1k fleet through the per-actor engine
  vs the lean columnar path -- KPIs must be identical, and the lean path
  must win on wall clock.
* **shard_merge**: the 10k fleet sharded serially vs across worker
  processes -- the merged KPI report and every per-shard report must be
  byte-identical (the deterministic cross-shard merge contract of
  docs/fleet_scale.md).

Baselines are committed under ``benchmarks/results/``: the full run
writes ``BENCH_fleet_scale.json``, the ``--quick`` variant writes
``BENCH_fleet_scale_quick.json``.  CI re-runs the quick variant to a
scratch directory and ``benchmarks/check_regression.py`` gates the
scale-robust ratios against the committed quick baseline.

Run directly for a human-readable report::

    PYTHONPATH=src python benchmarks/bench_fleet_scale.py          # full
    PYTHONPATH=src python benchmarks/bench_fleet_scale.py --quick  # CI
    PYTHONPATH=src python benchmarks/bench_fleet_scale.py --quick --out /tmp/fresh.json

or through pytest (quick scale)::

    PYTHONPATH=src python -m pytest benchmarks/bench_fleet_scale.py -q
"""

from __future__ import annotations

import dataclasses
import json
import os
import sys
import time
from pathlib import Path
from typing import List

from repro.config import DEFAULT_CONFIG
from repro.parallel import SerialExecutor
from repro.simulation.fleet import simulate_fleet, simulate_fleet_sharded
from repro.simulation.region import SimulationSettings, simulate_region
from repro.types import SECONDS_PER_DAY
from repro.workload.fleetgen import FleetShardSpec

DAY = SECONDS_PER_DAY

#: Where committed baselines live, by repo convention.
RESULTS_DIR = Path(__file__).resolve().parent / "results"
BASELINE_PATH = RESULTS_DIR / "BENCH_fleet_scale.json"
QUICK_BASELINE_PATH = RESULTS_DIR / "BENCH_fleet_scale_quick.json"

QUICK_SCALES = (1_000, 10_000)
FULL_SCALES = (1_000, 10_000, 100_000, 1_000_000)
#: Scales at or above this run sharded across the parallel executors.
SHARD_AT = 100_000
SPAN_DAYS = 4
SEED = 1

#: Two days of retention against a 4-day span: the fleet's oldest events
#: leave the retention window mid-run, flipping databases "old"
#: (predictable) so the evaluation day exercises the pre-warm scan.
CONFIG = dataclasses.replace(DEFAULT_CONFIG, history_days=2)


def _settings(region_databases: int) -> SimulationSettings:
    # Size every region so the start-time round-robin leaves node
    # headroom (residents <= 49 of 64): allocation never has to move a
    # database, keeping the lean bulk placement equivalent to the
    # sequential one (see docs/fleet_scale.md).
    return SimulationSettings(
        eval_start=(SPAN_DAYS - 1) * DAY,
        eval_end=SPAN_DAYS * DAY,
        n_nodes=-(-region_databases // 48),
        node_capacity=64,
    )


def _curve_point(n_databases: int) -> dict:
    spec = FleetShardSpec(n_databases=n_databases, span_days=SPAN_DAYS, seed=SEED)
    if n_databases >= SHARD_AT:
        n_shards = max(16, n_databases // 50_000)
        workers = min(8, os.cpu_count() or 1)
        settings = _settings(-(-n_databases // n_shards))
        start = time.perf_counter()
        result = simulate_fleet_sharded(
            spec, "proactive", CONFIG, settings,
            n_shards=n_shards, workers=workers,
        )
        wall_s = time.perf_counter() - start
        mode = f"sharded x{result.n_shards} ({result.backend})"
        kpis = result.kpis
    else:
        settings = _settings(n_databases)
        start = time.perf_counter()
        result = simulate_fleet(spec, "proactive", CONFIG, settings)
        wall_s = time.perf_counter() - start
        mode = "single region"
        kpis = result.kpis
    logins = kpis.logins.with_resources + kpis.logins.reactive
    return {
        "mode": mode,
        "wall_s": round(wall_s, 3),
        "events": result.events_dispatched,
        "events_per_s": round(result.events_dispatched / wall_s),
        "databases_per_s": round(n_databases / wall_s),
        "state_mib": round(result.state_nbytes / 2**20, 1),
        "logins": logins,
        "prewarms": result.prewarms,
        "proactive_resumes": kpis.workflows.proactive_resumes,
        "physical_pauses": kpis.workflows.physical_pauses,
    }


def _engine_comparison(n_databases: int) -> dict:
    """Per-actor engine vs the lean columnar path on the same fleet."""
    spec = FleetShardSpec(n_databases=n_databases, span_days=SPAN_DAYS, seed=SEED)
    fleet = spec.materialize()
    settings = _settings(n_databases)

    start = time.perf_counter()
    lean = simulate_fleet(fleet, "proactive", CONFIG, settings)
    lean_s = time.perf_counter() - start

    traces = fleet.to_traces()
    actor_settings = dataclasses.replace(settings, engine="actor")
    start = time.perf_counter()
    actor = simulate_region(traces, "proactive", CONFIG, actor_settings)
    actor_s = time.perf_counter() - start

    identical = lean.kpis.to_dict() == actor.kpis().to_dict()
    return {
        "n_databases": n_databases,
        "actor_s": round(actor_s, 3),
        "lean_s": round(lean_s, 3),
        "speedup": round(actor_s / lean_s, 2) if lean_s > 0 else 0.0,
        "kpis_identical": identical,
    }


def _shard_merge(n_databases: int, n_shards: int) -> dict:
    """Serial vs worker-pool sharding must merge to identical KPIs."""
    spec = FleetShardSpec(n_databases=n_databases, span_days=SPAN_DAYS, seed=SEED)
    settings = _settings(-(-n_databases // n_shards))

    start = time.perf_counter()
    serial = simulate_fleet_sharded(
        spec, "proactive", CONFIG, settings,
        n_shards=n_shards, executor=SerialExecutor(),
    )
    serial_s = time.perf_counter() - start

    workers = min(4, max(2, os.cpu_count() or 1))
    start = time.perf_counter()
    pooled = simulate_fleet_sharded(
        spec, "proactive", CONFIG, settings,
        n_shards=n_shards, workers=workers,
    )
    pooled_s = time.perf_counter() - start

    deterministic = serial.kpis.to_dict() == pooled.kpis.to_dict() and all(
        a.to_dict() == b.to_dict()
        for a, b in zip(serial.shard_kpis, pooled.shard_kpis)
    )
    return {
        "n_databases": n_databases,
        "n_shards": serial.n_shards,
        "serial_s": round(serial_s, 3),
        "pooled_s": round(pooled_s, 3),
        "pooled_backend": pooled.backend,
        "deterministic": deterministic,
    }


def run_bench(quick: bool = False) -> dict:
    scales = QUICK_SCALES if quick else FULL_SCALES
    curve = {}
    for n_databases in scales:
        curve[str(n_databases)] = _curve_point(n_databases)

    small, large = str(scales[0]), str(scales[1])
    throughput_ratio = (
        curve[large]["events_per_s"] / curve[small]["events_per_s"]
        if curve[small]["events_per_s"] > 0
        else 0.0
    )
    return {
        "quick": quick,
        "span_days": SPAN_DAYS,
        "history_days": CONFIG.history_days,
        "curve": curve,
        "scaling": {
            # Per-event throughput must not collapse going up a decade.
            "throughput_ratio_10k_vs_1k": round(throughput_ratio, 3),
        },
        "engine_comparison": _engine_comparison(1_000),
        "shard_merge": _shard_merge(10_000, n_shards=4),
    }


def _check(result: dict) -> None:
    for n_databases, point in result["curve"].items():
        assert point["events"] > 0 and point["logins"] > 0, (
            f"curve point {n_databases} simulated nothing"
        )
        assert point["prewarms"] > 0 and point["proactive_resumes"] > 0, (
            f"curve point {n_databases} never exercised the pre-warm path"
        )
    comparison = result["engine_comparison"]
    assert comparison["kpis_identical"], (
        "lean columnar KPIs diverged from the per-actor engine"
    )
    merge = result["shard_merge"]
    assert merge["deterministic"], (
        "sharded KPI merge is not deterministic across executors"
    )
    if not result["quick"]:
        million = result["curve"]["1000000"]
        assert million["events"] > 1_000_000, (
            "the 1M-database day dispatched suspiciously few events"
        )
        # Wall-clock is asserted at full scale only.
        assert comparison["speedup"] > 1.0, (
            f"lean path lost to the actor engine "
            f"({comparison['lean_s']}s vs {comparison['actor_s']}s)"
        )


def _report(result: dict) -> str:
    lines = [
        f"Fleet scaling curve, span {result['span_days']}d, "
        f"history {result['history_days']}d"
        + (" (quick)" if result["quick"] else "")
    ]
    for n_databases, point in result["curve"].items():
        lines.append(
            f"  {int(n_databases):>9,} dbs [{point['mode']}]: "
            f"{point['wall_s']}s wall, {point['events']:,} events "
            f"({point['events_per_s']:,}/s), {point['state_mib']} MiB state, "
            f"{point['prewarms']:,} prewarms"
        )
    comparison = result["engine_comparison"]
    lines.append(
        f"  actor vs lean at {comparison['n_databases']:,} dbs: "
        f"{comparison['actor_s']}s vs {comparison['lean_s']}s "
        f"({comparison['speedup']}x), KPIs identical: "
        f"{comparison['kpis_identical']}"
    )
    merge = result["shard_merge"]
    lines.append(
        f"  shard merge at {merge['n_databases']:,} dbs x{merge['n_shards']}: "
        f"serial {merge['serial_s']}s vs {merge['pooled_backend']} "
        f"{merge['pooled_s']}s, deterministic: {merge['deterministic']}"
    )
    lines.append(
        f"  throughput ratio 10k/1k: "
        f"{result['scaling']['throughput_ratio_10k_vs_1k']}"
    )
    return "\n".join(lines)


def bench_fleet_scale(record_table) -> None:
    """Pytest entry: quick scale, deterministic assertions only."""
    result = run_bench(quick=True)
    record_table("fleet_scale", _report(result))
    _check(result)


def main(argv: List[str]) -> int:
    quick = "--quick" in argv
    if "--out" in argv:
        out = Path(argv[argv.index("--out") + 1])
    else:
        out = QUICK_BASELINE_PATH if quick else BASELINE_PATH
    result = run_bench(quick=quick)
    print(_report(result))
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out}")
    _check(result)
    print("ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
