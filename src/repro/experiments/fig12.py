"""Figure 12: frequency of resource reclamation workflows.

The number of physically paused databases per time interval (1, 5, 10, 15
minutes), proactive vs reactive.  The paper's maxima grow from 31 to 458
with the interval; counts sit slightly above Figure 11's because new
databases are physically paused on idleness without ever being predicted,
so they contribute pauses but no proactive resumes (Section 9.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis import BoxPlotSummary, box_plot_summary, format_table
from repro.config import DEFAULT_CONFIG
from repro.experiments.common import (
    BENCH_SCALE,
    ExperimentScale,
    region_fleet,
    sweep_map,
)
from repro.parallel import SweepExecutor
from repro.simulation.region import simulate_region
from repro.types import SECONDS_PER_MINUTE
from repro.workload.regions import RegionPreset

MIN = SECONDS_PER_MINUTE

PERIOD_MINUTES = (1, 5, 10, 15)


@dataclass(frozen=True)
class PauseRow:
    period_min: int
    proactive: BoxPlotSummary
    reactive: BoxPlotSummary
    proactive_total: int
    proactive_resume_total: int


@dataclass(frozen=True)
class Fig12Result:
    by_period: List[PauseRow]

    def rows(self) -> List[Dict[str, object]]:
        return [
            {
                "period_min": row.period_min,
                "proactive_max": row.proactive.maximum,
                "proactive_median": row.proactive.median,
                "reactive_max": row.reactive.maximum,
                "pauses_total": row.proactive_total,
                "prewarm_total": row.proactive_resume_total,
            }
            for row in self.by_period
        ]

    def table(self) -> str:
        rows = [
            [
                row.period_min,
                row.proactive.median,
                row.proactive.q3,
                row.proactive.maximum,
                row.reactive.median,
                row.reactive.maximum,
            ]
            for row in self.by_period
        ]
        return format_table(
            [
                "interval (min)",
                "proactive med",
                "proactive q3",
                "proactive max",
                "reactive med",
                "reactive max",
            ],
            rows,
            title=(
                "Figure 12: databases physically paused per interval "
                "[paper: proactive max grows 31 -> 458 from 1 to 15 min, "
                "slightly above the Figure 11 resumes]"
            ),
        )


def _fig12_task(context: Tuple, policy: str) -> Dict[str, object]:
    """One policy's Figure 12 run, worker-side: per-interval pause buckets
    for every period plus the proactive workflow totals."""
    preset, scale, period_minutes = context
    traces = region_fleet(preset, scale)
    settings = scale.settings()
    result = simulate_region(traces, policy, DEFAULT_CONFIG, settings)
    kpis = result.kpis()
    return {
        "buckets": {
            m: result.workflow_counts_per_interval("physical_pause", m * MIN)
            for m in period_minutes
        },
        "physical_pauses": kpis.workflows.physical_pauses,
        "proactive_resumes": kpis.workflows.proactive_resumes,
    }


def run_fig12(
    scale: ExperimentScale = BENCH_SCALE,
    preset: RegionPreset = RegionPreset.EU1,
    period_minutes: Sequence[int] = PERIOD_MINUTES,
    executor: Optional[SweepExecutor] = None,
    workers: Optional[int] = None,
) -> Fig12Result:
    """Bucket physical pauses per interval for both policies (a single run
    per policy, fanned out through the sweep executor; the interval is a
    post-processing bucket, as in the paper's telemetry analysis)."""
    period_minutes = tuple(period_minutes)
    proactive, reactive = sweep_map(
        _fig12_task,
        (preset, scale, period_minutes),
        ["proactive", "reactive"],
        executor,
        workers,
    )
    out: List[PauseRow] = []
    for minutes in period_minutes:
        out.append(
            PauseRow(
                period_min=minutes,
                proactive=box_plot_summary(proactive["buckets"][minutes]),
                reactive=box_plot_summary(reactive["buckets"][minutes]),
                proactive_total=proactive["physical_pauses"],
                proactive_resume_total=proactive["proactive_resumes"],
            )
        )
    return Fig12Result(out)
