"""Tests for per-database seasonality detection and its policy impact."""

import pytest

from repro.config import ProRPConfig, Seasonality
from repro.core.seasonality import config_for_seasonality, detect_seasonality
from repro.errors import ConfigError
from repro.simulation import SimulationSettings, simulate_region
from repro.types import SECONDS_PER_DAY, SECONDS_PER_HOUR, ActivityTrace, Session

DAY = SECONDS_PER_DAY
HOUR = SECONDS_PER_HOUR


class TestDetection:
    def test_daily_pattern_detected_daily(self):
        logins = [d * DAY + 9 * HOUR for d in range(28)]
        diagnosis = detect_seasonality(logins, now=28 * DAY, history_days=28)
        assert diagnosis.seasonality is Seasonality.DAILY
        assert diagnosis.activity_density == 1.0

    def test_weekly_pattern_detected_weekly(self):
        logins = [week * 7 * DAY + 9 * HOUR for week in range(4)]
        diagnosis = detect_seasonality(logins, now=28 * DAY, history_days=28)
        assert diagnosis.seasonality is Seasonality.WEEKLY
        assert diagnosis.weekday_concentration == 1.0
        assert diagnosis.active_days == 4

    def test_sparse_random_defaults_to_daily(self):
        # Three logins on different weekdays: no concentration.
        logins = [2 * DAY, 10 * DAY, 17 * DAY]
        diagnosis = detect_seasonality(logins, now=28 * DAY, history_days=28)
        assert diagnosis.seasonality is Seasonality.DAILY

    def test_two_occurrences_insufficient_for_weekly(self):
        logins = [7 * DAY, 14 * DAY]
        diagnosis = detect_seasonality(logins, now=28 * DAY, history_days=28)
        assert diagnosis.seasonality is Seasonality.DAILY

    def test_empty_history(self):
        diagnosis = detect_seasonality([], now=28 * DAY, history_days=28)
        assert diagnosis.seasonality is Seasonality.DAILY
        assert diagnosis.active_days == 0

    def test_only_recent_history_considered(self):
        # Weekly logins, but all older than the retention window.
        logins = [week * 7 * DAY for week in range(4)]
        diagnosis = detect_seasonality(logins, now=100 * DAY, history_days=28)
        assert diagnosis.active_days == 0


class TestConfigDerivation:
    def test_weekly_variant(self):
        config = config_for_seasonality(ProRPConfig(), Seasonality.WEEKLY)
        assert config.seasonality is Seasonality.WEEKLY
        assert config.horizon_s == 7 * DAY
        assert config.history_days == 28  # already a whole number of weeks

    def test_weekly_variant_rounds_history_to_weeks(self):
        base = ProRPConfig(history_days=30)
        config = config_for_seasonality(base, Seasonality.WEEKLY)
        assert config.history_days == 28

    def test_same_seasonality_returns_base(self):
        base = ProRPConfig()
        assert config_for_seasonality(base, Seasonality.DAILY) is base

    def test_too_short_history_rejected(self):
        base = ProRPConfig(history_days=5)
        with pytest.raises(ConfigError):
            config_for_seasonality(base, Seasonality.WEEKLY)


class TestPolicyImpact:
    def _weekly_trace(self):
        """A Monday-only batch database over six weeks (older than h=28d,
        so it counts as an old, predictable database)."""
        sessions = [
            Session(week * 7 * DAY + 9 * HOUR, week * 7 * DAY + 12 * HOUR)
            for week in range(6)
        ]
        return ActivityTrace("weekly", sessions, created_at=0)

    def _settings(self):
        # Evaluate the window containing the sixth Monday (day 35).
        return SimulationSettings(
            eval_start=34 * DAY,
            eval_end=36 * DAY,
            warmup_s=DAY,
            resume_latency_jitter_s=0,
        )

    def test_auto_seasonality_prewarms_weekly_database(self):
        """With c high enough to silence the daily detector (4/28 < 0.2),
        only the weekly detector can pre-warm the Monday login."""
        fixed = simulate_region(
            [self._weekly_trace()],
            "proactive",
            config=ProRPConfig(confidence=0.2),
            settings=self._settings(),
        ).kpis()
        adaptive = simulate_region(
            [self._weekly_trace()],
            "proactive",
            config=ProRPConfig(confidence=0.2, auto_seasonality=True),
            settings=self._settings(),
        ).kpis()
        assert fixed.logins.reactive == 1  # daily detector misses Monday
        assert adaptive.logins.with_resources == 1  # weekly detector hits
        assert adaptive.workflows.proactive_resumes >= 1

    def test_auto_seasonality_unchanged_for_daily_database(self):
        trace = ActivityTrace(
            "daily",
            [Session(d * DAY + 9 * HOUR, d * DAY + 17 * HOUR) for d in range(31)],
        )
        settings = SimulationSettings(
            eval_start=29 * DAY, eval_end=30 * DAY, resume_latency_jitter_s=0
        )
        fixed = simulate_region(
            [trace], "proactive", settings=settings
        ).kpis()
        adaptive = simulate_region(
            [trace],
            "proactive",
            config=ProRPConfig(auto_seasonality=True),
            settings=settings,
        ).kpis()
        assert adaptive.to_dict() == fixed.to_dict()
