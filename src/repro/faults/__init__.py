"""Fault injection and resilience for the ProRP control plane.

The paper's infrastructure runs on machinery that fails: resume/pause
workflows get stuck (Section 7's diagnostics runner exists to mitigate
exactly that), histories can be lost (Section 5 restores them from
backups), and any ProRP component can go down (Section 3.2 demands the
fleet default to reactive until it recovers).  This package makes those
failure modes first-class and measurable:

* :mod:`repro.faults.plan` -- declarative, JSON-serializable fault plans:
  named fault points with probability, sim-time schedule, fire caps, and
  latency payloads.
* :mod:`repro.faults.injector` -- the deterministic, seed-driven engine
  consulted by fault points across storage, SQL, cluster, predictor,
  resume-scan, and workflow code.  Per-point PRNG streams make schedules
  identical across serial and multiprocess executors.
* :mod:`repro.faults.runtime` -- the off-by-default process-global switch
  (``FAULTS``), mirroring the observability switch: disarmed fault points
  cost one guard check.
* :mod:`repro.faults.resilience` -- retry with exponential backoff and
  jitter, deadline guards, and a sim-time circuit breaker.

See ``docs/resilience.md`` for the fault-point catalog and the chaos
experiment that sweeps fault rate against QoS/COGS.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, FaultSpec
from repro.faults.resilience import (
    BreakerState,
    CircuitBreaker,
    Deadline,
    RetryPolicy,
)
from repro.faults.runtime import FAULTS, arm, chaos, disarm

__all__ = [
    "FAULTS",
    "arm",
    "disarm",
    "chaos",
    "FaultPlan",
    "FaultSpec",
    "FaultInjector",
    "RetryPolicy",
    "Deadline",
    "CircuitBreaker",
    "BreakerState",
]
