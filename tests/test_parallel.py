"""Tests for the sweep execution layer (repro.parallel).

The contract under test: any backend returns the same results in the
same order as the serial reference, degrades to serial when the pool
infrastructure fails, and reports honest per-task telemetry.
"""

import os

import pytest

from repro.config import ProRPConfig
from repro.parallel import (
    MultiprocessExecutor,
    SerialExecutor,
    chunked,
    merge_ordered,
    multiprocess as mp_backend,
    resolve_executor,
)
from repro.simulation import SimulationSettings
from repro.telemetry import Component, TelemetryStore
from repro.training import ParameterGrid, TrainingPipeline
from repro.types import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.workload import RegionPreset, generate_region_traces

DAY = SECONDS_PER_DAY
HOUR = SECONDS_PER_HOUR


def _square(context, item):
    return context["base"] + item * item


def _crash_in_worker(context, item):
    """Crashes the process when run inside a pool worker, succeeds when
    run in the parent -- the shape of a worker-only failure (OOM kill,
    native-extension segfault)."""
    if mp_backend._IN_WORKER:
        os._exit(1)
    return item * 2


class TestChunked:
    def test_partition_covers_everything_in_order(self):
        items = list(range(10))
        for size in (1, 2, 3, 4, 10, 99):
            chunks = chunked(items, size)
            assert [x for chunk in chunks for x in chunk] == items
            assert all(len(chunk) <= size for chunk in chunks)

    def test_chunk_counts(self):
        assert len(chunked(list(range(10)), 3)) == 4
        assert chunked([], 3) == []

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError):
            chunked([1, 2], 0)


class TestMergeOrdered:
    def test_restores_submission_order(self):
        indexed = [(2, "c"), (0, "a"), (1, "b")]
        assert merge_ordered(indexed, 3) == ["a", "b", "c"]

    def test_none_results_preserved(self):
        assert merge_ordered([(0, None), (1, "x")], 2) == [None, "x"]

    def test_missing_result_detected(self):
        with pytest.raises(ValueError, match="incomplete"):
            merge_ordered([(0, "a")], 2)

    def test_duplicate_result_detected(self):
        with pytest.raises(ValueError, match="two results"):
            merge_ordered([(0, "a"), (0, "b")], 1)

    def test_out_of_range_index_detected(self):
        with pytest.raises(ValueError, match="outside"):
            merge_ordered([(5, "a")], 2)


class TestSerialExecutor:
    def test_maps_in_order(self):
        executor = SerialExecutor()
        out = executor.run(_square, {"base": 10}, [1, 2, 3])
        assert out == [11, 14, 19]

    def test_stats(self):
        executor = SerialExecutor()
        executor.run(_square, {"base": 0}, [1, 2, 3])
        stats = executor.last_stats
        assert stats.backend == "serial"
        assert stats.tasks_queued == stats.tasks_completed == 3
        assert len(stats.tasks) == 3
        assert stats.fallback_reason is None


class TestMultiprocessExecutor:
    def test_matches_serial_output(self):
        executor = MultiprocessExecutor(workers=3, chunk_size=2)
        out = executor.run(_square, {"base": 10}, list(range(7)))
        assert out == [10 + i * i for i in range(7)]
        stats = executor.last_stats
        assert stats.backend == "multiprocess"
        assert stats.tasks_completed == 7
        assert stats.n_chunks == 4
        assert stats.fallback_reason is None
        # Per-task records come back sorted by submission index.
        assert [t.index for t in stats.tasks] == list(range(7))

    def test_degenerate_sweep_runs_inline(self):
        executor = MultiprocessExecutor(workers=4)
        assert executor.run(_square, {"base": 1}, [5]) == [26]
        assert executor.last_stats.workers == 1

    def test_worker_crash_falls_back_to_serial(self):
        executor = MultiprocessExecutor(workers=2, chunk_size=1)
        with pytest.warns(RuntimeWarning, match="degraded to serial"):
            out = executor.run(_crash_in_worker, None, [1, 2, 3])
        assert out == [2, 4, 6]
        stats = executor.last_stats
        assert stats.fallback_reason is not None
        assert "BrokenProcessPool" in stats.fallback_reason

    def test_unpicklable_worker_falls_back(self):
        # Under the spawn start method every payload must pickle; a nested
        # function cannot, so the pool never comes up -- the sweep must
        # still complete serially.  (Under fork the closure is inherited
        # and the pool genuinely works, so spawn is forced here.)
        def inner(context, item):
            return item + context

        executor = MultiprocessExecutor(workers=2, start_method="spawn")
        with pytest.warns(RuntimeWarning, match="degraded to serial"):
            out = executor.run(inner, 100, [1, 2])
        assert out == [101, 102]
        assert executor.last_stats.fallback_reason is not None

    def test_no_fallback_reraises(self):
        executor = MultiprocessExecutor(workers=2, chunk_size=1, fallback=False)
        with pytest.raises(Exception):
            executor.run(_crash_in_worker, None, [1, 2, 3])

    def test_worker_exceptions_propagate(self):
        # A deterministic task bug is not an infrastructure failure: it
        # must surface, not silently rerun serially (where it would fail
        # identically anyway).
        executor = MultiprocessExecutor(workers=2, chunk_size=1)
        with pytest.raises(ZeroDivisionError):
            executor.run(_divide, None, [1, 0, 2])

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            MultiprocessExecutor(workers=0)
        with pytest.raises(ValueError):
            MultiprocessExecutor(workers=2, chunk_size=0)


def _divide(context, item):
    return 10 // item


class TestResolveExecutor:
    def test_default_is_serial(self):
        assert isinstance(resolve_executor(), SerialExecutor)
        assert isinstance(resolve_executor(workers=1), SerialExecutor)
        assert isinstance(resolve_executor(workers=0), SerialExecutor)

    def test_workers_selects_multiprocess(self):
        executor = resolve_executor(workers=3)
        assert isinstance(executor, MultiprocessExecutor)
        assert executor.workers == 3

    def test_explicit_executor_wins(self):
        explicit = SerialExecutor()
        assert resolve_executor(executor=explicit, workers=8) is explicit


class TestSweepTelemetry:
    def test_run_emits_task_and_summary_events(self):
        store = TelemetryStore()
        executor = SerialExecutor(telemetry_store=store)
        executor.run(_square, {"base": 0}, [1, 2, 3])
        events = list(store.scan(component=Component.SWEEP_EXECUTOR))
        kinds = [e.payload["kind"] for e in events]
        assert kinds.count("task") == 3
        assert kinds.count("run") == 1
        run = [e for e in events if e.payload["kind"] == "run"][0]
        assert run.payload["backend"] == "serial"
        assert run.payload["tasks_completed"] == 3


class TestTrainingDeterminism:
    @pytest.fixture(scope="class")
    def pipeline(self):
        traces = generate_region_traces(RegionPreset.EU1, 40, span_days=31, seed=7)
        settings = SimulationSettings(eval_start=29 * DAY, eval_end=30 * DAY)
        return TrainingPipeline(traces, settings)

    def test_serial_and_multiprocess_reports_identical(self, pipeline):
        grid = ParameterGrid(
            {"window_s": [2 * HOUR, 7 * HOUR], "confidence": [0.1, 0.5]}
        )
        serial = pipeline.run(ProRPConfig(), grid)
        parallel = pipeline.run(ProRPConfig(), grid, workers=3)
        assert serial == parallel

    def test_explicit_executor_report_identical(self, pipeline):
        grid = ParameterGrid({"confidence": [0.1, 0.4, 0.7]})
        serial = pipeline.run(ProRPConfig(), grid)
        executor = MultiprocessExecutor(workers=2, chunk_size=1)
        parallel = pipeline.run(ProRPConfig(), grid, executor=executor)
        assert serial == parallel
        assert executor.last_stats.tasks_completed == 3
