"""Exception hierarchy for the ProRP reproduction.

Every exception raised by this package derives from :class:`ProRPError` so
callers can catch one base class.  Sub-hierarchies mirror the subsystems:
storage, SQL engine, simulation, control plane, and configuration.
"""

from __future__ import annotations


class ProRPError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigError(ProRPError):
    """An invalid configuration knob value (Table 1 of the paper)."""


# ---------------------------------------------------------------------------
# Storage substrate
# ---------------------------------------------------------------------------


class StorageError(ProRPError):
    """Base class for errors raised by the storage substrate."""


class DuplicateKeyError(StorageError):
    """A unique-key constraint was violated on insert."""


class KeyNotFoundError(StorageError):
    """A key expected to be present in an index was missing."""


class SchemaError(StorageError):
    """A row or query does not conform to the table schema."""


class TableNotFoundError(StorageError):
    """A statement referenced a table that does not exist."""


class TableAlreadyExistsError(StorageError):
    """``CREATE TABLE`` targeted a name that is already in use."""


# ---------------------------------------------------------------------------
# SQL engine
# ---------------------------------------------------------------------------


class SqlError(ProRPError):
    """Base class for errors raised by the SQL engine."""


class SqlSyntaxError(SqlError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int = -1):
        super().__init__(message)
        self.position = position


class SqlBindingError(SqlError):
    """A ``@parameter`` placeholder was unbound or of the wrong type."""


class SqlPlanError(SqlError):
    """The planner could not produce a plan for a parsed statement."""


class SqlExecutionError(SqlError):
    """A runtime failure while executing a planned statement."""


# ---------------------------------------------------------------------------
# Simulation and control plane
# ---------------------------------------------------------------------------


class SimulationError(ProRPError):
    """An inconsistency detected while running the discrete-event simulator."""


# ---------------------------------------------------------------------------
# Fault injection and resilience
# ---------------------------------------------------------------------------


class FaultPlanError(ProRPError):
    """An invalid fault plan (bad probability, window, or document)."""


class FaultInjectedError(ProRPError):
    """A failure injected by the fault engine at a named fault point.

    Carries the fault-point name so resilience layers (and tests) can tell
    injected failures apart from organic ones.
    """

    def __init__(self, point: str, message: str = ""):
        super().__init__(message or f"injected fault at {point!r}")
        self.point = point


class DeadlineExceededError(ProRPError):
    """An operation ran past its deadline budget."""


class CircuitOpenError(ProRPError):
    """A call was refused because its circuit breaker is open."""


class TraceError(ProRPError):
    """A customer-activity trace violates ordering or overlap invariants."""


class WorkflowError(ProRPError):
    """A control-plane workflow failed or was cancelled."""


class WalError(StorageError):
    """Base class for write-ahead-log failures (control-plane durability)."""


class WalCorruptionError(WalError):
    """A WAL segment holds a record that fails its checksum away from the
    tail, or a replayed record contradicts the recovered state."""


class ControlPlaneCrashError(ProRPError):
    """An injected control-plane process death (``controlplane.wal.*``
    fault points).  The in-memory engine is gone; only the WAL and the
    last checkpoint survive."""


class CapacityError(ProRPError):
    """A cluster node could not satisfy a resource allocation request."""


class TuningError(ProRPError):
    """The online knob tuner was driven inconsistently (out-of-order
    evaluation window, missing incumbent score, or a journal that
    contradicts the recovered tuner state)."""
