"""Quickstart: simulate a region under the reactive and proactive policies.

Generates a small synthetic fleet, replays it through both resource
allocation policies, and prints the Section 8 KPI comparison -- the
30-second version of the paper's Figure 6.

Run:  python examples/quickstart.py
"""

from repro import ProRPConfig, simulate_region
from repro.analysis import format_table
from repro.simulation import SimulationSettings
from repro.types import SECONDS_PER_DAY as DAY
from repro.workload import RegionPreset, generate_region_traces


def main() -> None:
    # A month of activity for 200 serverless databases in an EU1-like mix.
    traces = generate_region_traces(RegionPreset.EU1, n_databases=200, seed=7)

    # Evaluate two weekdays after a one-day warm-up; everything before that
    # is history for the predictor.
    settings = SimulationSettings(eval_start=31 * DAY, eval_end=33 * DAY)
    config = ProRPConfig()  # Table 1 production defaults

    rows = []
    for policy in ("provisioned", "reactive", "proactive", "optimal"):
        kpis = simulate_region(traces, policy, config, settings).kpis()
        rows.append(
            [
                policy,
                round(kpis.qos_percent, 1),
                round(kpis.idle_percent, 2),
                round(kpis.unavailable_percent, 3),
                kpis.workflows.reactive_resumes,
                kpis.workflows.proactive_resumes,
            ]
        )

    print(
        format_table(
            [
                "policy",
                "QoS %",
                "idle %",
                "unavailable %",
                "reactive resumes",
                "proactive resumes",
            ],
            rows,
            title="ProRP quickstart: 200 databases, 2 evaluation days",
        )
    )
    print(
        "\nFixed provisioning never misses a login but pays for idle\n"
        "resources around the clock; the proactive policy serves most\n"
        "logins with resources already available at a fraction of that\n"
        "idle cost, and the clairvoyant optimum bounds what any policy\n"
        "could achieve."
    )


if __name__ == "__main__":
    main()
