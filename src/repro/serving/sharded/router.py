"""The sharded serving router: consistent-hash dispatch over workers.

The router owns the fleet (it builds and mutates the shared-memory
arena), spawns N worker processes, keeps one pipelined TCP connection to
each, and forwards predict/resume-scan requests to the worker owning the
request's region on the :class:`~repro.serving.sharded.hashring.
HashRing`.  Identity travels, bytes do not: a forwarded by-id request is
a ~100-byte JSON line; the worker reads the login history zero-copy out
of the arena.

Backpressure is explicit at two levels.  Each worker connection has a
bounded *outstanding-request window*; when every replica candidate for a
region is saturated (window full, breaker open, or connection dead) the
router sheds with a typed :class:`~repro.serving.requests.Overloaded`
instead of queueing -- the same load-shedding posture as the in-process
admission layer, one hop earlier.  A per-worker
:class:`~repro.faults.resilience.CircuitBreaker` accumulates transport
failures; the maintenance loop health-probes workers, evicts dead ones,
and (when ``respawn`` is on) restarts them against the same arena --
consistent hashing keeps the rest of the fleet's routing untouched.

Health and metrics are aggregated: a health probe fans out and sums the
workers' gauges; a metrics scrape pulls each worker's pickled
``MetricsRegistry`` over its control pipe and merges them (plus the
router's own registry) into one OpenMetrics exposition.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ProRPError
from repro.faults.resilience import CircuitBreaker
from repro.observability.openmetrics import render_openmetrics
from repro.observability.runtime import OBS
from repro.serving.requests import (
    HealthRequest,
    HealthResponse,
    MetricsRequest,
    MetricsResponse,
    Overloaded,
    Request,
    Response,
    Unavailable,
    decode_response,
    encode_request,
)
from repro.serving.server import ServingSettings
from repro.serving.sharded.arena import DEFAULT_SLACK, SharedHistoryArena
from repro.serving.sharded.hashring import DEFAULT_VNODES, HashRing
from repro.serving.sharded.worker import (
    WorkerSpec,
    await_ready,
    spawn_worker,
)


class WorkerTransportError(ProRPError):
    """The pipelined connection to a worker failed mid-request."""


@dataclass(frozen=True)
class RouterSettings:
    """Router knobs: replication, backpressure, resilience."""

    #: Distinct ring candidates tried per region before shedding.
    replicas: int = 2
    #: Outstanding-request window per worker connection; a full window
    #: moves traffic to the next replica, all-full sheds ``Overloaded``.
    window: int = 32
    vnodes: int = DEFAULT_VNODES
    #: Health-probe cadence of the maintenance loop; <= 0 disables it
    #: (scripted runs and tests that drive the router synchronously).
    health_interval_s: float = 1.0
    breaker_failure_threshold: int = 3
    breaker_recovery_s: float = 2.0
    #: Respawn workers the maintenance loop finds dead.
    respawn: bool = True
    worker_ready_timeout_s: float = 60.0

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ProRPError("replicas must be at least 1")
        if self.window < 1:
            raise ProRPError("window must be at least 1")


@dataclass
class RouterStats:
    """Always-on router-side accounting (mirrors ``ServerStats``)."""

    routed: int = 0
    shed_overloaded: int = 0
    retries: int = 0
    respawns: int = 0
    max_outstanding: int = 0
    by_worker: Dict[int, int] = field(default_factory=dict)

    def snapshot(self) -> Dict[str, object]:
        return {
            "routed": self.routed,
            "shed_overloaded": self.shed_overloaded,
            "retries": self.retries,
            "respawns": self.respawns,
            "max_outstanding": self.max_outstanding,
            "by_worker": dict(self.by_worker),
        }


class WorkerHandle:
    """One worker process and its pipelined connection, router side."""

    def __init__(self, worker_id: int, spec: WorkerSpec, breaker: CircuitBreaker):
        self.worker_id = worker_id
        self.spec = spec
        self.breaker = breaker
        self.process = None
        self.conn = None
        self.port: Optional[int] = None
        self.reader: Optional[asyncio.StreamReader] = None
        self.writer: Optional[asyncio.StreamWriter] = None
        self.read_task: Optional[asyncio.Task] = None
        self.inflight: Dict[str, asyncio.Future] = {}
        self.outbox: List[dict] = []
        self.flush_scheduled = False
        self.outstanding = 0
        self.seq = 0
        self.alive = False
        self.final_stats: Optional[Dict[str, int]] = None


class ShardRouter:
    """The multi-process gateway; speaks the same ``submit`` contract as
    :class:`~repro.serving.server.PredictionServer` so the load
    generator, CLI, and tests drive either interchangeably."""

    def __init__(
        self,
        arena: SharedHistoryArena,
        n_workers: int,
        worker_settings: Optional[ServingSettings] = None,
        settings: Optional[RouterSettings] = None,
        observability: bool = True,
        clock: Callable[[], float] = time.monotonic,
    ):
        if n_workers < 1:
            raise ProRPError("the sharded tier needs at least one worker")
        self.arena = arena
        self.n_workers = n_workers
        self.worker_settings = (
            worker_settings if worker_settings is not None else ServingSettings()
        )
        self.settings = settings if settings is not None else RouterSettings()
        self.observability = observability
        self._clock = clock
        self.ring = HashRing(range(n_workers), vnodes=self.settings.vnodes)
        self._candidates: Dict[str, Tuple[int, ...]] = {}
        self.handles: Dict[int, WorkerHandle] = {}
        self.stats = RouterStats()
        self._metrics_lock = asyncio.Lock()
        self._maintenance_task: Optional[asyncio.Task] = None
        self._started = False
        self._stopping = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        fleet: Mapping[str, Sequence[Tuple[str, Sequence[int], bool]]],
        n_workers: int,
        worker_settings: Optional[ServingSettings] = None,
        settings: Optional[RouterSettings] = None,
        slack: int = DEFAULT_SLACK,
        observability: bool = True,
    ) -> "ShardRouter":
        """Build the arena from ``region -> [(database_id, logins,
        paused), ...]`` and a router over it."""
        arena = SharedHistoryArena.build(fleet, slack=slack)
        return cls(
            arena,
            n_workers,
            worker_settings=worker_settings,
            settings=settings,
            observability=observability,
        )

    # ------------------------------------------------------------------
    # Fleet mutation (router-owned writes into the arena)
    # ------------------------------------------------------------------

    def append_login(self, region: str, database_id: str, ts: int) -> None:
        self.arena.append_login(region, database_id, ts)

    def set_paused(self, region: str, database_id: str, paused: bool) -> None:
        self.arena.set_paused(region, database_id, paused)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Spawn every worker, wait for bootstrap, connect, and start the
        maintenance loop.  Spawns overlap (the slow part is interpreter
        startup), then readiness is awaited in worker order."""
        if self._started:
            return
        self._started = True
        loop = asyncio.get_running_loop()
        spawned = []
        for worker_id in range(self.n_workers):
            spec = WorkerSpec(
                worker_id=worker_id,
                arena=self.arena.spec,
                settings=self.worker_settings,
                observability=self.observability,
            )
            handle = WorkerHandle(
                worker_id,
                spec,
                CircuitBreaker(
                    failure_threshold=self.settings.breaker_failure_threshold,
                    recovery_s=self.settings.breaker_recovery_s,
                    name=f"router.worker.{worker_id}",
                ),
            )
            handle.process, handle.conn = spawn_worker(spec)
            self.handles[worker_id] = handle
            spawned.append(handle)
        for handle in spawned:
            await self._connect(handle, loop)
        if self.settings.health_interval_s > 0:
            self._maintenance_task = loop.create_task(self._maintenance())

    async def _connect(self, handle: WorkerHandle, loop) -> None:
        handle.port = await loop.run_in_executor(
            None,
            await_ready,
            handle.conn,
            handle.process,
            self.settings.worker_ready_timeout_s,
        )
        handle.reader, handle.writer = await asyncio.open_connection(
            handle.spec.host, handle.port
        )
        handle.inflight = {}
        handle.outbox = []
        handle.flush_scheduled = False
        handle.outstanding = 0
        handle.alive = True
        handle.read_task = loop.create_task(self._read_loop(handle))

    async def stop(self) -> None:
        """Drain and stop every worker, then free the arena."""
        if self._stopping:
            return
        self._stopping = True
        if self._maintenance_task is not None:
            self._maintenance_task.cancel()
            try:
                await self._maintenance_task
            except asyncio.CancelledError:
                pass
            self._maintenance_task = None
        loop = asyncio.get_running_loop()
        for handle in self.handles.values():
            await self._stop_worker(handle, loop)
        self.arena.close()
        if self.arena.owner:
            try:
                self.arena.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    async def _stop_worker(self, handle: WorkerHandle, loop) -> None:
        if handle.process is None:
            return
        try:
            handle.conn.send(("stop",))
            got = await loop.run_in_executor(None, handle.conn.poll, 30.0)
            if got:
                tag, payload = handle.conn.recv()
                if tag == "stopped":
                    handle.final_stats = payload
        except (OSError, EOFError, BrokenPipeError):
            pass
        if handle.writer is not None:
            handle.writer.close()
        if handle.read_task is not None:
            try:
                await handle.read_task
            except asyncio.CancelledError:  # pragma: no cover
                pass
        await loop.run_in_executor(None, handle.process.join, 15.0)
        if handle.process.is_alive():  # pragma: no cover - hung worker
            handle.process.terminate()
            await loop.run_in_executor(None, handle.process.join, 5.0)
        handle.alive = False
        try:
            handle.conn.close()
        except OSError:  # pragma: no cover
            pass

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    async def submit(self, request: Request) -> Response:
        """Route one request; always returns a typed response."""
        if not self._started:
            await self.start()
        if OBS.enabled:
            OBS.metrics.counter("router.requests").inc()
        if isinstance(request, HealthRequest):
            return await self._health(request)
        if isinstance(request, MetricsRequest):
            return await self._metrics(request)
        region = getattr(request, "region", "default")
        candidates = self._candidates.get(region)
        if candidates is None:
            # The ring is immutable after build (respawn reuses worker
            # ids), so region placement is cached: one sha1 per region
            # lifetime instead of one per request.
            candidates = self.ring.candidates(region, self.settings.replicas)
            self._candidates[region] = candidates
        now = self._clock()
        eligible = [
            self.handles[worker_id]
            for worker_id in candidates
            if self.handles[worker_id].alive
            and self.handles[worker_id].breaker.allow(now)
        ]
        target = next(
            (h for h in eligible if h.outstanding < self.settings.window),
            None,
        )
        if target is None:
            self.stats.shed_overloaded += 1
            if OBS.enabled:
                OBS.metrics.counter("router.shed.overloaded").inc()
            return Overloaded(
                request.request_id,
                f"all {len(candidates)} replicas for region {region!r} "
                f"are saturated (window {self.settings.window})",
            )
        try:
            response = await self._send(target, request)
        except WorkerTransportError:
            target.breaker.record_failure(self._clock())
            self.stats.retries += 1
            if OBS.enabled:
                OBS.metrics.counter("router.retries").inc()
            alternate = next(
                (
                    h
                    for h in eligible
                    if h is not target
                    and h.alive
                    and h.outstanding < self.settings.window
                ),
                None,
            )
            if alternate is None:
                return Unavailable(
                    request.request_id,
                    f"worker {target.worker_id} connection lost and no "
                    f"live replica remains for region {region!r}",
                )
            try:
                response = await self._send(alternate, request)
            except WorkerTransportError:
                alternate.breaker.record_failure(self._clock())
                return Unavailable(
                    request.request_id,
                    f"both replicas for region {region!r} failed",
                )
            alternate.breaker.record_success(self._clock())
            return response
        target.breaker.record_success(self._clock())
        return response

    async def _send(self, handle: WorkerHandle, request: Request) -> Response:
        """Forward over the pipelined connection; the response comes back
        via the reader task, correlated by a router-scoped wire id (the
        original ``request_id`` is restored before returning, so clients
        never see the rewrite).

        Requests are not written one line at a time: each ``_send``
        appends its document to the handle's outbox and schedules one
        flush per event-loop iteration (``call_soon``), so every request
        submitted in the same iteration -- the common case under load,
        where many client tasks run back to back -- travels as a single
        JSON array frame.  Coalescing at the transport is what makes the
        per-request IPC cost scale with bytes instead of wakeups; it adds
        no latency because the flush runs before the loop sleeps."""
        if not handle.alive or handle.writer is None:
            raise WorkerTransportError(
                f"worker {handle.worker_id} is not connected"
            )
        loop = asyncio.get_running_loop()
        wire_id = f"x{handle.seq}"
        handle.seq += 1
        future = loop.create_future()
        handle.inflight[wire_id] = future
        handle.outstanding += 1
        self.stats.routed += 1
        self.stats.by_worker[handle.worker_id] = (
            self.stats.by_worker.get(handle.worker_id, 0) + 1
        )
        if handle.outstanding > self.stats.max_outstanding:
            self.stats.max_outstanding = handle.outstanding
        doc = encode_request(request)
        doc["request_id"] = wire_id
        handle.outbox.append(doc)
        if not handle.flush_scheduled:
            handle.flush_scheduled = True
            loop.call_soon(self._flush, handle)
        try:
            response = await future
        finally:
            handle.outstanding -= 1
            handle.inflight.pop(wire_id, None)
        return replace(response, request_id=request.request_id)

    def _flush(self, handle: WorkerHandle) -> None:
        """Write the handle's queued request documents as one frame (a
        bare object for a single request, an array for a coalesced
        batch).  A transport failure fails exactly this batch's futures;
        their ``submit`` callers retry on a replica."""
        handle.flush_scheduled = False
        batch = handle.outbox
        if not batch:
            return
        handle.outbox = []
        payload = json.dumps(batch[0] if len(batch) == 1 else batch)
        try:
            handle.writer.write((payload + "\n").encode("utf-8"))
        except (ConnectionError, OSError) as exc:
            for doc in batch:
                future = handle.inflight.get(doc["request_id"])
                if future is not None and not future.done():
                    future.set_exception(
                        WorkerTransportError(
                            f"worker {handle.worker_id} write failed: {exc}"
                        )
                    )

    async def _read_loop(self, handle: WorkerHandle) -> None:
        """Drain one worker connection, resolving in-flight futures in
        completion order; a frame may be a single response document or an
        array (the worker answers synchronously-resolvable requests of a
        coalesced frame as one array).  EOF or transport failure fails
        all in-flight futures (their senders retry on a replica)."""
        try:
            while True:
                line = await handle.reader.readline()
                if not line:
                    break
                frame = json.loads(line)
                for doc in frame if isinstance(frame, list) else (frame,):
                    response = decode_response(doc)
                    future = handle.inflight.get(response.request_id)
                    if future is not None and not future.done():
                        future.set_result(response)
        except (ConnectionError, OSError):
            pass
        finally:
            handle.alive = False
            for future in handle.inflight.values():
                if not future.done():
                    future.set_exception(
                        WorkerTransportError(
                            f"worker {handle.worker_id} connection closed"
                        )
                    )

    # ------------------------------------------------------------------
    # Aggregated health / metrics
    # ------------------------------------------------------------------

    async def _health(self, request: HealthRequest) -> HealthResponse:
        """Fan the probe out to live workers and sum their gauges; the
        router's own shed/respawn counters ride in ``stats``."""
        live = [h for h in self.handles.values() if h.alive]
        probes = await asyncio.gather(
            *(
                self._send(h, HealthRequest(f"{request.request_id}.w{h.worker_id}"))
                for h in live
            ),
            return_exceptions=True,
        )
        worker_health: List[HealthResponse] = [
            p for p in probes if isinstance(p, HealthResponse)
        ]
        stats: Dict[str, int] = {
            "workers": len(self.handles),
            "workers_live": len(worker_health),
            "router_shed_overloaded": self.stats.shed_overloaded,
            "router_retries": self.stats.retries,
            "router_respawns": self.stats.respawns,
            "router_max_outstanding": self.stats.max_outstanding,
        }
        for probe in worker_health:
            for key, value in probe.stats.items():
                if isinstance(value, int):
                    stats[key] = stats.get(key, 0) + value
        degraded = len(worker_health) < len(self.handles) or any(
            p.status != "ok" for p in worker_health
        )
        return HealthResponse(
            request_id=request.request_id,
            status="stopping"
            if self._stopping
            else ("degraded" if degraded else "ok"),
            queue_depth=sum(p.queue_depth for p in worker_health)
            + sum(h.outstanding for h in self.handles.values()),
            in_flight=sum(p.in_flight for p in worker_health),
            served=sum(p.served for p in worker_health),
            shed=sum(p.shed for p in worker_health)
            + self.stats.shed_overloaded,
            stats=stats,
        )

    async def _metrics(self, request: MetricsRequest) -> MetricsResponse:
        """One fleet-wide OpenMetrics exposition: each worker's registry
        is pulled over its control pipe (pickled) and merged with the
        router's own registry."""
        from repro.observability.metrics import MetricsRegistry

        async with self._metrics_lock:
            loop = asyncio.get_running_loop()
            registries = await loop.run_in_executor(
                None, self._collect_registries
            )
        merged = MetricsRegistry()
        if OBS.enabled and OBS.metrics is not None:
            merged.merge(OBS.metrics)
        for registry in registries:
            merged.merge(registry)
        return MetricsResponse(
            request_id=request.request_id,
            body=render_openmetrics(merged),
            metric_count=len(merged),
        )

    def _collect_registries(self) -> List[object]:
        out: List[object] = []
        for handle in self.handles.values():
            if not handle.alive or handle.process is None:
                continue
            if not handle.process.is_alive():
                continue
            try:
                handle.conn.send(("metrics",))
                if handle.conn.poll(10.0):
                    tag, registry = handle.conn.recv()
                    if tag == "metrics" and registry is not None:
                        out.append(registry)
            except (OSError, EOFError, BrokenPipeError):
                continue
        return out

    # ------------------------------------------------------------------
    # Maintenance: health probes, eviction, respawn
    # ------------------------------------------------------------------

    async def _maintenance(self) -> None:
        """Periodic sweep: probe live workers (breaker-accounted), evict
        dead ones, respawn when configured.  Runs until cancelled by
        ``stop``."""
        loop = asyncio.get_running_loop()
        probe_seq = 0
        while True:
            await asyncio.sleep(self.settings.health_interval_s)
            for handle in list(self.handles.values()):
                process_dead = (
                    handle.process is None or not handle.process.is_alive()
                )
                if (not handle.alive or process_dead) and self.settings.respawn:
                    try:
                        await self._respawn(handle, loop)
                    except Exception:  # noqa: BLE001 - keep sweeping
                        handle.breaker.record_failure(self._clock())
                    continue
                if not handle.alive:
                    continue
                probe_seq += 1
                try:
                    await self._send(
                        handle, HealthRequest(f"maint-{probe_seq}")
                    )
                except WorkerTransportError:
                    handle.breaker.record_failure(self._clock())
                else:
                    handle.breaker.record_success(self._clock())

    async def _respawn(self, handle: WorkerHandle, loop) -> None:
        """Replace a dead worker in place: same worker id, same arena,
        fresh process -- the hash ring is untouched, so routing for every
        other shard stays stable."""
        self.stats.respawns += 1
        if OBS.enabled:
            OBS.metrics.counter("router.respawns").inc()
        if handle.read_task is not None:
            handle.read_task.cancel()
            try:
                await handle.read_task
            except asyncio.CancelledError:  # pragma: no cover
                pass
        if handle.writer is not None:
            handle.writer.close()
        if handle.process is not None and handle.process.is_alive():
            handle.process.terminate()
            await loop.run_in_executor(None, handle.process.join, 5.0)
        try:
            handle.conn.close()
        except OSError:  # pragma: no cover
            pass
        handle.process, handle.conn = spawn_worker(handle.spec)
        await self._connect(handle, loop)
        handle.breaker.record_success(self._clock())

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def queue_depths(self) -> Dict[int, int]:
        """Live outstanding-request depth per worker (the router-side
        queue-depth view the sharded bench reports)."""
        return {
            worker_id: handle.outstanding
            for worker_id, handle in self.handles.items()
        }

    async def serve_script(self, requests: List[Request]) -> List[Response]:
        """Start, serve ``requests`` concurrently, stop -- mirrors
        ``PredictionServer.serve_script`` for the CLI and tests."""
        await self.start()
        try:
            return list(
                await asyncio.gather(*(self.submit(r) for r in requests))
            )
        finally:
            await self.stop()
