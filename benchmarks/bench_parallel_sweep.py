"""Microbenchmark: parallel sweep execution vs the serial reference.

Runs the Section 8 training sweep on a 16-candidate grid (4 window sizes
x 4 confidence thresholds) with the serial backend and with a 4-worker
process pool, verifies the reports are identical, and reports the
wall-clock speedup.

The speedup assertion is gated on the parallelism the host actually
exposes: a CPU-quota'd container pinned to one core cannot go faster
than serial no matter how many workers it forks (it only pays the pool
overhead), so there the bench asserts the overhead stays bounded and the
output stays byte-identical instead.  On a >= 4-core host it asserts the
>= 2x speedup the near-linear fan-out is expected to deliver.

Run directly for a human-readable report::

    PYTHONPATH=src python benchmarks/bench_parallel_sweep.py

or through pytest (pytest-benchmark picks it up like the fig benches)::

    PYTHONPATH=src python -m pytest benchmarks/bench_parallel_sweep.py -q
"""

from __future__ import annotations

import os
import time

from repro.config import ProRPConfig
from repro.simulation.region import SimulationSettings
from repro.training import ParameterGrid, TrainingPipeline
from repro.types import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.workload.regions import RegionPreset, generate_region_traces

DAY = SECONDS_PER_DAY
HOUR = SECONDS_PER_HOUR

#: The 16-candidate grid: 4 values on each of the two production knobs.
GRID = ParameterGrid(
    {
        "window_s": [2 * HOUR, 4 * HOUR, 6 * HOUR, 8 * HOUR],
        "confidence": [0.1, 0.2, 0.3, 0.4],
    }
)
N_DATABASES = 100
WORKERS = 4


def _available_parallelism() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _pipeline() -> TrainingPipeline:
    traces = generate_region_traces(
        RegionPreset.EU1, N_DATABASES, span_days=31, seed=0
    )
    settings = SimulationSettings(eval_start=29 * DAY, eval_end=30 * DAY)
    return TrainingPipeline(traces, settings)


def run_bench() -> dict:
    pipeline = _pipeline()
    base = ProRPConfig()

    start = time.perf_counter()
    serial_report = pipeline.run(base, GRID)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel_report = pipeline.run(base, GRID, workers=WORKERS)
    parallel_s = time.perf_counter() - start

    return {
        "candidates": len(serial_report.candidates),
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s if parallel_s > 0 else 0.0,
        "identical": serial_report == parallel_report,
        "cores": _available_parallelism(),
    }


def _check(result: dict) -> None:
    assert result["candidates"] == 16
    assert result["identical"], "parallel sweep diverged from serial reference"
    if result["cores"] >= WORKERS:
        assert result["speedup"] >= 2.0, (
            f"expected >= 2x speedup at {WORKERS} workers on "
            f"{result['cores']} cores, got {result['speedup']:.2f}x"
        )
    else:
        # A host without spare cores cannot outrun serial; just bound the
        # pool overhead so the fan-out never becomes a pessimisation.
        assert result["parallel_s"] <= 2.5 * result["serial_s"], (
            f"pool overhead blew up: serial {result['serial_s']:.2f}s vs "
            f"parallel {result['parallel_s']:.2f}s on {result['cores']} core(s)"
        )


def bench_parallel_sweep(record_table) -> None:
    result = run_bench()
    lines = [
        "Parallel sweep: 16-candidate grid, serial vs "
        f"{WORKERS} workers on {result['cores']} core(s)",
        f"  serial:   {result['serial_s']:.2f}s",
        f"  parallel: {result['parallel_s']:.2f}s",
        f"  speedup:  {result['speedup']:.2f}x",
        f"  identical reports: {result['identical']}",
    ]
    record_table("parallel_sweep", "\n".join(lines))
    _check(result)


def main() -> int:
    result = run_bench()
    print(
        f"16-candidate grid, {N_DATABASES} databases, "
        f"{result['cores']} core(s) available"
    )
    print(f"serial:   {result['serial_s']:.2f}s")
    print(f"parallel: {result['parallel_s']:.2f}s  ({WORKERS} workers)")
    print(f"speedup:  {result['speedup']:.2f}x")
    print(f"identical reports: {result['identical']}")
    _check(result)
    print("ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
