"""Vectorised implementation of Algorithm 4.

Semantically identical to :func:`repro.core.predictor.predict_next_activity`
(the test suite proves equivalence property-based), but evaluates every
(candidate window x previous period) range query as one pair of
``numpy.searchsorted`` calls over the sorted login-timestamp array instead
of p/s * h B-tree range scans.  Fleet-scale simulations run this version;
the overhead experiment (Figure 10(c)) times the reference version, which
matches the paper's in-engine stored procedure.

:meth:`FastPredictor.predict_fleet` goes one step further for fleet-wide
sweeps (the region's settle-phase seeding, the hot-path benchmark): it
concatenates every candidate database's sorted login array into one
buffer + offsets and evaluates the whole (database x window x period)
grid with a **single** pair of ``numpy.searchsorted`` calls.  The search
is inverted relative to the single-database path: rather than searching
D x W x P window boundaries in the (large) concatenated login array, it
searches the concatenated logins in the W x P sorted grid of window
boundaries -- the grid is a few thousand elements and stays cache-
resident, so the pair of searches costs O(N log WP) with tiny constants.
A per-database +1/-1 scatter and one running sum turn the entry/exit
positions into the exact per-lane coverage bitmap ("any login in this
window?") the probabilities need; the ``left``/``right`` cursors of the
direct formulation are then materialised only for the handful of lanes
the selection walk actually visits.  Per-database tie-breaking reuses
the exact selection loop of the single-database path, so results are
byte-identical to D independent :meth:`FastPredictor.predict` calls
(the equivalence suite proves it).
"""

from __future__ import annotations

import time as _time
from functools import lru_cache
from typing import List, Optional, Sequence

import numpy as np

from repro.config import ProRPConfig
from repro.core.prediction_cache import HOT_PATH
from repro.observability.metrics import LATENCY_BUCKETS_MS, SIZE_BUCKETS
from repro.observability.runtime import OBS
from repro.types import PredictedActivity


class FastPredictor:
    """Precomputes the window/period offset grid for one configuration."""

    def __init__(self, config: ProRPConfig):
        self.config = config
        n_windows = config.windows_per_horizon
        period = config.seasonality.period_seconds
        periods = config.seasonality_periods_in_history
        self._n_windows = n_windows
        self._periods = periods
        # Offsets of each candidate window start relative to `now`.
        window_offsets = np.arange(n_windows, dtype=np.int64) * config.slide_s
        # Look-back shifts for each previous period.
        period_shifts = np.arange(1, periods + 1, dtype=np.int64) * period
        # Grid of past-window starts relative to `now`: shape (W, P).
        self._past_start_offsets = window_offsets[:, None] - period_shifts[None, :]
        # The fleet path searches logins in the sorted grid; the ordering
        # of the offsets is independent of `now`, so sort once.  `_grid_
        # rank[i]` is the sorted position of flattened lane i.
        flat_offsets = self._past_start_offsets.ravel()
        order = np.argsort(flat_offsets, kind="stable")
        self._grid_sorted_offsets = flat_offsets[order]
        self._grid_rank = np.empty_like(order)
        self._grid_rank[order] = np.arange(order.size)

    def predict(self, logins: Sequence[int], now: int) -> PredictedActivity:
        """Run the prediction against a sorted array of login timestamps."""
        if not OBS.enabled:
            return self._predict(logins, now)
        started = _time.perf_counter()
        with OBS.tracer.span("predictor.fast", t=now):
            prediction = self._predict(logins, now)
        elapsed_ms = (_time.perf_counter() - started) * 1000.0
        OBS.metrics.histogram(
            "predictor.fast.latency_ms", buckets=LATENCY_BUCKETS_MS
        ).observe(elapsed_ms)
        OBS.metrics.counter("predictor.fast.calls").inc()
        return prediction

    def _predict(self, logins: Sequence[int], now: int) -> PredictedActivity:
        config = self.config
        if self._n_windows == 0:
            return PredictedActivity.none()
        logins_arr = np.asarray(logins, dtype=np.int64)
        if logins_arr.size == 0:
            return PredictedActivity.none()
        HOT_PATH.full_scans += 1
        past_starts = now + self._past_start_offsets  # (W, P)
        flat_starts = past_starts.ravel()
        left = np.searchsorted(logins_arr, flat_starts, side="left")
        right = np.searchsorted(
            logins_arr, flat_starts + config.window_s, side="right"
        )
        has_activity = (right > left).reshape(past_starts.shape)  # (W, P)
        counts = has_activity.sum(axis=1)
        probabilities = counts / self._periods

        # First-login offset per (window, period); window_s when absent so a
        # min-reduction reproduces the @firstLoginPerWin = @w initialisation.
        first_idx = np.minimum(left, logins_arr.size - 1)
        first_offsets = np.where(
            has_activity.ravel(),
            logins_arr[first_idx] - flat_starts,
            config.window_s,
        ).reshape(past_starts.shape)
        last_idx = np.maximum(right - 1, 0)
        last_offsets = np.where(
            has_activity.ravel(),
            logins_arr[last_idx] - flat_starts,
            0,
        ).reshape(past_starts.shape)
        first_per_window = first_offsets.min(axis=1)
        last_per_window = last_offsets.max(axis=1)
        return self._select(now, probabilities, first_per_window, last_per_window)

    def _select(
        self,
        now: int,
        probabilities: np.ndarray,
        first_per_window: np.ndarray,
        last_per_window: np.ndarray,
    ) -> PredictedActivity:
        """Window selection with the same tie-breaking as the reference
        scan; shared by the single-database and fleet paths."""
        config = self.config
        best: Optional[PredictedActivity] = None
        previous_probability = 0.0
        for w in range(self._n_windows):
            probability = float(probabilities[w])
            if probability >= config.confidence and (
                best is None or probability > previous_probability
            ):
                window_start = now + w * config.slide_s
                best = PredictedActivity(
                    start=int(window_start + first_per_window[w]),
                    end=int(window_start + last_per_window[w]),
                    confidence=probability,
                )
                previous_probability = probability
            elif best is not None:
                break
        return best if best is not None else PredictedActivity.none()

    # ------------------------------------------------------------------
    # Batched fleet prediction
    # ------------------------------------------------------------------

    def predict_fleet(
        self, fleet_logins: Sequence[Sequence[int]], now: int
    ) -> List[PredictedActivity]:
        """Predict every database of a fleet at one instant in one pass.

        ``fleet_logins`` holds each candidate database's sorted login
        timestamps.  Returns one :class:`PredictedActivity` per entry,
        byte-identical to calling :meth:`predict` per database, but the
        whole (database x window x period) grid is answered by a single
        pair of ``searchsorted`` calls over one concatenated array.
        """
        if not OBS.enabled:
            return self._predict_fleet(fleet_logins, now)
        started = _time.perf_counter()
        with OBS.tracer.span("predictor.batch", t=now, size=len(fleet_logins)):
            predictions = self._predict_fleet(fleet_logins, now)
        elapsed_ms = (_time.perf_counter() - started) * 1000.0
        OBS.metrics.histogram(
            "predictor.batch.latency_ms", buckets=LATENCY_BUCKETS_MS
        ).observe(elapsed_ms)
        OBS.metrics.histogram(
            "predictor.batch.size", buckets=SIZE_BUCKETS
        ).observe(len(fleet_logins))
        return predictions

    def _predict_fleet(
        self, fleet_logins: Sequence[Sequence[int]], now: int
    ) -> List[PredictedActivity]:
        config = self.config
        results: List[Optional[PredictedActivity]] = [None] * len(fleet_logins)
        arrays: List[np.ndarray] = []
        members: List[int] = []  # original index of each non-empty database
        for i, logins in enumerate(fleet_logins):
            arr = np.asarray(logins, dtype=np.int64)
            if arr.size == 0 or self._n_windows == 0:
                results[i] = PredictedActivity.none()
            else:
                arrays.append(arr)
                members.append(i)
        HOT_PATH.batch_evals += 1
        HOT_PATH.batch_databases += len(fleet_logins)
        if not arrays:
            return results  # type: ignore[return-value]
        d = len(arrays)
        n_lanes = self._n_windows * self._periods  # G: grid lanes per db
        sizes = np.array([a.size for a in arrays], dtype=np.int64)
        offsets = np.zeros(d + 1, dtype=np.int64)
        np.cumsum(sizes, out=offsets[1:])
        concat = np.concatenate(arrays)
        sorted_grid = now + self._grid_sorted_offsets  # (G,) ascending

        # Inverted range query: the direct path computes, per grid lane q,
        #   left(q)  = #logins <  q           (searchsorted side="left")
        #   right(q) = #logins <= q + window  (searchsorted side="right")
        # and only ever consumes right - left > 0 ("any login in
        # [q, q + window]") for the probabilities.  A login t covers
        # exactly the sorted grid positions in [searchsorted(grid,
        # t - window, "left"), searchsorted(grid, t, "right")), so a
        # per-database +1/-1 scatter at those entry/exit positions plus
        # one running sum yields the coverage count of every lane -- one
        # search per login instead of one per lane, with the tiny sorted
        # grid as the haystack.
        cover_lo = np.searchsorted(
            sorted_grid, concat - config.window_s, side="left"
        )
        cover_hi = np.searchsorted(sorted_grid, concat, side="right")
        db_base = np.repeat(np.arange(d, dtype=np.int64) * (n_lanes + 1), sizes)
        coverage = np.bincount(
            db_base + cover_lo, minlength=d * (n_lanes + 1)
        ) - np.bincount(db_base + cover_hi, minlength=d * (n_lanes + 1))
        coverage = coverage.reshape(d, n_lanes + 1)
        np.cumsum(coverage, axis=1, out=coverage)
        # Back to the flattened (window, period) lane order as a boolean
        # bitmap (the permute moves one byte per lane, not an int64
        # cursor); the overflow column is dropped by the permutation.
        has_lane = (coverage > 0)[:, self._grid_rank]

        grid_shape = (d, self._n_windows, self._periods)
        has_activity = has_lane.reshape(grid_shape)
        counts = has_activity.sum(axis=2)  # (D, W)
        probabilities = counts / self._periods

        # The selection loop reads first/last offsets only for the short
        # run of windows it actually visits (first qualifying window,
        # then while the probability strictly improves) -- the run is
        # computable from the probabilities alone, so walk it first and
        # gather first/last values for just those (database, window)
        # lanes instead of all D x W x P.
        prob_rows = probabilities.tolist()
        qualifies = probabilities >= config.confidence
        any_qualifies = qualifies.any(axis=1)
        first_window = np.argmax(qualifies, axis=1)  # valid where any_qualifies
        need_rows: List[int] = []
        need_windows: List[int] = []
        for row in range(d):
            if not any_qualifies[row]:
                continue
            probs = prob_rows[row]
            selecting = False
            previous_probability = 0.0
            # Windows before the first qualifying one are no-ops in the
            # selection loop; start the walk there.
            for w in range(int(first_window[row]), self._n_windows):
                probability = probs[w]
                if probability >= config.confidence and (
                    not selecting or probability > previous_probability
                ):
                    need_rows.append(row)
                    need_windows.append(w)
                    selecting = True
                    previous_probability = probability
                elif selecting:
                    break

        first_values: np.ndarray
        last_values: np.ndarray
        if need_rows:
            rows_arr = np.asarray(need_rows, dtype=np.int64)
            wins_arr = np.asarray(need_windows, dtype=np.int64)
            flat_grid = now + self._past_start_offsets.ravel()  # (G,)
            lanes = wins_arr[:, None] * self._periods + np.arange(
                self._periods, dtype=np.int64
            )  # (K, P)
            has_sel = has_lane[rows_arr[:, None], lanes]
            # The exact left/right cursors of the direct formulation, but
            # only for the K x P visited lanes: shift each database's
            # logins (and each visited lane's queries) into a disjoint
            # segment of the int64 line, so one searchsorted over the
            # concatenated array answers every per-database search.  The
            # shift must exceed any |query - login| delta; window starts
            # reach back periods * period seconds and logins span the
            # retention window, both far below 2**41.
            seg_shift = np.repeat(
                np.arange(d, dtype=np.int64) << 41, sizes
            )
            shifted = concat + seg_shift
            queries = flat_grid[lanes] + (rows_arr << 41)[:, None]
            seg = offsets[rows_arr][:, None]
            left_sel = np.searchsorted(shifted, queries, side="left") - seg
            right_sel = (
                np.searchsorted(
                    shifted, queries + config.window_s, side="right"
                )
                - seg
            )
            # Same clamping as the single path; clamped lanes are masked
            # by has_sel so only the window_s / 0 fill constants survive.
            first_idx = np.minimum(left_sel, (sizes[rows_arr] - 1)[:, None]) + seg
            first_values = np.where(
                has_sel, concat[first_idx] - flat_grid[lanes], config.window_s
            ).min(axis=1)
            last_idx = np.maximum(right_sel - 1, 0) + seg
            last_values = np.where(
                has_sel, concat[last_idx] - flat_grid[lanes], 0
            ).max(axis=1)
        else:
            first_values = last_values = np.empty(0, dtype=np.int64)

        # Replay the selection walk, consuming the gathered values in the
        # same order they were requested -- identical tie-breaking to
        # :meth:`_select` on the full per-window arrays.
        cursor = 0
        for row, original in enumerate(members):
            if not any_qualifies[row]:
                results[original] = PredictedActivity.none()
                continue
            probs = prob_rows[row]
            best: Optional[PredictedActivity] = None
            previous_probability = 0.0
            for w in range(int(first_window[row]), self._n_windows):
                probability = probs[w]
                if probability >= config.confidence and (
                    best is None or probability > previous_probability
                ):
                    window_start = now + w * config.slide_s
                    best = PredictedActivity(
                        start=int(window_start + first_values[cursor]),
                        end=int(window_start + last_values[cursor]),
                        confidence=probability,
                    )
                    cursor += 1
                    previous_probability = probability
                elif best is not None:
                    break
            results[original] = (
                best if best is not None else PredictedActivity.none()
            )
        return results  # type: ignore[return-value]


@lru_cache(maxsize=32)
def get_fast_predictor(config: ProRPConfig) -> "FastPredictor":
    """Shared FastPredictor instances keyed by configuration.

    The window/period offset grid depends only on the knobs, so one
    instance serves every database with that configuration -- including
    the per-database daily/weekly variants of adaptive seasonality.
    """
    return FastPredictor(config)
