"""Vectorised implementation of Algorithm 4.

Semantically identical to :func:`repro.core.predictor.predict_next_activity`
(the test suite proves equivalence property-based), but evaluates every
(candidate window x previous period) range query as one pair of
``numpy.searchsorted`` calls over the sorted login-timestamp array instead
of p/s * h B-tree range scans.  Fleet-scale simulations run this version;
the overhead experiment (Figure 10(c)) times the reference version, which
matches the paper's in-engine stored procedure.
"""

from __future__ import annotations

import time as _time
from functools import lru_cache
from typing import Optional, Sequence

import numpy as np

from repro.config import ProRPConfig
from repro.observability.metrics import LATENCY_BUCKETS_MS
from repro.observability.runtime import OBS
from repro.types import PredictedActivity


class FastPredictor:
    """Precomputes the window/period offset grid for one configuration."""

    def __init__(self, config: ProRPConfig):
        self.config = config
        n_windows = config.windows_per_horizon
        period = config.seasonality.period_seconds
        periods = config.seasonality_periods_in_history
        self._n_windows = n_windows
        self._periods = periods
        # Offsets of each candidate window start relative to `now`.
        window_offsets = np.arange(n_windows, dtype=np.int64) * config.slide_s
        # Look-back shifts for each previous period.
        period_shifts = np.arange(1, periods + 1, dtype=np.int64) * period
        # Grid of past-window starts relative to `now`: shape (W, P).
        self._past_start_offsets = window_offsets[:, None] - period_shifts[None, :]

    def predict(self, logins: Sequence[int], now: int) -> PredictedActivity:
        """Run the prediction against a sorted array of login timestamps."""
        if not OBS.enabled:
            return self._predict(logins, now)
        started = _time.perf_counter()
        with OBS.tracer.span("predictor.fast", t=now):
            prediction = self._predict(logins, now)
        elapsed_ms = (_time.perf_counter() - started) * 1000.0
        OBS.metrics.histogram(
            "predictor.fast.latency_ms", buckets=LATENCY_BUCKETS_MS
        ).observe(elapsed_ms)
        OBS.metrics.counter("predictor.fast.calls").inc()
        return prediction

    def _predict(self, logins: Sequence[int], now: int) -> PredictedActivity:
        config = self.config
        if self._n_windows == 0:
            return PredictedActivity.none()
        logins_arr = np.asarray(logins, dtype=np.int64)
        if logins_arr.size == 0:
            return PredictedActivity.none()
        past_starts = now + self._past_start_offsets  # (W, P)
        flat_starts = past_starts.ravel()
        left = np.searchsorted(logins_arr, flat_starts, side="left")
        right = np.searchsorted(
            logins_arr, flat_starts + config.window_s, side="right"
        )
        has_activity = (right > left).reshape(past_starts.shape)  # (W, P)
        counts = has_activity.sum(axis=1)
        probabilities = counts / self._periods

        # First-login offset per (window, period); window_s when absent so a
        # min-reduction reproduces the @firstLoginPerWin = @w initialisation.
        first_idx = np.minimum(left, logins_arr.size - 1)
        first_offsets = np.where(
            has_activity.ravel(),
            logins_arr[first_idx] - flat_starts,
            config.window_s,
        ).reshape(past_starts.shape)
        last_idx = np.maximum(right - 1, 0)
        last_offsets = np.where(
            has_activity.ravel(),
            logins_arr[last_idx] - flat_starts,
            0,
        ).reshape(past_starts.shape)
        first_per_window = first_offsets.min(axis=1)
        last_per_window = last_offsets.max(axis=1)

        # Selection with the same tie-breaking as the reference scan.
        best: Optional[PredictedActivity] = None
        previous_probability = 0.0
        for w in range(self._n_windows):
            probability = float(probabilities[w])
            if probability >= config.confidence and (
                best is None or probability > previous_probability
            ):
                window_start = now + w * config.slide_s
                best = PredictedActivity(
                    start=int(window_start + first_per_window[w]),
                    end=int(window_start + last_per_window[w]),
                    confidence=probability,
                )
                previous_probability = probability
            elif best is not None:
                break
        return best if best is not None else PredictedActivity.none()


@lru_cache(maxsize=32)
def get_fast_predictor(config: ProRPConfig) -> "FastPredictor":
    """Shared FastPredictor instances keyed by configuration.

    The window/period offset grid depends only on the knobs, so one
    instance serves every database with that configuration -- including
    the per-database daily/weekly variants of adaptive seasonality.
    """
    return FastPredictor(config)
