"""The per-database history store ``sys.pause_resume_history``.

Implements the stored procedures of the paper over the storage substrate:

* :meth:`HistoryStore.insert_history` -- Algorithm 2 (InsertHistory): insert
  a (time_snapshot, event_type) tuple unless the timestamp already exists.
* :meth:`HistoryStore.delete_old_history` -- Algorithm 3 (DeleteOldHistory):
  trim history older than ``h`` days while keeping the oldest tuple as the
  database's lifespan witness, and report whether the database is "old"
  (existed at least ``h`` days, hence predictable).

The store also exposes the range aggregates Algorithm 4 issues (first/last
login within a window of a previous day) and a sorted login-timestamp view
consumed by the vectorised predictor.

For the prediction hot path the store additionally maintains:

* a **mutation counter** (:attr:`HistoryStore.version`) bumped by every
  insert and every trim deletion, and a **login version**
  (:attr:`HistoryStore.login_version`) bumped only when the set of login
  timestamps changes -- the key the prediction cache invalidates on,
  since Algorithm 4 reads logins only ("only logins invalidate");
* an **amortised growth buffer** over the login timestamps
  (:meth:`HistoryStore.login_array`): in-order logins append in O(1) into
  a preallocated ``numpy`` array, so the vectorised predictor gets a
  ready ``int64`` view instead of converting a Python list per call.
  Out-of-order inserts and trims that actually delete logins mark the
  buffer for a lazy rebuild.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import StorageError
from repro.observability.runtime import OBS
from repro.storage.database import Database
from repro.storage.schema import history_schema
from repro.storage.table import Table
from repro.types import SECONDS_PER_DAY, EventType, HistoryEvent

#: Bytes per history tuple: two 64-bit integers (Section 9.3).
BYTES_PER_TUPLE = 16


@dataclass(frozen=True)
class DeleteOldHistoryResult:
    """Output of Algorithm 3: the ``@old`` flag plus bookkeeping."""

    #: True if the database existed before the start of recent history,
    #: i.e. accumulated at least ``h`` days of lifespan (Algorithm 3 line 7).
    old: bool
    #: Number of tuples permanently deleted (lines 8-10).
    deleted: int
    #: Minimal timestamp in the history before deletion (lifespan witness).
    min_timestamp: Optional[int]


class HistoryStore:
    """Customer-activity history of a single serverless database."""

    TABLE_NAME = "sys.pause_resume_history"

    def __init__(self, database: Optional[Database] = None):
        if database is None:
            database = Database("tenant")
        self.database = database
        if self.TABLE_NAME in database:
            self._table = database.table(self.TABLE_NAME)
        else:
            self._table = database.create_table(history_schema())
        # Sorted login timestamps (event_type = 1), kept in lockstep with the
        # table so the vectorised predictor avoids a scan per prediction.
        self._logins: List[int] = [
            row["time_snapshot"]
            for row in self._table.scan(lambda r: r["event_type"] == 1)
        ]
        self._version = 0
        self._login_version = 0
        # Amortised growth buffer over ``_logins``: valid prefix of length
        # ``_login_len``; ``_login_dirty`` forces a rebuild from the list
        # after an out-of-order insert or a trim that deleted logins.
        self._login_buf = np.empty(max(16, len(self._logins)), dtype=np.int64)
        self._login_len = len(self._logins)
        self._login_buf[: self._login_len] = self._logins
        self._login_dirty = False

    # ------------------------------------------------------------------
    # Mutation versions (prediction-cache keys)
    # ------------------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonic counter bumped by every insert and trim deletion."""
        return self._version

    @property
    def login_version(self) -> int:
        """Counter bumped only when the login set changes.

        Algorithm 4 reads logins exclusively, so a prediction memoised
        under a given ``login_version`` stays valid across ACTIVITY_END
        inserts and trims that only dropped non-login tuples.
        """
        return self._login_version

    # ------------------------------------------------------------------
    # Algorithm 2: InsertHistory
    # ------------------------------------------------------------------

    def insert_history(self, time_snapshot: int, event_type: EventType) -> bool:
        """Insert one activity event; returns False when the timestamp is
        already present (the uniqueness guard of Algorithm 2 lines 3-6)."""
        inserted = self._table.insert_if_absent(
            {"time_snapshot": time_snapshot, "event_type": int(event_type)}
        )
        if inserted:
            self._version += 1
            if event_type == EventType.ACTIVITY_START:
                self._login_version += 1
                if not self._logins or time_snapshot >= self._logins[-1]:
                    self._logins.append(time_snapshot)
                    self._append_login_buf(time_snapshot)
                else:
                    bisect.insort(self._logins, time_snapshot)
                    self._login_dirty = True
        if OBS.enabled and inserted:
            OBS.metrics.counter("history.inserts").inc()
        return inserted

    def bulk_load(self, events: Iterable[HistoryEvent]) -> int:
        """Load many events (used to warm-start simulations); returns the
        number actually inserted after the uniqueness guard."""
        inserted = 0
        for event in events:
            if self.insert_history(event.time_snapshot, event.event_type):
                inserted += 1
        return inserted

    # ------------------------------------------------------------------
    # Algorithm 3: DeleteOldHistory
    # ------------------------------------------------------------------

    def delete_old_history(self, history_days: int, now: int) -> DeleteOldHistoryResult:
        """Trim history to the last ``history_days`` days.

        Exactly as Algorithm 3: compute ``historyStart = now - h*24*60*60``;
        if the minimal timestamp predates it the database is old and every
        tuple strictly between the minimal timestamp and ``historyStart`` is
        deleted -- the oldest tuple survives as the lifespan witness.
        """
        if history_days <= 0:
            raise StorageError(f"history_days must be positive, got {history_days}")
        history_start = now - history_days * SECONDS_PER_DAY
        min_timestamp = self._table.min_key()
        if min_timestamp is None:
            return DeleteOldHistoryResult(old=False, deleted=0, min_timestamp=None)
        if min_timestamp >= history_start:
            return DeleteOldHistoryResult(
                old=False, deleted=0, min_timestamp=min_timestamp
            )
        deleted = self._table.delete_key_range(
            min_timestamp, history_start, include_lo=False, include_hi=False
        )
        if deleted:
            self._version += 1
            lo = bisect.bisect_right(self._logins, min_timestamp)
            hi = bisect.bisect_left(self._logins, history_start)
            if hi > lo:
                del self._logins[lo:hi]
                self._login_version += 1
                self._login_dirty = True
        if OBS.enabled:
            OBS.metrics.counter("history.trimmed_tuples").inc(deleted)
        return DeleteOldHistoryResult(
            old=True, deleted=deleted, min_timestamp=min_timestamp
        )

    # ------------------------------------------------------------------
    # Queries used by Algorithm 4 and the overhead experiments
    # ------------------------------------------------------------------

    def first_last_login(
        self, window_start: int, window_end: int
    ) -> Tuple[Optional[int], Optional[int]]:
        """MIN/MAX login timestamp with ``window_start <= t <= window_end``.

        This is the inner range query of Algorithm 4 (lines 19-24), answered
        through the clustered index in O(log n + m).
        """
        first: Optional[int] = None
        last: Optional[int] = None
        rows_scanned = 0
        for row in self._table.key_range(window_start, window_end):
            rows_scanned += 1
            if row["event_type"] != int(EventType.ACTIVITY_START):
                continue
            if first is None:
                first = row["time_snapshot"]
            last = row["time_snapshot"]
        if OBS.enabled:
            OBS.metrics.counter("history.range_queries").inc()
            OBS.metrics.counter("history.rows_scanned").inc(rows_scanned)
        return first, last

    def login_timestamps(self) -> Sequence[int]:
        """All login timestamps in ascending order (vectorised predictor)."""
        return self._logins

    def _append_login_buf(self, time_snapshot: int) -> None:
        """O(1) amortised append of an in-order login into the buffer."""
        if self._login_dirty:
            return
        if self._login_len == len(self._login_buf):
            grown = np.empty(len(self._login_buf) * 2, dtype=np.int64)
            grown[: self._login_len] = self._login_buf[: self._login_len]
            self._login_buf = grown
        self._login_buf[self._login_len] = time_snapshot
        self._login_len += 1

    def login_array(self) -> np.ndarray:
        """Sorted login timestamps as an ``int64`` array view.

        Returns a view into the internal growth buffer -- callers must not
        mutate it and must not hold it across further history mutations.
        Rebuilt lazily from the list only after out-of-order inserts or
        login-deleting trims.
        """
        if self._login_dirty or self._login_len != len(self._logins):
            if len(self._logins) > len(self._login_buf):
                self._login_buf = np.empty(
                    max(16, 2 * len(self._logins)), dtype=np.int64
                )
            self._login_len = len(self._logins)
            self._login_buf[: self._login_len] = self._logins
            self._login_dirty = False
        return self._login_buf[: self._login_len]

    def events_in_range(self, lo: int, hi: int) -> List[HistoryEvent]:
        """All events with ``lo <= time_snapshot <= hi`` in time order."""
        return [
            HistoryEvent(row["time_snapshot"], EventType(row["event_type"]))
            for row in self._table.key_range(lo, hi)
        ]

    def all_events(self) -> List[HistoryEvent]:
        """Every stored event in time order."""
        return [
            HistoryEvent(row["time_snapshot"], EventType(row["event_type"]))
            for row in self._table.scan()
        ]

    # ------------------------------------------------------------------
    # Overhead metrics (Figure 10(a-b))
    # ------------------------------------------------------------------

    @property
    def tuple_count(self) -> int:
        return self._table.row_count

    def size_bytes(self) -> int:
        """History size counting two 64-bit integers per tuple."""
        return self.tuple_count * BYTES_PER_TUPLE

    def min_timestamp(self) -> Optional[int]:
        return self._table.min_key()

    def max_timestamp(self) -> Optional[int]:
        return self._table.max_key()

    @property
    def table(self) -> Table:
        """The underlying table (exposed for the SQL-procedure variants)."""
        return self._table
