"""Cluster-level placement and allocation with move-on-full behaviour."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.cluster.node import Node
from repro.errors import CapacityError
from repro.faults.runtime import FAULTS

#: Fault point consulted once per allocation: the database's home node
#: crashes mid-resume, forcing a failover move to another node (or a slow
#: in-place recovery when the cluster has no room).
NODE_CRASH_FAULT_POINT = "cluster.node.crash"


@dataclass(frozen=True)
class AllocationOutcome:
    """Result of an allocation request: how long the workflow takes and
    whether the database had to be moved to another node first."""

    latency_s: int
    moved: bool
    node_id: str


class Cluster:
    """A set of nodes plus the tenant placement logic.

    Latencies model the "reaction time between demand signal and effective
    change in resource allocation" of Section 2.2: a normal resume takes
    ``resume_latency_s`` (+/- jitter); a resume that must first move the
    database to a node with capacity takes ``move_latency_s`` in addition.
    Pre-warmed (proactive) allocations go through the same machinery -- the
    whole point of pre-warming is paying this latency *before* the customer
    arrives.
    """

    def __init__(
        self,
        n_nodes: int = 8,
        node_capacity: int = 64,
        resume_latency_s: int = 45,
        resume_latency_jitter_s: int = 15,
        move_latency_s: int = 180,
        seed: int = 0,
    ):
        if n_nodes <= 0:
            raise CapacityError("a cluster needs at least one node")
        self.nodes: List[Node] = [
            Node(f"node-{i:03d}", node_capacity) for i in range(n_nodes)
        ]
        self._by_database: Dict[str, Node] = {}
        self._resume_latency_s = resume_latency_s
        self._jitter_s = resume_latency_jitter_s
        self._move_latency_s = move_latency_s
        self._rng = random.Random(seed)
        self.moves = 0

    @property
    def total_capacity(self) -> int:
        return sum(node.capacity for node in self.nodes)

    @property
    def total_allocated(self) -> int:
        return sum(len(node.allocated) for node in self.nodes)

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------

    def place(self, database_id: str, node: Optional[Node] = None) -> Node:
        """Place a database on a node (least-loaded by default)."""
        if database_id in self._by_database:
            raise CapacityError(f"{database_id!r} is already placed")
        if node is None:
            node = min(self.nodes, key=lambda n: len(n.residents))
        node.place(database_id)
        self._by_database[database_id] = node
        return node

    def place_fleet(self, database_ids: Sequence[str]) -> List[str]:
        """Place many databases on an **empty** cluster in one pass.

        Placing sequentially from an empty cluster, :meth:`place` is
        provably round-robin: after ``m`` placements the resident counts
        are balanced with the first ``m % n`` nodes holding one extra, so
        ``min`` (which breaks ties by list order) always picks
        ``nodes[m % n]``.  This method exploits that to skip the
        ``min``-over-nodes scan per database -- O(1) instead of O(n) each,
        which is what makes million-database regions placeable -- while
        producing byte-identical placements.  Returns the node id chosen
        for each database, in input order.
        """
        if self._by_database:
            raise CapacityError(
                "place_fleet requires an empty cluster (its round-robin "
                "shortcut is only equivalent to sequential place() from "
                "an empty state)"
            )
        n = len(self.nodes)
        node_ids: List[str] = []
        for i, database_id in enumerate(database_ids):
            node = self.nodes[i % n]
            node.place(database_id)
            self._by_database[database_id] = node
            node_ids.append(node.node_id)
        return node_ids

    def node_of(self, database_id: str) -> Node:
        try:
            return self._by_database[database_id]
        except KeyError:
            raise CapacityError(f"{database_id!r} is not placed") from None

    # ------------------------------------------------------------------
    # Allocation / release
    # ------------------------------------------------------------------

    def allocate(self, database_id: str) -> AllocationOutcome:
        """Resume compute for a database, moving it if its node is full.

        When the ``cluster.node.crash`` fault fires, the home node dies
        mid-resume: the database fails over to another node (paying the
        crash-detection + move latency), or recovers in place at the
        over-subscription latency when no other node has room.
        """
        node = self.node_of(database_id)
        moved = False
        crashed = FAULTS.enabled and FAULTS.injector.should_fire(
            NODE_CRASH_FAULT_POINT
        )
        if crashed:
            target = self._least_loaded_with_room(exclude=node)
            if target is None:
                # Nowhere to fail over: wait out the node recovery and
                # resume in place at a steep latency.
                node.allocate(database_id, force=True)
                latency = self._base_latency() + 2 * self._move_latency_s
                return AllocationOutcome(latency, moved=False, node_id=node.node_id)
            node.evict(database_id)
            target.place(database_id)
            self._by_database[database_id] = target
            target.allocate(database_id)
            self.moves += 1
            latency = self._base_latency() + 2 * self._move_latency_s
            return AllocationOutcome(latency, moved=True, node_id=target.node_id)
        if node.free_slots <= 0:
            target = self._least_loaded_with_room()
            if target is None:
                # The whole cluster is at capacity: over-subscribe the home
                # node at a steep latency (queuing behind reclamations).
                node.allocate(database_id, force=True)
                latency = self._base_latency() + 2 * self._move_latency_s
                return AllocationOutcome(latency, moved=False, node_id=node.node_id)
            node.evict(database_id)
            target.place(database_id)
            self._by_database[database_id] = target
            node = target
            moved = True
            self.moves += 1
        node.allocate(database_id)
        latency = self._base_latency() + (self._move_latency_s if moved else 0)
        return AllocationOutcome(latency, moved=moved, node_id=node.node_id)

    def release(self, database_id: str) -> None:
        """Reclaim compute (physical pause)."""
        self.node_of(database_id).release(database_id)

    def is_allocated(self, database_id: str) -> bool:
        node = self._by_database.get(database_id)
        return node is not None and database_id in node.allocated

    def _least_loaded_with_room(self, exclude: Optional[Node] = None) -> Optional[Node]:
        candidates = [
            node
            for node in self.nodes
            if node.free_slots > 0 and node is not exclude
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda n: n.utilization)

    def _base_latency(self) -> int:
        if self._jitter_s <= 0:
            return self._resume_latency_s
        return self._resume_latency_s + self._rng.randint(0, self._jitter_s)
