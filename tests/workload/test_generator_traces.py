"""Tests for fleet generation, region presets, and idle-interval stats."""

import pytest

from repro.errors import TraceError
from repro.types import SECONDS_PER_DAY, SECONDS_PER_HOUR, ActivityTrace, Session
from repro.workload import (
    FleetSpec,
    RegionPreset,
    Sporadic,
    generate_fleet,
    generate_region_traces,
    idle_interval_stats,
    region_spec,
)
from repro.workload.generator import default_spec
from repro.workload.traces import hours

DAY = SECONDS_PER_DAY
HOUR = SECONDS_PER_HOUR


class TestFleetSpec:
    def test_empty_mixture_rejected(self):
        with pytest.raises(TraceError):
            FleetSpec(mixture=())

    def test_zero_weights_rejected(self):
        with pytest.raises(TraceError):
            FleetSpec(mixture=(("x", 0.0, lambda r: Sporadic()),))

    def test_bad_new_fraction_rejected(self):
        with pytest.raises(TraceError):
            FleetSpec(
                mixture=(("x", 1.0, lambda r: Sporadic()),),
                new_database_fraction=1.0,
            )


class TestGenerateFleet:
    def test_sizes_and_ids(self):
        traces = generate_fleet(default_spec(), 50, 10, seed=1)
        assert len(traces) == 50
        assert len({t.database_id for t in traces}) == 50

    def test_deterministic_per_seed(self):
        a = generate_fleet(default_spec(), 20, 10, seed=3)
        b = generate_fleet(default_spec(), 20, 10, seed=3)
        assert [t.sessions for t in a] == [t.sessions for t in b]

    def test_different_seeds_differ(self):
        a = generate_fleet(default_spec(), 20, 10, seed=3)
        b = generate_fleet(default_spec(), 20, 10, seed=4)
        assert [t.sessions for t in a] != [t.sessions for t in b]

    def test_mixture_represented(self):
        traces = generate_fleet(default_spec(), 400, 7, seed=5)
        kinds = {t.database_id.split("-")[1] for t in traces}
        assert {"sporadic", "dormant", "daily"} <= kinds

    def test_new_databases_created_late(self):
        spec = default_spec()
        traces = generate_fleet(spec, 300, 30, seed=6)
        new = [t for t in traces if t.created_at > 0]
        assert new, "expected some new databases at the default 5% fraction"
        for trace in new:
            assert trace.created_at >= 30 * DAY * 2 / 3

    def test_invalid_sizes_rejected(self):
        with pytest.raises(TraceError):
            generate_fleet(default_spec(), 0, 10)
        with pytest.raises(TraceError):
            generate_fleet(default_spec(), 10, 0)


class TestRegionPresets:
    def test_all_regions_have_specs(self):
        for preset in RegionPreset:
            assert region_spec(preset).mixture

    def test_regions_generate_distinct_fleets(self):
        eu = generate_region_traces(RegionPreset.EU1, 30, span_days=10, seed=0)
        us = generate_region_traces(RegionPreset.US1, 30, span_days=10, seed=0)
        assert [t.sessions for t in eu] != [t.sessions for t in us]

    def test_us_business_hours_shifted(self):
        """US daily databases work ~7h later than EU ones (time zones)."""

        def mean_daily_start_hour(preset):
            traces = generate_region_traces(preset, 400, span_days=14, seed=2)
            hours_of_day = [
                (t.sessions[0].start % DAY) / HOUR
                for t in traces
                if "daily" in t.database_id and t.sessions
            ]
            return sum(hours_of_day) / len(hours_of_day)

        eu = mean_daily_start_hour(RegionPreset.EU1)
        us = mean_daily_start_hour(RegionPreset.US1)
        assert us - eu > 4.0


class TestIdleIntervalStats:
    def test_known_trace(self):
        trace = ActivityTrace(
            "t",
            [
                Session(0, HOUR),
                Session(2 * HOUR, 3 * HOUR),  # 1h gap
                Session(3 * HOUR + 600, 4 * HOUR),  # 10 min gap
                Session(2 * DAY, 2 * DAY + HOUR),  # ~44h gap
            ],
        )
        stats = idle_interval_stats([trace])
        assert stats.count == 3
        assert stats.fraction_of_count_below(hours(1)) == pytest.approx(1 / 3)
        # The 10-minute gap is a sliver of total idle time.
        assert stats.fraction_of_duration_below(hours(0.5)) < 0.01

    def test_window_clipping(self):
        trace = ActivityTrace("t", [Session(0, 10), Session(1000, 1010)])
        stats = idle_interval_stats([trace], window_start=500, window_end=800)
        assert stats.durations == (300,)

    def test_empty_fleet(self):
        stats = idle_interval_stats([])
        assert stats.count == 0
        assert stats.fraction_of_count_below(100) == 0.0
        assert stats.fraction_of_duration_below(100) == 0.0

    def test_figure3_shape_on_region_fleet(self):
        """The synthetic fleet reproduces the Figure 3 asymmetry: most idle
        intervals are sub-hour, yet they carry a tiny share of idle time."""
        traces = generate_region_traces(RegionPreset.EU1, 200, span_days=21, seed=9)
        stats = idle_interval_stats(traces)
        count_frac = stats.fraction_of_count_below(hours(1))
        duration_frac = stats.fraction_of_duration_below(hours(1))
        assert count_frac > 0.5
        assert duration_frac < 0.1
        assert count_frac > 10 * duration_frac

    def test_cdf_points_monotonic(self):
        traces = generate_region_traces(RegionPreset.EU2, 50, span_days=14, seed=3)
        stats = idle_interval_stats(traces)
        thresholds = [hours(h) for h in (0.5, 1, 2, 4, 8, 24, 72)]
        points = stats.cdf_points(thresholds)
        for (t1, c1, d1), (t2, c2, d2) in zip(points, points[1:]):
            assert c2 >= c1
            assert d2 >= d1
