"""A tour of the history store through its SQL interface (Section 5).

Runs the paper's stored procedures as actual SQL against the embedded
engine: create ``sys.pause_resume_history``, track a week of activity
(Algorithm 2), trim old history (Algorithm 3), issue Algorithm 4's window
queries, and render the customer-facing materialized view the paper plans
to publish (human-readable timestamps, read-only).

Run:  python examples/sql_history_tour.py
"""

import datetime

from repro.analysis import format_table
from repro.config import ProRPConfig
from repro.core.predictor import predict_next_activity
from repro.sqlengine import SqlHistoryProcedures
from repro.types import EventType, SECONDS_PER_DAY as DAY, SECONDS_PER_HOUR as HOUR


def human(epoch: int) -> str:
    """Epoch seconds -> the human-readable form of the customer view."""
    return datetime.datetime.fromtimestamp(
        epoch, tz=datetime.timezone.utc
    ).strftime("%Y-%m-%d %H:%M:%S")


def main() -> None:
    procs = SqlHistoryProcedures()
    engine = procs.engine

    # --- Algorithm 2: track a week of daily 09:00-17:00 activity ---------
    for day in range(7):
        procs.insert_history(day * DAY + 9 * HOUR, EventType.ACTIVITY_START)
        procs.insert_history(day * DAY + 17 * HOUR, EventType.ACTIVITY_END)
    # A duplicate second is skipped by the IF NOT EXISTS guard:
    duplicate = procs.insert_history(9 * HOUR, EventType.ACTIVITY_START)
    print(f"duplicate insert accepted? {duplicate}  (Algorithm 2 uniqueness)")
    print(f"history tuples: {procs.tuple_count}\n")

    # --- Ad-hoc SQL against the same table ------------------------------
    result = engine.execute(
        "SELECT COUNT(*) AS logins FROM sys.pause_resume_history "
        "WHERE event_type = 1"
    )
    print(f"logins via SQL COUNT: {result.scalar()}")
    result = engine.execute(
        "SELECT MIN(time_snapshot) AS first, MAX(time_snapshot) AS last "
        "FROM sys.pause_resume_history"
    )
    row = result.rows[0]
    print(f"history span: {human(row['first'])} .. {human(row['last'])}\n")

    # --- Algorithm 3: trim to 5 days of recent history ------------------
    outcome = procs.delete_old_history(history_days=5, now=7 * DAY)
    print(
        f"DeleteOldHistory(h=5d): old={outcome.old}, deleted={outcome.deleted} "
        f"(the oldest tuple survives as the lifespan witness)\n"
    )

    # --- Algorithm 4 runs its range queries through the same engine -----
    config = ProRPConfig(history_days=5, confidence=0.2)
    predicted = predict_next_activity(procs, config, now=7 * DAY - 4 * HOUR)
    print(
        "PredictNextActivity: "
        f"start={human(predicted.start)}, end={human(predicted.end)}, "
        f"confidence={predicted.confidence:.2f}\n"
    )

    # --- The customer-facing materialized view (read-only) --------------
    rows = [
        [human(e.time_snapshot),
         "activity start" if e.event_type == EventType.ACTIVITY_START else "activity end"]
        for e in procs.all_events()[:8]
    ]
    print(
        format_table(
            ["time (UTC)", "event"],
            rows,
            title="Customer view over sys.pause_resume_history (first 8 rows)",
        )
    )


if __name__ == "__main__":
    main()
