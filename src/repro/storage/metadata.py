"""The region metadata store ``sys.databases`` (Sections 4 and 7).

Before a database is physically paused, the start of its next predicted
activity is written here (Algorithm 1, line 31).  The proactive resume
operation (Algorithm 5) periodically scans this store for physically paused
databases whose predicted activity starts during the k-th minute from now.
A secondary index on ``start_of_pred_activity`` makes that scan a range
lookup instead of a full scan over the region.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import StorageError
from repro.storage.database import Database
from repro.storage.schema import metadata_schema
from repro.types import NO_PREDICTION_SENTINEL


class DatabaseState(enum.Enum):
    """Lifecycle states of Figure 4 as persisted in ``sys.databases``."""

    RESUMED = "resumed"
    LOGICAL_PAUSE = "logical_pause"
    PHYSICAL_PAUSE = "physical_pause"
    #: Transitional: a reactive resume workflow is in flight.
    RESUMING = "resuming"


@dataclass(frozen=True)
class DatabaseRecord:
    """One row of ``sys.databases``."""

    database_id: str
    state: DatabaseState
    start_of_pred_activity: int
    node_id: Optional[str] = None
    created_at: Optional[int] = None

    @property
    def has_prediction(self) -> bool:
        return self.start_of_pred_activity != NO_PREDICTION_SENTINEL


class MetadataStore:
    """Region-scoped store of per-database state and predictions."""

    TABLE_NAME = "sys.databases"

    def __init__(self, database: Optional[Database] = None):
        if database is None:
            database = Database("control_plane")
        self.database = database
        if self.TABLE_NAME in database:
            self._table = database.table(self.TABLE_NAME)
        else:
            self._table = database.create_table(metadata_schema())
        if "start_of_pred_activity" not in self._table.indexed_columns:
            self._table.create_index("start_of_pred_activity")

    def __len__(self) -> int:
        return self._table.row_count

    # ------------------------------------------------------------------
    # Registration and state transitions
    # ------------------------------------------------------------------

    def register(
        self,
        database_id: str,
        state: DatabaseState = DatabaseState.RESUMED,
        node_id: Optional[str] = None,
        created_at: Optional[int] = None,
    ) -> None:
        """Add a database to the region; raises if already registered."""
        self._table.insert(
            {
                "database_id": database_id,
                "state": state.value,
                "start_of_pred_activity": NO_PREDICTION_SENTINEL,
                "node_id": node_id,
                "created_at": created_at,
            }
        )

    def get(self, database_id: str) -> DatabaseRecord:
        row = self._table.get(database_id)
        if row is None:
            raise StorageError(f"database {database_id!r} is not registered")
        return DatabaseRecord(
            database_id=row["database_id"],
            state=DatabaseState(row["state"]),
            start_of_pred_activity=row["start_of_pred_activity"],
            node_id=row["node_id"],
            created_at=row["created_at"],
        )

    def set_state(self, database_id: str, state: DatabaseState) -> None:
        if not self._table.update_by_key(database_id, {"state": state.value}):
            raise StorageError(f"database {database_id!r} is not registered")

    def record_physical_pause(self, database_id: str, pred_start: int) -> None:
        """Algorithm 1 line 31 (InsertMetadata) + the transition to
        PHYSICAL_PAUSE: persist the start of the next predicted activity."""
        updated = self._table.update_by_key(
            database_id,
            {
                "state": DatabaseState.PHYSICAL_PAUSE.value,
                "start_of_pred_activity": pred_start,
            },
        )
        if not updated:
            raise StorageError(f"database {database_id!r} is not registered")

    def clear_prediction(self, database_id: str) -> None:
        """Reset the stored prediction (on resume)."""
        self._table.update_by_key(
            database_id, {"start_of_pred_activity": NO_PREDICTION_SENTINEL}
        )

    def set_node(self, database_id: str, node_id: Optional[str]) -> None:
        if not self._table.update_by_key(database_id, {"node_id": node_id}):
            raise StorageError(f"database {database_id!r} is not registered")

    # ------------------------------------------------------------------
    # Algorithm 5's scan
    # ------------------------------------------------------------------

    def databases_to_prewarm(self, now: int, prewarm_s: int, period_s: int) -> List[str]:
        """Physically paused databases whose predicted activity starts within
        ``(now + k, now + k + period]`` -- the SELECT of Algorithm 5.

        The scan runs over the secondary index on ``start_of_pred_activity``;
        the no-prediction sentinel (0) never qualifies because ``now + k`` is
        strictly positive for any simulated time point.
        """
        lo = now + prewarm_s
        hi = now + prewarm_s + period_s
        selected: List[str] = []
        for row in self._table.secondary_range("start_of_pred_activity", lo, hi):
            if row["state"] == DatabaseState.PHYSICAL_PAUSE.value:
                selected.append(row["database_id"])
        return selected

    def databases_in_state(self, state: DatabaseState) -> List[str]:
        """All database ids currently in ``state`` (diagnostics runner)."""
        return [
            row["database_id"]
            for row in self._table.scan(lambda r: r["state"] == state.value)
        ]

    def state_counts(self) -> dict:
        """Histogram of lifecycle states over the region."""
        counts = {state: 0 for state in DatabaseState}
        for row in self._table.scan():
            counts[DatabaseState(row["state"])] += 1
        return counts
