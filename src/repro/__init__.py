"""ProRP reproduction: proactive resume and pause for serverless databases.

This package reproduces the system described in "Proactive Resume and Pause
of Resources for Microsoft Azure SQL Database Serverless" (Poppe et al.,
SIGMOD-Companion 2024).  It contains:

* ``repro.storage`` -- a from-scratch storage substrate (B-tree, typed
  tables) hosting the per-database history store ``sys.pause_resume_history``
  and the region metadata store ``sys.databases``.
* ``repro.sqlengine`` -- a minimal SQL engine so the paper's stored
  procedures (Algorithms 2-4) can run as actual parameterized SQL.
* ``repro.core`` -- the paper's contribution: the probabilistic
  next-activity predictor (Algorithm 4), the proactive policy (Algorithm 1),
  the proactive resume operation (Algorithm 5), and the KPI metrics.
* ``repro.simulation`` / ``repro.cluster`` -- a discrete-event simulator of
  a region of serverless databases on capacity-constrained nodes.
* ``repro.workload`` -- synthetic customer-activity generators standing in
  for Azure production telemetry.
* ``repro.telemetry`` / ``repro.training`` -- long-term KPI telemetry and
  the offline knob-tuning pipeline.
* ``repro.experiments`` -- drivers regenerating every evaluation figure.

Quickstart::

    from repro import ProRPConfig, simulate_region
    from repro.workload import RegionPreset, generate_region_traces

    traces = generate_region_traces(RegionPreset.EU1, n_databases=200, seed=7)
    result = simulate_region(traces, policy="proactive", config=ProRPConfig())
    print(result.kpis().qos_percent)
"""

from repro.config import ProRPConfig, Seasonality
from repro.errors import (
    ConfigError,
    DuplicateKeyError,
    ProRPError,
    SchemaError,
    SimulationError,
    SqlError,
    StorageError,
    WorkflowError,
)
from repro.types import (
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
    SECONDS_PER_MINUTE,
    EventType,
    HistoryEvent,
    PredictedActivity,
    Session,
)

__version__ = "1.0.0"

# Heavier subsystems (simulator, NumPy-backed predictor) are exposed lazily
# (PEP 562) so that `import repro` stays cheap for storage-only users.
_LAZY_EXPORTS = {
    "KpiReport": ("repro.core.kpi", "KpiReport"),
    "PolicyKind": ("repro.core.policy", "PolicyKind"),
    "simulate_region": ("repro.simulation.region", "simulate_region"),
    "region_digest": ("repro.report", "region_digest"),
}


def __getattr__(name):
    try:
        module_name, attr = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)

__all__ = [
    "ProRPConfig",
    "Seasonality",
    "EventType",
    "HistoryEvent",
    "PredictedActivity",
    "Session",
    "SECONDS_PER_DAY",
    "SECONDS_PER_HOUR",
    "SECONDS_PER_MINUTE",
    "ProRPError",
    "ConfigError",
    "StorageError",
    "DuplicateKeyError",
    "SchemaError",
    "SqlError",
    "SimulationError",
    "WorkflowError",
    "KpiReport",
    "PolicyKind",
    "simulate_region",
    "region_digest",
    "__version__",
]
