"""Micro-benchmarks for the fault-injection subsystem.

Two guarantees are bounded here and committed as a baseline in
``benchmarks/results/BENCH_faults.json``:

* **Disabled overhead**: with ``FAULTS`` disarmed (the repo-wide default),
  every fault point costs one guard check (global load, attribute load,
  branch).  The number of guard evaluations a fleet simulation performs is
  counted by arming a probability-0 plan over every fault point (each
  consultation is ledgered but nothing fires), the per-guard cost is
  measured with a tight loop, and the product must stay under 2% of the
  disarmed simulation's runtime.
* **Armed-empty identity**: arming the injector with an *empty* plan must
  leave the simulation byte-identical to a disarmed run -- points absent
  from a plan consume no randomness and alter no behaviour.
"""

import json
import time

from repro.config import DEFAULT_CONFIG
from repro.core.policy import PolicyKind
from repro.core.predictor import LATENCY_FAULT_POINT
from repro.controlplane.durability import (
    CORRUPT_FAULT_POINT as WAL_CORRUPT_FAULT_POINT,
    CRASH_FAULT_POINT as WAL_CRASH_FAULT_POINT,
    TORN_FAULT_POINT as WAL_TORN_FAULT_POINT,
)
from repro.core.resume_service import SCAN_FAULT_POINT
from repro.experiments.common import TEST_SCALE, region_fleet
from repro.faults import FAULTS, FaultInjector, FaultPlan, FaultSpec, chaos
from repro.simulation.actor import PREDICTOR_FAULT_POINT
from repro.simulation.region import simulate_region
from repro.sqlengine.engine import EXECUTE_FAULT_POINT
from repro.storage.durability import CORRUPT_FAULT_POINT, RESTORE_FAULT_POINT
from repro.workload.regions import RegionPreset

#: Every fault point the codebase consults (docs/resilience.md catalog).
ALL_FAULT_POINTS = (
    "workflow.stuck",
    "workflow.crash",
    SCAN_FAULT_POINT,
    PREDICTOR_FAULT_POINT,
    LATENCY_FAULT_POINT,
    CORRUPT_FAULT_POINT,
    RESTORE_FAULT_POINT,
    EXECUTE_FAULT_POINT,
    "cluster.node.crash",
    # The controlplane.wal.* family is consulted by WriteAheadLog.append,
    # not by a fleet simulation -- listed here so the catalog stays the
    # docs/resilience.md superset (zero consults expected below).
    WAL_CRASH_FAULT_POINT,
    WAL_TORN_FAULT_POINT,
    WAL_CORRUPT_FAULT_POINT,
)


def _guard_cost_s(reps: int = 1_000_000) -> float:
    """Per-evaluation cost of the disarmed guard (``if FAULTS.enabled``),
    measured as the delta between a guarded loop and an empty loop."""
    assert not FAULTS.enabled
    hits = 0
    start = time.perf_counter()
    for _ in range(reps):
        if FAULTS.enabled:
            hits += 1  # pragma: no cover - faults are off
    guarded = time.perf_counter() - start
    assert hits == 0
    start = time.perf_counter()
    for _ in range(reps):
        pass
    empty = time.perf_counter() - start
    return max(0.0, guarded - empty) / reps


def _simulate(traces):
    return simulate_region(
        traces, PolicyKind.PROACTIVE, DEFAULT_CONFIG, TEST_SCALE.settings()
    ).kpis()


def bench_injector_should_fire(benchmark):
    """The armed hot path: one consultation of a planned point."""
    injector = FaultInjector(
        FaultPlan.of(FaultSpec("sql.execute", probability=0.5)), seed=1
    )
    benchmark(injector.should_fire, "sql.execute", 1000)
    assert injector.total_consults() > 0


def bench_injector_unplanned_point(benchmark):
    """Consulting a point absent from the plan: one dict miss, no RNG."""
    injector = FaultInjector(FaultPlan.of(FaultSpec("sql.execute")), seed=1)
    benchmark(injector.should_fire, "cluster.node.crash", 1000)
    assert injector.total_fires() == 0


def bench_faults_disabled_overhead(results_dir):
    """Disarmed fault points must cost <2% of a fleet simulation.

    Also asserts the armed-empty identity: an armed injector with an empty
    plan produces KPIs byte-identical to the disarmed run.
    """
    traces = region_fleet(RegionPreset.EU1, TEST_SCALE)
    _simulate(traces)  # warm the trace/predictor caches

    assert not FAULTS.enabled  # the repo-wide default
    start = time.perf_counter()
    disabled_kpis = _simulate(traces)
    disabled_s = time.perf_counter() - start

    with chaos(FaultPlan.empty(), seed=TEST_SCALE.seed) as injector:
        armed_empty_kpis = _simulate(traces)
        assert injector.total_fires() == 0
    armed_empty_identical = armed_empty_kpis.to_dict() == disabled_kpis.to_dict()
    assert armed_empty_identical, "armed-empty run diverged from disarmed run"

    # Count the guard evaluations a simulation performs: a probability-0
    # plan over every point ledgers each consultation and fires nothing.
    zero_plan = FaultPlan.uniform(ALL_FAULT_POINTS, probability=0.0)
    with chaos(zero_plan, seed=TEST_SCALE.seed) as injector:
        zero_kpis = _simulate(traces)
        guard_evals = injector.total_consults()
        consults = dict(injector.consults)
        assert injector.total_fires() == 0
    assert zero_kpis.to_dict() == disabled_kpis.to_dict()

    guard_s = _guard_cost_s()
    overhead_fraction = guard_evals * guard_s / disabled_s
    baseline = {
        "fleet": {
            "n_databases": TEST_SCALE.n_databases,
            "eval_days": TEST_SCALE.eval_days,
        },
        "disabled_sim_s": round(disabled_s, 4),
        "guard_evals_per_sim": guard_evals,
        "guard_evals_by_point": consults,
        "guard_cost_ns": round(guard_s * 1e9, 3),
        "disabled_overhead_fraction": round(overhead_fraction, 8),
        "armed_empty_identical": armed_empty_identical,
    }
    path = results_dir / "BENCH_faults.json"
    path.write_text(json.dumps(baseline, indent=2) + "\n", encoding="utf-8")
    print()
    print(json.dumps(baseline, indent=2))
    assert overhead_fraction < 0.02, (
        f"disarmed fault points cost {overhead_fraction:.2%} of a fleet "
        f"simulation (limit 2%)"
    )
