"""The offline training pipeline (Section 8): the Azure ML substitute.

One run per region per month: vary the activity-prediction parameters
(window size, confidence threshold, history length, seasonality), evaluate
the KPI metrics for each candidate, and select the configuration with the
best middle ground between quality of service and operational cost
efficiency.  The parameter sweeps double as the drivers of Figures 8-9.
"""

from repro.training.objective import (
    Objective,
    qos_priority_objective,
    weighted_objective,
)
from repro.training.pipeline import (
    CandidateResult,
    ParameterGrid,
    TrainingPipeline,
    TrainingReport,
)

__all__ = [
    "Objective",
    "qos_priority_objective",
    "weighted_objective",
    "ParameterGrid",
    "TrainingPipeline",
    "TrainingReport",
    "CandidateResult",
]
