"""Property-based SQL engine tests against a Python-filter oracle.

Random conjunctive/disjunctive predicates over a random table must return
exactly the rows a straightforward Python evaluation returns -- regardless
of whether the planner chose a clustered scan, a secondary scan, or a full
scan.  This pins the planner's bound extraction (including the residual
re-check paths) to the semantics.
"""

from hypothesis import given, settings, strategies as st

from repro.sqlengine.engine import SqlEngine
from repro.storage.database import Database


def build_engine(rows):
    database = Database("fuzz")
    engine = SqlEngine(database)
    engine.execute(
        "CREATE TABLE t (id BIGINT PRIMARY KEY, a BIGINT NOT NULL, b BIGINT NOT NULL)"
    )
    engine.execute("CREATE INDEX ON t (a)")
    for i, (a, b) in enumerate(rows):
        engine.execute(
            "INSERT INTO t (id, a, b) VALUES (@i, @a, @b)",
            {"i": i, "a": a, "b": b},
        )
    return engine


@st.composite
def comparison(draw):
    column = draw(st.sampled_from(["id", "a", "b"]))
    op = draw(st.sampled_from(["=", "<>", "<", "<=", ">", ">="]))
    value = draw(st.integers(min_value=-5, max_value=25))
    flipped = draw(st.booleans())
    if flipped:
        mirror = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "<>": "<>"}
        return f"{value} {mirror[op]} {column}", (column, op, value)
    return f"{column} {op} {value}", (column, op, value)


def apply_comparison(row, spec):
    column, op, value = spec
    lhs = row[column]
    return {
        "=": lhs == value,
        "<>": lhs != value,
        "<": lhs < value,
        "<=": lhs <= value,
        ">": lhs > value,
        ">=": lhs >= value,
    }[op]


@st.composite
def predicate(draw):
    n = draw(st.integers(min_value=1, max_value=4))
    parts = [draw(comparison()) for _ in range(n)]
    connectors = [draw(st.sampled_from(["AND", "OR"])) for _ in range(n - 1)]
    sql = parts[0][0]
    for connector, part in zip(connectors, parts[1:]):
        sql = f"{sql} {connector} {part[0]}"

    def oracle(row):
        # Left-associative AND/OR with Python's precedence differences do
        # not arise: SQL gives AND higher precedence, so fold accordingly.
        values = [apply_comparison(row, part[1]) for part in parts]
        # Fold ANDs first.
        folded = [values[0]]
        for connector, value in zip(connectors, values[1:]):
            if connector == "AND":
                folded[-1] = folded[-1] and value
            else:
                folded.append(value)
        return any(folded)

    return sql, oracle


@settings(max_examples=120, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=20),
            st.integers(min_value=0, max_value=20),
        ),
        min_size=0,
        max_size=25,
    ),
    predicate(),
)
def test_where_matches_python_oracle(rows, case):
    sql_predicate, oracle = case
    engine = build_engine(rows)
    got = engine.execute(f"SELECT id FROM t WHERE {sql_predicate}").rows
    expected = [
        i for i, (a, b) in enumerate(rows) if oracle({"id": i, "a": a, "b": b})
    ]
    # No ORDER BY: row order depends on the chosen access path.
    assert sorted(r["id"] for r in got) == expected


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=20),
            st.integers(min_value=0, max_value=20),
        ),
        min_size=0,
        max_size=25,
    ),
    st.integers(min_value=-2, max_value=22),
    st.integers(min_value=-2, max_value=22),
)
def test_between_matches_oracle(rows, lo, hi):
    engine = build_engine(rows)
    got = engine.execute(
        "SELECT id FROM t WHERE a BETWEEN @lo AND @hi", {"lo": lo, "hi": hi}
    ).rows
    expected = [i for i, (a, _) in enumerate(rows) if lo <= a <= hi]
    assert sorted(r["id"] for r in got) == expected


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=20),
            st.integers(min_value=0, max_value=20),
        ),
        min_size=0,
        max_size=25,
    ),
    st.integers(min_value=-2, max_value=22),
)
def test_delete_matches_oracle(rows, cutoff):
    engine = build_engine(rows)
    deleted = engine.execute("DELETE FROM t WHERE b < @c", {"c": cutoff}).rowcount
    expected_deleted = sum(1 for _, b in rows if b < cutoff)
    assert deleted == expected_deleted
    remaining = engine.execute("SELECT COUNT(*) AS n FROM t").scalar()
    assert remaining == len(rows) - expected_deleted
