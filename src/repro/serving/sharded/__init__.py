"""Shared-nothing sharded serving tier.

A thin asyncio router process consistent-hashes registered databases by
region onto N worker processes, each running the existing admission ->
micro-batcher -> ``FastPredictor.predict_fleet`` pipeline.  Fleet login
history lives in a zero-copy shared-memory arena
(:mod:`repro.serving.sharded.arena`) the router owns and every worker
maps read-only, so the hot path never serialises login arrays.

``docs/serving.md`` has the full architecture; ``serve --shards N``
wires it up (N=1 falls back to the in-process gateway).
"""

from repro.serving.sharded.arena import ArenaSpec, SharedHistoryArena
from repro.serving.sharded.hashring import HashRing
from repro.serving.sharded.router import RouterSettings, ShardRouter
from repro.serving.sharded.worker import WorkerSpec

__all__ = [
    "ArenaSpec",
    "SharedHistoryArena",
    "HashRing",
    "RouterSettings",
    "ShardRouter",
    "WorkerSpec",
]
