"""One physical node hosting serverless databases."""

from __future__ import annotations

from typing import Set

from repro.errors import CapacityError


class Node:
    """A node with a fixed number of resume slots.

    ``residents`` are databases placed on the node (their files live here);
    ``allocated`` are residents whose compute is currently resumed.  Only
    allocations consume capacity -- a physically paused database occupies no
    compute slot, which is the entire point of pausing (Section 2.2).
    """

    def __init__(self, node_id: str, capacity: int):
        if capacity <= 0:
            raise CapacityError(f"node capacity must be positive, got {capacity}")
        self.node_id = node_id
        self.capacity = capacity
        self.residents: Set[str] = set()
        self.allocated: Set[str] = set()

    @property
    def free_slots(self) -> int:
        return self.capacity - len(self.allocated)

    @property
    def utilization(self) -> float:
        return len(self.allocated) / self.capacity

    def place(self, database_id: str) -> None:
        self.residents.add(database_id)

    def evict(self, database_id: str) -> None:
        if database_id in self.allocated:
            raise CapacityError(
                f"cannot move {database_id!r} off {self.node_id!r} while allocated"
            )
        self.residents.discard(database_id)

    def allocate(self, database_id: str, force: bool = False) -> None:
        """Take a resume slot.  ``force`` permits exceeding capacity, used
        only when the whole cluster is full (over-subscription under
        pressure, cf. the overbooking literature the paper cites)."""
        if database_id not in self.residents:
            raise CapacityError(
                f"{database_id!r} is not resident on node {self.node_id!r}"
            )
        if database_id in self.allocated:
            raise CapacityError(f"{database_id!r} is already allocated")
        if self.free_slots <= 0 and not force:
            raise CapacityError(f"node {self.node_id!r} is full")
        self.allocated.add(database_id)

    def release(self, database_id: str) -> None:
        if database_id not in self.allocated:
            raise CapacityError(
                f"{database_id!r} is not allocated on node {self.node_id!r}"
            )
        self.allocated.discard(database_id)

    def __repr__(self) -> str:
        return (
            f"Node({self.node_id!r}, {len(self.allocated)}/{self.capacity} "
            f"allocated, {len(self.residents)} residents)"
        )
