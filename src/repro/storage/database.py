"""A named collection of tables: the storage container the SQL engine runs
against.

Each simulated serverless database owns one :class:`Database` instance
holding its ``sys.pause_resume_history`` table (Section 5: the history lives
*inside* the customer database so it moves with it during load balancing).
The region's control plane owns another instance holding ``sys.databases``.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

from repro.errors import TableAlreadyExistsError, TableNotFoundError
from repro.storage.schema import TableSchema
from repro.storage.table import Table


class Database:
    """A dictionary of tables with create/drop semantics."""

    def __init__(self, name: str):
        self.name = name
        self._tables: Dict[str, Table] = {}

    def __contains__(self, table_name: str) -> bool:
        return table_name in self._tables

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    @property
    def table_names(self) -> List[str]:
        return sorted(self._tables)

    def create_table(self, schema: TableSchema) -> Table:
        """Create a table from a schema; raises if the name is taken."""
        if schema.name in self._tables:
            raise TableAlreadyExistsError(
                f"table {schema.name!r} already exists in database {self.name!r}"
            )
        table = Table(schema)
        self._tables[schema.name] = table
        return table

    def table(self, name: str) -> Table:
        """Look up a table by name; raises :class:`TableNotFoundError`."""
        try:
            return self._tables[name]
        except KeyError:
            raise TableNotFoundError(
                f"no table {name!r} in database {self.name!r} "
                f"(have: {self.table_names})"
            ) from None

    def drop_table(self, name: str) -> None:
        """Drop a table; raises :class:`TableNotFoundError` if absent."""
        if name not in self._tables:
            raise TableNotFoundError(
                f"no table {name!r} in database {self.name!r}"
            )
        del self._tables[name]

    def total_size_bytes(self) -> int:
        """Logical size of all tables (used for Figure 10(b))."""
        return sum(table.size_bytes() for table in self._tables.values())
