"""Micro-benchmarks for the storage substrate.

Backs the paper's complexity analysis (Sections 5-6): inserts and point
lookups through the clustered B-tree are O(log n); the range queries of
Algorithms 3-4 are O(log n + m).  The benchmarks time the actual stored-
procedure operations at the history sizes of Figure 10(a).
"""

import pytest

from repro.storage.btree import BTree
from repro.storage.history import HistoryStore
from repro.types import EventType, SECONDS_PER_DAY

DAY = SECONDS_PER_DAY


def _filled_store(n_tuples: int) -> HistoryStore:
    store = HistoryStore()
    for i in range(n_tuples):
        event_type = EventType.ACTIVITY_START if i % 2 == 0 else EventType.ACTIVITY_END
        store.insert_history(i * 600, event_type)
    return store


@pytest.mark.parametrize("n", [500, 4000])
def bench_insert_history(benchmark, n):
    """Algorithm 2 at average (500) and worst-case (4K) history sizes."""
    store = _filled_store(n)
    counter = iter(range(10**9))

    def insert_one():
        store.insert_history(n * 600 + next(counter), EventType.ACTIVITY_START)

    benchmark(insert_one)


@pytest.mark.parametrize("n", [500, 4000])
def bench_window_range_query(benchmark, n):
    """The MIN/MAX login range query of Algorithm 4 (lines 19-24)."""
    store = _filled_store(n)
    lo = (n // 2) * 600
    benchmark(store.first_last_login, lo, lo + 7 * 3600)


def bench_delete_old_history(benchmark):
    """Algorithm 3 trimming a 28-day window from a 60-day history."""

    def setup():
        store = HistoryStore()
        for day in range(60):
            for k in range(8):
                store.insert_history(day * DAY + k * 3600, EventType.ACTIVITY_START)
        return (store,), {}

    def trim(store):
        return store.delete_old_history(history_days=28, now=60 * DAY)

    benchmark.pedantic(trim, setup=setup, rounds=20)


@pytest.mark.parametrize("n", [1000, 100_000])
def bench_btree_point_lookup(benchmark, n):
    """O(log n): lookup cost grows slowly with two orders of magnitude."""
    tree = BTree()
    for i in range(n):
        tree.insert(i, i)
    benchmark(tree.get, n // 2)
