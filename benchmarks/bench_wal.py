"""Write-ahead-log benchmark: what control-plane durability costs.

Three sections, written to ``BENCH_wal.json`` (full) or
``BENCH_wal_quick.json`` (``--quick``, the CI baseline):

* **append**: raw WAL append throughput across the two commit
  disciplines -- fsync-per-record (strict durability) and group commit
  (``fsync=False``: OS page cache, fsync on rotation/checkpoint/close).
  Every appended record must come back from ``read_log``.
* **recovery**: wall-clock to recover a ledger produced by a driven
  :class:`~repro.controlplane.durability.DurableWorkflowEngine`, on the
  graceful path (newest checkpoint, empty replay suffix) and on the
  checkpoint-loss path (full WAL replay from the open record).  Both
  recoveries must restore byte-identical state, every workflow must hold
  at most one terminal record (exactly-once), and restarting from the
  checkpoint must beat the full replay -- the ratio
  ``recovery.checkpoint_speedup`` is the regression-gated headline.
* **overhead**: scenario-level cost of journaling, measured where it
  matters -- a full synthetic control-plane day (schedule derived from a
  region simulation, driven through the diagnostics runner) with the
  durable engine in group-commit mode versus the plain in-memory
  :class:`~repro.controlplane.workflows.WorkflowEngine`.  The armed
  fraction must stay under 5%; periodic checkpoint cost is reported
  separately (it is a cadence knob, not a per-transition tax).  Like the
  other wall-clock ratios, the 5% gate is asserted only by the full
  (local) run -- a quick run on a shared CI runner is too noisy.

Run directly::

    PYTHONPATH=src python benchmarks/bench_wal.py          # full
    PYTHONPATH=src python benchmarks/bench_wal.py --quick  # CI baseline
    PYTHONPATH=src python benchmarks/bench_wal.py --quick --out /tmp/fresh.json

or through pytest (quick scale)::

    PYTHONPATH=src python -m pytest benchmarks/bench_wal.py -q
"""

from __future__ import annotations

import json
import random
import sys
import tempfile
import time
from pathlib import Path
from typing import List

from repro.controlplane.diagnostics import DiagnosticsRunner
from repro.controlplane.durability import (
    DurableWorkflowEngine,
    WriteAheadLog,
    checkpoint_paths,
    read_log,
    terminal_record_counts,
)
from repro.controlplane.workflows import (
    STUCK_POINT,
    WorkflowEngine,
    WorkflowKind,
)
from repro.experiments.common import ExperimentScale
from repro.experiments.crash_recovery import _drive, derive_workflow_schedule
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.workload.regions import RegionPreset

RESULTS_DIR = Path(__file__).resolve().parent / "results"
BASELINE_PATH = RESULTS_DIR / "BENCH_wal.json"
QUICK_BASELINE_PATH = RESULTS_DIR / "BENCH_wal_quick.json"

ARMED_OVERHEAD_LIMIT = 0.05


# -- append -------------------------------------------------------------


def _synthetic_record(i: int) -> dict:
    return {
        "type": "started",
        "wf": i,
        "at": 30 * (i // 4),
        "lsn": i,
    }


def _append_run(directory: Path, n: int, fsync: bool) -> dict:
    wal = WriteAheadLog(directory, segment_max_bytes=256 << 10, fsync=fsync)
    total_bytes = 0
    start = time.perf_counter()
    for i in range(n):
        total_bytes += wal.append(_synthetic_record(i))
    elapsed = time.perf_counter() - start
    wal.close()
    records, truncated = read_log(directory, repair=False)
    return {
        "records": n,
        "bytes": total_bytes,
        "segments": wal.segment_count,
        "wall_s": round(elapsed, 4),
        "records_per_s": round(n / elapsed, 1),
        "us_per_record": round(elapsed / n * 1e6, 2),
        "recovered": len(records),
        "truncated_bytes": truncated,
    }


def _append_section(quick: bool) -> dict:
    n_fsync = 400 if quick else 2000
    n_group = 20_000 if quick else 200_000
    with tempfile.TemporaryDirectory() as tmp:
        fsync_run = _append_run(Path(tmp) / "fsync", n_fsync, fsync=True)
        group_run = _append_run(Path(tmp) / "group", n_group, fsync=False)
    all_recovered = (
        fsync_run["recovered"] == n_fsync
        and group_run["recovered"] == n_group
        and fsync_run["truncated_bytes"] == 0
        and group_run["truncated_bytes"] == 0
    )
    return {
        "fsync_per_record": fsync_run,
        "group_commit": group_run,
        "fsync_slowdown": round(
            fsync_run["us_per_record"] / group_run["us_per_record"], 2
        ),
        "all_records_recovered": int(all_recovered),
    }


# -- recovery -----------------------------------------------------------


def _drive_synthetic_ledger(
    directory: Path, n_workflows: int, compact: bool
) -> dict:
    """Fill a WAL directory by running ``n_workflows`` through a durable
    engine with a mid-strength stuck rate, then close gracefully.  With
    ``compact`` the standard ops pairing runs before close: checkpoint,
    then drop the WAL segments the checkpoint covers."""
    rng = random.Random(20260809)
    plan = FaultPlan.of(FaultSpec(STUCK_POINT, probability=0.2))
    engine = DurableWorkflowEngine(
        directory,
        max_concurrent=64,
        default_duration_s=45,
        plan=plan,
        seed=7,
        checkpoint_every=512,
        segment_max_bytes=128 << 10,
        fsync=False,
    )
    runner = DiagnosticsRunner(engine, stuck_after_s=60, max_retries=2)
    kinds = list(WorkflowKind)
    now = 0
    submitted = 0
    while submitted < n_workflows or not engine.drained():
        burst = min(rng.randrange(0, 6), n_workflows - submitted)
        for _ in range(burst):
            engine.submit(kinds[submitted % 3], f"db-{submitted % 40}", now)
            submitted += 1
        runner.run_once(now)
        engine.tick(now)
        now += 30
    state = engine.state_doc()
    stats = engine.wal_stats()
    if compact:
        engine.checkpoint()
        engine.compact()
    engine.close()
    # Read the ledger only after close has flushed the group-commit
    # buffer (an un-compacted log holds every record).
    ledger, _ = read_log(directory, repair=False)
    return {"state": state, "stats": stats, "ledger": ledger}


def _time_recover(directory: Path, reps: int) -> tuple:
    best = float("inf")
    engine = None
    for _ in range(reps):
        if engine is not None:
            engine.close()
        start = time.perf_counter()
        engine = DurableWorkflowEngine.recover(directory)
        best = min(best, time.perf_counter() - start)
    info = dict(engine.recovery_info)
    state = engine.state_doc()
    ledger = engine.read_ledger()
    engine.close()
    return best, info, state, ledger


def _recovery_section(quick: bool) -> dict:
    n_workflows = 3000 if quick else 20_000
    reps = 3 if quick else 5
    with tempfile.TemporaryDirectory() as tmp:
        # Two identically-driven ledgers: one closed through the ops
        # pairing (checkpoint + compact) for the graceful-restart
        # measurement, one kept whole so deleting its checkpoints forces
        # the full-replay fallback.  (Compaction drops the open record
        # with the early segments, so the compacted log *needs* its
        # checkpoint -- the two paths cannot share a directory.)
        graceful_dir = Path(tmp) / "graceful"
        replay_dir = Path(tmp) / "replay"
        live = _drive_synthetic_ledger(graceful_dir, n_workflows, compact=True)
        whole = _drive_synthetic_ledger(replay_dir, n_workflows, compact=False)
        assert whole["state"] == live["state"], (
            "identical drives produced different states"
        )

        graceful_s, graceful_info, graceful_state, _ = _time_recover(
            graceful_dir, reps
        )
        graceful_identical = graceful_state == live["state"]

        # Checkpoint loss: delete every checkpoint generation and recover
        # again -- the engine must fall back to a full replay from the
        # WAL's open record and land in the very same state.  (Recovering
        # instances re-checkpoint on close, so the deletion repeats.)
        replay_s = float("inf")
        for _ in range(reps):
            for path in checkpoint_paths(replay_dir):
                path.unlink()
            start = time.perf_counter()
            recovered = DurableWorkflowEngine.recover(replay_dir)
            replay_s = min(replay_s, time.perf_counter() - start)
            replay_info = dict(recovered.recovery_info)
            replay_identical = recovered.state_doc() == live["state"]
            recovered.close()

    terminals = terminal_record_counts(whole["ledger"])
    exactly_once = all(count == 1 for count in terminals.values())
    none_lost = len(terminals) == n_workflows
    return {
        "workflows": n_workflows,
        "wal_records": live["stats"]["records_appended"],
        "segments": live["stats"]["segments"],
        "graceful_recover_ms": round(graceful_s * 1e3, 3),
        "graceful_replayed": graceful_info["replayed"],
        "full_replay_ms": round(replay_s * 1e3, 3),
        "full_replayed": replay_info["replayed"],
        "checkpoint_speedup": round(replay_s / graceful_s, 2),
        "identical": int(graceful_identical and replay_identical),
        "exactly_once_ok": int(exactly_once and none_lost),
    }


# -- overhead -----------------------------------------------------------


def _scenario_day(engine, scale: ExperimentScale) -> None:
    schedule = derive_workflow_schedule(RegionPreset.EU1, scale)
    runner = DiagnosticsRunner(engine, stuck_after_s=60, max_retries=2)
    _drive(engine, runner, schedule, scale.eval_start, scale.eval_end, 30)


def _overhead_section(quick: bool) -> dict:
    scale = ExperimentScale(n_databases=120 if quick else 400, eval_days=1)
    reps = 3 if quick else 5
    plan = FaultPlan.of(FaultSpec(STUCK_POINT, probability=0.08))
    derive_workflow_schedule(RegionPreset.EU1, scale)  # warm trace caches

    inmem_s = float("inf")
    for _ in range(reps):
        engine = WorkflowEngine(
            max_concurrent=100,
            default_duration_s=45,
            injector=FaultInjector(plan, seed=0),
        )
        start = time.perf_counter()
        _scenario_day(engine, scale)
        inmem_s = min(inmem_s, time.perf_counter() - start)

    armed_s = float("inf")
    wal_records = 0
    checkpoint_ms = 0.0
    with tempfile.TemporaryDirectory() as tmp:
        for rep in range(reps):
            engine = DurableWorkflowEngine(
                Path(tmp) / f"day-{rep}",
                max_concurrent=100,
                default_duration_s=45,
                plan=plan,
                seed=0,
                checkpoint_every=0,  # cadence cost is reported separately
                fsync=False,
            )
            start = time.perf_counter()
            _scenario_day(engine, scale)
            armed_s = min(armed_s, time.perf_counter() - start)
            wal_records = engine.wal_stats()["records_appended"]
            start = time.perf_counter()
            engine.checkpoint()
            checkpoint_ms = (time.perf_counter() - start) * 1e3
            engine.close()

    overhead = max(0.0, (armed_s - inmem_s) / inmem_s)
    return {
        "n_databases": scale.n_databases,
        "inmem_s": round(inmem_s, 4),
        "armed_s": round(armed_s, 4),
        "wal_records": wal_records,
        "armed_overhead_fraction": round(overhead, 6),
        "armed_overhead_limit": ARMED_OVERHEAD_LIMIT,
        "checkpoint_ms": round(checkpoint_ms, 3),
    }


# -- harness ------------------------------------------------------------


def run_bench(quick: bool = False) -> dict:
    return {
        "quick": quick,
        "append": _append_section(quick),
        "recovery": _recovery_section(quick),
        "overhead": _overhead_section(quick),
    }


def _check(result: dict) -> None:
    append = result["append"]
    assert append["all_records_recovered"], (
        "read_log did not return every appended record"
    )
    recovery = result["recovery"]
    assert recovery["identical"], (
        "recovery did not restore byte-identical engine state"
    )
    assert recovery["exactly_once_ok"], (
        "recovered ledger duplicated or lost a workflow"
    )
    assert recovery["full_replayed"] > 0, "full replay replayed nothing"
    assert recovery["checkpoint_speedup"] > 1.0, (
        f"checkpoint restart ({recovery['graceful_recover_ms']} ms) did not "
        f"beat full replay ({recovery['full_replay_ms']} ms)"
    )
    if not result["quick"]:
        overhead = result["overhead"]
        assert (
            overhead["armed_overhead_fraction"]
            < overhead["armed_overhead_limit"]
        ), (
            f"group-commit journaling costs "
            f"{overhead['armed_overhead_fraction']:.2%} of the scenario day "
            f"(limit {overhead['armed_overhead_limit']:.0%})"
        )


def _report(result: dict) -> str:
    append, recovery, overhead = (
        result["append"],
        result["recovery"],
        result["overhead"],
    )
    return "\n".join(
        [
            "WAL durability" + (" (quick)" if result["quick"] else ""),
            f"  append: fsync {append['fsync_per_record']['us_per_record']} "
            f"us/rec ({append['fsync_per_record']['records_per_s']}/s), "
            f"group commit {append['group_commit']['us_per_record']} us/rec "
            f"({append['group_commit']['records_per_s']}/s, "
            f"{append['group_commit']['segments']} segments), "
            f"fsync slowdown {append['fsync_slowdown']}x",
            f"  recovery at {recovery['workflows']} workflows "
            f"({recovery['wal_records']} records, "
            f"{recovery['segments']} segments): graceful "
            f"{recovery['graceful_recover_ms']} ms "
            f"({recovery['graceful_replayed']} replayed), full replay "
            f"{recovery['full_replay_ms']} ms "
            f"({recovery['full_replayed']} replayed), checkpoint speedup "
            f"{recovery['checkpoint_speedup']}x, identical: "
            f"{bool(recovery['identical'])}, exactly-once: "
            f"{bool(recovery['exactly_once_ok'])}",
            f"  overhead at {overhead['n_databases']} dbs: armed "
            f"{overhead['armed_s']}s vs in-memory {overhead['inmem_s']}s "
            f"(+{overhead['armed_overhead_fraction']:.3%}, limit "
            f"{overhead['armed_overhead_limit']:.0%}), "
            f"{overhead['wal_records']} records journaled, checkpoint "
            f"{overhead['checkpoint_ms']} ms",
        ]
    )


def bench_wal(record_table) -> None:
    """Pytest entry: quick scale, deterministic assertions only."""
    result = run_bench(quick=True)
    record_table("wal", _report(result))
    _check(result)


def main(argv: List[str]) -> int:
    quick = "--quick" in argv
    if "--out" in argv:
        out = Path(argv[argv.index("--out") + 1])
    else:
        out = QUICK_BASELINE_PATH if quick else BASELINE_PATH
    result = run_bench(quick=quick)
    print(_report(result))
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out}")
    _check(result)
    print("ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
