"""Figure 11 bench: proactive-resume workflow frequency.

Paper shape: the per-iteration pre-warm batch grows with the operation
period (max 29 -> 406 from 1 to 15 minutes at production scale); production
runs the operation every minute to keep batches manageable.
"""

from repro.experiments.common import BENCH_SCALE
from repro.experiments.fig11 import run_fig11


def bench_fig11_resume_frequency(benchmark, record_table):
    result = benchmark.pedantic(
        run_fig11, args=(BENCH_SCALE,), rounds=1, iterations=1
    )
    record_table("fig11_resume_freq", result.table())
    rows = result.rows()
    assert rows[-1]["proactive_max"] >= rows[0]["proactive_max"]
