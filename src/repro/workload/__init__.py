"""Synthetic customer-activity workloads.

Azure production telemetry is not available outside Microsoft, so this
package generates the closest synthetic equivalent: per-database activity
traces drawn from the usage archetypes the paper's own analysis motivates
(Section 1, challenge 1): databases with stable usage, daily or weekly
patterns, and short unpredictable spikes.  Region presets (EU1/EU2/US1/US2)
differ in archetype mixture, fleet size scaling, and time-zone offsets so
the cross-region validation of Figure 6 exercises genuinely different
fleets.
"""

from repro.workload.archetypes import (
    Archetype,
    BurstyDev,
    DailyBusinessHours,
    Dormant,
    NightlyJob,
    Sporadic,
    Stable,
    WeeklyBatch,
)
from repro.workload.generator import FleetSpec, generate_fleet
from repro.workload.regions import RegionPreset, generate_region_traces, region_spec
from repro.workload.traces import IdleIntervalStats, idle_interval_stats

__all__ = [
    "Archetype",
    "DailyBusinessHours",
    "Dormant",
    "NightlyJob",
    "WeeklyBatch",
    "Stable",
    "BurstyDev",
    "Sporadic",
    "FleetSpec",
    "generate_fleet",
    "RegionPreset",
    "region_spec",
    "generate_region_traces",
    "idle_interval_stats",
    "IdleIntervalStats",
]
