"""Declarative SLOs with multi-window burn-rate alerting.

The paper reports QoS (fraction of logins that needed a reactive resume,
§8) and COGS (idle-but-allocated time) *after* a run; a production ProRP
control plane watches the same quantities live and pages when the error
budget burns too fast.  This module is that monitoring plane:

* :class:`SloSpec` -- one declarative rule: either a **burn-rate** SLO
  (bad-event series / total-event series vs an objective, evaluated over
  a fast and a slow window, Google-SRE style) or a **threshold** SLO (a
  statistic of one series vs a limit -- breaker state, p99 latency).
* :class:`SloMonitor` -- evaluates every spec on window boundaries as
  the clock advances (the engine event loops tick it through ``OBS.slo``),
  applies hysteresis, and writes ``slo.*`` gauges back into the registry
  so the exposition layer exports alert state like any other metric.
* :class:`AlertLedger` -- the append-only record of firing/cleared
  transitions; chaos scenarios assert against it ("the breaker opening
  raised ``predictor_unavailable`` within one fast window").
* :class:`KpiStream` -- the bridge from the engines' KPI accounting to
  windowed series: logins, reactive resumes, workflow counts, and the
  used/idle/unavailable second ledgers, filtered to the same
  ``[eval_start, eval_end)`` window as the offline evaluation so the
  windowed sums reconcile exactly with ``evaluate_offline_kpis``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ProRPError
from repro.observability.metrics import MetricsRegistry
from repro.observability.timeseries import (
    DEFAULT_WINDOW_S,
    CounterSeries,
    GaugeSeries,
    HistogramSeries,
)

#: Default slow window: 4 fast windows.  Short enough that simulation
#: runs (1-3 evaluation days) see many slow windows, long enough to damp
#: single-window blips.
DEFAULT_SLOW_FACTOR = 4

#: Default burn-rate thresholds.  With a 0.1 objective these correspond
#: to "the fast window burned >= 6x budget AND the slow window >= 3x" --
#: tuned so a real incident fires on the first boundary after onset but
#: a single bad window inside an otherwise clean slow window does not.
DEFAULT_FAST_BURN = 6.0
DEFAULT_SLOW_BURN = 3.0

_STATS = ("sum", "max", "last", "p50", "p95", "p99")


@dataclass(frozen=True)
class SloSpec:
    """One service-level objective, declaratively.

    ``kind="burn_rate"``: ``bad_series / total_series`` over the fast
    and slow windows, each divided by ``objective`` (the budgeted bad
    fraction); fires when *both* burn rates exceed their thresholds.

    ``kind="threshold"``: ``stat`` of ``series`` over the fast window
    (``last`` for gauges, ``sum`` for counters, percentiles for
    histogram series) compared against ``limit``; fires on >=.
    """

    name: str
    kind: str  # "burn_rate" | "threshold"
    description: str = ""
    severity: str = "page"  # "page" | "ticket"
    labels: Optional[Dict[str, str]] = None
    # burn-rate fields
    bad_series: str = ""
    total_series: str = ""
    objective: float = 0.0
    fast_burn: float = DEFAULT_FAST_BURN
    slow_burn: float = DEFAULT_SLOW_BURN
    # threshold fields
    series: str = ""
    stat: str = "sum"
    limit: float = 0.0
    # shared windowing
    fast_window_s: float = DEFAULT_WINDOW_S
    slow_window_s: float = DEFAULT_WINDOW_S * DEFAULT_SLOW_FACTOR
    #: consecutive clean evaluations before a firing alert clears
    clear_after: int = 2

    def __post_init__(self):
        if self.kind not in ("burn_rate", "threshold"):
            raise ProRPError(f"slo {self.name!r}: unknown kind {self.kind!r}")
        if self.severity not in ("page", "ticket"):
            raise ProRPError(
                f"slo {self.name!r}: unknown severity {self.severity!r}"
            )
        if self.fast_window_s <= 0 or self.slow_window_s < self.fast_window_s:
            raise ProRPError(
                f"slo {self.name!r}: need 0 < fast_window_s <= slow_window_s"
            )
        if self.clear_after < 1:
            raise ProRPError(f"slo {self.name!r}: clear_after must be >= 1")
        if self.kind == "burn_rate":
            if not self.bad_series or not self.total_series:
                raise ProRPError(
                    f"slo {self.name!r}: burn_rate needs bad_series and "
                    f"total_series"
                )
            if not 0.0 < self.objective < 1.0:
                raise ProRPError(
                    f"slo {self.name!r}: objective must be in (0, 1)"
                )
            if self.fast_burn <= 0 or self.slow_burn <= 0:
                raise ProRPError(
                    f"slo {self.name!r}: burn thresholds must be > 0"
                )
        else:
            if not self.series:
                raise ProRPError(f"slo {self.name!r}: threshold needs series")
            if self.stat not in _STATS:
                raise ProRPError(
                    f"slo {self.name!r}: unknown stat {self.stat!r} "
                    f"(one of {_STATS})"
                )

    def to_dict(self) -> Dict[str, object]:
        """The alert-rule schema documented in docs/observability.md."""
        doc: Dict[str, object] = {
            "name": self.name,
            "kind": self.kind,
            "severity": self.severity,
            "fast_window_s": self.fast_window_s,
            "slow_window_s": self.slow_window_s,
            "clear_after": self.clear_after,
        }
        if self.description:
            doc["description"] = self.description
        if self.labels:
            doc["labels"] = dict(self.labels)
        if self.kind == "burn_rate":
            doc.update(
                bad_series=self.bad_series,
                total_series=self.total_series,
                objective=self.objective,
                fast_burn=self.fast_burn,
                slow_burn=self.slow_burn,
            )
        else:
            doc.update(series=self.series, stat=self.stat, limit=self.limit)
        return doc


@dataclass(frozen=True)
class AlertEvent:
    """One firing/cleared transition in the ledger."""

    time: float
    name: str
    state: str  # "firing" | "cleared"
    severity: str
    value: float
    detail: str = ""


class AlertLedger:
    """Append-only record of alert transitions, queryable by scenario
    assertions and rendered by the health endpoint / ``observe --top``."""

    def __init__(self) -> None:
        self.events: List[AlertEvent] = []
        self._active: Dict[str, AlertEvent] = {}

    def append(self, event: AlertEvent) -> None:
        self.events.append(event)
        if event.state == "firing":
            self._active[event.name] = event
        else:
            self._active.pop(event.name, None)

    def active(self) -> List[AlertEvent]:
        """Currently-firing alerts, in firing order."""
        return sorted(self._active.values(), key=lambda e: e.time)

    def is_firing(self, name: str) -> bool:
        return name in self._active

    def events_for(self, name: str) -> List[AlertEvent]:
        return [e for e in self.events if e.name == name]

    def first_time(self, name: str, state: str) -> Optional[float]:
        for event in self.events:
            if event.name == name and event.state == state:
                return event.time
        return None

    def fired_count(self) -> int:
        return sum(1 for e in self.events if e.state == "firing")

    def cleared_count(self) -> int:
        return sum(1 for e in self.events if e.state == "cleared")


@dataclass
class _AlertState:
    firing: bool = False
    clean_streak: int = 0


class SloMonitor:
    """Continuous evaluation of a set of :class:`SloSpec` rules.

    ``maybe_evaluate(now)`` is safe to call per engine event: it is a
    single comparison until the clock crosses the next evaluation
    boundary (the smallest fast window across the specs), at which point
    every spec is evaluated against its *complete* windows.  Evaluation
    results are mirrored into the registry as ``slo.<name>.*`` gauges so
    the OpenMetrics endpoint exports live alert state.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        specs: Tuple[SloSpec, ...],
        eval_period_s: Optional[float] = None,
        ledger: Optional[AlertLedger] = None,
    ):
        if not specs:
            raise ProRPError("SloMonitor needs at least one SloSpec")
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ProRPError(f"duplicate SLO names: {sorted(names)}")
        self.registry = registry
        self.specs = tuple(specs)
        self.ledger = ledger if ledger is not None else AlertLedger()
        self.eval_period_s = (
            eval_period_s
            if eval_period_s is not None
            else min(spec.fast_window_s for spec in specs)
        )
        if self.eval_period_s <= 0:
            raise ProRPError("eval_period_s must be > 0")
        self._states: Dict[str, _AlertState] = {
            spec.name: _AlertState() for spec in specs
        }
        self._next_eval: Optional[float] = None

    # -- clock ----------------------------------------------------------
    @property
    def next_boundary(self) -> float:
        """Next evaluation boundary (``-inf`` before the first alignment).

        Hot event loops cache this in a local and test
        ``time >= next_boundary`` so the steady-state cost of an armed
        monitor is one float comparison per event, not a method call.
        """
        return self._next_eval if self._next_eval is not None else float("-inf")

    def maybe_evaluate(self, now: float) -> None:
        """Evaluate any window boundaries the clock has crossed."""
        if self._next_eval is None:
            # Align to the next boundary; never evaluate the partial
            # window the monitor was born into.
            self._next_eval = (now // self.eval_period_s + 1) * self.eval_period_s
            return
        while now >= self._next_eval:
            self.evaluate(self._next_eval)
            self._next_eval += self.eval_period_s

    def drain(self, now: float) -> None:
        """Run every pending boundary up to and including ``now`` (end of
        a simulation: windows before ``now`` are complete by definition)."""
        self.maybe_evaluate(now)
        if self._next_eval is not None and now > self._next_eval - self.eval_period_s:
            self.evaluate(now)
            self._next_eval = (now // self.eval_period_s + 1) * self.eval_period_s

    # -- evaluation -----------------------------------------------------
    def evaluate(self, now: float) -> List[AlertEvent]:
        """Evaluate every spec at ``now``; returns transitions appended."""
        self.registry.counter("slo.evaluations").inc()
        transitions: List[AlertEvent] = []
        for spec in self.specs:
            value, breached, detail = self._evaluate_spec(spec, now)
            self.registry.gauge(f"slo.{spec.name}.value").set(round(value, 6))
            state = self._states[spec.name]
            if not state.firing:
                if breached:
                    state.firing = True
                    state.clean_streak = 0
                    event = AlertEvent(
                        time=now,
                        name=spec.name,
                        state="firing",
                        severity=spec.severity,
                        value=value,
                        detail=detail,
                    )
                    self.ledger.append(event)
                    transitions.append(event)
                    self.registry.counter("slo.alerts.fired").inc()
            else:
                if breached:
                    state.clean_streak = 0
                else:
                    state.clean_streak += 1
                    if state.clean_streak >= spec.clear_after:
                        state.firing = False
                        state.clean_streak = 0
                        event = AlertEvent(
                            time=now,
                            name=spec.name,
                            state="cleared",
                            severity=spec.severity,
                            value=value,
                            detail=detail,
                        )
                        self.ledger.append(event)
                        transitions.append(event)
                        self.registry.counter("slo.alerts.cleared").inc()
            self.registry.gauge(f"slo.{spec.name}.firing").set(
                1 if state.firing else 0
            )
        self.registry.gauge("slo.alerts.active").set(len(self.ledger.active()))
        return transitions

    def _evaluate_spec(
        self, spec: SloSpec, now: float
    ) -> Tuple[float, bool, str]:
        if spec.kind == "burn_rate":
            fast = self._burn(spec, now, spec.fast_window_s)
            slow = self._burn(spec, now, spec.slow_window_s)
            breached = fast >= spec.fast_burn and slow >= spec.slow_burn
            detail = (
                f"burn fast={fast:.2f}x (>= {spec.fast_burn}x) "
                f"slow={slow:.2f}x (>= {spec.slow_burn}x)"
            )
            return fast, breached, detail
        value = self._stat(spec, now)
        breached = value >= spec.limit
        detail = f"{spec.stat}={value:.4g} (limit {spec.limit:.4g})"
        return value, breached, detail

    def _burn(self, spec: SloSpec, now: float, span_s: float) -> float:
        bad = self._series(spec.bad_series, spec.labels)
        total = self._series(spec.total_series, spec.labels)
        n_bad = bad.sum_last(now, span_s) if isinstance(bad, CounterSeries) else 0
        n_total = (
            total.sum_last(now, span_s) if isinstance(total, CounterSeries) else 0
        )
        if n_total <= 0:
            return 0.0
        return (n_bad / n_total) / spec.objective

    def _stat(self, spec: SloSpec, now: float) -> float:
        series = self._series(spec.series, spec.labels)
        if series is None:
            return 0.0
        span = spec.fast_window_s
        if isinstance(series, CounterSeries):
            if spec.stat == "last":
                return float(series.value_at(now))
            return float(series.sum_last(now, span))
        if isinstance(series, GaugeSeries):
            if spec.stat == "max":
                value = series.max_last(now, span)
                if value is None:
                    value = series.last
            else:
                value = series.last
            return float(value) if value is not None else 0.0
        if isinstance(series, HistogramSeries):
            if spec.stat.startswith("p"):
                return series.percentile_last(now, span, float(spec.stat[1:]))
            if spec.stat == "sum":
                return float(series.count_last(now, span))
            return series.percentile_last(now, span, 100.0)
        return 0.0

    def _series(self, name: str, labels: Optional[Dict[str, str]]):
        metric = self.registry.get(name, labels)
        if metric is None and labels:
            # Fall back to the unlabelled stream so one rule set works
            # for both labelled (fleet) and plain (single-region) runs.
            metric = self.registry.get(name)
        return metric


class KpiStream:
    """Streams the engines' KPI accounting into windowed series.

    Attached to ``StoreAccounting``/``LeanAccounting``; every hook
    applies the same ``[eval_start, eval_end)`` filter (and interval
    clipping) as the offline ledger, so summed windows reconcile exactly
    with ``KpiReport`` and ``evaluate_offline_kpis`` -- the streaming ==
    batch equivalence the chaos scenario asserts.
    """

    __slots__ = (
        "eval_start",
        "eval_end",
        "logins",
        "reactive",
        "reactive_faulted",
        "workflows",
        "used_s",
        "idle_s",
        "unavailable_s",
        "allocated_s",
    )

    WORKFLOW_KINDS = (
        "proactive_resume",
        "reactive_resume",
        "logical_pause",
        "physical_pause",
        "maintenance_resume",
    )

    def __init__(
        self,
        registry: MetricsRegistry,
        eval_start: float,
        eval_end: float,
        window_s: float = DEFAULT_WINDOW_S,
        labels: Optional[Dict[str, str]] = None,
        capacity: Optional[int] = None,
    ):
        if eval_end <= eval_start:
            raise ProRPError("KpiStream needs eval_start < eval_end")
        if capacity is None:
            # Every evaluation window stays resident: sums over the run
            # are then exact without touching the overflow aggregate.
            capacity = int((eval_end - eval_start) // window_s) + 4
        self.eval_start = eval_start
        self.eval_end = eval_end

        def counter(name: str) -> CounterSeries:
            return registry.counter_series(
                name, window_s=window_s, capacity=capacity, labels=labels
            )

        self.logins = counter("slo.qos.logins")
        self.reactive = counter("slo.qos.reactive")
        self.reactive_faulted = counter("slo.qos.reactive_faulted")
        self.workflows = {
            kind: counter(f"slo.workflows.{kind}")
            for kind in self.WORKFLOW_KINDS
        }
        self.used_s = counter("slo.cogs.used_s")
        self.idle_s = counter("slo.cogs.idle_s")
        self.unavailable_s = counter("slo.cogs.unavailable_s")
        self.allocated_s = counter("slo.cogs.allocated_s")

    # -- hooks (mirrors of the accounting methods) ----------------------
    def login(self, t: float, served: bool, faulted: bool = False) -> None:
        if not self.eval_start <= t < self.eval_end:
            return
        self.logins.inc(t)
        if not served:
            self.reactive.inc(t)
            if faulted:
                self.reactive_faulted.inc(t)

    def workflow(self, t: float, kind: str) -> None:
        if not self.eval_start <= t < self.eval_end:
            return
        series = self.workflows.get(kind)
        if series is not None:
            series.inc(t)

    def _interval(self, series: CounterSeries, start: float, end: float) -> None:
        lo = max(start, self.eval_start)
        hi = min(end, self.eval_end)
        if hi > lo:
            series.add_interval(lo, hi)
            self.allocated_s.add_interval(lo, hi)

    def used(self, start: float, end: float) -> None:
        self._interval(self.used_s, start, end)

    def idle(self, start: float, end: float) -> None:
        self._interval(self.idle_s, start, end)

    def unavailable(self, start: float, end: float) -> None:
        self._interval(self.unavailable_s, start, end)

    # -- reconciliation -------------------------------------------------
    def totals(self) -> Dict[str, float]:
        doc = {
            "logins": self.logins.total(),
            "reactive": self.reactive.total(),
            "reactive_faulted": self.reactive_faulted.total(),
            "used_s": round(self.used_s.total(), 6),
            "idle_s": round(self.idle_s.total(), 6),
            "unavailable_s": round(self.unavailable_s.total(), 6),
            "allocated_s": round(self.allocated_s.total(), 6),
        }
        for kind, series in self.workflows.items():
            doc[kind] = series.total()
        return doc

    def qos_percent(self) -> float:
        """Streaming QoS, same definition as ``KpiReport.qos_percent``."""
        logins = self.logins.total()
        if logins == 0:
            return 100.0
        return 100.0 * (logins - self.reactive.total()) / logins


def simulation_slos(
    labels: Optional[Dict[str, str]] = None,
    fast_window_s: float = DEFAULT_WINDOW_S,
    qos_objective: float = 0.10,
    cogs_objective: float = 0.60,
    predictor_p99_limit_ms: float = 50.0,
) -> Tuple[SloSpec, ...]:
    """The stock rule set for simulation runs: the paper's KPIs as SLOs.

    * ``qos_violation`` -- fraction of logins needing a reactive resume
      (the paper's QoS metric, §8) burning >= ``qos_objective`` budget.
    * ``predictor_unavailable`` -- the predictor circuit breaker is open
      (gauge written by :class:`repro.faults.CircuitBreaker`).
    * ``predictor_latency_p99`` -- reference-predictor p99 over the fast
      window exceeds the limit.
    * ``cogs_idle`` -- idle (unbilled-but-provisioned) share of allocated
      seconds, the paper's COGS proxy, burning >= ``cogs_objective``.
    """
    slow = fast_window_s * DEFAULT_SLOW_FACTOR
    return (
        SloSpec(
            name="qos_violation",
            kind="burn_rate",
            description="reactive-resume fraction exceeds the QoS budget",
            bad_series="slo.qos.reactive",
            total_series="slo.qos.logins",
            objective=qos_objective,
            labels=labels,
            fast_window_s=fast_window_s,
            slow_window_s=slow,
        ),
        SloSpec(
            name="predictor_unavailable",
            kind="threshold",
            description="predictor circuit breaker is open",
            series="breaker.predictor.state.window",
            stat="last",
            limit=1.0,
            labels=None,  # breaker state is process-global, never labelled
            fast_window_s=fast_window_s,
            slow_window_s=slow,
        ),
        SloSpec(
            name="predictor_latency_p99",
            kind="threshold",
            description="reference predictor p99 latency over the limit",
            series="predictor.latency_ms.window",
            stat="p99",
            limit=predictor_p99_limit_ms,
            severity="ticket",
            labels=None,
            fast_window_s=fast_window_s,
            slow_window_s=slow,
        ),
        SloSpec(
            name="cogs_idle",
            kind="burn_rate",
            description="idle share of allocated seconds over the COGS budget",
            bad_series="slo.cogs.idle_s",
            total_series="slo.cogs.allocated_s",
            objective=cogs_objective,
            severity="ticket",
            labels=labels,
            fast_window_s=fast_window_s,
            slow_window_s=slow,
        ),
    )


def serving_slos(
    fast_window_s: float = 1.0,
    shed_objective: float = 0.05,
    latency_p99_limit_ms: float = 100.0,
) -> Tuple[SloSpec, ...]:
    """The stock rule set for the serving gateway (wall-clock windows)."""
    slow = fast_window_s * DEFAULT_SLOW_FACTOR
    return (
        SloSpec(
            name="shed_rate",
            kind="burn_rate",
            description="shed fraction of arriving requests over budget",
            bad_series="serving.shed.window",
            total_series="serving.requests.window",
            objective=shed_objective,
            fast_window_s=fast_window_s,
            slow_window_s=slow,
        ),
        SloSpec(
            name="serving_latency_p99",
            kind="threshold",
            description="end-to-end request p99 latency over the limit",
            series="serving.latency_ms.window",
            stat="p99",
            limit=latency_p99_limit_ms,
            severity="ticket",
            fast_window_s=fast_window_s,
            slow_window_s=slow,
        ),
    )


def tuning_slos(
    fast_window_s: float = DEFAULT_WINDOW_S,
    regret_p95_limit: float = 0.9,
) -> Tuple[SloSpec, ...]:
    """The stock rule set for the online knob tuner + predictor bank.

    * ``tuner_demotion`` -- the active challenger fell below the guarded
      baseline and was demoted (any demotion inside a fast window is an
      incident: the tuner burned QoS the static sweep would not have).
    * ``bank_regret_p95`` -- the per-login prediction-regret p95 across
      all bank policies approaches the miss cost, i.e. the bank is
      mostly missing logins and databases resume reactively.
    """
    slow = fast_window_s * DEFAULT_SLOW_FACTOR
    return (
        SloSpec(
            name="tuner_demotion",
            kind="threshold",
            description="online tuner demoted the active config to baseline",
            series="tuning.demotions.window",
            stat="sum",
            limit=1.0,
            severity="ticket",
            fast_window_s=fast_window_s,
            slow_window_s=slow,
        ),
        SloSpec(
            name="bank_regret_p95",
            kind="threshold",
            description="predictor-bank regret p95 near the miss cost",
            series="tuning.bank.regret.window",
            stat="p95",
            limit=regret_p95_limit,
            severity="ticket",
            fast_window_s=fast_window_s,
            slow_window_s=slow,
        ),
    )


__all__ = [
    "SloSpec",
    "AlertEvent",
    "AlertLedger",
    "SloMonitor",
    "KpiStream",
    "simulation_slos",
    "serving_slos",
    "tuning_slos",
    "DEFAULT_FAST_BURN",
    "DEFAULT_SLOW_BURN",
    "DEFAULT_SLOW_FACTOR",
]
