"""Equivalence suite for the prediction hot path.

The cache (exact-key, login-invalidated) and the batched fleet prediction
(:meth:`FastPredictor.predict_fleet`) are pure optimisations: enabling them
must leave every simulation result byte-identical.  This suite pins that
contract:

* ``predict_fleet`` returns exactly the per-database ``predict`` answers
  (property-based, arbitrary login sets / instants / knob combinations);
* end-to-end region simulations with the cache on and off produce
  identical KPIs, identical workflow event times, and identical pre-warm
  batches across >= 20 seeded scenarios, including weekly and adaptive
  seasonality and armed fault plans (where the injector's consultation
  ledger must match too -- the cache may not reorder fault points);
* :attr:`HistoryStore.login_version` bumps exactly when the login set
  changes ("only logins invalidate");
* the cache actually pays for itself: fewer predictor invocations on the
  same workload.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings as hsettings, strategies as st

from repro.config import DEFAULT_CONFIG, ProRPConfig, Seasonality
from repro.core.fast_predictor import get_fast_predictor
from repro.core.prediction_cache import HOT_PATH, PredictionCache
from repro.core.resume_service import SCAN_FAULT_POINT
from repro.faults import FaultPlan, FaultSpec, chaos
from repro.simulation.actor import PREDICTOR_FAULT_POINT
from repro.simulation.region import SimulationSettings, simulate_region
from repro.storage.history import HistoryStore
from repro.types import (
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
    ActivityTrace,
    EventType,
    PredictedActivity,
    Session,
)

DAY = SECONDS_PER_DAY
HOUR = SECONDS_PER_HOUR
SPAN_DAYS = 32

EVAL_KWARGS = dict(eval_start=30 * DAY, eval_end=31 * DAY, warmup_s=DAY)

#: Knob combinations the equivalence must hold under.
CONFIG_VARIANTS = {
    "daily": DEFAULT_CONFIG,
    "weekly": DEFAULT_CONFIG.with_overrides(seasonality=Seasonality.WEEKLY),
    "adaptive": DEFAULT_CONFIG.with_overrides(auto_seasonality=True),
    "tight": ProRPConfig(
        logical_pause_s=3 * HOUR,
        window_s=2 * HOUR,
        slide_s=15 * 60,
        confidence=0.3,
    ),
}

#: Fault plan armed in the chaos scenarios: the predictor raises sometimes
#: and the resume-operation scan flakes -- the cache must not change which
#: consultations happen, so both runs see the same fire sequence.
CHAOS_PLAN = FaultPlan.of(
    FaultSpec(PREDICTOR_FAULT_POINT, probability=0.25),
    FaultSpec(SCAN_FAULT_POINT, probability=0.1),
)

#: >= 20 seeded end-to-end scenarios (5 fleets x 5 variants).
SCENARIOS = [
    pytest.param(seed, variant, plan, id=f"seed{seed}-{variant}{'-chaos' if plan else ''}")
    for seed in range(5)
    for variant, plan in [
        ("daily", None),
        ("weekly", None),
        ("adaptive", None),
        ("tight", None),
        ("daily", CHAOS_PLAN),
    ]
]


def make_fleet(seed: int, n: int = 6):
    """A small deterministic fleet with arbitrary session structures."""
    rng = random.Random(seed)
    traces = []
    for i in range(n):
        sessions = []
        cursor = rng.randint(0, 3 * DAY)
        while cursor < SPAN_DAYS * DAY - HOUR:
            duration = rng.randint(60, 12 * HOUR)
            end = min(cursor + duration, SPAN_DAYS * DAY)
            sessions.append(Session(cursor, end))
            cursor = end + rng.randint(60, 2 * DAY)
        created = rng.choice([0, sessions[0].start if sessions else 0])
        traces.append(ActivityTrace(f"db-{seed}-{i}", sessions, created_at=created))
    return traces


# ----------------------------------------------------------------------
# predict_fleet == per-database predict (property-based)
# ----------------------------------------------------------------------


@st.composite
def fleet_logins(draw):
    """1-8 databases, each with 0-40 login timestamps (duplicates allowed,
    empties included -- the batched path must handle both)."""
    n = draw(st.integers(min_value=1, max_value=8))
    fleets = []
    for _ in range(n):
        logins = draw(
            st.lists(
                st.integers(min_value=0, max_value=40 * DAY),
                min_size=0,
                max_size=40,
            )
        )
        fleets.append(np.array(sorted(set(logins)), dtype=np.int64))
    return fleets


@hsettings(max_examples=40, deadline=None)
@given(
    fleet_logins(),
    st.integers(min_value=28 * DAY, max_value=32 * DAY),
    st.sampled_from(["daily", "weekly", "tight"]),
)
def test_predict_fleet_matches_per_database(fleets, now, variant):
    config = CONFIG_VARIANTS[variant]
    predictor = get_fast_predictor(config)
    batched = predictor.predict_fleet(fleets, now)
    singles = [predictor.predict(logins, now) for logins in fleets]
    assert batched == singles


def test_predict_fleet_odd_instants():
    """Non-slide-aligned instants and the t=0 edge."""
    predictor = get_fast_predictor(DEFAULT_CONFIG)
    fleets = [
        np.array([], dtype=np.int64),
        np.array([9 * HOUR + 17], dtype=np.int64),
        np.arange(0, 28 * DAY, 3 * HOUR + 11, dtype=np.int64),
    ]
    for now in (0, 100, 28 * DAY + 7, 29 * DAY + 12345):
        assert predictor.predict_fleet(fleets, now) == [
            predictor.predict(logins, now) for logins in fleets
        ]


# ----------------------------------------------------------------------
# End-to-end: cache on == cache off
# ----------------------------------------------------------------------


def _workflow_times(result):
    return [
        (
            outcome.database_id,
            outcome.physical_pause_times,
            outcome.logical_pause_times,
            outcome.proactive_resume_times,
            outcome.reactive_resume_times,
        )
        for outcome in result.outcomes
    ]


def _run(traces, config, use_cache, plan, chaos_seed=1234):
    settings = SimulationSettings(use_prediction_cache=use_cache, **EVAL_KWARGS)
    if plan is None:
        return simulate_region(traces, "proactive", config, settings), None
    with chaos(plan, seed=chaos_seed) as injector:
        result = simulate_region(traces, "proactive", config, settings)
        ledger = (injector.total_consults(), dict(injector.consults),
                  injector.total_fires())
    return result, ledger


@pytest.mark.parametrize("seed, variant, plan", SCENARIOS)
def test_cache_is_invisible_end_to_end(seed, variant, plan):
    traces = make_fleet(seed)
    config = CONFIG_VARIANTS[variant]
    on, on_ledger = _run(traces, config, True, plan)
    off, off_ledger = _run(traces, config, False, plan)
    assert on.kpis().to_dict() == off.kpis().to_dict()
    assert on.prewarm_batch_sizes() == off.prewarm_batch_sizes()
    assert _workflow_times(on) == _workflow_times(off)
    # Under chaos the fault-point consultation sequence must match too:
    # the cache sits *behind* the injector consult, never in front of it.
    assert on_ledger == off_ledger


def test_cache_reduces_predictor_invocations():
    """The optimisation pays: same workload, fewer Algorithm-4 entries."""
    traces = make_fleet(0, n=12)
    settings_off = SimulationSettings(use_prediction_cache=False, **EVAL_KWARGS)
    settings_on = SimulationSettings(use_prediction_cache=True, **EVAL_KWARGS)

    HOT_PATH.reset()
    simulate_region(traces, "proactive", DEFAULT_CONFIG, settings_off)
    off = HOT_PATH.snapshot()
    off_invocations = HOT_PATH.predictor_invocations

    HOT_PATH.reset()
    simulate_region(traces, "proactive", DEFAULT_CONFIG, settings_on)
    on = HOT_PATH.snapshot()
    on_invocations = HOT_PATH.predictor_invocations

    assert off["batch_evals"] == 0 and off["cache_hits"] == 0
    assert on["batch_evals"] >= 1  # the settle phase batched
    assert on["cache_hits"] >= 1  # ...and the start() refreshes hit
    assert on_invocations < off_invocations


# ----------------------------------------------------------------------
# Invalidation semantics
# ----------------------------------------------------------------------


class TestLoginVersion:
    def test_login_insert_bumps(self):
        store = HistoryStore()
        before = store.login_version
        assert store.insert_history(100, EventType.ACTIVITY_START)
        assert store.login_version == before + 1

    def test_activity_end_does_not_bump(self):
        store = HistoryStore()
        store.insert_history(100, EventType.ACTIVITY_START)
        before = store.login_version
        assert store.insert_history(200, EventType.ACTIVITY_END)
        assert store.login_version == before
        assert store.version > 0

    def test_duplicate_insert_does_not_bump(self):
        store = HistoryStore()
        store.insert_history(100, EventType.ACTIVITY_START)
        before = store.login_version
        assert not store.insert_history(100, EventType.ACTIVITY_START)
        assert store.login_version == before

    def test_trim_deleting_logins_bumps(self):
        store = HistoryStore()
        store.insert_history(0, EventType.ACTIVITY_START)  # witness
        store.insert_history(DAY, EventType.ACTIVITY_START)
        store.insert_history(40 * DAY, EventType.ACTIVITY_START)
        before = store.login_version
        result = store.delete_old_history(28, 40 * DAY)
        assert result.deleted == 1
        assert store.login_version == before + 1
        assert list(store.login_array()) == [0, 40 * DAY]

    def test_trim_deleting_only_ends_does_not_bump(self):
        store = HistoryStore()
        store.insert_history(0, EventType.ACTIVITY_START)  # witness survives
        store.insert_history(100, EventType.ACTIVITY_END)
        store.insert_history(40 * DAY, EventType.ACTIVITY_START)
        before = store.login_version
        result = store.delete_old_history(28, 40 * DAY)
        assert result.deleted == 1  # only the ACTIVITY_END tuple
        assert store.login_version == before
        assert list(store.login_array()) == [0, 40 * DAY]

    def test_out_of_order_insert_rebuilds_array(self):
        store = HistoryStore()
        store.insert_history(300, EventType.ACTIVITY_START)
        store.insert_history(100, EventType.ACTIVITY_START)
        store.insert_history(200, EventType.ACTIVITY_START)
        assert list(store.login_array()) == [100, 200, 300]


class TestPredictionCache:
    CONFIG = DEFAULT_CONFIG
    PREDICTION = PredictedActivity(start=100, end=200, confidence=0.5)

    def test_exact_key_hit(self):
        cache = PredictionCache()
        cache.put(3, self.CONFIG, 1000, self.PREDICTION)
        assert cache.get(3, self.CONFIG, 1000) == self.PREDICTION

    def test_different_now_misses(self):
        cache = PredictionCache()
        cache.put(3, self.CONFIG, 1000, self.PREDICTION)
        assert cache.get(3, self.CONFIG, 1300) is None

    def test_different_config_misses(self):
        cache = PredictionCache()
        cache.put(3, self.CONFIG, 1000, self.PREDICTION)
        other = self.CONFIG.with_overrides(confidence=0.2)
        assert cache.get(3, other, 1000) is None

    def test_new_login_version_invalidates(self):
        cache = PredictionCache()
        cache.put(3, self.CONFIG, 1000, self.PREDICTION)
        HOT_PATH.reset()
        assert cache.get(4, self.CONFIG, 1000) is None
        assert HOT_PATH.cache_invalidations == 1
        # The slot was cleared: the stale value cannot resurface.
        assert cache.get(3, self.CONFIG, 1000) is None

    def test_counters(self):
        cache = PredictionCache()
        HOT_PATH.reset()
        assert cache.get(1, self.CONFIG, 0) is None
        cache.put(1, self.CONFIG, 0, self.PREDICTION)
        assert cache.get(1, self.CONFIG, 0) == self.PREDICTION
        assert HOT_PATH.cache_misses == 1
        assert HOT_PATH.cache_hits == 1
