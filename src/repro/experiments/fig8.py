"""Figure 8: varying the window size ``w``.

The paper sweeps w from 1 to 8 hours: more historical logins fall into a
larger window, the activity probability rises, resources are proactively
resumed more often, so QoS climbs from 67% to 87% (8a) while idle time
grows from 3% to 8% (8b).  Production picks w = 7h (QoS priority).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis import format_table
from repro.config import DEFAULT_CONFIG
from repro.experiments.common import BENCH_SCALE, ExperimentScale, region_fleet
from repro.parallel import SweepExecutor
from repro.training import ParameterGrid, TrainingPipeline
from repro.types import SECONDS_PER_HOUR
from repro.workload.regions import RegionPreset

HOUR = SECONDS_PER_HOUR

#: The x-axis of Figure 8.
WINDOW_HOURS = (1, 2, 3, 4, 5, 6, 7, 8)


@dataclass(frozen=True)
class Fig8Result:
    rows_by_window: List[Dict[str, object]]

    def rows(self) -> List[Dict[str, object]]:
        return self.rows_by_window

    def table(self) -> str:
        rows = [
            [
                r["window_s"] // HOUR,
                round(r["qos_percent"], 1),
                round(r["idle_percent"], 2),
            ]
            for r in self.rows_by_window
        ]
        return format_table(
            ["window size (h)", "QoS% (8a)", "idle% (8b)"],
            rows,
            title=(
                "Figure 8: varying window size "
                "[paper: QoS 67 -> 87 and idle 3 -> 8 as w grows 1 -> 8h]"
            ),
        )


def run_fig8(
    scale: ExperimentScale = BENCH_SCALE,
    preset: RegionPreset = RegionPreset.EU1,
    window_hours: Sequence[int] = WINDOW_HOURS,
    executor: Optional[SweepExecutor] = None,
    workers: Optional[int] = None,
) -> Fig8Result:
    traces = region_fleet(preset, scale)
    pipeline = TrainingPipeline(traces, scale.settings())
    grid = ParameterGrid({"window_s": [h * HOUR for h in window_hours]})
    report = pipeline.run(DEFAULT_CONFIG, grid, executor=executor, workers=workers)
    return Fig8Result(report.sweep_rows("window_s"))
