"""Chaos scenario: kill the control plane mid-day, recover, lose nothing.

The scenario derives one day's worth of resume/pause workflow submissions
from a region simulation (every proactive resume, reactive resume, and
physical pause the policy actually performed becomes one control-plane
workflow), then drives a :class:`DurableWorkflowEngine` plus the
Section-7 diagnostics runner over that schedule twice:

* **baseline** -- uninterrupted, journaling to its own WAL;
* **crashed** -- with a ``controlplane.wal.*`` fault armed to kill the
  engine at a (seeded-)random journal append mid-day.  The process "dies"
  (the in-memory engine is discarded), the scenario recovers a fresh
  engine from the WAL + checkpoints, re-submits only the schedule entries
  whose submission never reached the log, and finishes the day.

The acceptance bar is the one from the issue: the recovered run's KPI
report and per-database outcome ledger must be **byte-identical** to the
uninterrupted run's, no workflow may execute twice (at most one terminal
record per workflow id in the full ledger) and none may be lost.

The comparison reads only durable engine state -- never the diagnostics
runner's observational counters, which legitimately differ across a
restart (the recovered runner re-samples queues it never saw).
"""

from __future__ import annotations

import json
import random
import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.analysis import format_table
from repro.config import DEFAULT_CONFIG
from repro.controlplane.diagnostics import DiagnosticsRunner
from repro.controlplane.durability import (
    CORRUPT_FAULT_POINT,
    CRASH_FAULT_POINT,
    TORN_FAULT_POINT,
    DurableWorkflowEngine,
    terminal_record_counts,
)
from repro.controlplane.workflows import WorkflowKind
from repro.core.policy import PolicyKind
from repro.errors import ControlPlaneCrashError
from repro.experiments.common import BENCH_SCALE, ExperimentScale, region_fleet
from repro.faults import FaultPlan, FaultSpec, chaos
from repro.simulation.region import simulate_region
from repro.workload.regions import RegionPreset

#: Crash flavours the scenario can pick from (all journal-append deaths).
CRASH_MODES = {
    "crash": CRASH_FAULT_POINT,
    "torn": TORN_FAULT_POINT,
    "corrupt": CORRUPT_FAULT_POINT,
}

#: One schedule entry: (sim time, workflow kind value, database id).
ScheduleEntry = Tuple[int, str, str]


def derive_workflow_schedule(
    preset: RegionPreset, scale: ExperimentScale
) -> List[ScheduleEntry]:
    """The control-plane workload implied by a proactive-policy run: one
    workflow per resume/pause event the simulator performed, in time
    order."""
    traces = region_fleet(preset, scale)
    result = simulate_region(
        traces, PolicyKind.PROACTIVE, DEFAULT_CONFIG, scale.settings()
    )
    schedule: List[ScheduleEntry] = []
    for outcome in result.outcomes:
        for t in outcome.proactive_resume_times:
            schedule.append(
                (t, WorkflowKind.PROACTIVE_RESUME.value, outcome.database_id)
            )
        for t in outcome.reactive_resume_times:
            schedule.append(
                (t, WorkflowKind.REACTIVE_RESUME.value, outcome.database_id)
            )
        for t in outcome.physical_pause_times:
            schedule.append(
                (t, WorkflowKind.PHYSICAL_PAUSE.value, outcome.database_id)
            )
    schedule.sort()
    return schedule


def control_plane_report(engine: DurableWorkflowEngine) -> Dict[str, object]:
    """The control plane's KPI report, derived purely from durable engine
    state: per-kind submission/outcome counts plus mitigation totals."""
    per_kind: Dict[str, Dict[str, int]] = {
        kind.value: {"submitted": 0, "succeeded": 0, "failed": 0}
        for kind in WorkflowKind
    }
    retries = 0
    for workflow in engine.workflows.values():
        bucket = per_kind[workflow.kind.value]
        bucket["submitted"] += 1
        if workflow.state.value == "succeeded":
            bucket["succeeded"] += 1
        elif workflow.state.value == "failed":
            bucket["failed"] += 1
        retries += workflow.retries
    return {
        "kinds": per_kind,
        "workflows": len(engine.workflows),
        "retries": retries,
        "pending": engine.pending_count,
        "running": engine.running_count,
    }


def outcome_ledger(
    engine: DurableWorkflowEngine,
) -> Dict[str, List[Dict[str, object]]]:
    """Per-database ledger of every workflow's full lifecycle -- the
    byte-compared artifact proving recovery reconstructed each database's
    history exactly."""
    ledger: Dict[str, List[Dict[str, object]]] = {}
    for workflow in engine.workflows.values():
        ledger.setdefault(workflow.database_id, []).append(
            {
                "wf": workflow.workflow_id,
                "kind": workflow.kind.value,
                "submitted_at": workflow.submitted_at,
                "started_at": workflow.started_at,
                "finished_at": workflow.finished_at,
                "state": workflow.state.value,
                "retries": workflow.retries,
            }
        )
    for records in ledger.values():
        records.sort(key=lambda r: r["wf"])
    return ledger


def canonical_bytes(document: object) -> bytes:
    return json.dumps(document, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )


@dataclass(frozen=True)
class CrashRecoveryResult:
    """Outcome of :func:`run_crash_recovery`."""

    schedule_size: int
    crash_mode: str
    crash_time: Optional[int]
    crash_error: Optional[str]
    recovery_info: Dict[str, int] = field(default_factory=dict)
    baseline_report: Dict[str, object] = field(default_factory=dict)
    recovered_report: Dict[str, object] = field(default_factory=dict)
    reports_identical: bool = False
    ledgers_identical: bool = False
    exactly_once: bool = False
    none_lost: bool = False
    wal_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def crashed(self) -> bool:
        return self.crash_time is not None

    @property
    def ok(self) -> bool:
        """The issue's acceptance bar: the crash happened, recovery
        produced byte-identical reports and ledgers, every workflow ran
        exactly once, and none were lost."""
        return (
            self.crashed
            and self.reports_identical
            and self.ledgers_identical
            and self.exactly_once
            and self.none_lost
        )

    def table(self) -> str:
        base = self.baseline_report
        rec = self.recovered_report
        rows = []
        for kind in WorkflowKind:
            b = base.get("kinds", {}).get(kind.value, {})
            r = rec.get("kinds", {}).get(kind.value, {})
            rows.append(
                [
                    kind.value,
                    b.get("submitted", 0),
                    b.get("succeeded", 0),
                    b.get("failed", 0),
                    r.get("submitted", 0),
                    r.get("succeeded", 0),
                    r.get("failed", 0),
                ]
            )
        verdict = "ok" if self.ok else "FAILED"
        return format_table(
            [
                "workflow kind",
                "base sub",
                "base ok",
                "base fail",
                "rec sub",
                "rec ok",
                "rec fail",
            ],
            rows,
            title=(
                f"Crash recovery ({self.crash_mode} at t={self.crash_time}, "
                f"replayed {self.recovery_info.get('replayed', 0)}, "
                f"truncated {self.recovery_info.get('truncated_bytes', 0)} B): "
                f"byte-identical {verdict}"
            ),
        )


def _drive(
    engine: DurableWorkflowEngine,
    runner: DiagnosticsRunner,
    schedule: List[ScheduleEntry],
    start: int,
    end: int,
    tick_s: int,
    skip: Optional[Dict[Tuple[str, str, int], int]] = None,
    drain_ticks: int = 400,
    progress: Optional[Dict[str, int]] = None,
) -> None:
    """Drive one control-plane day: submit due schedule entries, tick the
    engine, run the diagnostics pass -- then keep ticking past ``end``
    until the queues drain.

    ``skip`` is the idempotence multiset for post-recovery resumption:
    entries already journaled by the crashed process (keyed by
    ``(db, kind, time)``) are consumed from it instead of re-submitted, so
    a submission is made exactly once across the crash.  Re-running the
    crashed tick itself is safe: journaled transitions are already applied
    (and skipped), the interrupted one is simply re-decided.

    ``progress`` (when given) is updated with the tick time currently
    being driven -- after a crash it tells the caller the exact tick to
    resume from.  Resuming at that tick (not an inferred earlier one) is
    what keeps recovered ``started_at`` times identical to the baseline.

    Phase order within a tick is submissions, diagnostics, engine tick --
    and that order is what makes re-running a crashed tick idempotent:
    each phase only acts on state its own journaled transitions remove
    from its candidate set (a submission leaves the skip multiset, a
    mitigation leaves the stuck set, a start leaves the pending queue).
    Running diagnostics *after* the tick would break this -- a mitigation
    journaled just before the crash would re-enter the re-run tick's
    pending queue and start one tick earlier than in the baseline.
    """
    skip = skip if skip is not None else {}
    index = 0
    now = start
    ticks_past_end = 0
    while True:
        if progress is not None:
            progress["now"] = now
        while index < len(schedule) and schedule[index][0] <= now:
            t, kind, db = schedule[index]
            key = (db, kind, t)
            if skip.get(key, 0) > 0:
                skip[key] -= 1
            else:
                engine.submit(WorkflowKind(kind), db, t)
            index += 1
        runner.run_once(now)
        engine.tick(now)
        if now >= end:
            if engine.drained() and index >= len(schedule):
                return
            ticks_past_end += 1
            if ticks_past_end > drain_ticks:
                return  # undrained; the none_lost check will fail loudly
        now += tick_s


def run_crash_recovery(
    scale: ExperimentScale = BENCH_SCALE,
    preset: RegionPreset = RegionPreset.EU1,
    tick_s: int = 30,
    stuck_probability: float = 0.08,
    checkpoint_every: int = 64,
    crash_mode: Optional[str] = None,
    seed: int = 0,
    workdir: Optional[Path] = None,
) -> CrashRecoveryResult:
    """Run the kill-mid-day crash-recovery scenario (see module docstring).

    ``crash_mode`` picks the journal-append death flavour (``crash`` /
    ``torn`` / ``corrupt``); by default a seeded RNG chooses one, along
    with the crash time inside the middle of the day.
    """
    rng = random.Random(f"{seed}:crash-recovery")
    if crash_mode is None:
        crash_mode = rng.choice(sorted(CRASH_MODES))
    if crash_mode not in CRASH_MODES:
        raise ValueError(
            f"crash_mode must be one of {sorted(CRASH_MODES)}, got {crash_mode!r}"
        )
    schedule = derive_workflow_schedule(preset, scale)
    if not schedule:
        raise ValueError("the derived workflow schedule is empty")
    start, end = scale.eval_start, scale.eval_end
    # The crash lands at a random journal append in the middle half of the
    # day: the fault window opens at crash_at and stays open, max_fires=1.
    crash_at = int(rng.uniform(start + 0.25 * (end - start), start + 0.75 * (end - start)))
    crash_plan = FaultPlan.of(
        FaultSpec(
            CRASH_MODES[crash_mode],
            probability=1.0,
            max_fires=1,
            windows=((crash_at, end + 100 * tick_s),),
        )
    )

    owned = workdir is None
    root = Path(tempfile.mkdtemp(prefix="crash-recovery-")) if owned else Path(workdir)
    try:
        engine_args = dict(
            max_concurrent=50,
            stuck_probability=stuck_probability,
            seed=seed,
            checkpoint_every=checkpoint_every,
        )

        # Baseline: the uninterrupted durable run.
        baseline = DurableWorkflowEngine(root / "baseline", **engine_args)
        _drive(
            baseline,
            DiagnosticsRunner(baseline, stuck_after_s=300, max_retries=2),
            schedule,
            start,
            end,
            tick_s,
        )
        baseline.close()
        baseline_report = control_plane_report(baseline)
        baseline_ledger = outcome_ledger(baseline)

        # Crashed run: same schedule, WAL fault armed, process dies.
        victim = DurableWorkflowEngine(root / "crashed", **engine_args)
        crash_time: Optional[int] = None
        crash_error: Optional[str] = None
        progress: Dict[str, int] = {}
        with chaos(crash_plan, seed=seed):
            try:
                _drive(
                    victim,
                    DiagnosticsRunner(victim, stuck_after_s=300, max_retries=2),
                    schedule,
                    start,
                    end,
                    tick_s,
                    progress=progress,
                )
            except ControlPlaneCrashError as exc:
                crash_error = str(exc)
                crash_time = progress.get("now", start)
        del victim  # the process is dead; only the WAL directory survives

        recovered_report: Dict[str, object] = {}
        reports_identical = ledgers_identical = False
        exactly_once = none_lost = False
        recovery_info: Dict[str, int] = {}
        wal_stats: Dict[str, int] = {}
        if crash_time is not None:
            recovered = DurableWorkflowEngine.recover(
                root / "crashed", checkpoint_every=checkpoint_every
            )
            recovery_info = dict(recovered.recovery_info)
            # Resume the day at the crashed tick; the skip multiset keeps
            # journaled submissions from happening twice.
            resume_from = crash_time
            _drive(
                recovered,
                DiagnosticsRunner(recovered, stuck_after_s=300, max_retries=2),
                schedule,
                resume_from,
                end,
                tick_s,
                skip=dict(recovered.submitted_counts()),
            )
            recovered.close()
            recovered_report = control_plane_report(recovered)
            recovered_ledger = outcome_ledger(recovered)
            reports_identical = canonical_bytes(baseline_report) == canonical_bytes(
                recovered_report
            )
            ledgers_identical = canonical_bytes(baseline_ledger) == canonical_bytes(
                recovered_ledger
            )
            terminals = terminal_record_counts(recovered.read_ledger())
            exactly_once = all(count == 1 for count in terminals.values())
            none_lost = (
                len(recovered.workflows) == len(schedule)
                and set(terminals) == set(recovered.workflows)
                and all(w.terminal for w in recovered.workflows.values())
            )
            wal_stats = recovered.wal_stats()

        return CrashRecoveryResult(
            schedule_size=len(schedule),
            crash_mode=crash_mode,
            crash_time=crash_time,
            crash_error=crash_error,
            recovery_info=recovery_info,
            baseline_report=baseline_report,
            recovered_report=recovered_report,
            reports_identical=reports_identical,
            ledgers_identical=ledgers_identical,
            exactly_once=exactly_once,
            none_lost=none_lost,
            wal_stats=wal_stats,
        )
    finally:
        if owned:
            shutil.rmtree(root, ignore_errors=True)
