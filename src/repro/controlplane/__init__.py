"""Control-plane substrate: workflow execution and diagnostics.

The resource allocation and reclamation mechanisms of Azure SQL Database
run as control-plane workflows with bounded concurrency; a diagnostics and
mitigation runner "monitors the number of databases in the proactive
resume and physical pause queues ... makes sure that these queues drain
and mitigates databases that get stuck during resume or pause.  In rare
cases, this automatic mitigation process times out or fails, incidents are
triggered and resolved by an on-call engineer" (Section 7).

This package reproduces that machinery: a workflow engine with queues,
concurrency limits, and fault injection, plus the runner that retries
stuck workflows and escalates to incidents.
"""

from repro.controlplane.diagnostics import DiagnosticsRunner, Incident
from repro.controlplane.durability import DurableWorkflowEngine, WriteAheadLog
from repro.controlplane.workflows import (
    CRASH_POINT,
    STUCK_POINT,
    Workflow,
    WorkflowEngine,
    WorkflowKind,
    WorkflowState,
)

__all__ = [
    "CRASH_POINT",
    "STUCK_POINT",
    "Workflow",
    "WorkflowEngine",
    "WorkflowKind",
    "WorkflowState",
    "DiagnosticsRunner",
    "DurableWorkflowEngine",
    "WriteAheadLog",
    "Incident",
]
