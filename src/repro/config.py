"""Configuration knobs of the ProRP infrastructure (Table 1 of the paper).

All durations are stored in seconds.  The constructor accepts the same units
the paper uses (hours, days, minutes) through the ``from_paper_units``
factory; the plain constructor takes seconds for full control.

========================  =======================================  =========
Parameter                 Meaning                                  Default
========================  =======================================  =========
``logical_pause_s``       duration ``l`` of a logical pause        7 hours
``history_days``          history length ``h``                     28 days
``horizon_s``             prediction horizon ``p``                 1 day
``confidence``            confidence threshold ``c``               0.1
``window_s``              window size ``w``                        7 hours
``slide_s``               window slide ``s``                       5 minutes
``prewarm_s``             pre-warm time interval ``k``             5 minutes
``seasonality``           pattern period for Algorithm 4           daily
========================  =======================================  =========
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Any, Dict

from repro.errors import ConfigError
from repro.types import SECONDS_PER_DAY, SECONDS_PER_HOUR, SECONDS_PER_MINUTE


class Seasonality(enum.Enum):
    """Periodicity of the activity pattern detected by Algorithm 4.

    The paper deploys daily seasonality by default and reports that weekly
    seasonality achieves similar results (Section 9.2).
    """

    DAILY = SECONDS_PER_DAY
    WEEKLY = 7 * SECONDS_PER_DAY

    @property
    def period_seconds(self) -> int:
        return int(self.value)


@dataclass(frozen=True)
class ProRPConfig:
    """The tunable knobs of the proactive policy (Table 1).

    Instances are immutable; derive variants with :meth:`with_overrides`.
    The training pipeline (Section 8) sweeps these knobs and installs the
    configuration with the best QoS/COGS trade-off.
    """

    logical_pause_s: int = 7 * SECONDS_PER_HOUR
    history_days: int = 28
    horizon_s: int = SECONDS_PER_DAY
    confidence: float = 0.1
    window_s: int = 7 * SECONDS_PER_HOUR
    slide_s: int = 5 * SECONDS_PER_MINUTE
    prewarm_s: int = 5 * SECONDS_PER_MINUTE
    seasonality: Seasonality = Seasonality.DAILY
    #: Period of the proactive resume operation (Algorithm 5).  The paper
    #: tunes this to one minute so no iteration pre-warms more than ~100
    #: databases (Section 9.3, Figure 11).
    resume_operation_period_s: int = SECONDS_PER_MINUTE
    #: Detect daily vs weekly seasonality per database instead of using the
    #: fixed ``seasonality`` knob (an extension beyond the paper's
    #: region-wide setting; see repro.core.seasonality).
    auto_seasonality: bool = False

    def __post_init__(self) -> None:
        self.validate()

    # ------------------------------------------------------------------
    # Validation and derivation
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`ConfigError` if any knob is out of range."""
        if self.logical_pause_s <= 0:
            raise ConfigError("logical pause duration l must be positive")
        if self.history_days <= 0:
            raise ConfigError("history length h must be positive")
        if self.horizon_s <= 0:
            raise ConfigError("prediction horizon p must be positive")
        if not 0.0 < self.confidence <= 1.0:
            raise ConfigError(
                f"confidence threshold c must be in (0, 1], got {self.confidence}"
            )
        if self.window_s <= 0:
            raise ConfigError("window size w must be positive")
        if self.slide_s <= 0:
            raise ConfigError("window slide s must be positive")
        if self.window_s > self.horizon_s:
            raise ConfigError(
                "window size w must not exceed the prediction horizon p "
                f"(w={self.window_s}, p={self.horizon_s})"
            )
        if self.prewarm_s < 0:
            raise ConfigError("pre-warm interval k must be non-negative")
        if self.resume_operation_period_s <= 0:
            raise ConfigError("resume operation period must be positive")
        period = self.seasonality.period_seconds
        if self.history_s % period != 0:
            raise ConfigError(
                "history length must be a whole number of seasonality periods "
                f"(h={self.history_s}s, period={period}s)"
            )

    @property
    def history_s(self) -> int:
        """History length ``h`` in seconds."""
        return self.history_days * SECONDS_PER_DAY

    @property
    def seasonality_periods_in_history(self) -> int:
        """How many seasonality periods fit in the history: the confidence
        denominator of Algorithm 4 (``@h`` there, in days, for daily
        seasonality)."""
        return self.history_s // self.seasonality.period_seconds

    @property
    def windows_per_horizon(self) -> int:
        """Number of iterations of Algorithm 4's outer loop (p/s windows)."""
        if self.horizon_s < self.window_s:
            return 0
        return (self.horizon_s - self.window_s) // self.slide_s + 1

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_paper_units(
        cls,
        logical_pause_hours: float = 7,
        history_days: int = 28,
        horizon_days: float = 1,
        confidence: float = 0.1,
        window_hours: float = 7,
        slide_minutes: float = 5,
        prewarm_minutes: float = 5,
        seasonality: Seasonality = Seasonality.DAILY,
        resume_operation_period_minutes: float = 1,
    ) -> "ProRPConfig":
        """Build a config using the units of Table 1."""
        return cls(
            logical_pause_s=int(logical_pause_hours * SECONDS_PER_HOUR),
            history_days=history_days,
            horizon_s=int(horizon_days * SECONDS_PER_DAY),
            confidence=confidence,
            window_s=int(window_hours * SECONDS_PER_HOUR),
            slide_s=int(slide_minutes * SECONDS_PER_MINUTE),
            prewarm_s=int(prewarm_minutes * SECONDS_PER_MINUTE),
            seasonality=seasonality,
            resume_operation_period_s=int(
                resume_operation_period_minutes * SECONDS_PER_MINUTE
            ),
        )

    def with_overrides(self, **overrides: Any) -> "ProRPConfig":
        """Return a copy with some knobs replaced (validates the result)."""
        return replace(self, **overrides)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form used by the telemetry store and training pipeline."""
        return {
            "logical_pause_s": self.logical_pause_s,
            "history_days": self.history_days,
            "horizon_s": self.horizon_s,
            "confidence": self.confidence,
            "window_s": self.window_s,
            "slide_s": self.slide_s,
            "prewarm_s": self.prewarm_s,
            "seasonality": self.seasonality.name,
            "resume_operation_period_s": self.resume_operation_period_s,
            "auto_seasonality": self.auto_seasonality,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ProRPConfig":
        """Inverse of :meth:`to_dict`."""
        kwargs = dict(data)
        kwargs["seasonality"] = Seasonality[kwargs["seasonality"]]
        kwargs.setdefault("auto_seasonality", False)
        return cls(**kwargs)


#: The production default configuration of the paper (Table 1 / Section 9.1).
DEFAULT_CONFIG = ProRPConfig()
