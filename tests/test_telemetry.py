"""Tests for the telemetry store, the emitter, and offline KPI evaluation."""

import pytest

from repro.simulation import SimulationSettings, simulate_region
from repro.telemetry import (
    Component,
    TelemetryEvent,
    TelemetryStore,
    emit_simulation_telemetry,
    evaluate_offline_kpis,
)
from repro.types import SECONDS_PER_DAY
from repro.workload import RegionPreset, generate_region_traces

DAY = SECONDS_PER_DAY


def event(t, db="db-1", component=Component.ACTIVITY_TRACKING, **payload):
    return TelemetryEvent(t, db, component, payload)


class TestTelemetryStore:
    def test_append_and_scan_in_time_order(self):
        store = TelemetryStore()
        store.append(event(100))
        store.append(event(50))
        store.append(event(75))
        assert [e.time for e in store.scan()] == [50, 75, 100]
        assert len(store) == 3

    def test_scan_filters(self):
        store = TelemetryStore()
        store.append(event(10, db="a"))
        store.append(event(20, db="b", component=Component.PREDICTION))
        store.append(event(30, db="a", component=Component.PREDICTION))
        assert [e.time for e in store.scan(component=Component.PREDICTION)] == [20, 30]
        assert [e.time for e in store.scan(database_id="a")] == [10, 30]
        assert [e.time for e in store.scan(start=15, end=30)] == [20]

    def test_partitioned_by_component_and_day(self):
        store = TelemetryStore()
        store.append(event(0))
        store.append(event(DAY + 5))
        store.append(event(DAY + 6, component=Component.PREDICTION))
        counts = store.partition_counts()
        assert counts[("activity_tracking", 0)] == 1
        assert counts[("activity_tracking", 1)] == 1
        assert counts[("prediction", 1)] == 1

    def test_trim_before_drops_old_partitions(self):
        store = TelemetryStore()
        store.extend([event(0), event(DAY), event(3 * DAY)])
        removed = store.trim_before(2 * DAY)
        assert removed == 2
        assert [e.time for e in store.scan()] == [3 * DAY]

    def test_jsonl_round_trip(self, tmp_path):
        store = TelemetryStore()
        store.extend(
            [
                event(10, payload_key=1),
                event(20, component=Component.RESUME_OPERATION, batch_size=7),
            ]
        )
        path = tmp_path / "telemetry.jsonl"
        assert store.export_jsonl(path) == 2
        loaded = TelemetryStore.import_jsonl(path)
        assert [e.to_json() for e in loaded.scan()] == [
            e.to_json() for e in store.scan()
        ]


class TestEventSchema:
    def test_json_round_trip(self):
        original = event(42, db="x", component=Component.LIFECYCLE, workflow="pause")
        restored = TelemetryEvent.from_json(original.to_json())
        assert restored == original


class TestOfflineEvaluation:
    @pytest.fixture(scope="class")
    def run(self):
        traces = generate_region_traces(RegionPreset.EU2, 60, span_days=32, seed=5)
        settings = SimulationSettings(eval_start=30 * DAY, eval_end=31 * DAY)
        result = simulate_region(traces, "proactive", settings=settings)
        store = TelemetryStore()
        emit_simulation_telemetry(result, traces, store)
        return result, store

    def test_offline_workflow_counts_match_online(self, run):
        """The offline pipeline over telemetry reproduces the online KPI
        counters exactly -- the production cross-check of Section 8."""
        result, store = run
        online = result.kpis()
        offline = evaluate_offline_kpis(store)
        assert offline.proactive_resumes == online.workflows.proactive_resumes
        assert offline.reactive_resumes == online.workflows.reactive_resumes
        assert offline.logical_pauses == online.workflows.logical_pauses
        assert offline.physical_pauses == online.workflows.physical_pauses

    def test_offline_login_totals_match(self, run):
        result, store = run
        online = result.kpis()
        offline = evaluate_offline_kpis(store)
        assert offline.logins_total == online.logins.total
        # QoS from telemetry: logins not resumed reactively.
        assert offline.qos_percent == pytest.approx(online.qos_percent)

    def test_resume_operation_iterations_recorded(self, run):
        result, store = run
        offline = evaluate_offline_kpis(store)
        expected = [
            r
            for r in result.resume_iterations
            if result.settings.eval_start <= r.time < result.settings.eval_end
        ]
        assert offline.resume_operation_iterations == len(expected)
        assert offline.max_prewarm_batch == max(r.batch_size for r in expected)

    def test_empty_store_yields_zero_kpis(self):
        offline = evaluate_offline_kpis(TelemetryStore())
        assert offline.logins_total == 0
        assert offline.qos_percent == 0.0
