"""A minimal, deterministic discrete-event engine.

Events are callables scheduled at integer timestamps; ties are broken by
insertion order so simulations are reproducible.  Timers can be cancelled
(lazily: cancelled entries are skipped when popped), which the policy actors
use to drop a pending logical-pause wake-up when the customer logs in.

Most scheduled events are never cancelled (session starts/ends, resume
completions, the periodic control-plane ticks), so :meth:`EventQueue.
schedule_oneshot` offers a lighter path that skips the :class:`Timer`
allocation and its ``on_cancel`` closure entirely; only events that may
need cancelling (the actors' wake timers) pay for a handle.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.observability.runtime import OBS

Action = Callable[[int], None]


class Timer:
    """Handle for a scheduled event; ``cancel()`` prevents execution."""

    __slots__ = ("time", "_cancelled", "_popped", "_on_cancel")

    def __init__(self, time: int, on_cancel: Optional[Callable[[], None]] = None):
        self.time = time
        self._cancelled = False
        self._popped = False
        self._on_cancel = on_cancel

    def cancel(self) -> None:
        if self._cancelled:
            return
        self._cancelled = True
        # Tell the owning queue to drop this entry from its live count,
        # unless the entry already left the heap.
        if self._on_cancel is not None and not self._popped:
            self._on_cancel()

    @property
    def cancelled(self) -> bool:
        return self._cancelled


class EventQueue:
    """Priority queue of timed actions with a monotonic clock.

    ``len(queue)`` counts the *live* (scheduled, not cancelled, not yet
    executed) entries.  Cancellation is lazy in the heap -- cancelled
    entries are skipped when popped -- but the count is maintained
    eagerly, so ``__len__`` is O(1); it sits on hot-path assertions and
    must not scan the heap.
    """

    def __init__(self, start: int = 0):
        self._now = start
        self._heap: List[Tuple[int, int, Optional[Timer], Action]] = []
        self._sequence = itertools.count()
        self._live = 0

    @property
    def now(self) -> int:
        return self._now

    def __len__(self) -> int:
        return self._live

    def _drop_live(self) -> None:
        self._live -= 1

    def schedule(self, time: int, action: Action) -> Timer:
        """Schedule ``action(time)``; returns a cancellable handle."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event at t={time} before now={self._now}"
            )
        timer = Timer(time, on_cancel=self._drop_live)
        heapq.heappush(self._heap, (time, next(self._sequence), timer, action))
        self._live += 1
        return timer

    def schedule_oneshot(self, time: int, action: Action) -> None:
        """Schedule ``action(time)`` without a cancellable handle.

        Identical dispatch semantics to :meth:`schedule` (same (time,
        insertion-order) priority), but no :class:`Timer` object and no
        ``on_cancel`` closure are allocated.  Use it for the majority of
        events that are never cancelled -- trace replay and the periodic
        control-plane ticks -- and keep :meth:`schedule` for wake-ups
        that a login may need to drop.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event at t={time} before now={self._now}"
            )
        heapq.heappush(self._heap, (time, next(self._sequence), None, action))
        self._live += 1

    def schedule_after(self, delay: int, action: Action) -> Timer:
        return self.schedule(self._now + delay, action)

    def _dispatch(self, time: int, action: Action) -> None:
        """Execute one popped event, tracing it when observability is on.

        Every span opened while the action runs (policy, predictor, resume
        scan, SQL) nests under this ``engine.event`` span -- the dispatch
        is the root of the per-event trace context.
        """
        if OBS.enabled:
            with OBS.tracer.span("engine.event", t=time):
                action(time)
            OBS.metrics.counter("engine.events_dispatched").inc()
        else:
            action(time)

    def _record_run_metrics(self, executed: int, start: int) -> None:
        if OBS.enabled and self._now > start:
            OBS.metrics.gauge("engine.sim_time").set(self._now)
            OBS.metrics.gauge("engine.events_per_sim_second").set(
                executed / (self._now - start)
            )

    def run_until(self, end: int) -> int:
        """Process every event with time <= ``end``; returns the number of
        events executed.  The clock finishes at ``end``."""
        executed = 0
        run_start = self._now
        while self._heap and self._heap[0][0] <= end:
            time, _, timer, action = heapq.heappop(self._heap)
            if timer is not None:
                timer._popped = True
                if timer.cancelled:
                    # Already removed from the live count at cancel() time.
                    continue
            self._live -= 1
            self._now = time
            self._dispatch(time, action)
            executed += 1
        self._now = max(self._now, end)
        self._record_run_metrics(executed, run_start)
        return executed

    def run_all(self) -> int:
        """Process every remaining event."""
        executed = 0
        run_start = self._now
        while self._heap:
            time, _, timer, action = heapq.heappop(self._heap)
            if timer is not None:
                timer._popped = True
                if timer.cancelled:
                    continue
            self._live -= 1
            self._now = time
            self._dispatch(time, action)
            executed += 1
        self._record_run_metrics(executed, run_start)
        return executed
