"""Discrete-event simulation of a region of serverless databases.

* :mod:`repro.simulation.engine` -- the event queue (priority heap with
  stable ordering and cancellable timers).  Events are plain callables, so
  there is no separate event-type module.
* :mod:`repro.simulation.actor` -- the per-database policy executors: the
  reactive baseline and the proactive policy of Algorithm 1, driven by
  session start/end events from a workload trace.
* :mod:`repro.simulation.region` -- the region simulator: wires actors,
  the cluster, the metadata store, and the proactive resume operation
  (Algorithm 5) together and produces KPI reports.
* :mod:`repro.simulation.results` -- accounting of logins, idle time,
  workflow counts, and timelines.
"""

from repro.simulation.engine import EventQueue, Timer
from repro.simulation.region import (
    RegionSimulationResult,
    SimulationSettings,
    simulate_region,
)

__all__ = [
    "EventQueue",
    "Timer",
    "simulate_region",
    "SimulationSettings",
    "RegionSimulationResult",
]
