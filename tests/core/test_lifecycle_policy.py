"""Tests for the Figure 4 FSM and the pure Algorithm 1 decision logic."""

import pytest

from repro.core.lifecycle import (
    Lifecycle,
    LifecycleState,
    LifecycleTransition,
    legal_transitions,
)
from repro.core.policy import (
    IdleDecision,
    decide_after_logical_pause,
    decide_on_idle,
    logical_pause_wake_time,
    prediction_expired,
    reactive_idle_decision,
    reactive_wake_time,
)
from repro.errors import SimulationError
from repro.types import SECONDS_PER_HOUR, PredictedActivity

HOUR = SECONDS_PER_HOUR
L = 7 * HOUR  # default logical pause duration

NONE = PredictedActivity.none()


class TestLifecycle:
    def test_initial_state(self):
        lc = Lifecycle("db")
        assert lc.state is LifecycleState.RESUMED
        assert lc.allocated

    def test_full_proactive_cycle(self):
        lc = Lifecycle("db")
        lc.apply(LifecycleTransition.IDLE_TO_LOGICAL, 10)
        assert lc.state is LifecycleState.LOGICALLY_PAUSED
        assert lc.allocated  # resources still available during logical pause
        lc.apply(LifecycleTransition.LOGICAL_TO_PHYSICAL, 20)
        assert not lc.allocated
        lc.apply(LifecycleTransition.PROACTIVE_RESUME, 30)
        assert lc.state is LifecycleState.LOGICALLY_PAUSED
        lc.apply(LifecycleTransition.LOGICAL_TO_RESUMED, 40)
        assert lc.state is LifecycleState.RESUMED
        assert [r.transition for r in lc.log] == [
            LifecycleTransition.IDLE_TO_LOGICAL,
            LifecycleTransition.LOGICAL_TO_PHYSICAL,
            LifecycleTransition.PROACTIVE_RESUME,
            LifecycleTransition.LOGICAL_TO_RESUMED,
        ]

    def test_reactive_resume_passes_through_resuming(self):
        lc = Lifecycle("db")
        lc.apply(LifecycleTransition.IDLE_TO_PHYSICAL, 10)
        lc.apply(LifecycleTransition.REACTIVE_RESUME_START, 20)
        assert lc.state is LifecycleState.RESUMING
        assert not lc.allocated  # the availability gap
        lc.apply(LifecycleTransition.REACTIVE_RESUME_COMPLETE, 21)
        assert lc.state is LifecycleState.RESUMED

    def test_illegal_transition_rejected(self):
        lc = Lifecycle("db")
        with pytest.raises(SimulationError):
            lc.apply(LifecycleTransition.PROACTIVE_RESUME, 10)

    def test_time_travel_rejected(self):
        lc = Lifecycle("db")
        lc.apply(LifecycleTransition.IDLE_TO_LOGICAL, 100)
        with pytest.raises(SimulationError):
            lc.apply(LifecycleTransition.LOGICAL_TO_RESUMED, 99)

    def test_same_time_transition_allowed(self):
        lc = Lifecycle("db")
        lc.apply(LifecycleTransition.IDLE_TO_LOGICAL, 100)
        lc.apply(LifecycleTransition.LOGICAL_TO_RESUMED, 100)

    def test_can_apply(self):
        lc = Lifecycle("db")
        assert lc.can_apply(LifecycleTransition.IDLE_TO_LOGICAL)
        assert not lc.can_apply(LifecycleTransition.LOGICAL_TO_RESUMED)

    def test_legal_transitions_cover_all_states(self):
        for state in LifecycleState:
            transitions = legal_transitions(state)
            assert transitions, f"{state} must have outgoing edges"

    def test_log_can_be_disabled(self):
        lc = Lifecycle("db", record_log=False)
        lc.apply(LifecycleTransition.IDLE_TO_LOGICAL, 10)
        assert lc.log == []


class TestDecideOnIdle:
    """Algorithm 1 lines 10-12."""

    def test_activity_predicted_far_away_physical(self):
        prediction = PredictedActivity(start=1000 + L, end=1000 + L + HOUR)
        assert (
            decide_on_idle(1000, True, prediction, L)
            is IdleDecision.PHYSICAL_PAUSE
        )

    def test_activity_predicted_soon_logical(self):
        prediction = PredictedActivity(start=1000 + L - 1, end=1000 + L + HOUR)
        assert (
            decide_on_idle(1000, True, prediction, L) is IdleDecision.LOGICAL_PAUSE
        )

    def test_old_without_prediction_physical(self):
        assert decide_on_idle(1000, True, NONE, L) is IdleDecision.PHYSICAL_PAUSE

    def test_new_without_prediction_logical(self):
        """New databases always pause logically first (Section 4)."""
        assert decide_on_idle(1000, False, NONE, L) is IdleDecision.LOGICAL_PAUSE

    def test_ongoing_predicted_window_logical(self):
        """Prediction window currently open -> stay available."""
        prediction = PredictedActivity(start=500, end=2000)
        assert decide_on_idle(1000, True, prediction, L) is IdleDecision.LOGICAL_PAUSE

    def test_boundary_exactly_l_away_is_physical(self):
        prediction = PredictedActivity(start=1000 + L, end=1000 + L)
        assert (
            decide_on_idle(1000, True, prediction, L)
            is IdleDecision.PHYSICAL_PAUSE
        )


class TestLogicalPauseWakeTime:
    def test_new_database_waits_l(self):
        assert logical_pause_wake_time(100, 100, False, NONE, L) == 100 + L

    def test_old_with_prediction_waits_until_end(self):
        prediction = PredictedActivity(start=500, end=900)
        assert logical_pause_wake_time(100, 100, True, prediction, L) == 900

    def test_new_with_prediction_waits_longest(self):
        prediction = PredictedActivity(start=500, end=100 + L + HOUR)
        wake = logical_pause_wake_time(100, 100, False, prediction, L)
        assert wake == 100 + L + HOUR

    def test_expired_prediction_immediate(self):
        prediction = PredictedActivity(start=50, end=90)
        assert logical_pause_wake_time(100, 100, True, prediction, L) == 100

    def test_degenerate_point_prediction_in_future(self):
        prediction = PredictedActivity(start=500, end=500)
        assert logical_pause_wake_time(100, 100, True, prediction, L) == 500


class TestDecideAfterLogicalPause:
    """Algorithm 1 line 26."""

    def test_new_database_after_l_physical(self):
        now = 100 + L
        assert (
            decide_after_logical_pause(now, 100, False, NONE, L)
            is IdleDecision.PHYSICAL_PAUSE
        )

    def test_new_database_before_l_logical(self):
        now = 100 + L - 1
        assert (
            decide_after_logical_pause(now, 100, False, NONE, L)
            is IdleDecision.LOGICAL_PAUSE
        )

    def test_old_far_prediction_physical(self):
        prediction = PredictedActivity(start=5000 + L, end=5000 + L + 10)
        assert (
            decide_after_logical_pause(5000, 100, True, prediction, L)
            is IdleDecision.PHYSICAL_PAUSE
        )

    def test_old_near_prediction_stays_logical(self):
        prediction = PredictedActivity(start=5000 + HOUR, end=5000 + 2 * HOUR)
        assert (
            decide_after_logical_pause(5000, 100, True, prediction, L)
            is IdleDecision.LOGICAL_PAUSE
        )

    def test_old_no_prediction_physical(self):
        assert (
            decide_after_logical_pause(5000, 100, True, NONE, L)
            is IdleDecision.PHYSICAL_PAUSE
        )


class TestReactiveHelpers:
    def test_reactive_always_logical_first(self):
        assert reactive_idle_decision() is IdleDecision.LOGICAL_PAUSE

    def test_reactive_wake_is_pause_plus_l(self):
        assert reactive_wake_time(100, L) == 100 + L


class TestPredictionExpired:
    def test_initial_sentinel_is_expired(self):
        assert prediction_expired(NONE, 100)

    def test_ongoing_prediction_not_expired(self):
        assert not prediction_expired(PredictedActivity(50, 150), 100)

    def test_past_prediction_expired(self):
        assert prediction_expired(PredictedActivity(50, 99), 100)

    def test_end_exactly_now_not_expired(self):
        """Line 7 uses strict <, so end == now keeps the prediction."""
        assert not prediction_expired(PredictedActivity(50, 100), 100)
