"""Throughput bench for the shared-nothing sharded serving tier.

Three measurements on the same machine, same seeds:

* **single_closed** -- the pre-sharding posture measured fresh: one
  in-process :class:`PredictionServer`, inline login histories, a
  closed-loop saturation run (128 concurrent clients, warmup pass
  excluded from timing).  This is the same-modality denominator and the
  p99 comparator.
* **single_storm** -- the committed-quick-baseline methodology
  (``BENCH_serving_quick.json``'s overload storm) at a moderate offered
  rate, reported for continuity with the serving bench.
* **sweep** -- the sharded tier at 1, 2 (full runs: 4, 8) workers.  Per
  worker count: a closed-loop capacity run (gated) and an open-loop
  storm at 2x the offered single rate (reported: shed-reason breakdown,
  router queue depth against the windows, per-worker routing).  By-id
  requests consistent-hash onto spawned workers that read login history
  zero-copy from the shared-memory arena; the worker-side prediction
  cache (keyed on the arena's login version) turns the steady state into
  synchronous cache hits, and the router coalesces same-iteration
  requests into one wire frame per worker.

The acceptance gate: at **2 workers** the sharded tier must clear
**>= 2x** the committed single-process quick baseline's storm
throughput (``overload.throughput_rps`` in ``BENCH_serving_quick.json``
-- also enforced cross-file by ``check_regression.py``'s
``min_ratio_vs_other_baseline`` check) at equal-or-better p99 than the
fresh same-modality single-process run.  The same-modality throughput
ratio (``speedup_2w_vs_fresh_single``) is reported and drift-gated but
has no absolute floor: on a single-core runner every process shares one
CPU, so the sharded curve measures IPC efficiency, not parallel
speedup; on multi-core hardware it is the number that should approach
the worker count (design target >= 10x at 8 workers).

Run directly::

    PYTHONPATH=src python benchmarks/bench_serving_sharded.py          # full
    PYTHONPATH=src python benchmarks/bench_serving_sharded.py --quick  # CI

or through pytest (quick scale)::

    PYTHONPATH=src python -m pytest benchmarks/bench_serving_sharded.py -q
"""

from __future__ import annotations

import asyncio
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional

from repro.serving import (
    PredictionServer,
    ServingSettings,
    closed_loop,
    fleet_login_arrays,
    open_loop,
)
from repro.serving.sharded import RouterSettings, ShardRouter
from repro.types import SECONDS_PER_DAY

DAY = SECONDS_PER_DAY
NOW = 29 * DAY

RESULTS_DIR = Path(__file__).resolve().parent / "results"
BASELINE_PATH = RESULTS_DIR / "BENCH_serving_sharded.json"
QUICK_BASELINE_PATH = RESULTS_DIR / "BENCH_serving_sharded_quick.json"
SERVING_QUICK_BASELINE = RESULTS_DIR / "BENCH_serving_quick.json"

#: Closed-loop saturation: enough concurrency to keep every stage busy
#: and every router frame well coalesced.
CLIENTS = 128
WARMUP_PER_CLIENT = 5
REQUESTS_PER_CLIENT = 30
#: Router window sized so the closed-loop run never sheds (the storm
#: rows are where shedding is the point).
ROUTER_WINDOW = 256
#: Storm rows: moderate overload for the single tier, double that for
#: the sharded rows so both run visibly past capacity.
SINGLE_STORM_RATE = 15_000.0
SHARDED_STORM_RATE = 30_000.0
SINGLE_QUEUE_DEPTH = 16

#: The acceptance gate at 2 workers, against the committed
#: single-process quick baseline's storm throughput.
MIN_SPEEDUP_2W_VS_BASELINE = 2.0

#: The p99 gate tolerates this much timing noise: both sides of the
#: comparison are fresh wall-clock percentiles from a shared (often
#: single-core) runner, where run-to-run jitter of 10-20% is routine.
P99_NOISE_FACTOR = 1.25


def _fleet_tuples(n_databases: int, n_partitions: int):
    """Login tuples plus aligned ids and sub-region labels.  Regions are
    the shard key; partitioning the fleet over ``n_partitions`` of them
    spreads ring ownership across workers."""
    fleets = fleet_login_arrays(n_databases=n_databases, now=NOW, seed=0)
    database_ids = [f"db-{i}" for i in range(len(fleets))]
    regions = [f"EU1-s{i % n_partitions}" for i in range(len(fleets))]
    return fleets, database_ids, regions


def _single_runs(fleets, storm_requests: int) -> Dict[str, Dict[str, object]]:
    """The fresh single-process denominators: closed-loop capacity and
    the committed-baseline storm methodology."""

    async def run_closed():
        server = PredictionServer(
            settings=ServingSettings(max_batch_size=CLIENTS, max_queue_depth=512)
        )
        await server.start()
        await closed_loop(
            server, fleets, NOW, clients=CLIENTS,
            requests_per_client=WARMUP_PER_CLIENT, seed=7,
        )
        report = await closed_loop(
            server, fleets, NOW, clients=CLIENTS,
            requests_per_client=REQUESTS_PER_CLIENT, seed=64,
        )
        await server.stop()
        return report.summary()

    async def run_storm():
        server = PredictionServer(
            settings=ServingSettings(max_queue_depth=SINGLE_QUEUE_DEPTH)
        )
        await server.start()
        report = await open_loop(
            server, fleets, NOW, rate_rps=SINGLE_STORM_RATE,
            n_requests=storm_requests, seed=1,
        )
        await server.stop()
        summary = report.summary()
        summary["offered_rate_rps"] = SINGLE_STORM_RATE
        summary["max_depth"] = server.stats.max_depth
        summary["queue_bound"] = SINGLE_QUEUE_DEPTH
        return summary

    return {
        "single_closed": asyncio.run(run_closed()),
        "single_storm": asyncio.run(run_storm()),
    }


def _sharded_run(
    fleets, database_ids, regions, n_workers: int, storm_requests: int
) -> Dict[str, object]:
    """One sweep point: closed-loop capacity then an overload storm,
    against one router session (one set of worker spawns)."""
    fleet: Dict[str, list] = {}
    for database_id, logins, region in zip(database_ids, fleets, regions):
        fleet.setdefault(region, []).append((database_id, tuple(logins), False))

    async def run():
        router = ShardRouter.build(
            fleet,
            n_workers=n_workers,
            settings=RouterSettings(
                window=ROUTER_WINDOW, health_interval_s=0.0
            ),
        )
        await router.start()
        await closed_loop(
            router, fleets, NOW, clients=CLIENTS,
            requests_per_client=WARMUP_PER_CLIENT, seed=7,
            database_ids=database_ids, regions=regions,
        )
        closed = await closed_loop(
            router, fleets, NOW, clients=CLIENTS,
            requests_per_client=REQUESTS_PER_CLIENT, seed=64,
            database_ids=database_ids, regions=regions,
        )
        storm = await open_loop(
            router, fleets, NOW, rate_rps=SHARDED_STORM_RATE,
            n_requests=storm_requests, seed=1,
            database_ids=database_ids, regions=regions,
        )
        storm_summary = storm.summary()
        storm_summary["offered_rate_rps"] = SHARDED_STORM_RATE
        await router.stop()
        hits = misses = served = 0
        for handle in router.handles.values():
            final = handle.final_stats or {}
            hits += final.get("cache_hits", 0)
            misses += final.get("cache_misses", 0)
            served += final.get("served", 0)
        return {
            "workers": n_workers,
            "closed": closed.summary(),
            "storm": storm_summary,
            # Router-side backpressure story for the whole session:
            # depth against the windows, typed sheds, ring spread.
            "router": {
                "window": ROUTER_WINDOW,
                "max_outstanding": router.stats.max_outstanding,
                "shed_overloaded": router.stats.shed_overloaded,
                "retries": router.stats.retries,
                "by_worker": {
                    str(k): v
                    for k, v in sorted(router.stats.by_worker.items())
                },
            },
            "cache_hits": hits,
            "cache_misses": misses,
            "worker_served": served,
            "cache_hit_fraction": round(hits / max(1, hits + misses), 3),
        }

    return asyncio.run(run())


def _committed_single_storm_rps() -> Optional[float]:
    """The committed quick serving baseline's storm throughput -- the
    denominator of the acceptance gate.  ``None`` when the baseline is
    absent (fresh checkout): the cross-baseline check in
    ``check_regression.py`` still enforces the ratio in CI."""
    if not SERVING_QUICK_BASELINE.is_file():
        return None
    doc = json.loads(SERVING_QUICK_BASELINE.read_text())
    return float(doc["overload"]["throughput_rps"])


def run_bench(quick: bool = False) -> dict:
    n_databases = 40 if quick else 120
    storm_requests = 4500 if quick else 12000
    worker_counts = (1, 2) if quick else (1, 2, 4, 8)
    n_partitions = max(8, max(worker_counts) * 4)
    fleets, database_ids, regions = _fleet_tuples(n_databases, n_partitions)

    result: Dict[str, object] = _single_runs(fleets, storm_requests)
    single_closed = result["single_closed"]
    sweep: Dict[str, Dict[str, object]] = {}
    for workers in worker_counts:
        row = _sharded_run(
            fleets, database_ids, regions, workers, storm_requests
        )
        row["speedup_vs_fresh_single"] = round(
            row["closed"]["throughput_rps"]
            / single_closed["throughput_rps"],
            2,
        ) if single_closed["throughput_rps"] > 0 else 0.0
        sweep[str(workers)] = row

    committed = _committed_single_storm_rps()
    two = sweep["2"]
    result.update(
        {
            "quick": quick,
            "n_databases": n_databases,
            "n_partitions": n_partitions,
            "clients": CLIENTS,
            "storm_requests": storm_requests,
            "sweep": sweep,
            "speedup_2w_vs_fresh_single": two["speedup_vs_fresh_single"],
            "committed_single_storm_rps": committed,
            # Storm-to-storm: both tiers' completed throughput under an
            # open-loop overload, the sharded side against the committed
            # single-process quick baseline.
            "speedup_2w_vs_committed_baseline": round(
                two["storm"]["throughput_rps"] / committed, 2
            )
            if committed
            else None,
            "min_speedup_2w_vs_baseline": MIN_SPEEDUP_2W_VS_BASELINE,
        }
    )
    return result


def _check(result: dict) -> None:
    single_closed = result["single_closed"]
    two = result["sweep"]["2"]
    # The acceptance gate: 2 sharded workers clear 2x the committed
    # single-process quick baseline's storm throughput...
    committed = result["committed_single_storm_rps"]
    if committed:
        assert (
            two["storm"]["throughput_rps"]
            >= MIN_SPEEDUP_2W_VS_BASELINE * committed
        ), (
            f"sharded tier at 2 workers completed "
            f"{two['storm']['throughput_rps']} rps under storm, below "
            f"{MIN_SPEEDUP_2W_VS_BASELINE}x the committed single-process "
            f"quick baseline {committed} rps"
        )
    # ...at equal-or-better p99 than the fresh same-modality
    # single-process run (within wall-clock noise).
    assert (
        two["closed"]["p99_ms"]
        <= P99_NOISE_FACTOR * single_closed["p99_ms"]
    ), (
        f"sharded p99 {two['closed']['p99_ms']} ms worse than "
        f"single-process {single_closed['p99_ms']} ms "
        f"(noise factor {P99_NOISE_FACTOR})"
    )
    for workers, row in result["sweep"].items():
        # The mechanism must actually engage: by-id traffic hits the
        # worker prediction cache, the router never holds more than its
        # windows allow, and the storm's books balance.
        assert row["cache_hits"] > 0, f"no cache hits at {workers} workers"
        assert (
            row["router"]["max_outstanding"]
            <= ROUTER_WINDOW * int(workers)
        ), (
            f"router outstanding {row['router']['max_outstanding']} "
            f"exceeded window x workers at {workers} workers"
        )
        storm = row["storm"]
        assert storm["completed"] + storm["shed"] == storm["offered"]
        assert row["closed"]["shed"] == 0, (
            f"closed-loop capacity run shed at {workers} workers; "
            f"the window is undersized for the client count"
        )


def _report(result: dict) -> str:
    single_closed = result["single_closed"]
    single_storm = result["single_storm"]
    lines = [
        f"Sharded serving tier, {result['n_databases']} databases over "
        f"{result['n_partitions']} region shards, {result['clients']} "
        f"closed-loop clients" + (" (quick)" if result["quick"] else ""),
        f"  single closed-loop: {single_closed['throughput_rps']:>8} rps  "
        f"p99 {single_closed['p99_ms']} ms",
        f"  single storm @{single_storm['offered_rate_rps']:.0f} rps: "
        f"{single_storm['throughput_rps']:>8} rps completed  "
        f"p99 {single_storm['p99_ms']} ms  "
        f"(committed baseline {result['committed_single_storm_rps']} rps)",
        "  workers  closed rps  p99 ms  vs-fresh  cache-hit  "
        "storm rps  storm shed",
    ]
    for workers in sorted(result["sweep"], key=int):
        row = result["sweep"][workers]
        closed = row["closed"]
        storm = row["storm"]
        lines.append(
            f"  {workers:>7}  {closed['throughput_rps']:>10}  "
            f"{closed['p99_ms']:>6}  {row['speedup_vs_fresh_single']:>7}x  "
            f"{row['cache_hit_fraction']:>9}  {storm['throughput_rps']:>9}  "
            f"{storm['shed']}"
        )
    two = result["sweep"]["2"]
    reasons = ", ".join(
        f"{reason}={count}"
        for reason, count in sorted(two["storm"]["shed_by_kind"].items())
        if count
    )
    lines.append(f"  storm shed by reason at 2 workers: {reasons or 'none'}")
    lines.append(
        f"  router at 2 workers: max outstanding "
        f"{two['router']['max_outstanding']} (window "
        f"{two['router']['window']}), routing {two['router']['by_worker']}"
    )
    if result["speedup_2w_vs_committed_baseline"] is not None:
        lines.append(
            f"  2 workers vs committed single-process quick baseline: "
            f"{result['speedup_2w_vs_committed_baseline']}x "
            f"(gate >= {result['min_speedup_2w_vs_baseline']}x)"
        )
    return "\n".join(lines)


def bench_serving_sharded(record_table) -> None:
    """Pytest entry: quick scale."""
    result = run_bench(quick=True)
    record_table("serving_sharded", _report(result))
    _check(result)


def main(argv: List[str]) -> int:
    quick = "--quick" in argv
    if "--out" in argv:
        out = Path(argv[argv.index("--out") + 1])
    else:
        out = QUICK_BASELINE_PATH if quick else BASELINE_PATH
    result = run_bench(quick=quick)
    print(_report(result))
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out}")
    _check(result)
    print("ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
