"""Tests for the history store: Algorithms 2 (InsertHistory) and 3
(DeleteOldHistory) semantics, plus the queries Algorithm 4 issues."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import StorageError
from repro.storage.database import Database
from repro.storage.history import BYTES_PER_TUPLE, HistoryStore
from repro.types import SECONDS_PER_DAY, ActivityTrace, EventType, HistoryEvent, Session

DAY = SECONDS_PER_DAY


class TestInsertHistory:
    def test_insert_start_and_end(self):
        store = HistoryStore()
        assert store.insert_history(100, EventType.ACTIVITY_START) is True
        assert store.insert_history(200, EventType.ACTIVITY_END) is True
        assert store.tuple_count == 2

    def test_duplicate_timestamp_skipped(self):
        """Algorithm 2 inserts only IF NOT EXISTS on time_snapshot."""
        store = HistoryStore()
        assert store.insert_history(100, EventType.ACTIVITY_START) is True
        assert store.insert_history(100, EventType.ACTIVITY_END) is False
        assert store.tuple_count == 1
        events = store.all_events()
        assert events[0].event_type == EventType.ACTIVITY_START

    def test_bulk_load_counts_inserted(self):
        store = HistoryStore()
        events = [
            HistoryEvent(10, EventType.ACTIVITY_START),
            HistoryEvent(20, EventType.ACTIVITY_END),
            HistoryEvent(10, EventType.ACTIVITY_START),  # duplicate second
        ]
        assert store.bulk_load(events) == 2

    def test_login_timestamps_track_only_starts(self):
        store = HistoryStore()
        store.insert_history(10, EventType.ACTIVITY_START)
        store.insert_history(20, EventType.ACTIVITY_END)
        store.insert_history(30, EventType.ACTIVITY_START)
        assert list(store.login_timestamps()) == [10, 30]

    def test_login_timestamps_sorted_on_out_of_order_insert(self):
        store = HistoryStore()
        store.insert_history(30, EventType.ACTIVITY_START)
        store.insert_history(10, EventType.ACTIVITY_START)
        assert list(store.login_timestamps()) == [10, 30]


class TestDeleteOldHistory:
    def test_new_database_not_old(self):
        """A database younger than h days reports old=False, deletes nothing."""
        store = HistoryStore()
        now = 10 * DAY
        store.insert_history(now - 5 * DAY, EventType.ACTIVITY_START)
        result = store.delete_old_history(history_days=28, now=now)
        assert result.old is False
        assert result.deleted == 0
        assert store.tuple_count == 1

    def test_empty_history_not_old(self):
        store = HistoryStore()
        result = store.delete_old_history(history_days=28, now=100 * DAY)
        assert result.old is False
        assert result.min_timestamp is None

    def test_old_database_trims_but_keeps_lifespan_witness(self):
        """Algorithm 3 deletes tuples strictly between MIN and historyStart:
        the oldest tuple stays as the lifespan witness."""
        store = HistoryStore()
        now = 100 * DAY
        oldest = now - 60 * DAY
        stale = [oldest + i * DAY for i in range(1, 30)]  # all older than h=28d
        recent = [now - 10 * DAY, now - 1 * DAY]
        for t in [oldest] + stale + recent:
            store.insert_history(t, EventType.ACTIVITY_START)
        result = store.delete_old_history(history_days=28, now=now)
        assert result.old is True
        assert result.min_timestamp == oldest
        assert store.min_timestamp() == oldest  # witness survives
        remaining = [e.time_snapshot for e in store.all_events()]
        history_start = now - 28 * DAY
        assert all(t == oldest or t >= history_start for t in remaining)
        assert set(recent).issubset(remaining)

    def test_boundary_tuple_at_history_start_survives(self):
        """The range delete is exclusive of historyStart itself."""
        store = HistoryStore()
        now = 100 * DAY
        history_start = now - 28 * DAY
        store.insert_history(history_start - 5 * DAY, EventType.ACTIVITY_START)
        store.insert_history(history_start, EventType.ACTIVITY_END)
        result = store.delete_old_history(history_days=28, now=now)
        assert result.old is True
        assert result.deleted == 0
        assert store.tuple_count == 2

    def test_min_exactly_at_history_start_not_old(self):
        store = HistoryStore()
        now = 100 * DAY
        store.insert_history(now - 28 * DAY, EventType.ACTIVITY_START)
        result = store.delete_old_history(history_days=28, now=now)
        assert result.old is False

    def test_login_view_kept_in_sync_after_trim(self):
        store = HistoryStore()
        now = 100 * DAY
        oldest = now - 40 * DAY
        store.insert_history(oldest, EventType.ACTIVITY_START)
        store.insert_history(now - 30 * DAY, EventType.ACTIVITY_START)
        store.insert_history(now - 5 * DAY, EventType.ACTIVITY_START)
        store.delete_old_history(history_days=28, now=now)
        assert list(store.login_timestamps()) == [oldest, now - 5 * DAY]

    def test_invalid_history_days(self):
        store = HistoryStore()
        with pytest.raises(StorageError):
            store.delete_old_history(history_days=0, now=100)


class TestQueries:
    def test_first_last_login_filters_event_type(self):
        store = HistoryStore()
        store.insert_history(10, EventType.ACTIVITY_END)
        store.insert_history(20, EventType.ACTIVITY_START)
        store.insert_history(30, EventType.ACTIVITY_START)
        store.insert_history(40, EventType.ACTIVITY_END)
        first, last = store.first_last_login(0, 100)
        assert (first, last) == (20, 30)

    def test_first_last_login_empty_window(self):
        store = HistoryStore()
        store.insert_history(20, EventType.ACTIVITY_START)
        assert store.first_last_login(30, 40) == (None, None)

    def test_first_last_login_inclusive_bounds(self):
        store = HistoryStore()
        store.insert_history(10, EventType.ACTIVITY_START)
        store.insert_history(20, EventType.ACTIVITY_START)
        assert store.first_last_login(10, 20) == (10, 20)

    def test_events_in_range(self):
        store = HistoryStore()
        for t in [5, 15, 25]:
            store.insert_history(t, EventType.ACTIVITY_START)
        events = store.events_in_range(10, 30)
        assert [e.time_snapshot for e in events] == [15, 25]

    def test_size_bytes_paper_accounting(self):
        """Two 64-bit integers per tuple (Section 9.3)."""
        store = HistoryStore()
        for t in range(100):
            store.insert_history(t, EventType.ACTIVITY_START)
        assert store.size_bytes() == 100 * BYTES_PER_TUPLE == 1600

    def test_store_reattaches_to_existing_database(self):
        """History moves with the database during load balancing (§3.3):
        re-opening the same Database must see the same rows."""
        database = Database("tenant-1")
        store = HistoryStore(database)
        store.insert_history(10, EventType.ACTIVITY_START)
        store.insert_history(20, EventType.ACTIVITY_END)
        reopened = HistoryStore(database)
        assert reopened.tuple_count == 2
        assert list(reopened.login_timestamps()) == [10]


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.integers(min_value=0, max_value=80 * DAY),
        unique=True,
        min_size=1,
        max_size=80,
    ),
    st.integers(min_value=80 * DAY, max_value=120 * DAY),
    st.integers(min_value=1, max_value=40),
)
def test_delete_old_history_properties(timestamps, now, h):
    """Post-conditions of Algorithm 3 for arbitrary histories."""
    store = HistoryStore()
    for t in timestamps:
        store.insert_history(t, EventType.ACTIVITY_START)
    oldest = min(timestamps)
    history_start = now - h * DAY
    result = store.delete_old_history(history_days=h, now=now)
    assert result.old == (oldest < history_start)
    remaining = [e.time_snapshot for e in store.all_events()]
    # The oldest tuple always survives.
    assert oldest in remaining
    # Nothing strictly between oldest and history_start survives.
    assert not [t for t in remaining if oldest < t < history_start]
    # Everything at or after history_start survives.
    expected_recent = sorted(t for t in timestamps if t >= history_start)
    assert [t for t in remaining if t >= history_start] == expected_recent
    # The login view matches the table contents.
    assert list(store.login_timestamps()) == sorted(remaining)


def test_trace_events_round_trip():
    """ActivityTrace.events() loads into the store losslessly."""
    trace = ActivityTrace(
        "db", [Session(10, 20), Session(30, 45), Session(50, 60)]
    )
    store = HistoryStore()
    store.bulk_load(trace.events())
    assert store.tuple_count == 6
    assert list(store.login_timestamps()) == [10, 30, 50]
    assert store.first_last_login(25, 55) == (30, 50)
