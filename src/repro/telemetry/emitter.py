"""Emit the telemetry stream a production ProRP deployment would produce.

The simulator's per-database outcomes already hold every event with its
timestamp; this module converts them into :class:`TelemetryEvent` records
(activity tracking, lifecycle workflows, resume-operation iterations) and
appends them to a store for offline evaluation (Section 8) and training.
"""

from __future__ import annotations

from typing import Sequence

from repro.simulation.region import RegionSimulationResult
from repro.telemetry.events import Component, TelemetryEvent
from repro.telemetry.store import TelemetryStore
from repro.types import ActivityTrace


def emit_simulation_telemetry(
    result: RegionSimulationResult,
    traces: Sequence[ActivityTrace],
    store: TelemetryStore,
) -> int:
    """Append the full event stream of one simulation run; returns the
    number of events emitted."""
    emitted = 0
    window_start = result.settings.eval_start
    window_end = result.settings.eval_end
    by_id = {trace.database_id: trace for trace in traces}

    for outcome in result.outcomes:
        trace = by_id.get(outcome.database_id)
        if trace is not None:
            for session in trace.sessions:
                if window_start <= session.start < window_end:
                    store.append(TelemetryEvent(
                        session.start,
                        outcome.database_id,
                        Component.ACTIVITY_TRACKING,
                        {"event_type": 1},
                    ))
                    emitted += 1
                if window_start <= session.end < window_end:
                    store.append(TelemetryEvent(
                        session.end,
                        outcome.database_id,
                        Component.ACTIVITY_TRACKING,
                        {"event_type": 0},
                    ))
                    emitted += 1
        workflow_streams = [
            ("proactive_resume", outcome.proactive_resume_times),
            ("reactive_resume", outcome.reactive_resume_times),
            ("logical_pause", outcome.logical_pause_times),
            ("physical_pause", outcome.physical_pause_times),
        ]
        for kind, times in workflow_streams:
            for t in times:
                store.append(TelemetryEvent(
                    t,
                    outcome.database_id,
                    Component.LIFECYCLE,
                    {"workflow": kind},
                ))
                emitted += 1

    for iteration in result.resume_iterations:
        if window_start <= iteration.time < window_end:
            store.append(TelemetryEvent(
                iteration.time,
                "-",
                Component.RESUME_OPERATION,
                {"batch_size": iteration.batch_size},
            ))
            emitted += 1
    return emitted
