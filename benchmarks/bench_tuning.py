"""Online tuning vs the static monthly sweep under concept drift.

The paper re-derives its ``(l, c, w)`` knobs from a monthly offline
sweep, so a fleet whose behaviour changes mid-month serves a stale
config until the next sweep.  This benchmark materialises exactly that
failure mode and measures how much the online tuner + predictor bank
(:mod:`repro.tuning`) recovers:

* **scenarios**: drifted fleets (``archetype_switch`` -- the fleet is
  re-purposed; ``dst_shift`` -- every schedule moves by three hours, a
  daylight-saving/holiday change) with the drift landing *mid-evaluation*.
  The static arm keeps the swept-for-the-old-fleet config; the online
  arm runs :func:`repro.tuning.driver.run_online_tuning` with the
  successive-halving challenger population and the three-policy
  predictor bank over the same aligned windows.  The headline per
  scenario is the paper objective (:func:`qos_priority_objective`) on
  the merged evaluation span -- the acceptance gate is that the online
  arm **dominates** (never loses to) the static baseline on every
  drift scenario.
* **sanity**: a single-candidate, bank-less online run must reproduce
  the static series exactly (the no-op configuration is byte-identical
  by construction; the benchmark re-asserts it on the drifted fleet).

Baselines are committed under ``benchmarks/results/``: the full run
(seeds 1-3 per scenario) writes ``BENCH_tuning.json``; the ``--quick``
variant (one seed) writes ``BENCH_tuning_quick.json``.  CI re-runs the
quick variant to a scratch directory and ``benchmarks/check_regression.py``
gates the dominance booleans and QoS/COGS ratios against the committed
quick baseline.

Run directly for a human-readable report::

    PYTHONPATH=src python benchmarks/bench_tuning.py          # full
    PYTHONPATH=src python benchmarks/bench_tuning.py --quick  # CI
    PYTHONPATH=src python benchmarks/bench_tuning.py --quick --out /tmp/fresh.json

or through pytest (quick scale)::

    PYTHONPATH=src python -m pytest benchmarks/bench_tuning.py -q
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, List

from repro.config import ProRPConfig
from repro.simulation.region import SimulationSettings
from repro.training.objective import qos_priority_objective
from repro.tuning import candidate_population, default_candidates
from repro.tuning.driver import run_online_tuning
from repro.types import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.workload.fleetgen import DriftSpec, FleetShardSpec

DAY = SECONDS_PER_DAY
HOUR = SECONDS_PER_HOUR

RESULTS_DIR = Path(__file__).resolve().parent / "results"
BASELINE_PATH = RESULTS_DIR / "BENCH_tuning.json"
QUICK_BASELINE_PATH = RESULTS_DIR / "BENCH_tuning_quick.json"

N_DATABASES = 60
SPAN_DAYS = 15
DRIFT_DAY = 10
EVAL_START_DAY = 9
N_WINDOWS = 5
QUICK_SEEDS = (2,)
FULL_SEEDS = (1, 2, 3)

#: The "stale sweep" baseline: knobs tuned tight for the pre-drift
#: fleet (short logical pause, narrow window, short history), exactly
#: the shape a monthly offline sweep would have locked in.
BASELINE = ProRPConfig(
    logical_pause_s=3 * HOUR,
    window_s=2 * HOUR,
    slide_s=15 * 60,
    confidence=0.3,
    history_days=7,
)

SCENARIO_KINDS = ("archetype_switch", "dst_shift")
SHIFT_MINUTES = 180
POLICIES = ("sliding", "hybrid_histogram", "survival")
ONLINE_WARMUP_S = 3 * DAY

#: Allowed COGS give-back: online idle may exceed static idle by at
#: most this many percentage points (the objective already penalises
#: idle above its 15% cap 10:1, so real runs sit far inside this).
IDLE_SLACK_PERCENT = 10.0


def _drift(kind: str, seed: int) -> DriftSpec:
    base = FleetShardSpec(
        n_databases=N_DATABASES, span_days=SPAN_DAYS, seed=seed
    )
    return DriftSpec(
        base, kind=kind, at_day=DRIFT_DAY, shift_minutes=SHIFT_MINUTES
    )


def _settings() -> SimulationSettings:
    return SimulationSettings(
        eval_start=EVAL_START_DAY * DAY, eval_end=(EVAL_START_DAY + 1) * DAY
    )


def _run_seed(kind: str, seed: int, workers: int) -> dict:
    fleet = _drift(kind, seed)
    challengers = candidate_population(
        BASELINE, default_candidates(BASELINE)
    )
    start = time.perf_counter()
    report = run_online_tuning(
        fleet,
        BASELINE,
        challengers,
        n_windows=N_WINDOWS,
        settings=_settings(),
        policies=POLICIES,
        online_warmup_s=ONLINE_WARMUP_S,
        workers=workers,
    )
    wall_s = time.perf_counter() - start
    return {
        "online_score": round(report.online_score, 3),
        "static_score": round(report.static_score, 3),
        "online_qos_percent": report.online_kpis.qos_percent,
        "static_qos_percent": report.static_kpis.qos_percent,
        "online_idle_percent": report.online_kpis.idle_percent,
        "static_idle_percent": report.static_kpis.idle_percent,
        "promotions": report.promotions,
        "demotions": report.demotions,
        "windows": len(report.windows),
        "dominates": report.dominates_static,
        "wall_s": round(wall_s, 3),
    }


def _scenario(kind: str, seeds, workers: int) -> dict:
    per_seed: Dict[str, dict] = {
        str(seed): _run_seed(kind, seed, workers) for seed in seeds
    }
    runs = list(per_seed.values())
    static_qos = max(
        1e-9, sum(r["static_qos_percent"] for r in runs) / len(runs)
    )
    online_qos = sum(r["online_qos_percent"] for r in runs) / len(runs)
    static_idle = max(r["static_idle_percent"] for r in runs)
    return {
        "seeds": list(seeds),
        "per_seed": per_seed,
        "online_score": round(
            sum(r["online_score"] for r in runs) / len(runs), 3
        ),
        "static_score": round(
            sum(r["static_score"] for r in runs) / len(runs), 3
        ),
        "score_delta": round(
            sum(r["online_score"] - r["static_score"] for r in runs)
            / len(runs),
            3,
        ),
        # QoS ratio (higher is better) and a COGS guard: the worst-seed
        # online idle must stay within IDLE_SLACK_PERCENT points of the
        # worst-seed static idle.
        "qos_ratio": round(online_qos / static_qos, 3),
        "online_idle_percent": round(
            max(r["online_idle_percent"] for r in runs), 3
        ),
        "idle_guard_percent": round(static_idle + IDLE_SLACK_PERCENT, 3),
        "dominates": all(r["dominates"] for r in runs),
        "promotions": sum(r["promotions"] for r in runs),
    }


def _sanity(seed: int) -> dict:
    """Single-candidate, bank-less online run == the static series."""
    fleet = _drift("dst_shift", seed)
    report = run_online_tuning(
        fleet, BASELINE, challengers=(), n_windows=2, settings=_settings()
    )
    identical = (
        report.online_kpis.to_dict() == report.static_kpis.to_dict()
        and report.online_score == report.static_score
        and report.promotions == 0
        and report.demotions == 0
    )
    return {"identical": identical, "score": round(report.online_score, 3)}


def run_bench(quick: bool = False) -> dict:
    seeds = QUICK_SEEDS if quick else FULL_SEEDS
    workers = min(4, os.cpu_count() or 1)
    scenarios = {
        kind: _scenario(kind, seeds, workers) for kind in SCENARIO_KINDS
    }
    return {
        "quick": quick,
        "n_databases": N_DATABASES,
        "span_days": SPAN_DAYS,
        "drift_day": DRIFT_DAY,
        "n_windows": N_WINDOWS,
        "shift_minutes": SHIFT_MINUTES,
        "policies": list(POLICIES),
        "baseline": {
            "logical_pause_s": BASELINE.logical_pause_s,
            "window_s": BASELINE.window_s,
            "slide_s": BASELINE.slide_s,
            "confidence": BASELINE.confidence,
            "history_days": BASELINE.history_days,
        },
        "scenarios": scenarios,
        "dominant_scenarios": sum(
            1 for s in scenarios.values() if s["dominates"]
        ),
        "static_sanity": _sanity(seeds[0]),
    }


def _check(result: dict) -> None:
    assert result["static_sanity"]["identical"], (
        "single-candidate bank-less run diverged from the static series"
    )
    for kind, scenario in result["scenarios"].items():
        for seed, run in scenario["per_seed"].items():
            assert run["windows"] == N_WINDOWS, (
                f"{kind} seed {seed} completed {run['windows']} windows, "
                f"expected {N_WINDOWS}"
            )
        assert (
            scenario["online_idle_percent"] <= scenario["idle_guard_percent"]
        ), f"{kind}: online idle blew the COGS guard"
    # The acceptance gate: online tuning dominates the stale static
    # sweep on at least two drift scenarios.
    assert result["dominant_scenarios"] >= 2, (
        f"online tuning dominated only {result['dominant_scenarios']} "
        f"drift scenario(s), need >= 2"
    )


def _report(result: dict) -> str:
    lines = [
        f"Online tuning vs static sweep under drift "
        f"({result['n_databases']} dbs, drift at day {result['drift_day']}, "
        f"{result['n_windows']} windows"
        + (", quick)" if result["quick"] else ")")
    ]
    for kind, scenario in result["scenarios"].items():
        lines.append(
            f"  {kind}: online {scenario['online_score']} vs static "
            f"{scenario['static_score']} (delta {scenario['score_delta']}, "
            f"qos ratio {scenario['qos_ratio']}), "
            f"idle {scenario['online_idle_percent']}% "
            f"(guard {scenario['idle_guard_percent']}%), "
            f"{scenario['promotions']} promotions, dominates: "
            f"{scenario['dominates']}"
        )
    sanity = result["static_sanity"]
    lines.append(
        f"  sanity: no-op online == static: {sanity['identical']} "
        f"(score {sanity['score']})"
    )
    lines.append(
        f"  dominant scenarios: {result['dominant_scenarios']}/"
        f"{len(result['scenarios'])}"
    )
    return "\n".join(lines)


def bench_tuning(record_table) -> None:
    """Pytest entry: quick scale, deterministic assertions only."""
    result = run_bench(quick=True)
    record_table("tuning", _report(result))
    _check(result)


def main(argv: List[str]) -> int:
    quick = "--quick" in argv
    if "--out" in argv:
        out = Path(argv[argv.index("--out") + 1])
    else:
        out = QUICK_BASELINE_PATH if quick else BASELINE_PATH
    result = run_bench(quick=quick)
    print(_report(result))
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out}")
    _check(result)
    print("ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
