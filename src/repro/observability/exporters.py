"""Exporters: JSONL span log, Chrome trace-event JSON, metrics snapshot.

Three formats, all dependency-free:

* :func:`write_spans_jsonl` -- one JSON object per finished span; the
  machine-readable log a collector would ship.
* :func:`write_chrome_trace` -- the Trace Event Format consumed by
  ``chrome://tracing`` / Perfetto: one complete ("ph": "X") event per
  span, timestamps and durations in microseconds.
* :func:`write_metrics_snapshot` -- the plain-text registry dump of
  ``MetricsRegistry.format_snapshot`` (plus a JSON variant for tooling).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence, Union

from repro.observability.metrics import MetricsRegistry
from repro.observability.tracer import SpanRecord

PathLike = Union[str, Path]


def write_spans_jsonl(spans: Sequence[SpanRecord], path: PathLike) -> int:
    """One JSON line per span; returns the number written."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for span in spans:
            handle.write(json.dumps(span.to_dict(), sort_keys=True))
            handle.write("\n")
    return len(spans)


def chrome_trace_events(spans: Sequence[SpanRecord]) -> List[Dict[str, object]]:
    """Spans as Trace Event Format "complete" events.

    All spans share pid 1 / tid 1: the simulation is one logical thread,
    and the viewer nests events by timestamp containment -- which matches
    the tracer's stack discipline exactly.
    """
    events: List[Dict[str, object]] = []
    for span in spans:
        args: Dict[str, object] = dict(span.attributes)
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        events.append(
            {
                "name": span.name,
                "ph": "X",
                "ts": span.start_ns / 1000.0,
                "dur": span.duration_ns / 1000.0,
                "pid": 1,
                "tid": 1,
                "cat": span.name.split(".", 1)[0],
                "args": args,
            }
        )
    events.sort(key=lambda e: (e["ts"], -e["dur"]))
    return events


def write_chrome_trace(spans: Sequence[SpanRecord], path: PathLike) -> int:
    """Write the ``chrome://tracing`` JSON document; returns the event count."""
    events = chrome_trace_events(spans)
    document = {"traceEvents": events, "displayTimeUnit": "ms"}
    Path(path).write_text(json.dumps(document), encoding="utf-8")
    return len(events)


def write_metrics_snapshot(
    registry: MetricsRegistry, path: PathLike, title: str = "metrics"
) -> None:
    """Plain-text snapshot, or JSON when the path ends in ``.json``."""
    path = Path(path)
    if path.suffix == ".json":
        path.write_text(
            json.dumps(registry.snapshot(), indent=2, sort_keys=False),
            encoding="utf-8",
        )
    else:
        path.write_text(registry.format_snapshot(title) + "\n", encoding="utf-8")
