"""Shared helpers for the benchmark harness.

Every figure bench runs its experiment once under pytest-benchmark (the
timing measures the full regeneration cost) and writes the resulting table
to ``benchmarks/results/<name>.txt`` in addition to printing it, so the
regenerated rows survive pytest's output capture.
"""

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_table(results_dir):
    """record_table(name, text): persist and echo one experiment table."""

    def _record(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print()
        print(text)

    return _record
