"""Figure 10: overhead of the online ProRP components.

Three CDFs over the fleet:
(a) history tuple counts -- the paper reports an average within ~500 per
    28-day retention and a worst case above 4K tuples;
(b) history size in KB at two 64-bit integers per tuple -- average within
    7 KB, worst case within 74 KB;
(c) wall-clock latency of the next-activity prediction (the *reference*
    stored-procedure implementation) -- average within 90 ms, worst case
    within 700 ms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis import EmpiricalCdf, format_table
from repro.config import DEFAULT_CONFIG, ProRPConfig
from repro.experiments.common import BENCH_SCALE, ExperimentScale, region_fleet
from repro.observability.runtime import OBS, observed
from repro.observability.tracer import NULL_TRACER
from repro.simulation.region import simulate_region
from repro.workload.regions import RegionPreset

#: CDF probes printed per panel.
QUANTILES = (0.25, 0.5, 0.75, 0.9, 0.99, 1.0)


@dataclass(frozen=True)
class Fig10Result:
    tuple_counts: EmpiricalCdf
    history_kb: EmpiricalCdf
    prediction_latency_ms: EmpiricalCdf

    def rows(self) -> List[Dict[str, float]]:
        out = []
        for q in QUANTILES:
            out.append(
                {
                    "quantile": q,
                    "tuples": self.tuple_counts.quantile(q),
                    "history_kb": self.history_kb.quantile(q),
                    "latency_ms": self.prediction_latency_ms.quantile(q),
                }
            )
        return out

    def table(self) -> str:
        rows = [
            [
                r["quantile"],
                round(r["tuples"], 0),
                round(r["history_kb"], 2),
                round(r["latency_ms"], 1),
            ]
            for r in self.rows()
        ]
        headline = (
            f"measured mean: {self.tuple_counts.mean():.0f} tuples, "
            f"{self.history_kb.mean():.2f} KB, "
            f"{self.prediction_latency_ms.mean():.1f} ms"
        )
        return format_table(
            ["quantile", "tuples (10a)", "history KB (10b)", "latency ms (10c)"],
            rows,
            title=(
                "Figure 10: ProRP overhead CDFs [paper: avg <=500 tuples / "
                f"7 KB / 90 ms; max >4K / 74 KB / 700 ms] -- {headline}"
            ),
        )


def _chatty_tail(scale: ExperimentScale):
    """A handful of connection-pool-flapping databases: the rare tail that
    carries Figure 10(a)'s worst case (histories above 4K tuples).  They
    are ~0.2% of the region mixtures, so a small fleet sample would often
    miss them; the overhead study includes them explicitly (about 1.5% of
    the panel fleet) to make the tail deterministic."""
    from repro.workload.archetypes import DailyBusinessHours
    from repro.workload.generator import FleetSpec, generate_fleet

    spec = FleetSpec(
        mixture=(
            ("chatty", 1.0, lambda r: DailyBusinessHours(
                workday_start_h=7.0 + r.uniform(-1, 1),
                workday_end_h=22.0 + r.uniform(-1, 1),
                breaks_per_day=r.uniform(30, 80),
                break_minutes=r.uniform(3, 8),
                weekdays_only=False,
                skip_day_probability=0.0,
            )),
        ),
        new_database_fraction=0.0,
    )
    n_tail = max(2, scale.n_databases // 64)
    return generate_fleet(
        spec, n_tail, scale.span_days, seed=scale.seed, id_prefix="tail"
    )


def run_fig10(
    scale: Optional[ExperimentScale] = None,
    preset: RegionPreset = RegionPreset.EU1,
    config: ProRPConfig = DEFAULT_CONFIG,
) -> Fig10Result:
    """Run the proactive policy with per-call latency measurement (which
    forces the reference predictor) and collect the per-database history
    footprints at the end of the run."""
    if scale is None:
        # One eval day over the full bench fleet keeps the reference
        # predictor's total cost to a few seconds.
        scale = BENCH_SCALE.smaller(n_databases=BENCH_SCALE.n_databases, eval_days=1)
    traces = region_fleet(preset, scale) + _chatty_tail(scale)
    settings = scale.settings(measure_prediction_latency=True)
    if OBS.enabled:
        # Ambient observability (e.g. the CLI's --metrics-out): reuse it.
        result = simulate_region(traces, "proactive", config, settings)
        registry = OBS.metrics
    else:
        # Panel (c) reads the live metrics layer directly: metrics-only
        # (spans off -- tracing every engine event would perturb the very
        # latency being measured).
        with observed(tracer=NULL_TRACER):
            result = simulate_region(traces, "proactive", config, settings)
            registry = OBS.metrics
    tuple_counts = EmpiricalCdf(
        [store.tuple_count for store in result.histories.values()]
    )
    history_kb = EmpiricalCdf(
        [store.size_bytes() / 1024.0 for store in result.histories.values()]
    )
    histogram = registry.histogram("predictor.reference.latency_ms")
    samples = list(histogram.samples)
    if len(samples) != histogram.count:
        # Sample buffer overflowed (fleet beyond ~65K predictions): fall
        # back to the actor-side measurements rather than interpolate.
        samples = [s * 1000.0 for s in result.kpis().prediction_latencies_s]
    latencies = EmpiricalCdf(samples)
    return Fig10Result(
        tuple_counts=tuple_counts,
        history_kb=history_kb,
        prediction_latency_ms=latencies,
    )
