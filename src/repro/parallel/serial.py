"""The deterministic in-process sweep backend (the default)."""

from __future__ import annotations

import time
from typing import Any, List, Sequence

from repro.parallel.base import SweepExecutor, SweepStats, SweepWorker, TaskRecord


class SerialExecutor(SweepExecutor):
    """Evaluate every task in submission order on the calling thread.

    This is the reference behaviour every other backend must reproduce
    bit-for-bit; it is also the fallback when a parallel backend is
    unavailable or degrades.
    """

    name = "serial"

    def run(
        self, worker: SweepWorker, context: Any, items: Sequence[Any]
    ) -> List[Any]:
        items = list(items)
        stats = SweepStats(
            backend=self.name, workers=1, tasks_queued=len(items), n_chunks=1
        )
        results: List[Any] = []
        run_start = time.perf_counter()
        for index, item in enumerate(items):
            task_start = time.perf_counter()
            results.append(worker(context, item))
            wall = time.perf_counter() - task_start
            stats.tasks.append(TaskRecord(index=index, wall_s=wall, worker="serial"))
            stats.task_wall_s += wall
            stats.tasks_completed += 1
        stats.wall_s = time.perf_counter() - run_start
        self._finish(stats)
        return results
