"""Synthetic load generation against the serving gateway.

Two canonical harnesses:

* **Closed loop** -- N client coroutines, each issuing a request, awaiting
  the response, and immediately issuing the next.  Offered load adapts to
  service capacity; this is the latency-vs-concurrency curve the serving
  benchmark sweeps (1/8/64 clients).
* **Open loop** -- arrivals fire on a seeded exponential (Poisson) clock
  regardless of completions.  Offered load is fixed, so driving the rate
  past capacity exercises admission control: the gateway must shed with
  typed rejections while completed requests keep a bounded latency.

Request histories come from the real workload layer: a region preset's
archetype mixture (``repro.workload.regions``) generates the fleet, and
each request carries one database's login timestamps -- the same arrays
``HistoryStore.login_array()`` would serve in the simulator.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import DEFAULT_CONFIG
from repro.serving.requests import ErrorResponse, PredictRequest, Response
from repro.serving.server import PredictionServer
from repro.types import SECONDS_PER_DAY
from repro.workload.regions import RegionPreset, generate_region_traces

DAY = SECONDS_PER_DAY


def fleet_login_arrays(
    preset: RegionPreset = RegionPreset.EU1,
    n_databases: int = 60,
    now: int = 29 * DAY,
    span_days: int = 31,
    seed: int = 0,
    history_days: Optional[int] = None,
) -> List[Tuple[int, ...]]:
    """Per-database sorted login tuples as the history store would hold
    them at ``now``: region-preset traces clipped to the retention
    window.  Databases with no logins in the window are dropped (the
    gateway answers them trivially; they would dilute the benchmark)."""
    history_days = (
        DEFAULT_CONFIG.history_days if history_days is None else history_days
    )
    start = now - history_days * DAY
    traces = generate_region_traces(
        preset, n_databases, span_days=span_days, seed=seed
    )
    fleets = []
    for trace in traces:
        logins = tuple(
            s.start for s in trace.sessions if start <= s.start < now
        )
        if logins:
            fleets.append(logins)
    return fleets


@dataclass
class LoadReport:
    """Outcome of one load-generation run."""

    mode: str
    clients: int
    offered: int
    completed: int
    shed: int
    errors: int
    duration_s: float
    latencies_ms: List[float] = field(default_factory=list)
    shed_by_kind: Dict[str, int] = field(default_factory=dict)

    @property
    def throughput_rps(self) -> float:
        return self.completed / self.duration_s if self.duration_s > 0 else 0.0

    def percentile_ms(self, p: float) -> float:
        if not self.latencies_ms:
            return 0.0
        ordered = sorted(self.latencies_ms)
        rank = max(
            0, min(len(ordered) - 1, round(p / 100.0 * len(ordered)) - 1)
        )
        return ordered[rank]

    def summary(self) -> Dict[str, object]:
        return {
            "mode": self.mode,
            "clients": self.clients,
            "offered": self.offered,
            "completed": self.completed,
            "shed": self.shed,
            "errors": self.errors,
            "duration_s": round(self.duration_s, 4),
            "throughput_rps": round(self.throughput_rps, 1),
            "p50_ms": round(self.percentile_ms(50.0), 3),
            "p99_ms": round(self.percentile_ms(99.0), 3),
            "shed_by_kind": dict(self.shed_by_kind),
        }


def _account(report: LoadReport, response: Response, latency_ms: float) -> None:
    if isinstance(response, ErrorResponse):
        report.shed += 1
        report.shed_by_kind[response.kind] = (
            report.shed_by_kind.get(response.kind, 0) + 1
        )
        if response.kind == "unavailable":
            report.errors += 1
    else:
        report.completed += 1
        report.latencies_ms.append(latency_ms)


async def closed_loop(
    server: PredictionServer,
    fleets: Sequence[Sequence[int]],
    now: int,
    clients: int,
    requests_per_client: int,
    region: str = "EU1",
    config: str = "default",
    seed: int = 0,
    database_ids: Optional[Sequence[str]] = None,
    regions: Optional[Sequence[str]] = None,
) -> LoadReport:
    """``clients`` concurrent request loops, each issuing
    ``requests_per_client`` predictions back-to-back.

    ``database_ids`` (aligned with ``fleets``) switches the storm to
    *by-id* requests: each request carries the database's identity
    instead of its login array, so the server (or sharded worker)
    resolves history from its registry/arena -- the zero-serialisation
    hot path.  ``regions``, also aligned, spreads requests over a
    multi-region fleet (required to exercise sharded routing); both
    default to the classic single-region inline-logins storm.
    """
    report = LoadReport(
        mode="closed",
        clients=clients,
        offered=clients * requests_per_client,
        completed=0,
        shed=0,
        errors=0,
        duration_s=0.0,
    )

    async def client(client_id: int) -> None:
        rng = random.Random(seed * 1_000_003 + client_id)
        for i in range(requests_per_client):
            target = rng.randrange(len(fleets))
            request = PredictRequest(
                request_id=f"c{client_id}-{i}",
                logins=()
                if database_ids is not None
                else tuple(fleets[target]),
                now=now,
                region=regions[target] if regions is not None else region,
                config=config,
                tenant=f"client-{client_id}",
                database_id=database_ids[target]
                if database_ids is not None
                else None,
            )
            started = time.perf_counter()
            response = await server.submit(request)
            _account(
                report, response, (time.perf_counter() - started) * 1000.0
            )

    started = time.perf_counter()
    await asyncio.gather(*(client(c) for c in range(clients)))
    report.duration_s = time.perf_counter() - started
    return report


async def open_loop(
    server: PredictionServer,
    fleets: Sequence[Sequence[int]],
    now: int,
    rate_rps: float,
    n_requests: int,
    region: str = "EU1",
    config: str = "default",
    seed: int = 0,
    deadline_ms: Optional[float] = None,
    database_ids: Optional[Sequence[str]] = None,
    regions: Optional[Sequence[str]] = None,
) -> LoadReport:
    """Fire ``n_requests`` arrivals at ``rate_rps`` (seeded Poisson
    inter-arrivals) without waiting for completions, then await them all.

    ``database_ids``/``regions`` (aligned with ``fleets``) switch to the
    by-id multi-region storm exactly as in :func:`closed_loop`.

    Arrival times are precomputed and paced against the wall clock: when
    the generator falls behind schedule (inter-arrival gaps below the
    event loop's sleep resolution), arrivals fire back-to-back without
    sleeping.  Offered load therefore tracks ``rate_rps`` as bursts
    rather than being silently floored by per-sleep overhead -- which is
    exactly what an overload benchmark needs."""
    report = LoadReport(
        mode="open",
        clients=0,
        offered=n_requests,
        completed=0,
        shed=0,
        errors=0,
        duration_s=0.0,
    )
    rng = random.Random(seed * 1_000_003 + 999_331)
    tasks: List[asyncio.Task] = []
    loop = asyncio.get_running_loop()

    async def fire(i: int) -> None:
        target = rng.randrange(len(fleets))
        request = PredictRequest(
            request_id=f"o-{i}",
            logins=() if database_ids is not None else tuple(fleets[target]),
            now=now,
            region=regions[target] if regions is not None else region,
            config=config,
            deadline_ms=deadline_ms,
            database_id=database_ids[target]
            if database_ids is not None
            else None,
        )
        started = time.perf_counter()
        response = await server.submit(request)
        _account(report, response, (time.perf_counter() - started) * 1000.0)

    offsets = []
    t = 0.0
    for _ in range(n_requests):
        t += rng.expovariate(rate_rps)
        offsets.append(t)

    started = time.perf_counter()
    for i, offset in enumerate(offsets):
        delay = started + offset - time.perf_counter()
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(loop.create_task(fire(i)))
    await asyncio.gather(*tasks)
    report.duration_s = time.perf_counter() - started
    return report
