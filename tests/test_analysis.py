"""Tests for CDFs, percentiles, box-plot summaries, and table rendering."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import EmpiricalCdf, box_plot_summary, format_table, percentile


class TestPercentile:
    def test_median_odd(self):
        assert percentile([1, 2, 3], 50) == 2

    def test_median_even_interpolates(self):
        assert percentile([1, 2, 3, 4], 50) == 2.5

    def test_extremes(self):
        assert percentile([5, 1, 9], 0) == 1
        assert percentile([5, 1, 9], 100) == 9

    def test_single_value(self):
        assert percentile([7], 33) == 7

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_bad_q_rejected(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
    def test_bounded_by_min_max(self, values):
        for q in (0, 25, 50, 75, 100):
            p = percentile(values, q)
            assert min(values) <= p <= max(values)


class TestEmpiricalCdf:
    def test_fraction_at_or_below(self):
        cdf = EmpiricalCdf([1, 2, 3, 4])
        assert cdf.fraction_at_or_below(0) == 0.0
        assert cdf.fraction_at_or_below(2) == 0.5
        assert cdf.fraction_at_or_below(4) == 1.0

    def test_empty_cdf(self):
        cdf = EmpiricalCdf([])
        assert len(cdf) == 0
        assert cdf.fraction_at_or_below(10) == 0.0
        with pytest.raises(ValueError):
            cdf.mean()

    def test_quantile_and_stats(self):
        cdf = EmpiricalCdf([10, 20, 30, 40])
        assert cdf.quantile(0.5) == 25
        assert cdf.mean() == 25
        assert cdf.max() == 40

    def test_points(self):
        cdf = EmpiricalCdf([1, 2, 3])
        points = cdf.points([1, 3])
        assert points == [(1, pytest.approx(1 / 3)), (3, 1.0)]

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=60))
    def test_monotone_and_normalised(self, values):
        cdf = EmpiricalCdf(values)
        previous = 0.0
        for x in range(0, 101, 10):
            current = cdf.fraction_at_or_below(x)
            assert current >= previous
            previous = current
        assert cdf.fraction_at_or_below(100) == 1.0


class TestBoxPlot:
    def test_five_numbers(self):
        summary = box_plot_summary([1, 2, 3, 4, 5])
        assert summary.minimum == 1
        assert summary.q1 == 2
        assert summary.median == 3
        assert summary.q3 == 4
        assert summary.maximum == 5
        assert summary.mean == 3
        assert summary.count == 5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            box_plot_summary([])

    def test_row_is_printable(self):
        row = box_plot_summary([1, 2, 3]).row("label")
        assert row[0] == "label"
        assert len(row) == 8


class TestFormatTable:
    def test_basic_rendering(self):
        text = format_table(["a", "bb"], [[1, 2.5], [30, 4.0]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "-+-" in lines[2]
        assert "2.50" in lines[3]

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_column_alignment(self):
        text = format_table(["col"], [[1], [1000]])
        rows = text.splitlines()[2:]
        assert len(rows[0]) == len(rows[1])
