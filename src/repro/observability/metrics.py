"""Zero-dependency metrics primitives: counters, gauges, histograms.

The registry is the live counterpart of the offline KPI evaluation: the
instrumented hot paths (engine dispatch, predictor calls, the proactive
resume scan, B-tree operations) record into it as they run, and the
Figure 10 overhead experiment reads its percentiles directly instead of
re-deriving them from simulation results.

Everything here is plain-Python state (dicts, lists, ints) so a registry
pickles cleanly across the ``repro.parallel`` process boundary; worker
registries are merged back into the parent with :meth:`MetricsRegistry.merge`
in submission order, keeping merged snapshots deterministic.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence, Union

from repro.errors import ProRPError

Number = Union[int, float]

#: Samples kept verbatim per histogram (exact percentiles until exceeded;
#: bucket interpolation after).  65536 floats is ~0.5 MB -- far more than
#: one fleet-day of predictions produces.
DEFAULT_SAMPLE_LIMIT = 65536


def exponential_buckets(start: float, factor: float, count: int) -> List[float]:
    """``count`` bucket upper bounds growing geometrically from ``start``."""
    if start <= 0 or factor <= 1.0 or count < 1:
        raise ProRPError(
            f"invalid bucket spec: start={start}, factor={factor}, count={count}"
        )
    bounds = []
    bound = start
    for _ in range(count):
        bounds.append(bound)
        bound *= factor
    return bounds


#: Default latency buckets in milliseconds: 1 us to ~17 s in ~15% steps.
LATENCY_BUCKETS_MS = exponential_buckets(0.001, 1.15, 120)

#: Default buckets for dimensionless sizes/counts: 1 to ~1e6 in 25% steps.
SIZE_BUCKETS = exponential_buckets(1.0, 1.25, 64)


def metric_key(name: str, labels: Optional[Dict[str, str]] = None) -> str:
    """Canonical registry key: ``name`` or ``name{k=v,...}`` (keys sorted).

    Sorting makes the key independent of the label dict's insertion
    order, so two call sites naming the same (name, labels) pair always
    land on the same metric -- in one registry and across merges.
    """
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, labels: Optional[Dict[str, str]] = None):
        self.name = name
        self.labels = dict(labels) if labels else None
        self.value: Number = 0

    def inc(self, n: Number = 1) -> None:
        if n < 0:
            raise ProRPError(f"counter {self.name!r} cannot decrease (inc {n})")
        self.value += n

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def snapshot(self) -> Dict[str, Number]:
        return {"value": self.value}


class Gauge:
    """A point-in-time value (queue depth, sim clock, ...)."""

    __slots__ = ("name", "labels", "value")
    kind = "gauge"

    def __init__(self, name: str, labels: Optional[Dict[str, str]] = None):
        self.name = name
        self.labels = dict(labels) if labels else None
        self.value: Optional[Number] = None

    def set(self, value: Number) -> None:
        self.value = value

    def merge(self, other: "Gauge") -> None:
        # Last write wins; a merged worker snapshot is "later" than the
        # parent's pre-merge value by construction of the ordered merge.
        if other.value is not None:
            self.value = other.value

    def snapshot(self) -> Dict[str, Optional[Number]]:
        return {"value": self.value}


class Histogram:
    """A fixed-bucket histogram with exact-sample percentiles.

    ``buckets`` are upper bounds (ascending); an implicit overflow bucket
    catches values above the last bound.  Observations additionally go to
    a bounded raw-sample list, so percentiles are exact until the limit is
    exceeded and bucket-interpolated afterwards.
    """

    __slots__ = (
        "name",
        "labels",
        "buckets",
        "counts",
        "count",
        "sum",
        "min",
        "max",
        "samples",
        "sample_limit",
    )
    kind = "histogram"

    def __init__(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        sample_limit: int = DEFAULT_SAMPLE_LIMIT,
        labels: Optional[Dict[str, str]] = None,
    ):
        bounds = list(LATENCY_BUCKETS_MS if buckets is None else buckets)
        if not bounds or any(nxt <= prev for prev, nxt in zip(bounds, bounds[1:])):
            raise ProRPError(
                f"histogram {name!r} needs strictly increasing bucket bounds"
            )
        self.name = name
        self.labels = dict(labels) if labels else None
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1 overflow bucket
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.samples: List[float] = []
        self.sample_limit = sample_limit

    def observe(self, value: Number) -> None:
        value = float(value)
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if len(self.samples) < self.sample_limit:
            self.samples.append(value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """The p-th percentile (p in [0, 100]).

        Exact (nearest-rank over the raw samples) while every observation
        fits in the sample buffer; linear interpolation inside the owning
        bucket once the buffer overflowed.
        """
        if not 0.0 <= p <= 100.0:
            raise ProRPError(f"percentile {p} outside [0, 100]")
        if self.count == 0:
            return 0.0
        if len(self.samples) == self.count:
            ordered = sorted(self.samples)
            rank = max(0, min(len(ordered) - 1, round(p / 100.0 * len(ordered)) - 1))
            if p == 0.0:
                rank = 0
            return ordered[rank]
        return self._bucket_percentile(p)

    def _bucket_percentile(self, p: float) -> float:
        target = p / 100.0 * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            if cumulative + bucket_count >= target:
                lo = self.buckets[i - 1] if i > 0 else 0.0
                hi = self.buckets[i] if i < len(self.buckets) else (self.max or lo)
                # Bucket bounds can overshoot what was actually observed;
                # clamp so percentiles stay within [min, max].
                if self.min is not None:
                    lo = max(lo, self.min)
                if self.max is not None:
                    hi = min(hi, self.max)
                if bucket_count == 0 or hi < lo:
                    return hi
                fraction = (target - cumulative) / bucket_count
                return lo + (hi - lo) * fraction
            cumulative += bucket_count
        return self.max or 0.0

    def merge(self, other: "Histogram") -> None:
        if other.buckets != self.buckets:
            raise ProRPError(
                f"histogram {self.name!r}: cannot merge differing bucket layouts"
            )
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.sum += other.sum
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        room = self.sample_limit - len(self.samples)
        if room > 0:
            self.samples.extend(other.samples[:room])

    def snapshot(self) -> Dict[str, Number]:
        return {
            "count": self.count,
            "sum": round(self.sum, 6),
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "mean": round(self.mean, 6),
            "p50": round(self.percentile(50.0), 6),
            "p95": round(self.percentile(95.0), 6),
            "p99": round(self.percentile(99.0), 6),
        }


Metric = Union[Counter, Gauge, Histogram]

Labels = Optional[Dict[str, str]]


class MetricsRegistry:
    """Named metrics, created on first use, in insertion order.

    The registry is deliberately forgiving on the hot path: ``counter``,
    ``gauge``, and ``histogram`` are get-or-create, so instrumentation
    sites never need registration boilerplate.  Asking for an existing
    name with a different type raises.

    Labelled variants of a metric (``labels={"region": "eu1"}``) are
    stored under the canonical :func:`metric_key`; the plain name stays
    its own slot, so unlabelled call sites are unaffected.  Windowed
    time-series (:mod:`repro.observability.timeseries`) register through
    the same table and ride the same :meth:`merge` path.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> List[str]:
        return list(self._metrics)

    def items(self):
        """``(key, metric)`` pairs in insertion order (renderer access)."""
        return list(self._metrics.items())

    def get(self, name: str, labels: Labels = None):
        """The metric under ``metric_key(name, labels)``, or ``None``."""
        return self._metrics.get(metric_key(name, labels))

    def _get_or_create(self, key: str, factory, kind: str):
        metric = self._metrics.get(key)
        if metric is None:
            metric = factory()
            self._metrics[key] = metric
        elif metric.kind != kind:
            raise ProRPError(
                f"metric {key!r} is a {metric.kind}, requested as {kind}"
            )
        return metric

    def counter(self, name: str, labels: Labels = None) -> Counter:
        return self._get_or_create(
            metric_key(name, labels), lambda: Counter(name, labels), "counter"
        )

    def gauge(self, name: str, labels: Labels = None) -> Gauge:
        return self._get_or_create(
            metric_key(name, labels), lambda: Gauge(name, labels), "gauge"
        )

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        sample_limit: int = DEFAULT_SAMPLE_LIMIT,
        labels: Labels = None,
    ) -> Histogram:
        return self._get_or_create(
            metric_key(name, labels),
            lambda: Histogram(name, buckets, sample_limit, labels),
            "histogram",
        )

    def counter_series(
        self,
        name: str,
        window_s: Number = None,  # type: ignore[assignment]
        capacity: Optional[int] = None,
        labels: Labels = None,
    ):
        from repro.observability.timeseries import (
            DEFAULT_WINDOW_CAPACITY,
            DEFAULT_WINDOW_S,
            CounterSeries,
        )

        window = DEFAULT_WINDOW_S if window_s is None else window_s
        cap = DEFAULT_WINDOW_CAPACITY if capacity is None else capacity
        return self._get_or_create(
            metric_key(name, labels),
            lambda: CounterSeries(name, window, cap, labels),
            "counter_series",
        )

    def gauge_series(
        self,
        name: str,
        window_s: Number = None,  # type: ignore[assignment]
        capacity: Optional[int] = None,
        labels: Labels = None,
    ):
        from repro.observability.timeseries import (
            DEFAULT_WINDOW_CAPACITY,
            DEFAULT_WINDOW_S,
            GaugeSeries,
        )

        window = DEFAULT_WINDOW_S if window_s is None else window_s
        cap = DEFAULT_WINDOW_CAPACITY if capacity is None else capacity
        return self._get_or_create(
            metric_key(name, labels),
            lambda: GaugeSeries(name, window, cap, labels),
            "gauge_series",
        )

    def histogram_series(
        self,
        name: str,
        window_s: Number = None,  # type: ignore[assignment]
        buckets: Optional[Sequence[float]] = None,
        capacity: Optional[int] = None,
        labels: Labels = None,
    ):
        from repro.observability.timeseries import (
            DEFAULT_WINDOW_CAPACITY,
            DEFAULT_WINDOW_S,
            HistogramSeries,
        )

        window = DEFAULT_WINDOW_S if window_s is None else window_s
        cap = DEFAULT_WINDOW_CAPACITY if capacity is None else capacity
        return self._get_or_create(
            metric_key(name, labels),
            lambda: HistogramSeries(name, window, buckets, cap, labels),
            "histogram_series",
        )

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (order preserving: existing
        names keep their slot, new names append in the other's order)."""
        for name, metric in other._metrics.items():
            mine = self._metrics.get(name)
            if mine is None:
                self._metrics[name] = metric
            elif mine.kind != metric.kind:
                raise ProRPError(
                    f"metric {name!r}: cannot merge {metric.kind} into {mine.kind}"
                )
            else:
                mine.merge(metric)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """name -> {"kind": ..., **metric fields}, in insertion order."""
        return {
            name: {"kind": metric.kind, **metric.snapshot()}
            for name, metric in self._metrics.items()
        }

    def format_snapshot(self, title: str = "metrics") -> str:
        """A plain-text snapshot (the ``--metrics-out`` exporter format)."""
        lines = [f"# {title}: {len(self._metrics)} metrics"]
        for name, metric in self._metrics.items():
            if metric.kind == "histogram":
                s = metric.snapshot()
                lines.append(
                    f"{name} histogram count={s['count']} mean={s['mean']} "
                    f"p50={s['p50']} p95={s['p95']} p99={s['p99']} "
                    f"min={s['min']} max={s['max']}"
                )
            elif metric.kind == "counter_series":
                lines.append(
                    f"{name} counter_series total={metric.total()} "
                    f"windows={len(metric.windows)} window_s={metric.window_s}"
                )
            elif metric.kind == "gauge_series":
                lines.append(
                    f"{name} gauge_series last={metric.last} "
                    f"windows={len(metric.windows)} window_s={metric.window_s}"
                )
            elif metric.kind == "histogram_series":
                lines.append(
                    f"{name} histogram_series count={metric.total_count()} "
                    f"windows={len(metric.windows)} window_s={metric.window_s}"
                )
            else:
                lines.append(f"{name} {metric.kind} value={metric.value}")
        return "\n".join(lines)
