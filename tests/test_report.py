"""Tests for the one-call region digest."""

import pytest

from repro.report import region_digest
from repro.simulation import SimulationSettings
from repro.types import SECONDS_PER_DAY
from repro.workload import RegionPreset, generate_region_traces

DAY = SECONDS_PER_DAY


@pytest.fixture(scope="module")
def digest():
    traces = generate_region_traces(RegionPreset.EU1, 60, span_days=32, seed=7)
    settings = SimulationSettings(eval_start=30 * DAY, eval_end=31 * DAY)
    return region_digest(traces, settings, title="EU1 digest")


def test_contains_all_sections(digest):
    assert "EU1 digest" in digest
    assert "Proactive breakdown" in digest
    assert "by usage archetype" in digest
    assert "per bucket" in digest


def test_all_policies_listed(digest):
    for policy in ("provisioned", "reactive", "proactive", "optimal"):
        assert policy in digest


def test_dashboard_metrics_present(digest):
    assert "QoS %" in digest
    assert "logins" in digest


def test_digest_is_plain_text(digest):
    assert isinstance(digest, str)
    assert len(digest.splitlines()) > 20
