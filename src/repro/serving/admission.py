"""Admission control: bounded queues, per-tenant rate limits, deadlines.

The gateway never lets work pile up invisibly.  Every request passes this
layer before it may enqueue, and the layer answers with a typed rejection
(:class:`~repro.serving.requests.Overloaded`, :class:`RateLimited`,
:class:`DeadlineExpired`, :class:`Shutdown`) the moment the server cannot
serve it in time -- the "load shedding over unbounded queue growth"
posture of production serving stacks.

Depth accounting counts *queued plus in-flight* requests: the dispatch
loop drains the asyncio queue eagerly (handlers park inside the
micro-batcher), so the raw queue length alone would never reflect
pressure.  The ``serving.queue_full`` fault point lets chaos experiments
force the full-queue path without actually saturating the server.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.errors import ConfigError
from repro.faults.runtime import FAULTS
from repro.observability.runtime import OBS
from repro.serving.requests import (
    DeadlineExpired,
    ErrorResponse,
    Overloaded,
    RateLimited,
    Request,
    Shutdown,
)

#: Fault point consulted once per admission decision: when it fires the
#: request is shed exactly as if the bounded queue were full.
QUEUE_FULL_FAULT_POINT = "serving.queue_full"


class TokenBucket:
    """A classic token bucket: ``rate`` tokens/s up to ``burst`` capacity.

    The clock is injectable so tests (and the simulator, should it ever
    front the gateway) can drive refills deterministically.
    """

    __slots__ = ("rate", "burst", "_tokens", "_last", "_clock")

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate <= 0 or burst <= 0:
            raise ConfigError("token bucket rate and burst must be positive")
        self.rate = rate
        self.burst = burst
        self._tokens = burst
        self._clock = clock
        self._last = clock()

    def try_acquire(self, n: float = 1.0) -> bool:
        """Take ``n`` tokens if available; never blocks."""
        now = self._clock()
        self._tokens = min(self.burst, self._tokens + (now - self._last) * self.rate)
        self._last = now
        if self._tokens >= n:
            self._tokens -= n
            return True
        return False

    @property
    def tokens(self) -> float:
        return self._tokens


@dataclass(frozen=True)
class AdmissionPolicy:
    """Knobs of the admission layer.

    ``max_queue_depth`` bounds queued + in-flight requests.  ``tenant_rate``
    (requests/s, refilled continuously, ``tenant_burst`` capacity) rate
    limits each tenant independently; 0 disables rate limiting.
    """

    max_queue_depth: int = 256
    tenant_rate: float = 0.0
    tenant_burst: float = 8.0

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ConfigError("max_queue_depth must be at least 1")
        if self.tenant_rate < 0:
            raise ConfigError("tenant_rate must be non-negative")
        if self.tenant_rate > 0 and self.tenant_burst <= 0:
            # Fail at configuration time, not inside the first admit()
            # when the tenant's TokenBucket is lazily constructed.
            raise ConfigError(
                "tenant_burst must be positive when tenant_rate is set"
            )


class AdmissionController:
    """Decides, per request, whether the server may accept more work.

    :meth:`admit` returns ``None`` to accept or a typed rejection to shed.
    All shed decisions are counted in :attr:`shed` (always-on plain ints)
    and mirrored into ``serving.shed.*`` counters when observability is
    enabled.
    """

    def __init__(
        self,
        policy: Optional[AdmissionPolicy] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.policy = policy if policy is not None else AdmissionPolicy()
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        #: reason -> shed count (reasons: queue_full, rate_limited,
        #: deadline, shutdown).
        self.shed: Dict[str, int] = {
            "queue_full": 0,
            "rate_limited": 0,
            "deadline": 0,
            "shutdown": 0,
        }
        self.admitted = 0

    #: Wall-clock window of the per-tenant shed streams; matches the
    #: gateway's ``SERVING_WINDOW_S`` (one second, the SLO fast window).
    WINDOW_S = 1.0

    def _shed(
        self, reason: str, response: ErrorResponse, tenant: str = "default"
    ) -> ErrorResponse:
        self.shed[reason] += 1
        if OBS.enabled:
            OBS.metrics.counter(f"serving.shed.{reason}").inc()
            now = self._clock()
            # The aggregate stream the shed-rate SLO burns against, plus
            # the per-tenant view that tells *whose* traffic is shedding.
            OBS.metrics.counter_series(
                "serving.shed.window", window_s=self.WINDOW_S
            ).inc(now)
            OBS.metrics.counter_series(
                "serving.tenant.shed",
                window_s=self.WINDOW_S,
                labels={"tenant": tenant, "reason": reason},
            ).inc(now)
        return response

    def total_shed(self) -> int:
        return sum(self.shed.values())

    def snapshot(self) -> Dict[str, object]:
        """A point-in-time view of the admission state for backpressure
        decisions: totals, the configured depth bound, and each live
        tenant bucket's remaining tokens.

        The numbers are internally consistent at the instant of the call
        (``admitted + sum(shed.values())`` equals the number of decisions
        taken): :meth:`admit` runs synchronously on the event loop, so a
        snapshot can never observe a half-applied decision -- the
        concurrent-admit unit test pins that.  The sharded router reads
        this via worker health probes to bias dispatch away from workers
        whose queues are deep.
        """
        return {
            "admitted": self.admitted,
            "shed": dict(self.shed),
            "total_shed": self.total_shed(),
            "max_queue_depth": self.policy.max_queue_depth,
            "tenant_rate": self.policy.tenant_rate,
            "tenant_buckets": {
                tenant: round(bucket.tokens, 6)
                for tenant, bucket in self._buckets.items()
            },
        }

    def admit(
        self, request: Request, depth: int, stopping: bool = False
    ) -> Optional[ErrorResponse]:
        """Admission decision for ``request`` given current ``depth``
        (queued + in-flight).  Returns None (admit) or a typed rejection."""
        request_id = request.request_id
        if stopping:
            return self._shed(
                "shutdown",
                Shutdown(request_id, "server is draining; request rejected"),
                tenant=request.tenant,
            )
        queue_full_injected = (
            FAULTS.enabled
            and FAULTS.injector is not None
            and FAULTS.injector.should_fire(QUEUE_FULL_FAULT_POINT)
        )
        if depth >= self.policy.max_queue_depth or queue_full_injected:
            return self._shed(
                "queue_full",
                Overloaded(
                    request_id,
                    f"queue depth {depth} at limit "
                    f"{self.policy.max_queue_depth}",
                ),
                tenant=request.tenant,
            )
        if self.policy.tenant_rate > 0:
            bucket = self._buckets.get(request.tenant)
            if bucket is None:
                bucket = TokenBucket(
                    self.policy.tenant_rate,
                    self.policy.tenant_burst,
                    clock=self._clock,
                )
                self._buckets[request.tenant] = bucket
            if not bucket.try_acquire():
                return self._shed(
                    "rate_limited",
                    RateLimited(
                        request_id,
                        f"tenant {request.tenant!r} exceeded "
                        f"{self.policy.tenant_rate}/s",
                    ),
                    tenant=request.tenant,
                )
        deadline_ms = getattr(request, "deadline_ms", None)
        if deadline_ms is not None and deadline_ms <= 0:
            return self._shed(
                "deadline",
                DeadlineExpired(request_id, "deadline expired before admission"),
                tenant=request.tenant,
            )
        self.admitted += 1
        if OBS.enabled:
            OBS.metrics.counter("serving.admitted").inc()
        return None

    def shed_deadline(
        self, request_id: str, waited_ms: float, tenant: str = "default"
    ) -> ErrorResponse:
        """Dispatch-time shed: the queue wait consumed the client budget."""
        return self._shed(
            "deadline",
            DeadlineExpired(
                request_id,
                f"deadline expired after {waited_ms:.1f} ms in queue",
            ),
            tenant=tenant,
        )
