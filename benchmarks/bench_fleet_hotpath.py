"""Headline benchmark for the two-level prediction hot path.

Two comparisons, both on a region fleet (>= 200 databases at full scale):

* **Batched fleet prediction**: D per-database :meth:`FastPredictor.
  predict` calls vs one :meth:`FastPredictor.predict_fleet` call over the
  same login arrays.  The batch must run >= 3x fewer full Algorithm-4
  scans (it pays one grid evaluation instead of D) and, at full scale,
  win on wall clock; the answers must be identical.
* **End-to-end simulation**: the same region simulated with the
  prediction cache + settle-phase batching on and off.  The cached run
  must enter the predictor fewer times and produce byte-identical KPIs.

Baselines are committed under ``benchmarks/results/``: the full run
writes ``BENCH_fleet_hotpath.json``, the ``--quick`` variant writes
``BENCH_fleet_hotpath_quick.json``.  CI re-runs the quick variant to a
scratch directory and ``benchmarks/check_regression.py`` compares its
scale-robust ratio metrics against the committed quick baseline.

Run directly for a human-readable report::

    PYTHONPATH=src python benchmarks/bench_fleet_hotpath.py          # full
    PYTHONPATH=src python benchmarks/bench_fleet_hotpath.py --quick  # CI
    PYTHONPATH=src python benchmarks/bench_fleet_hotpath.py --quick --out /tmp/fresh.json

or through pytest (quick scale)::

    PYTHONPATH=src python -m pytest benchmarks/bench_fleet_hotpath.py -q
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import List

import numpy as np

from repro.config import DEFAULT_CONFIG
from repro.core.fast_predictor import FastPredictor
from repro.core.prediction_cache import HOT_PATH
from repro.simulation.region import SimulationSettings, simulate_region
from repro.types import SECONDS_PER_DAY, ActivityTrace
from repro.workload.regions import RegionPreset, generate_region_traces

DAY = SECONDS_PER_DAY

#: Where committed baselines live, by repo convention.
RESULTS_DIR = Path(__file__).resolve().parent / "results"
BASELINE_PATH = RESULTS_DIR / "BENCH_fleet_hotpath.json"
QUICK_BASELINE_PATH = RESULTS_DIR / "BENCH_fleet_hotpath_quick.json"

FULL_DATABASES = 250
QUICK_DATABASES = 60
SPAN_DAYS = 31
NOW = 29 * DAY


def _fleet(n_databases: int) -> List[ActivityTrace]:
    return generate_region_traces(
        RegionPreset.EU1, n_databases, span_days=SPAN_DAYS, seed=0
    )


def _login_arrays(traces: List[ActivityTrace], now: int) -> List[np.ndarray]:
    """Per-database sorted login timestamps within the retention window,
    as the history store would hold them at ``now``."""
    start = now - DEFAULT_CONFIG.history_days * DAY
    return [
        np.array(
            [s.start for s in trace.sessions if start <= s.start < now],
            dtype=np.int64,
        )
        for trace in traces
    ]


def _min_of(reps: int, fn) -> float:
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_bench(quick: bool = False) -> dict:
    n_databases = QUICK_DATABASES if quick else FULL_DATABASES
    reps = 2 if quick else 5
    traces = _fleet(n_databases)

    # -- one fleet sweep: D predict() calls vs one predict_fleet() -------
    predictor = FastPredictor(DEFAULT_CONFIG)
    fleets = _login_arrays(traces, NOW)
    singles = [predictor.predict(logins, NOW) for logins in fleets]  # warm
    batched = predictor.predict_fleet(fleets, NOW)
    assert batched == singles, "predict_fleet diverged from per-database predict"

    HOT_PATH.reset()
    for logins in fleets:
        predictor.predict(logins, NOW)
    loop_invocations = HOT_PATH.predictor_invocations
    HOT_PATH.reset()
    predictor.predict_fleet(fleets, NOW)
    batch_invocations = HOT_PATH.predictor_invocations

    loop_s = _min_of(reps, lambda: [predictor.predict(a, NOW) for a in fleets])
    batch_s = _min_of(reps, lambda: predictor.predict_fleet(fleets, NOW))

    # -- end-to-end simulation: prediction cache on vs off ---------------
    # Evaluate the final day: the 1-day warm-up puts sim_start at day 30,
    # leaving >28 days of lifespan so the fleet is "old" (predictable)
    # and the settle-phase batching has databases to seed.
    settings_off = SimulationSettings(
        eval_start=30 * DAY, eval_end=31 * DAY, use_prediction_cache=False
    )
    settings_on = SimulationSettings(
        eval_start=30 * DAY, eval_end=31 * DAY, use_prediction_cache=True
    )
    simulate_region(traces, "proactive", DEFAULT_CONFIG, settings_on)  # warm

    HOT_PATH.reset()
    start = time.perf_counter()
    off = simulate_region(traces, "proactive", DEFAULT_CONFIG, settings_off)
    sim_off_s = time.perf_counter() - start
    sim_off_invocations = HOT_PATH.predictor_invocations

    HOT_PATH.reset()
    start = time.perf_counter()
    on = simulate_region(traces, "proactive", DEFAULT_CONFIG, settings_on)
    sim_on_s = time.perf_counter() - start
    sim_on_invocations = HOT_PATH.predictor_invocations
    cache_stats = HOT_PATH.snapshot()

    assert on.kpis().to_dict() == off.kpis().to_dict(), (
        "cached simulation diverged from the uncached reference"
    )

    return {
        "quick": quick,
        "n_databases": n_databases,
        "fleet_sweep": {
            "loop_full_scans": loop_invocations,
            "batch_invocations": batch_invocations,
            "scan_reduction": round(loop_invocations / batch_invocations, 1),
            "loop_s": round(loop_s, 4),
            "batch_s": round(batch_s, 4),
            "speedup": round(loop_s / batch_s, 2) if batch_s > 0 else 0.0,
        },
        "simulation": {
            "uncached_invocations": sim_off_invocations,
            "cached_invocations": sim_on_invocations,
            "uncached_s": round(sim_off_s, 3),
            "cached_s": round(sim_on_s, 3),
            "cache_hits": cache_stats["cache_hits"],
            "cache_invalidations": cache_stats["cache_invalidations"],
            "batch_evals": cache_stats["batch_evals"],
            "batch_databases": cache_stats["batch_databases"],
            "kpis_identical": True,
        },
    }


def _check(result: dict) -> None:
    sweep = result["fleet_sweep"]
    sim = result["simulation"]
    assert sweep["scan_reduction"] >= 3.0, (
        f"expected >= 3x fewer full scans from batching, got "
        f"{sweep['scan_reduction']}x"
    )
    assert sim["cached_invocations"] < sim["uncached_invocations"], (
        f"the cache did not reduce predictor invocations "
        f"({sim['cached_invocations']} vs {sim['uncached_invocations']})"
    )
    assert sim["cache_hits"] > 0 and sim["batch_evals"] >= 1
    if not result["quick"]:
        # Wall-clock is asserted at full scale only; the quick CI variant
        # sticks to the deterministic invocation counts.
        assert sweep["batch_s"] < sweep["loop_s"], (
            f"batched prediction lost on wall clock: "
            f"{sweep['batch_s']}s vs {sweep['loop_s']}s"
        )


def _report(result: dict) -> str:
    sweep = result["fleet_sweep"]
    sim = result["simulation"]
    return "\n".join(
        [
            f"Fleet prediction hot path, {result['n_databases']} databases"
            + (" (quick)" if result["quick"] else ""),
            f"  sweep: {sweep['loop_full_scans']} per-DB scans -> "
            f"{sweep['batch_invocations']} batched invocation(s) "
            f"({sweep['scan_reduction']}x fewer)",
            f"  sweep wall: loop {sweep['loop_s']}s vs batch {sweep['batch_s']}s "
            f"({sweep['speedup']}x)",
            f"  simulation invocations: {sim['uncached_invocations']} uncached -> "
            f"{sim['cached_invocations']} cached "
            f"({sim['cache_hits']} hits, {sim['cache_invalidations']} invalidations)",
            f"  simulation wall: {sim['uncached_s']}s uncached vs "
            f"{sim['cached_s']}s cached",
            f"  KPIs identical: {sim['kpis_identical']}",
        ]
    )


def bench_fleet_hotpath(record_table) -> None:
    """Pytest entry: quick scale, deterministic assertions only."""
    result = run_bench(quick=True)
    record_table("fleet_hotpath", _report(result))
    _check(result)


def main(argv: List[str]) -> int:
    quick = "--quick" in argv
    if "--out" in argv:
        out = Path(argv[argv.index("--out") + 1])
    else:
        out = QUICK_BASELINE_PATH if quick else BASELINE_PATH
    result = run_bench(quick=quick)
    print(_report(result))
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out}")
    _check(result)
    print("ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
