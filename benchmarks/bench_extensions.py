"""Benches for the future-work extensions (Section 11): multi-level
auto-scale and prediction-aligned maintenance."""

from repro.analysis import format_table
from repro.autoscale import (
    ProactiveScaler,
    ReactiveScaler,
    capacity_from_activity,
    evaluate_scaler,
)
from repro.config import ProRPConfig
from repro.experiments.common import BENCH_SCALE, region_fleet
from repro.maintenance import (
    MaintenanceKind,
    MaintenanceOperation,
    NaiveScheduler,
    PredictiveScheduler,
    evaluate_schedule,
)
from repro.maintenance.scheduler import build_histories
from repro.types import SECONDS_PER_DAY as DAY
from repro.workload.regions import RegionPreset


def _autoscale_fleet_comparison():
    traces = region_fleet(RegionPreset.EU1, BENCH_SCALE)[:120]
    window = (BENCH_SCALE.eval_start, BENCH_SCALE.eval_end)
    scalers = (
        ReactiveScaler(reaction_slots=1, cooldown_slots=6),
        ProactiveScaler(history_days=14, quantile=0.8),
    )
    totals = {}
    for scaler in scalers:
        throttled = overprovisioned = demanded = allocated = 0
        for trace in traces:
            capacity = capacity_from_activity(
                trace, span_end=BENCH_SCALE.span_days * DAY, seed=1
            )
            ev = evaluate_scaler(scaler, capacity, *window)
            throttled += ev.throttled_core_s
            overprovisioned += ev.overprovisioned_core_s
            demanded += ev.demanded_core_s
            allocated += ev.allocated_core_s
        totals[scaler.name] = (throttled, overprovisioned, demanded, allocated)
    return totals


def bench_autoscale_extension(benchmark, record_table):
    totals = benchmark.pedantic(_autoscale_fleet_comparison, rounds=1, iterations=1)
    rows = []
    for name, (throttled, over, demanded, allocated) in totals.items():
        rows.append(
            [
                name,
                round(100 * throttled / demanded, 2) if demanded else 0,
                round(100 * over / allocated, 2) if allocated else 0,
            ]
        )
    table = format_table(
        ["scaler", "throttled % of demand", "over-provisioned % of alloc"],
        rows,
        title="Extension (Section 11(1)): multi-level auto-scale, 120 databases",
    )
    record_table("extension_autoscale", table)
    assert totals["proactive"][0] < totals["reactive"][0]


def _maintenance_comparison():
    traces = {
        t.database_id: t for t in region_fleet(RegionPreset.EU1, BENCH_SCALE)[:150]
    }
    as_of = BENCH_SCALE.eval_start
    operations = [
        MaintenanceOperation.with_default_duration(
            db_id, MaintenanceKind.BACKUP, as_of, as_of + DAY
        )
        for db_id in traces
    ]
    histories = build_histories(list(traces.values()), as_of, history_days=28)
    naive = evaluate_schedule(
        [NaiveScheduler().schedule(op) for op in operations], traces, "naive"
    )
    predictive_scheduler = PredictiveScheduler(histories, ProRPConfig())
    predictive = evaluate_schedule(
        [predictive_scheduler.schedule(op) for op in operations],
        traces,
        "predictive",
    )
    return naive, predictive


def bench_maintenance_extension(benchmark, record_table):
    naive, predictive = benchmark.pedantic(
        _maintenance_comparison, rounds=1, iterations=1
    )
    table = format_table(
        ["scheduler", "ops", "% while online", "extra resumes"],
        [
            [naive.scheduler, naive.total, round(naive.online_percent, 1), naive.extra_resumes],
            [
                predictive.scheduler,
                predictive.total,
                round(predictive.online_percent, 1),
                predictive.extra_resumes,
            ],
        ],
        title="Extension (Section 11(4)): prediction-aligned maintenance, 150 databases",
    )
    record_table("extension_maintenance", table)
    assert predictive.online_percent > naive.online_percent
