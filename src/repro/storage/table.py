"""A typed table with a clustered B-tree index on its primary key.

Rows are stored as tuples inside the clustered index, keyed by the primary
key column, which gives the O(log n) point/range behaviour the paper's
complexity analysis (Sections 5-6) relies on.  Secondary (non-clustered)
indexes can be added for non-key predicates; the executor falls back to a
full scan otherwise.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import StorageError
from repro.storage.btree import BTree
from repro.storage.schema import TableSchema

Row = Dict[str, Any]
Predicate = Callable[[Row], bool]


class Table:
    """One table: schema + clustered index (+ optional secondary indexes)."""

    def __init__(self, schema: TableSchema):
        self.schema = schema
        self._clustered: BTree[Any, Tuple[Any, ...]] = BTree()
        self._pk_index = schema.column_index(schema.primary_key)
        # Secondary indexes: column name -> BTree[(value, pk) -> pk].
        self._secondary: Dict[str, BTree[Tuple[Any, Any], Any]] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.schema.name

    def __len__(self) -> int:
        return len(self._clustered)

    @property
    def row_count(self) -> int:
        return len(self._clustered)

    def size_bytes(self) -> int:
        """Logical storage footprint, counting fixed widths per column type.

        The paper sizes the history store as two 64-bit integers per tuple
        (Section 9.3 / Figure 10(b)); BIGINT therefore counts 8 bytes, INT 4,
        FLOAT 8, and TEXT its UTF-8 length.
        """
        per_row = 0
        text_columns = []
        for col in self.schema.columns:
            width = {"BIGINT": 8, "INT": 4, "FLOAT": 8}.get(col.type.value)
            if width is None:
                text_columns.append(self.schema.column_index(col.name))
            else:
                per_row += width
        total = per_row * len(self._clustered)
        if text_columns:
            for _, values in self._clustered.items():
                for idx in text_columns:
                    if values[idx] is not None:
                        total += len(values[idx].encode("utf-8"))
        return total

    # ------------------------------------------------------------------
    # Secondary indexes
    # ------------------------------------------------------------------

    def create_index(self, column: str) -> None:
        """Create a non-clustered index on ``column``."""
        self.schema.column(column)  # validates existence
        if column == self.schema.primary_key:
            raise StorageError(
                f"{column!r} already carries the clustered index of {self.name!r}"
            )
        if column in self._secondary:
            raise StorageError(f"index on {column!r} already exists")
        index: BTree[Tuple[Any, Any], Any] = BTree()
        col_idx = self.schema.column_index(column)
        for pk, values in self._clustered.items():
            index.insert((values[col_idx], pk), pk)
        self._secondary[column] = index

    @property
    def indexed_columns(self) -> List[str]:
        return [self.schema.primary_key] + sorted(self._secondary)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def insert(self, row: Row) -> None:
        """Insert one row; raises DuplicateKeyError on primary-key clash."""
        values = self.schema.validate_row(row)
        pk = values[self._pk_index]
        self._clustered.insert(pk, values)
        for column, index in self._secondary.items():
            col_idx = self.schema.column_index(column)
            index.insert((values[col_idx], pk), pk)

    def insert_if_absent(self, row: Row) -> bool:
        """Insert unless the primary key exists; True if inserted.

        This is the ``IF NOT EXISTS ... INSERT`` of Algorithm 2.
        """
        values = self.schema.validate_row(row)
        pk = values[self._pk_index]
        if pk in self._clustered:
            return False
        self._clustered.insert(pk, values)
        for column, index in self._secondary.items():
            col_idx = self.schema.column_index(column)
            index.insert((values[col_idx], pk), pk)
        return True

    def delete_by_key(self, pk: Any) -> bool:
        """Delete the row with primary key ``pk``; True if it existed."""
        values = self._clustered.discard(pk)
        if values is None:
            return False
        self._remove_from_secondary(pk, values)
        return True

    def delete_key_range(
        self,
        lo: Optional[Any] = None,
        hi: Optional[Any] = None,
        include_lo: bool = True,
        include_hi: bool = True,
    ) -> int:
        """Delete rows whose primary key lies in the range; returns count.

        This is the range delete of Algorithm 3, O(log n + m).
        """
        doomed = list(self._clustered.range_items(lo, hi, include_lo, include_hi))
        for pk, values in doomed:
            self._clustered.delete(pk)
            self._remove_from_secondary(pk, values)
        return len(doomed)

    def delete_where(self, predicate: Predicate) -> int:
        """Delete rows matching an arbitrary predicate (full scan)."""
        doomed = [
            (pk, values)
            for pk, values in self._clustered.items()
            if predicate(self.schema.row_to_dict(values))
        ]
        for pk, values in doomed:
            self._clustered.delete(pk)
            self._remove_from_secondary(pk, values)
        return len(doomed)

    def update_by_key(self, pk: Any, changes: Row) -> bool:
        """Update non-key columns of the row with primary key ``pk``."""
        if self.schema.primary_key in changes:
            raise StorageError(
                f"cannot update the primary key of {self.name!r}; "
                "delete and re-insert instead"
            )
        values = self._clustered.get(pk)
        if values is None:
            return False
        row = self.schema.row_to_dict(values)
        row.update(changes)
        new_values = self.schema.validate_row(row)
        self._remove_from_secondary(pk, values)
        self._clustered.upsert(pk, new_values)
        for column, index in self._secondary.items():
            col_idx = self.schema.column_index(column)
            index.insert((new_values[col_idx], pk), pk)
        return True

    def _remove_from_secondary(self, pk: Any, values: Tuple[Any, ...]) -> None:
        for column, index in self._secondary.items():
            col_idx = self.schema.column_index(column)
            index.discard((values[col_idx], pk))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def get(self, pk: Any) -> Optional[Row]:
        """Point lookup by primary key."""
        values = self._clustered.get(pk)
        return None if values is None else self.schema.row_to_dict(values)

    def scan(self, predicate: Optional[Predicate] = None) -> Iterator[Row]:
        """Full scan in primary-key order, optionally filtered."""
        for _, values in self._clustered.items():
            row = self.schema.row_to_dict(values)
            if predicate is None or predicate(row):
                yield row

    def key_range(
        self,
        lo: Optional[Any] = None,
        hi: Optional[Any] = None,
        include_lo: bool = True,
        include_hi: bool = True,
    ) -> Iterator[Row]:
        """Clustered-index range scan in key order."""
        for _, values in self._clustered.range_items(lo, hi, include_lo, include_hi):
            yield self.schema.row_to_dict(values)

    def secondary_range(
        self,
        column: str,
        lo: Optional[Any] = None,
        hi: Optional[Any] = None,
    ) -> Iterator[Row]:
        """Range scan over a secondary index (inclusive bounds on value)."""
        index = self._secondary.get(column)
        if index is None:
            raise StorageError(f"no index on {column!r} of {self.name!r}")
        composite_lo = None if lo is None else (lo, _NEG_INF)
        composite_hi = None if hi is None else (hi, _POS_INF)
        for (_, pk), __ in index.range_items(composite_lo, composite_hi):
            values = self._clustered.get(pk)
            if values is None:  # pragma: no cover - indexes kept in sync
                raise StorageError(f"dangling index entry for pk {pk!r}")
            yield self.schema.row_to_dict(values)

    def min_key(self) -> Optional[Any]:
        """Smallest primary key (Algorithm 3's MIN(time_snapshot))."""
        return self._clustered.min_key()

    def max_key(self) -> Optional[Any]:
        return self._clustered.max_key()

    def count_key_range(self, lo: Optional[Any] = None, hi: Optional[Any] = None) -> int:
        return self._clustered.range_count(lo, hi)


class _Extreme:
    """Sorts below (or above) every other value, for composite index bounds."""

    def __init__(self, low: bool):
        self._low = low

    def __lt__(self, other: Any) -> bool:
        return self._low

    def __gt__(self, other: Any) -> bool:
        return not self._low

    def __eq__(self, other: Any) -> bool:
        return self is other

    def __hash__(self) -> int:  # pragma: no cover - never hashed in practice
        return id(self)


_NEG_INF = _Extreme(low=True)
_POS_INF = _Extreme(low=False)
