"""Offline KPI evaluation from stored telemetry (Section 8, Figure 1).

The production system computes its KPI metrics offline over the long-term
telemetry in Cosmos rather than inside the engine.  This module replays a
telemetry stream and recomputes the workflow-volume and login statistics;
the test suite asserts they match the online (simulator-side) accounting,
which is exactly the cross-check such a pipeline provides in production.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.telemetry.events import Component
from repro.telemetry.store import TelemetryStore


@dataclass(frozen=True)
class OfflineKpis:
    """KPIs recomputed purely from telemetry."""

    logins_total: int
    proactive_resumes: int
    reactive_resumes: int
    logical_pauses: int
    physical_pauses: int
    resume_operation_iterations: int
    max_prewarm_batch: int

    @property
    def qos_percent(self) -> float:
        """% of logins that did NOT trigger a reactive resume."""
        if self.logins_total == 0:
            return 0.0
        served = self.logins_total - self.reactive_resumes
        return 100.0 * served / self.logins_total


def evaluate_offline_kpis(
    store: TelemetryStore, start: Optional[int] = None, end: Optional[int] = None
) -> OfflineKpis:
    """Scan the store and rebuild the Section 8 counters."""
    logins = 0
    workflows: Dict[str, int] = {
        "proactive_resume": 0,
        "reactive_resume": 0,
        "logical_pause": 0,
        "physical_pause": 0,
    }
    iterations = 0
    max_batch = 0
    for event in store.scan(start=start, end=end):
        if event.component is Component.ACTIVITY_TRACKING:
            if event.payload.get("event_type") == 1:
                logins += 1
        elif event.component is Component.LIFECYCLE:
            kind = event.payload.get("workflow")
            if kind in workflows:
                workflows[kind] += 1
        elif event.component is Component.RESUME_OPERATION:
            iterations += 1
            max_batch = max(max_batch, event.payload.get("batch_size", 0))
    return OfflineKpis(
        logins_total=logins,
        proactive_resumes=workflows["proactive_resume"],
        reactive_resumes=workflows["reactive_resume"],
        logical_pauses=workflows["logical_pause"],
        physical_pauses=workflows["physical_pause"],
        resume_operation_iterations=iterations,
        max_prewarm_batch=max_batch,
    )
