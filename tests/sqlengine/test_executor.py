"""Tests for planning and executing SQL against the storage substrate."""

import pytest

from repro.errors import SqlBindingError, SqlExecutionError, TableNotFoundError
from repro.sqlengine.engine import SqlEngine
from repro.sqlengine.parser import parse
from repro.sqlengine.planner import plan_scan
from repro.storage.database import Database


@pytest.fixture
def engine():
    database = Database("test")
    eng = SqlEngine(database)
    eng.execute(
        "CREATE TABLE t (id BIGINT PRIMARY KEY, kind TEXT NOT NULL, value FLOAT)"
    )
    for i in range(10):
        eng.execute(
            "INSERT INTO t (id, kind, value) VALUES (@i, @k, @v)",
            {"i": i, "k": "even" if i % 2 == 0 else "odd", "v": float(i)},
        )
    return eng


class TestSelect:
    def test_select_star(self, engine):
        result = engine.execute("SELECT * FROM t")
        assert result.rowcount == 10
        assert result.rows[0] == {"id": 0, "kind": "even", "value": 0.0}

    def test_select_projection(self, engine):
        rows = engine.execute("SELECT id FROM t WHERE id < 3").rows
        assert rows == [{"id": 0}, {"id": 1}, {"id": 2}]

    def test_where_equality_on_pk(self, engine):
        rows = engine.execute("SELECT * FROM t WHERE id = 4").rows
        assert len(rows) == 1 and rows[0]["id"] == 4

    def test_where_range_with_params(self, engine):
        rows = engine.execute(
            "SELECT id FROM t WHERE @lo <= id AND id <= @hi",
            {"lo": 3, "hi": 6},
        ).rows
        assert [r["id"] for r in rows] == [3, 4, 5, 6]

    def test_where_arithmetic_bound(self, engine):
        rows = engine.execute(
            "SELECT id FROM t WHERE id < @base + 2", {"base": 1}
        ).rows
        assert [r["id"] for r in rows] == [0, 1, 2]

    def test_where_non_indexed_column(self, engine):
        rows = engine.execute("SELECT id FROM t WHERE kind = 'even'").rows
        assert [r["id"] for r in rows] == [0, 2, 4, 6, 8]

    def test_where_or(self, engine):
        rows = engine.execute("SELECT id FROM t WHERE id = 1 OR id = 8").rows
        assert [r["id"] for r in rows] == [1, 8]

    def test_order_by_desc_and_limit(self, engine):
        rows = engine.execute("SELECT id FROM t ORDER BY id DESC LIMIT 3").rows
        assert [r["id"] for r in rows] == [9, 8, 7]

    def test_select_expression_item(self, engine):
        rows = engine.execute("SELECT id + 100 AS shifted FROM t WHERE id = 1").rows
        assert rows == [{"shifted": 101}]

    def test_select_constant_no_table(self, engine):
        assert engine.execute("SELECT 2 * 3 AS v").rows == [{"v": 6}]

    def test_unbound_param_raises(self, engine):
        with pytest.raises(SqlBindingError):
            engine.execute("SELECT * FROM t WHERE id = @missing")

    def test_unknown_table(self, engine):
        with pytest.raises(TableNotFoundError):
            engine.execute("SELECT * FROM nope")

    def test_unknown_column_in_where(self, engine):
        with pytest.raises(SqlExecutionError):
            engine.execute("SELECT * FROM t WHERE bogus = 1")

    def test_type_mismatch_comparison(self, engine):
        with pytest.raises(SqlExecutionError):
            engine.execute("SELECT * FROM t WHERE kind = 5")


class TestAggregates:
    def test_min_max(self, engine):
        row = engine.execute("SELECT MIN(id) AS lo, MAX(id) AS hi FROM t").rows[0]
        assert row == {"lo": 0, "hi": 9}

    def test_min_over_empty_is_null(self, engine):
        row = engine.execute("SELECT MIN(id) AS lo FROM t WHERE id > 100").rows[0]
        assert row["lo"] is None

    def test_count_star(self, engine):
        assert engine.execute("SELECT COUNT(*) AS n FROM t").scalar() == 10

    def test_count_column_skips_nulls(self, engine):
        engine.execute(
            "INSERT INTO t (id, kind, value) VALUES (100, 'x', NULL)"
        )
        assert engine.execute("SELECT COUNT(value) AS n FROM t").scalar() == 10

    def test_aggregate_with_range_filter(self, engine):
        row = engine.execute(
            "SELECT MIN(id) AS lo, MAX(id) AS hi FROM t "
            "WHERE kind = 'odd' AND 2 <= id AND id <= 8"
        ).rows[0]
        assert row == {"lo": 3, "hi": 7}

    def test_mixing_aggregate_and_column_rejected(self, engine):
        with pytest.raises(SqlExecutionError):
            engine.execute("SELECT MIN(id), kind FROM t")


class TestMutations:
    def test_delete_range(self, engine):
        result = engine.execute("DELETE FROM t WHERE 3 < id AND id < 7")
        assert result.rowcount == 3
        assert engine.execute("SELECT COUNT(*) AS n FROM t").scalar() == 7

    def test_delete_all(self, engine):
        assert engine.execute("DELETE FROM t").rowcount == 10

    def test_update(self, engine):
        count = engine.execute(
            "UPDATE t SET kind = 'changed' WHERE id <= 2"
        ).rowcount
        assert count == 3
        rows = engine.execute("SELECT id FROM t WHERE kind = 'changed'").rows
        assert [r["id"] for r in rows] == [0, 1, 2]

    def test_update_with_expression(self, engine):
        engine.execute("UPDATE t SET value = value * 2 WHERE id = 3")
        row = engine.execute("SELECT value FROM t WHERE id = 3").rows[0]
        assert row["value"] == 6.0

    def test_insert_null_into_not_null_rejected(self, engine):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            engine.execute("INSERT INTO t (id, kind) VALUES (50, NULL)")


class TestNullAndArithmeticSemantics:
    def test_comparison_with_null_is_not_true(self, engine):
        engine.execute("INSERT INTO t (id, kind, value) VALUES (100, 'x', NULL)")
        rows = engine.execute("SELECT id FROM t WHERE value < 1000").rows
        assert 100 not in [r["id"] for r in rows]

    def test_is_null_filter(self, engine):
        engine.execute("INSERT INTO t (id, kind, value) VALUES (100, 'x', NULL)")
        rows = engine.execute("SELECT id FROM t WHERE value IS NULL").rows
        assert [r["id"] for r in rows] == [100]

    def test_integer_division_truncates(self, engine):
        assert engine.execute("SELECT 7 / 2 AS v").scalar() == 3

    def test_division_by_zero(self, engine):
        with pytest.raises(SqlExecutionError):
            engine.execute("SELECT 1 / 0 AS v")

    def test_tsql_style_duration_arithmetic(self, engine):
        # The exact expression of Algorithm 3 line 3.
        row = engine.execute(
            "SELECT @now - @h * 24 * 60 * 60 AS historyStart",
            {"now": 100 * 86400, "h": 28},
        ).rows[0]
        assert row["historyStart"] == 72 * 86400


class TestPlanner:
    def _plan(self, where_sql, secondary=()):
        statement = parse(f"SELECT * FROM t WHERE {where_sql}")
        return plan_scan("t", statement.where, "id", list(secondary))

    def test_pk_range_uses_clustered_index(self):
        plan = self._plan("@lo <= id AND id < @hi")
        assert plan.kind == "clustered"
        assert plan.lower.inclusive and not plan.upper.inclusive
        assert plan.residual is None

    def test_equality_sets_both_bounds(self):
        plan = self._plan("id = 5")
        assert plan.kind == "clustered"
        assert plan.lower.inclusive and plan.upper.inclusive

    def test_extra_conjunct_becomes_residual(self):
        plan = self._plan("id >= 1 AND kind = 'x'")
        assert plan.kind == "clustered"
        assert plan.residual is not None

    def test_no_index_match_full_scan(self):
        plan = self._plan("kind = 'x'")
        assert plan.kind == "full"
        assert plan.residual is not None

    def test_secondary_index_preferred_over_full_scan(self):
        plan = self._plan("value >= 1.0", secondary=["value"])
        assert plan.kind == "secondary"
        assert plan.index_column == "value"

    def test_or_predicate_never_indexed(self):
        plan = self._plan("id = 1 OR id = 2")
        assert plan.kind == "full"

    def test_duplicate_bound_goes_residual(self):
        plan = self._plan("id >= 1 AND id >= 2")
        assert plan.kind == "clustered"
        assert plan.residual is not None

    def test_equality_after_range_goes_residual(self):
        plan = self._plan("id >= 1 AND id = 5")
        assert plan.kind == "clustered"
        # Equality must not silently widen/narrow existing bounds.
        assert plan.residual is not None


class TestSecondaryIndexExecution:
    def test_secondary_range_scan(self):
        database = Database("test")
        engine = SqlEngine(database)
        engine.execute("CREATE TABLE m (id TEXT PRIMARY KEY, ts BIGINT NOT NULL)")
        engine.execute("CREATE INDEX ON m (ts)")
        for i in range(20):
            engine.execute(
                "INSERT INTO m (id, ts) VALUES (@id, @ts)",
                {"id": f"db-{i:02d}", "ts": i * 10},
            )
        rows = engine.execute(
            "SELECT id FROM m WHERE @lo <= ts AND ts <= @hi",
            {"lo": 50, "hi": 80},
        ).rows
        assert [r["id"] for r in rows] == ["db-05", "db-06", "db-07", "db-08"]

    def test_strict_bounds_on_secondary(self):
        database = Database("test")
        engine = SqlEngine(database)
        engine.execute("CREATE TABLE m (id TEXT PRIMARY KEY, ts BIGINT NOT NULL)")
        engine.execute("CREATE INDEX ON m (ts)")
        for i in range(5):
            engine.execute(
                "INSERT INTO m (id, ts) VALUES (@id, @ts)", {"id": str(i), "ts": i}
            )
        rows = engine.execute("SELECT id FROM m WHERE 1 < ts AND ts < 4").rows
        assert [r["id"] for r in rows] == ["2", "3"]


class TestStatementCache:
    def test_prepare_caches_ast(self, engine):
        sql = "SELECT * FROM t WHERE id = @x"
        first = engine.prepare(sql)
        second = engine.prepare(sql)
        assert first is second

    def test_scalar_helpers(self, engine):
        assert engine.execute("SELECT MAX(id) AS m FROM t").scalar() == 9
        assert engine.exists("SELECT * FROM t WHERE id = 3")
        assert not engine.exists("SELECT * FROM t WHERE id = 333")
