"""Accounting of simulation outcomes and aggregation into KPI reports.

Every database-second of the evaluation window falls into exactly one of
the four quadrants of Definition 2.2:

* used (D=1, A=1), tracked from session/allocation overlap;
* idle (D=0, A=1), split by cause: logical pause, correct proactive
  resume, wrong proactive resume (Section 8);
* unavailable (D=1, A=0), the reactive-resume gap;
* saved (D=0, A=0), computed as the remainder.

Intervals are clipped to the evaluation window so warm-up time never leaks
into the KPIs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.core.kpi import IdleBreakdown, KpiReport, LoginStats, WorkflowCounts
from repro.types import AllocationInterval, AllocationState


@dataclass
class DatabaseOutcome:
    """Mutable per-database accounting, written by the policy actors."""

    database_id: str
    eval_start: int
    eval_end: int
    collect_timeline: bool = False

    used_s: int = 0
    logical_pause_idle_s: int = 0
    correct_proactive_idle_s: int = 0
    wrong_proactive_idle_s: int = 0
    unavailable_s: int = 0
    maintenance_s: int = 0

    logins_with_resources: int = 0
    logins_reactive: int = 0
    #: Reactive logins attributable to faults/degraded-mode operation.
    logins_reactive_faulted: int = 0

    proactive_resume_times: List[int] = field(default_factory=list)
    reactive_resume_times: List[int] = field(default_factory=list)
    logical_pause_times: List[int] = field(default_factory=list)
    physical_pause_times: List[int] = field(default_factory=list)
    maintenance_resume_times: List[int] = field(default_factory=list)
    correct_proactive_resumes: int = 0
    wrong_proactive_resumes: int = 0

    prediction_latencies_s: List[float] = field(default_factory=list)
    #: (time, predicted_start, predicted_end, confidence) per refresh, kept
    #: only when the simulation enables prediction collection.
    predictions: List[Tuple[int, int, int, float]] = field(default_factory=list)
    timeline: List[AllocationInterval] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Interval helpers (all clip to the evaluation window)
    # ------------------------------------------------------------------

    def _clip(self, start: int, end: int) -> int:
        lo = max(start, self.eval_start)
        hi = min(end, self.eval_end)
        return max(0, hi - lo)

    def add_used(self, start: int, end: int) -> None:
        self.used_s += self._clip(start, end)
        self._record_timeline(start, end, AllocationState.ACTIVE)

    def add_unavailable(self, start: int, end: int) -> None:
        self.unavailable_s += self._clip(start, end)
        self._record_timeline(start, end, AllocationState.RESUMING)

    def add_idle(self, start: int, end: int, cause: str) -> None:
        clipped = self._clip(start, end)
        if cause == "logical_pause":
            self.logical_pause_idle_s += clipped
        elif cause == "correct_proactive":
            self.correct_proactive_idle_s += clipped
        elif cause == "wrong_proactive":
            self.wrong_proactive_idle_s += clipped
        elif cause == "maintenance":
            self.maintenance_s += clipped
        else:
            raise ValueError(f"unknown idle cause {cause!r}")
        self._record_timeline(start, end, AllocationState.IDLE_ALLOCATED)

    def _record_timeline(self, start: int, end: int, state: AllocationState) -> None:
        if self.collect_timeline and end > start:
            self.timeline.append(AllocationInterval(start, end, state))

    # ------------------------------------------------------------------
    # Event helpers
    # ------------------------------------------------------------------

    def _in_window(self, t: int) -> bool:
        return self.eval_start <= t < self.eval_end

    def record_login(self, t: int, served: bool, faulted: bool = False) -> None:
        """``faulted`` marks a reactive login caused by fault-degraded
        operation (predictor breaker open, scan outage) rather than by the
        policy's own reclamation decision."""
        if not self._in_window(t):
            return
        if served:
            self.logins_with_resources += 1
        else:
            self.logins_reactive += 1
            if faulted:
                self.logins_reactive_faulted += 1

    def record_workflow(self, t: int, kind: str) -> None:
        if not self._in_window(t):
            return
        if kind == "proactive_resume":
            self.proactive_resume_times.append(t)
        elif kind == "reactive_resume":
            self.reactive_resume_times.append(t)
        elif kind == "logical_pause":
            self.logical_pause_times.append(t)
        elif kind == "physical_pause":
            self.physical_pause_times.append(t)
        elif kind == "maintenance_resume":
            self.maintenance_resume_times.append(t)
        else:
            raise ValueError(f"unknown workflow kind {kind!r}")

    def record_proactive_outcome(self, t: int, correct: bool) -> None:
        """Classify a proactive resume once its fate is known (the login
        arrived, or the pre-warm expired unused).  Attribution follows the
        time of the pre-warm's *resolution* falling in the window."""
        if not self._in_window(t):
            return
        if correct:
            self.correct_proactive_resumes += 1
        else:
            self.wrong_proactive_resumes += 1

    def record_prediction_latency(self, seconds: float) -> None:
        self.prediction_latencies_s.append(seconds)

    def record_prediction(
        self, now: int, start: int, end: int, confidence: float
    ) -> None:
        self.predictions.append((now, start, end, confidence))

    @property
    def idle_s(self) -> int:
        return (
            self.logical_pause_idle_s
            + self.correct_proactive_idle_s
            + self.wrong_proactive_idle_s
        )

    def saved_s(self) -> int:
        window = self.eval_end - self.eval_start
        return (
            window
            - self.used_s
            - self.idle_s
            - self.unavailable_s
            - self.maintenance_s
        )


def aggregate(
    policy: str,
    outcomes: List[DatabaseOutcome],
    eval_start: int,
    eval_end: int,
) -> KpiReport:
    """Combine per-database outcomes into one region-level KPI report."""
    logins = LoginStats(
        with_resources=sum(o.logins_with_resources for o in outcomes),
        reactive=sum(o.logins_reactive for o in outcomes),
        reactive_faulted=sum(o.logins_reactive_faulted for o in outcomes),
    )
    idle = IdleBreakdown(
        logical_pause_s=sum(o.logical_pause_idle_s for o in outcomes),
        correct_proactive_s=sum(o.correct_proactive_idle_s for o in outcomes),
        wrong_proactive_s=sum(o.wrong_proactive_idle_s for o in outcomes),
    )
    workflows = WorkflowCounts(
        proactive_resumes=sum(len(o.proactive_resume_times) for o in outcomes),
        reactive_resumes=sum(len(o.reactive_resume_times) for o in outcomes),
        logical_pauses=sum(len(o.logical_pause_times) for o in outcomes),
        physical_pauses=sum(len(o.physical_pause_times) for o in outcomes),
        correct_proactive_resumes=sum(o.correct_proactive_resumes for o in outcomes),
        wrong_proactive_resumes=sum(o.wrong_proactive_resumes for o in outcomes),
        maintenance_resumes=sum(len(o.maintenance_resume_times) for o in outcomes),
    )
    latencies: List[float] = []
    for outcome in outcomes:
        latencies.extend(outcome.prediction_latencies_s)
    return KpiReport(
        policy=policy,
        n_databases=len(outcomes),
        eval_start=eval_start,
        eval_end=eval_end,
        logins=logins,
        idle=idle,
        workflows=workflows,
        unavailable_s=sum(o.unavailable_s for o in outcomes),
        used_s=sum(o.used_s for o in outcomes),
        saved_s=sum(o.saved_s() for o in outcomes),
        maintenance_s=sum(o.maintenance_s for o in outcomes),
        prediction_latencies_s=latencies,
    )


def bucket_event_times(times: List[int], start: int, end: int, bucket_s: int) -> List[int]:
    """Counts of events per ``bucket_s`` interval over [start, end) --
    the per-interval workflow volumes of Figures 11 and 12."""
    if bucket_s <= 0:
        raise ValueError("bucket size must be positive")
    n_buckets = max(0, (end - start) // bucket_s)
    counts = [0] * n_buckets
    for t in times:
        if start <= t < start + n_buckets * bucket_s:
            counts[(t - start) // bucket_s] += 1
    return counts
