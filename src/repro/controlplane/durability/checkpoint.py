"""Periodic full-state checkpoints for the durable workflow engine.

A checkpoint is one JSON document holding everything recovery needs to
rebuild the engine *without* replaying the WAL from its first record:
the workflow table, both queue orders, the fault injector's PRNG streams
and ledger, and the log sequence number (LSN) of the last WAL record the
checkpoint covers.  Recovery loads the newest valid checkpoint and
replays only the WAL suffix past its LSN.

Checkpoints are written crash-safely (same-directory temp file + fsync +
atomic rename, :mod:`repro.storage.atomic`) and carry a whole-document
crc32, mirroring the history-snapshot format of
:mod:`repro.storage.durability`.  A corrupt checkpoint is skipped in
favour of the previous one -- the two newest are retained for exactly
that fallback -- degrading recovery to a longer replay, never to data
loss.
"""

from __future__ import annotations

import json
import re
import zlib
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import WalError
from repro.storage.atomic import atomic_write_text

#: Checkpoint format version, bumped on layout changes.
CHECKPOINT_VERSION = 1

#: How many checkpoint generations survive on disk.
KEEP_CHECKPOINTS = 2

_NAME = re.compile(r"^checkpoint-(\d{12})\.json$")


def _payload(document: Dict[str, object]) -> bytes:
    body = {k: v for k, v in document.items() if k != "file_checksum"}
    return json.dumps(body, separators=(",", ":"), sort_keys=True).encode("utf-8")


def checkpoint_paths(directory: Union[str, Path]) -> List[Path]:
    """Existing checkpoint files, oldest first."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(p for p in directory.iterdir() if _NAME.match(p.name))


def write_checkpoint(
    directory: Union[str, Path], state: Dict[str, object], last_lsn: int
) -> Path:
    """Persist ``state`` as the checkpoint covering WAL records
    ``[0, last_lsn)``; prunes generations beyond :data:`KEEP_CHECKPOINTS`."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    document: Dict[str, object] = {
        "version": CHECKPOINT_VERSION,
        "last_lsn": last_lsn,
        "state": state,
    }
    document["file_checksum"] = zlib.crc32(_payload(document))
    path = directory / f"checkpoint-{last_lsn:012d}.json"
    atomic_write_text(path, json.dumps(document))
    for stale in checkpoint_paths(directory)[:-KEEP_CHECKPOINTS]:
        try:
            stale.unlink()
        except OSError:
            pass
    return path


def _load(path: Path) -> Dict[str, object]:
    document = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(document, dict):
        raise WalError(f"checkpoint {path.name} does not hold an object")
    if document.get("version") != CHECKPOINT_VERSION:
        raise WalError(
            f"unsupported checkpoint version {document.get('version')!r}"
        )
    if zlib.crc32(_payload(document)) != document.get("file_checksum"):
        raise WalError(f"checkpoint {path.name} fails its file checksum")
    return document


def load_latest_checkpoint(
    directory: Union[str, Path],
) -> Tuple[Optional[Dict[str, object]], int]:
    """The newest checkpoint that passes validation, or ``None``.

    Returns ``(document, skipped)`` where ``skipped`` counts newer
    checkpoints that failed validation and were passed over.
    """
    skipped = 0
    for path in reversed(checkpoint_paths(directory)):
        try:
            return _load(path), skipped
        except (WalError, ValueError, OSError):
            skipped += 1
    return None, skipped
