"""The process-pool sweep backend.

Candidate evaluations are CPU-bound pure functions of (shared context,
item), so the fan-out is embarrassingly parallel.  The expensive shared
state -- the fleet traces and simulation settings -- is serialized **once
per worker** through the pool initializer and cached in a module-level
global, not pickled per task; tasks themselves are tiny (a config or a
knob value).  Items are submitted in chunks to amortise IPC, and results
are merged back in submission order so the sweep output is byte-identical
to the serial backend regardless of worker count or scheduling.

If the pool breaks (a worker crashed, the platform cannot fork/spawn, a
payload fails to pickle), the run degrades gracefully: the whole sweep is
re-evaluated with :class:`repro.parallel.serial.SerialExecutor` and the
reason is recorded in ``last_stats.fallback_reason``.  Exceptions *raised
by the worker function itself* are not swallowed -- they would fail
serially too, and re-raising keeps bugs visible.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import pickle
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, ContextManager, List, Optional, Sequence, Tuple

from repro.observability.metrics import MetricsRegistry
from repro.observability.runtime import OBS, observed
from repro.observability.tracer import NULL_TRACER
from repro.parallel.base import (
    SweepExecutor,
    SweepStats,
    SweepWorker,
    TaskRecord,
    chunked,
    merge_ordered,
)
from repro.parallel.serial import SerialExecutor

#: Set by the pool initializer inside worker processes; the parent process
#: never flips these.  One (worker, context) pair is cached per process for
#: the lifetime of the pool -- the "serialize once per worker" design.
_WORKER_FN: Optional[SweepWorker] = None
_WORKER_CONTEXT: Any = None
_IN_WORKER = False
_WORKER_OBSERVE = False

#: Exceptions that mean "the parallel infrastructure failed", as opposed to
#: "the task itself is buggy".  Only these trigger the serial fallback.
#: AttributeError / TypeError are what pickle actually raises for
#: local functions and unpicklable payloads; if one instead escapes from a
#: buggy task, the serial rerun reproduces it in the caller's process, so
#: the error still surfaces -- just without the pool in the traceback.
_INFRASTRUCTURE_ERRORS = (
    BrokenProcessPool,
    pickle.PicklingError,
    AttributeError,
    TypeError,
    ImportError,
    OSError,
)


def _init_worker(worker: SweepWorker, context: Any, observe: bool = False) -> None:
    """Pool initializer: cache the shared sweep state in this process."""
    global _WORKER_FN, _WORKER_CONTEXT, _IN_WORKER, _WORKER_OBSERVE
    _WORKER_FN = worker
    _WORKER_CONTEXT = context
    _IN_WORKER = True
    _WORKER_OBSERVE = observe


def _run_chunk(
    chunk: Sequence[Tuple[int, Any]]
) -> Tuple[List[Tuple[int, Any, float, int]], Optional[MetricsRegistry]]:
    """Evaluate one chunk of (index, item) pairs against the cached state.

    When the parent process had observability enabled at submit time, each
    chunk runs under a fresh metrics-only registry (spans stay local: a
    worker's tracer stack is meaningless to the parent) which rides back
    with the results and is merged parent-side in submission order.
    """
    out: List[Tuple[int, Any, float, int]] = []
    pid = os.getpid()
    registry: Optional[MetricsRegistry] = None
    scope: ContextManager[Any] = contextlib.nullcontext()
    if _WORKER_OBSERVE:
        registry = MetricsRegistry()
        scope = observed(tracer=NULL_TRACER, metrics=registry)
    with scope:
        for index, item in chunk:
            start = time.perf_counter()
            result = _WORKER_FN(_WORKER_CONTEXT, item)
            out.append((index, result, time.perf_counter() - start, pid))
    return out, registry


class MultiprocessExecutor(SweepExecutor):
    """Fan sweep tasks out to a :class:`~concurrent.futures.ProcessPoolExecutor`.

    ``workers`` bounds the pool size (it is further capped by the number
    of chunks).  ``chunk_size`` tasks ride in one IPC round-trip; the
    default splits the sweep into about four chunks per worker, which
    keeps the pool busy near the tail without flooding the queue.
    """

    name = "multiprocess"

    def __init__(
        self,
        workers: int = 2,
        chunk_size: Optional[int] = None,
        fallback: bool = True,
        start_method: Optional[str] = None,
        telemetry_store: Optional[Any] = None,
    ):
        super().__init__(telemetry_store=telemetry_store)
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.workers = workers
        self.chunk_size = chunk_size
        self.fallback = fallback
        #: ``fork`` (the Linux default) shares the parent's memory image
        #: and skips re-pickling the worker function; ``spawn`` gives the
        #: cross-platform behaviour where everything must pickle.  None
        #: keeps the platform default.
        self.start_method = start_method

    def _resolve_chunk_size(self, n_items: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        return max(1, n_items // (self.workers * 4))

    def run(
        self, worker: SweepWorker, context: Any, items: Sequence[Any]
    ) -> List[Any]:
        items = list(items)
        if len(items) <= 1 or self.workers == 1:
            # A pool buys nothing for a degenerate sweep.
            return self._run_serial(worker, context, items, reason=None)
        try:
            return self._run_pool(worker, context, items)
        except _INFRASTRUCTURE_ERRORS as exc:
            if not self.fallback:
                raise
            reason = f"{type(exc).__name__}: {exc}"
            warnings.warn(
                f"parallel sweep degraded to serial execution ({reason})",
                RuntimeWarning,
                stacklevel=2,
            )
            return self._run_serial(worker, context, items, reason=reason)

    def _run_pool(
        self, worker: SweepWorker, context: Any, items: Sequence[Any]
    ) -> List[Any]:
        chunks = chunked(list(enumerate(items)), self._resolve_chunk_size(len(items)))
        stats = SweepStats(
            backend=self.name,
            workers=min(self.workers, len(chunks)),
            tasks_queued=len(items),
            n_chunks=len(chunks),
        )
        run_start = time.perf_counter()
        indexed: List[Tuple[int, Any]] = []
        mp_context = (
            multiprocessing.get_context(self.start_method)
            if self.start_method is not None
            else None
        )
        observe = OBS.enabled
        with ProcessPoolExecutor(
            max_workers=stats.workers,
            mp_context=mp_context,
            initializer=_init_worker,
            initargs=(worker, context, observe),
        ) as pool:
            futures = [pool.submit(_run_chunk, chunk) for chunk in chunks]
            # Iterating futures (not as_completed) keeps both the results
            # and the per-chunk registry merges in submission order, so
            # merged metrics are identical regardless of scheduling.
            for future in futures:
                records, registry = future.result()
                for index, result, wall, pid in records:
                    indexed.append((index, result))
                    stats.tasks.append(
                        TaskRecord(index=index, wall_s=wall, worker=f"pid:{pid}")
                    )
                    stats.task_wall_s += wall
                    stats.tasks_completed += 1
                if registry is not None and OBS.enabled:
                    OBS.metrics.merge(registry)
        results = merge_ordered(indexed, len(items))
        stats.wall_s = time.perf_counter() - run_start
        stats.tasks.sort(key=lambda record: record.index)
        self._finish(stats)
        return results

    def _run_serial(
        self,
        worker: SweepWorker,
        context: Any,
        items: Sequence[Any],
        reason: Optional[str],
    ) -> List[Any]:
        serial = SerialExecutor()
        results = serial.run(worker, context, items)
        stats = serial.last_stats
        stats.backend = self.name
        stats.fallback_reason = reason
        self._finish(stats)
        return results
