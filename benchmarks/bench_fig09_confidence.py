"""Figure 9 bench: confidence-threshold sweep 0.1-0.8.

Paper shape: QoS falls (86 -> 50%) and idle time shrinks (6 -> 2%) as the
threshold rises.
"""

from repro.experiments.common import BENCH_SCALE
from repro.experiments.fig9 import run_fig9


def bench_fig9_confidence(benchmark, record_table):
    result = benchmark.pedantic(
        run_fig9, args=(BENCH_SCALE,), rounds=1, iterations=1
    )
    record_table("fig09_confidence", result.table())
    rows = result.rows()
    assert rows[0]["qos_percent"] >= rows[-1]["qos_percent"]
    assert rows[0]["idle_percent"] >= rows[-1]["idle_percent"]
