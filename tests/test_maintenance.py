"""Tests for prediction-aligned maintenance scheduling (Section 11(4))."""

import pytest

from repro.config import ProRPConfig
from repro.errors import SimulationError
from repro.maintenance import (
    MaintenanceKind,
    MaintenanceOperation,
    NaiveScheduler,
    PredictiveScheduler,
    evaluate_schedule,
)
from repro.maintenance.operations import DEFAULT_DURATIONS, ScheduledOperation
from repro.maintenance.scheduler import build_histories
from repro.types import SECONDS_PER_DAY, SECONDS_PER_HOUR, ActivityTrace, Session

DAY = SECONDS_PER_DAY
HOUR = SECONDS_PER_HOUR


def daily_trace(days=30, database_id="db"):
    return ActivityTrace(
        database_id,
        [Session(d * DAY + 9 * HOUR, d * DAY + 17 * HOUR) for d in range(days)],
        created_at=0,
    )


def backup_op(database_id="db", window_start=28 * DAY, deadline=29 * DAY):
    return MaintenanceOperation.with_default_duration(
        database_id, MaintenanceKind.BACKUP, window_start, deadline
    )


class TestOperationModel:
    def test_default_durations(self):
        op = backup_op()
        assert op.duration_s == DEFAULT_DURATIONS[MaintenanceKind.BACKUP]

    def test_window_must_fit_duration(self):
        with pytest.raises(SimulationError):
            MaintenanceOperation("db", MaintenanceKind.BACKUP, 0, 60, 900)

    def test_invalid_duration(self):
        with pytest.raises(SimulationError):
            MaintenanceOperation("db", MaintenanceKind.BACKUP, 0, 100, 0)

    def test_scheduled_end(self):
        placement = ScheduledOperation(backup_op(), start=28 * DAY)
        assert placement.end == 28 * DAY + 15 * 60


class TestNaiveScheduler:
    def test_runs_at_window_start(self):
        placement = NaiveScheduler().schedule(backup_op())
        assert placement.start == 28 * DAY

    def test_naive_placement_misses_online_window(self):
        """A midnight window start hits a paused daily database."""
        trace = daily_trace()
        placement = NaiveScheduler().schedule(backup_op())
        assert trace.demand_at(placement.start) == 0


class TestPredictiveScheduler:
    def _scheduler(self, trace):
        config = ProRPConfig()
        histories = build_histories([trace], as_of=28 * DAY, history_days=28)
        return PredictiveScheduler(histories, config)

    def test_places_inside_predicted_activity(self):
        trace = daily_trace()
        placement = self._scheduler(trace).schedule(backup_op())
        # Predicted online window is around 09:00: the op lands in it.
        assert trace.demand_at(placement.start) == 1

    def test_falls_back_without_history(self):
        scheduler = PredictiveScheduler({}, ProRPConfig())
        placement = scheduler.schedule(backup_op())
        assert placement.start == 28 * DAY

    def test_falls_back_without_prediction(self):
        """An empty history predicts nothing: naive placement."""
        empty = ActivityTrace("db", [], created_at=0)
        scheduler = self._scheduler(empty)
        placement = scheduler.schedule(backup_op())
        assert placement.start == 28 * DAY

    def test_deadline_respected(self):
        """If the predicted window starts too late to fit the work before
        the deadline, the scheduler falls back to the naive start."""
        trace = daily_trace()
        op = MaintenanceOperation.with_default_duration(
            "db", MaintenanceKind.BACKUP, 28 * DAY, 28 * DAY + 2 * HOUR
        )
        placement = self._scheduler(trace).schedule(op)
        assert placement.end <= op.deadline


class TestEvaluation:
    def test_predictive_beats_naive_on_daily_fleet(self):
        """The Section 11(4) claim: scheduling inside predicted-online
        windows avoids resuming databases just for maintenance."""
        traces = {
            f"db-{i}": daily_trace(database_id=f"db-{i}") for i in range(10)
        }
        operations = [
            backup_op(database_id=db_id) for db_id in traces
        ]
        naive = [NaiveScheduler().schedule(op) for op in operations]
        histories = build_histories(
            list(traces.values()), as_of=28 * DAY, history_days=28
        )
        predictive_scheduler = PredictiveScheduler(histories, ProRPConfig())
        predictive = [predictive_scheduler.schedule(op) for op in operations]

        naive_eval = evaluate_schedule(naive, traces, "naive")
        predictive_eval = evaluate_schedule(predictive, traces, "predictive")
        assert naive_eval.online_percent == 0.0
        assert predictive_eval.online_percent == 100.0
        assert predictive_eval.extra_resumes < naive_eval.extra_resumes

    def test_empty_schedule(self):
        evaluation = evaluate_schedule([], {}, "naive")
        assert evaluation.total == 0
        assert evaluation.online_percent == 0.0
