"""Tests for the serverless billing view (Section 2.2 semantics)."""

import pytest

from repro.core.billing import billing_report
from repro.core.kpi import IdleBreakdown, KpiReport, LoginStats, WorkflowCounts
from repro.simulation import SimulationSettings, simulate_region
from repro.types import SECONDS_PER_DAY, SECONDS_PER_HOUR, ActivityTrace, Session

DAY = SECONDS_PER_DAY
HOUR = SECONDS_PER_HOUR


def make_kpis(used=1000, idle=200, unavailable=50):
    return KpiReport(
        policy="proactive",
        n_databases=1,
        eval_start=0,
        eval_end=10_000,
        logins=LoginStats(1, 0),
        idle=IdleBreakdown(logical_pause_s=idle),
        workflows=WorkflowCounts(),
        used_s=used,
        unavailable_s=unavailable,
        saved_s=10_000 - used - idle - unavailable,
    )


class TestBillingReport:
    def test_customers_billed_only_for_use(self):
        report = billing_report(make_kpis())
        assert report.customer_billed_s == 1000
        assert report.provider_allocated_s == 1200
        assert report.unbilled_idle_s == 200
        assert report.unserved_demand_s == 50

    def test_efficiency(self):
        report = billing_report(make_kpis(used=900, idle=100))
        assert report.allocation_efficiency == pytest.approx(0.9)
        assert report.unbilled_fraction == pytest.approx(0.1)

    def test_zero_allocation(self):
        report = billing_report(make_kpis(used=0, idle=0, unavailable=0))
        assert report.allocation_efficiency == 0.0
        assert report.unbilled_fraction == 0.0

    def test_optimal_policy_bills_everything(self):
        trace = ActivityTrace(
            "d", [Session(d * DAY + 9 * HOUR, d * DAY + 17 * HOUR) for d in range(31)]
        )
        settings = SimulationSettings(eval_start=29 * DAY, eval_end=30 * DAY)
        kpis = simulate_region([trace], "optimal", settings=settings).kpis()
        report = billing_report(kpis)
        assert report.allocation_efficiency == 1.0
        assert report.unbilled_idle_s == 0

    def test_proactive_more_efficient_than_reactive(self):
        """The provider-efficiency story of Section 2.2: a daily database
        wastes less unbilled allocation under the proactive policy."""
        trace = ActivityTrace(
            "d", [Session(d * DAY + 9 * HOUR, d * DAY + 17 * HOUR) for d in range(31)]
        )
        settings = SimulationSettings(
            eval_start=29 * DAY, eval_end=30 * DAY, resume_latency_jitter_s=0
        )
        reactive = billing_report(
            simulate_region([trace], "reactive", settings=settings).kpis()
        )
        proactive = billing_report(
            simulate_region([trace], "proactive", settings=settings).kpis()
        )
        assert proactive.allocation_efficiency > reactive.allocation_efficiency
        assert proactive.unbilled_idle_s < reactive.unbilled_idle_s
        # Customers pay the same either way: billing follows demand served.
        assert proactive.customer_billed_s >= reactive.customer_billed_s
