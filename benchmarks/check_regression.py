"""Benchmark regression gate for CI.

Compares freshly-run ``--quick`` benchmark JSONs against the committed
quick baselines in ``benchmarks/results/`` and fails when a headline
metric regresses more than the tolerance (default 25%).

Only scale-robust *ratio* metrics are gated -- speedups, scan
reductions -- never raw wall-clock numbers, which vary with the runner.
A check may list alternative keys: it passes when ANY of them holds,
mirroring the benchmark's own acceptance shape ("the batcher wins on p99
*or* throughput").  Absolute invariants (the overload run sheds, depth
stays bounded) are asserted on the fresh run alone.

Usage (CI runs exactly this)::

    PYTHONPATH=src python benchmarks/bench_fleet_hotpath.py --quick --out /tmp/bench_fresh/BENCH_fleet_hotpath_quick.json
    PYTHONPATH=src python benchmarks/bench_serving.py --quick --out /tmp/bench_fresh/BENCH_serving_quick.json
    python benchmarks/check_regression.py --fresh-dir /tmp/bench_fresh
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Tuple

RESULTS_DIR = Path(__file__).resolve().parent / "results"
DEFAULT_TOLERANCE = 0.25


class MissingMetricError(KeyError):
    """A check referenced a key the results document does not contain."""


def lookup(doc: dict, dotted: str) -> float:
    """Resolve ``"closed_loop.8.p99_speedup"`` against a nested dict."""
    node = doc
    for part in dotted.split("."):
        try:
            node = node[part]
        except (KeyError, TypeError):
            raise MissingMetricError(
                f"metric {dotted!r} not found (missing at {part!r}) -- "
                f"was the benchmark re-run with an older schema?"
            ) from None
    return float(node)


@dataclass(frozen=True)
class RatioCheck:
    """Higher-is-better metric(s): pass when any alternative's fresh
    value is within tolerance of (or better than) its baseline."""

    file: str
    name: str
    alternatives: Tuple[str, ...]

    def run(self, baseline: dict, fresh: dict, tolerance: float) -> List[str]:
        details = []
        for key in self.alternatives:
            base = lookup(baseline, key)
            new = lookup(fresh, key)
            floor = base * (1.0 - tolerance)
            ok = new >= floor
            details.append(
                f"{key}: fresh {new} vs baseline {base} "
                f"(floor {floor:.2f}) {'ok' if ok else 'REGRESSED'}"
            )
            if ok:
                return []
        return details


@dataclass(frozen=True)
class BoundCheck:
    """Absolute invariant on the fresh run: ``value <= limit`` keys, or
    ``value > 0`` when ``positive`` is set."""

    file: str
    name: str
    value: str
    limit: str = ""
    positive: bool = False
    #: Multiplier on the limit for wall-clock-derived bounds, where a
    #: strict `<=` would flake on shared-runner timing noise.
    slack: float = 1.0

    def run(self, baseline: dict, fresh: dict, tolerance: float) -> List[str]:
        new = lookup(fresh, self.value)
        if self.positive:
            if new > 0:
                return []
            return [f"{self.value}: fresh {new}, expected > 0"]
        bound = lookup(fresh, self.limit) * self.slack
        if new <= bound:
            return []
        return [f"{self.value}: fresh {new} exceeds bound {self.limit}={bound}"]


@dataclass(frozen=True)
class CrossBaselineCheck:
    """``min_ratio_vs_other_baseline``: the fresh value of one benchmark
    must clear ``min_ratio`` times a metric from a *different*
    benchmark's results -- the fresh run of that other benchmark when it
    is present in the fresh dir (same machine, same moment; CI runs all
    quick benches together), else its committed baseline.

    This is how the sharded serving bench asserts its 2-worker
    throughput against the single-process serving baseline without
    duplicating the measurement."""

    file: str
    name: str
    value: str
    other_file: str
    other_value: str
    min_ratio: float

    def run(
        self, baseline: dict, fresh: dict, tolerance: float, other: dict
    ) -> List[str]:
        new = lookup(fresh, self.value)
        reference = lookup(other, self.other_value)
        floor = reference * self.min_ratio
        if new >= floor:
            return []
        return [
            f"{self.value}: fresh {new} below {self.min_ratio}x "
            f"{self.other_file}:{self.other_value}={reference} "
            f"(floor {floor:.1f})"
        ]


CHECKS: Tuple[object, ...] = (
    RatioCheck(
        "BENCH_fleet_hotpath_quick.json",
        "batched fleet sweep: full-scan reduction",
        ("fleet_sweep.scan_reduction",),
    ),
    RatioCheck(
        "BENCH_serving_quick.json",
        "serving micro-batcher vs per-request at 8 clients",
        ("closed_loop.8.p99_speedup", "closed_loop.8.throughput_speedup"),
    ),
    RatioCheck(
        "BENCH_serving_quick.json",
        "serving micro-batcher vs per-request at 64 clients",
        ("closed_loop.64.p99_speedup", "closed_loop.64.throughput_speedup"),
    ),
    BoundCheck(
        "BENCH_serving_quick.json",
        "overload run sheds load",
        value="overload.shed_fraction",
        positive=True,
    ),
    BoundCheck(
        "BENCH_serving_quick.json",
        "overload queue depth stays bounded",
        value="overload.max_depth",
        limit="overload.queue_bound",
    ),
    RatioCheck(
        "BENCH_fleet_scale_quick.json",
        "fleet scaling: per-event throughput holds 1k -> 10k",
        ("scaling.throughput_ratio_10k_vs_1k",),
    ),
    RatioCheck(
        "BENCH_fleet_scale_quick.json",
        "lean columnar engine beats the per-actor engine",
        ("engine_comparison.speedup",),
    ),
    BoundCheck(
        "BENCH_fleet_scale_quick.json",
        "lean columnar KPIs identical to the actor engine",
        value="engine_comparison.kpis_identical",
        positive=True,
    ),
    BoundCheck(
        "BENCH_fleet_scale_quick.json",
        "cross-shard KPI merge is executor-deterministic",
        value="shard_merge.deterministic",
        positive=True,
    ),
    BoundCheck(
        "BENCH_fleet_scale_quick.json",
        "fleet curve exercises the pre-warm path",
        value="curve.10000.prewarms",
        positive=True,
    ),
    BoundCheck(
        "BENCH_observability_quick.json",
        "disabled instrumentation guard stays a no-op",
        value="noop.noop_overhead_fraction",
        limit="noop.noop_overhead_limit",
    ),
    BoundCheck(
        "BENCH_observability_quick.json",
        "windowed SLO streams reconcile with batch KPIs",
        value="slo.equivalence_ok",
        positive=True,
    ),
    BoundCheck(
        "BENCH_observability_quick.json",
        "armed monitor evaluates window boundaries",
        value="slo.slo_evaluations",
        positive=True,
    ),
    # The armed-vs-disarmed wall-clock ratio is asserted by the benchmark
    # itself on full (committed-baseline) runs only: a 2-rep quick run on
    # a shared CI runner is too noisy to gate a ~1% fraction.
    BoundCheck(
        "BENCH_observability_quick.json",
        "chaos alert fires and clears; streaming == batch",
        value="alert_roundtrip.ok",
        positive=True,
    ),
    BoundCheck(
        "BENCH_wal_quick.json",
        "WAL append: every journaled record recovered",
        value="append.all_records_recovered",
        positive=True,
    ),
    BoundCheck(
        "BENCH_wal_quick.json",
        "WAL recovery restores byte-identical engine state",
        value="recovery.identical",
        positive=True,
    ),
    BoundCheck(
        "BENCH_wal_quick.json",
        "WAL recovery is exactly-once: no workflow duplicated or lost",
        value="recovery.exactly_once_ok",
        positive=True,
    ),
    RatioCheck(
        "BENCH_wal_quick.json",
        "checkpointed restart beats full WAL replay",
        ("recovery.checkpoint_speedup",),
    ),
    # The armed journaling overhead fraction (<5% of a scenario day) is
    # asserted by the full (local) bench run only, for the same reason as
    # the SLO armed-vs-disarmed ratio above: quick-run wall clocks on a
    # shared CI runner are too noisy to gate a few-percent fraction.
    CrossBaselineCheck(
        "BENCH_serving_sharded_quick.json",
        "sharded tier at 2 workers clears 2x the single-process baseline",
        value="sweep.2.storm.throughput_rps",
        other_file="BENCH_serving_quick.json",
        other_value="overload.throughput_rps",
        min_ratio=2.0,
    ),
    BoundCheck(
        "BENCH_serving_sharded_quick.json",
        "sharded p99 at 2 workers equal-or-better than single-process",
        value="sweep.2.closed.p99_ms",
        limit="single_closed.p99_ms",
        slack=1.25,
    ),
    BoundCheck(
        "BENCH_serving_sharded_quick.json",
        "by-id storm engages the worker prediction cache",
        value="sweep.2.cache_hits",
        positive=True,
    ),
    RatioCheck(
        "BENCH_serving_sharded_quick.json",
        "sharded same-modality speedup at 2 workers holds",
        ("speedup_2w_vs_fresh_single",),
    ),
    BoundCheck(
        "BENCH_tuning_quick.json",
        "online tuning dominates the static sweep under archetype drift",
        value="scenarios.archetype_switch.dominates",
        positive=True,
    ),
    BoundCheck(
        "BENCH_tuning_quick.json",
        "online tuning dominates the static sweep under DST drift",
        value="scenarios.dst_shift.dominates",
        positive=True,
    ),
    RatioCheck(
        "BENCH_tuning_quick.json",
        "online QoS holds its lead over static under archetype drift",
        ("scenarios.archetype_switch.qos_ratio",),
    ),
    RatioCheck(
        "BENCH_tuning_quick.json",
        "online QoS holds its lead over static under DST drift",
        ("scenarios.dst_shift.qos_ratio",),
    ),
    BoundCheck(
        "BENCH_tuning_quick.json",
        "online idle stays within the COGS guard under DST drift",
        value="scenarios.dst_shift.online_idle_percent",
        limit="scenarios.dst_shift.idle_guard_percent",
    ),
    BoundCheck(
        "BENCH_tuning_quick.json",
        "no-op online configuration reproduces the static series",
        value="static_sanity.identical",
        positive=True,
    ),
)


@dataclass
class Outcome:
    passed: List[str] = field(default_factory=list)
    failed: List[str] = field(default_factory=list)
    #: ``(check name, file, "pass"/"FAIL", one-line detail)`` per check,
    #: in declaration order -- the ``--summary-md`` table rows.
    rows: List[Tuple[str, str, str, str]] = field(default_factory=list)


def run_checks(
    baseline_dir: Path, fresh_dir: Path, tolerance: float
) -> Outcome:
    outcome = Outcome()
    docs = {}
    for check in CHECKS:
        if check.file not in docs:
            baseline_path = baseline_dir / check.file
            fresh_path = fresh_dir / check.file
            for path, role in ((baseline_path, "baseline"), (fresh_path, "fresh")):
                if not path.is_file():
                    outcome.failed.append(f"{role} missing: {path}")
            if outcome.failed:
                return outcome
            docs[check.file] = (
                json.loads(baseline_path.read_text()),
                json.loads(fresh_path.read_text()),
            )
        baseline, fresh = docs[check.file]
        try:
            if isinstance(check, CrossBaselineCheck):
                other_fresh = fresh_dir / check.other_file
                other_baseline = baseline_dir / check.other_file
                if other_fresh.is_file():
                    other = json.loads(other_fresh.read_text())
                elif other_baseline.is_file():
                    other = json.loads(other_baseline.read_text())
                else:
                    outcome.failed.append(
                        f"{check.name}: reference {check.other_file} found "
                        f"in neither fresh nor baseline dir"
                    )
                    outcome.rows.append(
                        (check.name, check.file, "FAIL", "reference missing")
                    )
                    continue
                failures = check.run(baseline, fresh, tolerance, other)
            else:
                failures = check.run(baseline, fresh, tolerance)
        except MissingMetricError as exc:
            # A benchmark schema drifted away from its committed baseline:
            # fail loudly with the offending key instead of a bare
            # KeyError traceback.
            failures = [str(exc.args[0])]
        if failures:
            outcome.failed.append(
                f"{check.name} [{check.file}]:\n    " + "\n    ".join(failures)
            )
            outcome.rows.append(
                (check.name, check.file, "FAIL", "; ".join(failures))
            )
        else:
            outcome.passed.append(check.name)
            outcome.rows.append((check.name, check.file, "pass", ""))
    return outcome


def summary_markdown(outcome: Outcome, tolerance: float) -> str:
    """A GitHub-flavoured markdown table for ``$GITHUB_STEP_SUMMARY``."""
    lines = [
        "## Benchmark regression checks",
        "",
        f"Tolerance: {tolerance:.0%} on ratio metrics.",
        "",
        "| Check | Results file | Status | Detail |",
        "| --- | --- | --- | --- |",
    ]
    for name, file, status, detail in outcome.rows:
        icon = ":white_check_mark:" if status == "pass" else ":x:"
        detail = detail.replace("|", "\\|").replace("\n", " ")
        lines.append(f"| {name} | `{file}` | {icon} {status} | {detail} |")
    for failure in outcome.failed:
        if not any(failure.startswith(row[0]) for row in outcome.rows):
            # Missing-file failures never became table rows.
            lines.append(f"| (setup) | | :x: FAIL | {failure} |")
    lines.append("")
    lines.append(
        f"**{len(outcome.failed)} regression(s)**"
        if outcome.failed
        else f"**All {len(outcome.passed)} checks passed.**"
    )
    return "\n".join(lines) + "\n"


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fresh-dir",
        type=Path,
        required=True,
        help="directory holding freshly-run quick benchmark JSONs",
    )
    parser.add_argument(
        "--baseline-dir",
        type=Path,
        default=RESULTS_DIR,
        help="directory holding committed baselines (default: benchmarks/results)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed fractional regression on ratio metrics (default 0.25)",
    )
    parser.add_argument(
        "--summary-md",
        type=Path,
        default=None,
        help="also append a markdown results table to this file "
        "(point it at $GITHUB_STEP_SUMMARY in CI)",
    )
    args = parser.parse_args(argv)

    outcome = run_checks(args.baseline_dir, args.fresh_dir, args.tolerance)
    if args.summary_md is not None:
        with args.summary_md.open("a", encoding="utf-8") as handle:
            handle.write(summary_markdown(outcome, args.tolerance))
    for name in outcome.passed:
        print(f"ok: {name}")
    for failure in outcome.failed:
        print(f"FAIL: {failure}")
    if outcome.failed:
        print(f"{len(outcome.failed)} benchmark regression(s)")
        return 1
    print(f"all {len(outcome.passed)} benchmark checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
