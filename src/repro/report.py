"""One-call region digest: the full operator report for a fleet.

``region_digest`` runs every policy over the same fleet and window and
returns one plain-text report combining:

* the policy comparison (provisioned / reactive / proactive / optimal),
* the proactive policy's idle breakdown and billing efficiency,
* the per-archetype KPI drill-down,
* the hourly monitoring dashboard (sparklines from telemetry).

This is the "show me everything" entry point a downstream operator wants
before digging into individual modules.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.analysis import format_table
from repro.analysis.archetype_report import archetype_breakdown, format_breakdown
from repro.config import DEFAULT_CONFIG, ProRPConfig
from repro.core.billing import billing_report
from repro.simulation.region import (
    RegionSimulationResult,
    SimulationSettings,
    simulate_region,
)
from repro.telemetry import TelemetryStore, emit_simulation_telemetry
from repro.telemetry.monitoring import kpi_rollup, render_dashboard
from repro.types import SECONDS_PER_HOUR, ActivityTrace

POLICY_ORDER = ("provisioned", "reactive", "proactive", "optimal")


def region_digest(
    traces: Sequence[ActivityTrace],
    settings: SimulationSettings,
    config: ProRPConfig = DEFAULT_CONFIG,
    title: str = "Region digest",
    dashboard_bucket_s: int = SECONDS_PER_HOUR,
) -> str:
    """Run the four policies and render the combined report."""
    results = {
        policy: simulate_region(traces, policy, config, settings)
        for policy in POLICY_ORDER
    }
    sections: List[str] = [_policy_comparison(results, title)]
    sections.append(_proactive_detail(results["proactive"]))
    sections.append(
        format_breakdown(
            archetype_breakdown(results["proactive"].outcomes),
            title="Proactive policy by usage archetype",
        )
    )
    sections.append(_dashboard(results["proactive"], traces, dashboard_bucket_s))
    return "\n\n".join(sections)


def _policy_comparison(results, title: str) -> str:
    rows = []
    for policy in POLICY_ORDER:
        kpis = results[policy].kpis()
        billing = billing_report(kpis)
        rows.append(
            [
                policy,
                round(kpis.qos_percent, 1),
                round(kpis.idle_percent, 2),
                round(kpis.unavailable_percent, 3),
                round(billing.allocation_efficiency, 3),
            ]
        )
    return format_table(
        ["policy", "QoS %", "idle %", "unavailable %", "alloc efficiency"],
        rows,
        title=title,
    )


def _proactive_detail(result: RegionSimulationResult) -> str:
    kpis = result.kpis()
    workflows = kpis.workflows
    rows = [
        ["logical pause idle %", round(kpis.idle_logical_pause_percent, 2)],
        ["correct pre-warm idle %", round(kpis.idle_correct_proactive_percent, 2)],
        ["wrong pre-warm idle %", round(kpis.idle_wrong_proactive_percent, 2)],
        ["proactive resumes", workflows.proactive_resumes],
        ["  correct / wrong", f"{workflows.correct_proactive_resumes} / "
                              f"{workflows.wrong_proactive_resumes}"],
        ["reactive resumes", workflows.reactive_resumes],
        ["physical pauses", workflows.physical_pauses],
        ["cluster moves", result.cluster_moves],
    ]
    return format_table(
        ["proactive policy detail", "value"], rows, title="Proactive breakdown"
    )


def _dashboard(
    result: RegionSimulationResult,
    traces: Sequence[ActivityTrace],
    bucket_s: int,
) -> str:
    store = TelemetryStore()
    emit_simulation_telemetry(result, traces, store)
    rollups = kpi_rollup(
        store, result.settings.eval_start, result.settings.eval_end, bucket_s
    )
    return render_dashboard(rollups, title="Proactive policy, per bucket")
