"""Long-term telemetry: the Cosmos-big-data-platform substitute.

The paper persists customer activity and resource allocation decisions
long-term for offline evaluation of KPI metrics and for the monthly
training pipeline (Figure 1, Section 8).  This package provides:

* :mod:`repro.telemetry.events` -- the telemetry event schema (each event
  carries a timestamp in seconds, a database identifier, and the results
  of one ProRP component, exactly as Section 9.1 describes);
* :mod:`repro.telemetry.store` -- an append-only, partitioned event store
  with time-range scans, JSONL export/import, and retention trimming;
* :mod:`repro.telemetry.emitter` -- converts a simulation result into the
  event stream the online components would emit;
* :mod:`repro.telemetry.offline` -- offline KPI evaluation: recomputes the
  Section 8 metrics purely from stored telemetry (and the test suite
  checks they match the online accounting).
"""

from repro.telemetry.emitter import (
    emit_observability_telemetry,
    emit_simulation_telemetry,
    emit_sweep_telemetry,
)
from repro.telemetry.events import Component, TelemetryEvent
from repro.telemetry.offline import OfflineKpis, evaluate_offline_kpis
from repro.telemetry.store import TelemetryStore

__all__ = [
    "Component",
    "TelemetryEvent",
    "TelemetryStore",
    "emit_observability_telemetry",
    "emit_simulation_telemetry",
    "emit_sweep_telemetry",
    "evaluate_offline_kpis",
    "OfflineKpis",
]
