"""Bring your own traces: import a fleet from JSONL and drill into KPIs.

A downstream operator exports their telemetry as JSON Lines (one database
per line with epoch-second sessions), replays it through the policies, and
reads the per-archetype drill-down -- which pattern classes the predictor
serves well and where the idle cost concentrates.

Run:  python examples/custom_traces.py
"""

import tempfile
from pathlib import Path

from repro.analysis.archetype_report import archetype_breakdown, format_breakdown
from repro.simulation import SimulationSettings, simulate_region
from repro.types import SECONDS_PER_DAY as DAY
from repro.workload import RegionPreset, generate_region_traces
from repro.workload.io import export_traces, import_traces


def main() -> None:
    # Stand-in for "your telemetry": a generated fleet written to JSONL.
    fleet = generate_region_traces(RegionPreset.US1, n_databases=150, seed=12)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "my_fleet.jsonl"
        export_traces(fleet, path)
        print(f"exported {len(fleet)} traces to {path.name} "
              f"({path.stat().st_size // 1024} KiB)\n")

        # ... and read back, as an operator with real data would start.
        traces = import_traces(path)

    settings = SimulationSettings(eval_start=31 * DAY, eval_end=33 * DAY)
    result = simulate_region(traces, "proactive", settings=settings)
    print(
        format_breakdown(
            archetype_breakdown(result.outcomes),
            title="US1 proactive policy, by usage archetype",
        )
    )
    kpis = result.kpis()
    print(
        f"\nfleet total: QoS {kpis.qos_percent:.1f}%, "
        f"idle {kpis.idle_percent:.2f}%\n"
        "Daily/nightly patterns ride the pre-warm; sporadic and dormant\n"
        "databases stay reactive -- exactly the per-database variance the\n"
        "paper's challenge (1) describes."
    )


if __name__ == "__main__":
    main()
