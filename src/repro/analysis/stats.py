"""Empirical CDFs, percentiles, and box-plot summaries."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile, q in [0, 100]."""
    if not values:
        raise ValueError("percentile of an empty sequence")
    if not 0 <= q <= 100:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (len(ordered) - 1) * q / 100.0
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    if ordered[lo] == ordered[hi]:
        # Skip the interpolation: a*(1-f) + a*f can round below a for
        # subnormal values (both products underflow toward zero).
        return float(ordered[lo])
    return float(ordered[lo] * (1 - frac) + ordered[hi] * frac)


class EmpiricalCdf:
    """Empirical cumulative distribution of a sample (Figures 3 and 10)."""

    def __init__(self, values: Sequence[float]):
        self._sorted: List[float] = sorted(float(v) for v in values)

    def __len__(self) -> int:
        return len(self._sorted)

    @property
    def values(self) -> List[float]:
        return list(self._sorted)

    def fraction_at_or_below(self, x: float) -> float:
        """F(x) = P(V <= x)."""
        if not self._sorted:
            return 0.0
        import bisect

        return bisect.bisect_right(self._sorted, x) / len(self._sorted)

    def quantile(self, q: float) -> float:
        """Inverse CDF at q in [0, 1]."""
        return percentile(self._sorted, q * 100.0)

    def mean(self) -> float:
        if not self._sorted:
            raise ValueError("mean of an empty CDF")
        return sum(self._sorted) / len(self._sorted)

    def max(self) -> float:
        if not self._sorted:
            raise ValueError("max of an empty CDF")
        return self._sorted[-1]

    def points(self, xs: Sequence[float]) -> List[Tuple[float, float]]:
        """(x, F(x)) pairs for plotting/printing."""
        return [(x, self.fraction_at_or_below(x)) for x in xs]


@dataclass(frozen=True)
class BoxPlotSummary:
    """Five-number summary used by the Figure 11/12 box plots."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    mean: float
    count: int

    def row(self, label: str) -> List[object]:
        """A printable table row."""
        return [
            label,
            self.count,
            round(self.minimum, 1),
            round(self.q1, 1),
            round(self.median, 1),
            round(self.q3, 1),
            round(self.maximum, 1),
            round(self.mean, 2),
        ]


def box_plot_summary(values: Sequence[float]) -> BoxPlotSummary:
    """Compute the five-number summary of a sample."""
    if not values:
        raise ValueError("box plot of an empty sequence")
    return BoxPlotSummary(
        minimum=float(min(values)),
        q1=percentile(values, 25),
        median=percentile(values, 50),
        q3=percentile(values, 75),
        maximum=float(max(values)),
        mean=sum(values) / len(values),
        count=len(values),
    )
