"""Cluster substrate: capacity-constrained nodes hosting serverless
databases.

The paper's motivation for proactive resumes includes the worst case where
"there is not enough resource capacity on the node to resume the resources
for a database.  Such database must be moved to another node" (Section 1).
This package models exactly that: databases are placed on nodes with finite
resume capacity; a resume on a full node triggers a move to the least-loaded
node with room, at a higher latency.
"""

from repro.cluster.cluster import AllocationOutcome, Cluster
from repro.cluster.node import Node

__all__ = ["Node", "Cluster", "AllocationOutcome"]
