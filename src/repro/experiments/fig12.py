"""Figure 12: frequency of resource reclamation workflows.

The number of physically paused databases per time interval (1, 5, 10, 15
minutes), proactive vs reactive.  The paper's maxima grow from 31 to 458
with the interval; counts sit slightly above Figure 11's because new
databases are physically paused on idleness without ever being predicted,
so they contribute pauses but no proactive resumes (Section 9.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.analysis import BoxPlotSummary, box_plot_summary, format_table
from repro.config import DEFAULT_CONFIG
from repro.experiments.common import BENCH_SCALE, ExperimentScale, region_fleet
from repro.simulation.region import RegionSimulationResult, simulate_region
from repro.types import SECONDS_PER_MINUTE
from repro.workload.regions import RegionPreset

MIN = SECONDS_PER_MINUTE

PERIOD_MINUTES = (1, 5, 10, 15)


@dataclass(frozen=True)
class PauseRow:
    period_min: int
    proactive: BoxPlotSummary
    reactive: BoxPlotSummary
    proactive_total: int
    proactive_resume_total: int


@dataclass(frozen=True)
class Fig12Result:
    by_period: List[PauseRow]

    def rows(self) -> List[Dict[str, object]]:
        return [
            {
                "period_min": row.period_min,
                "proactive_max": row.proactive.maximum,
                "proactive_median": row.proactive.median,
                "reactive_max": row.reactive.maximum,
                "pauses_total": row.proactive_total,
                "prewarm_total": row.proactive_resume_total,
            }
            for row in self.by_period
        ]

    def table(self) -> str:
        rows = [
            [
                row.period_min,
                row.proactive.median,
                row.proactive.q3,
                row.proactive.maximum,
                row.reactive.median,
                row.reactive.maximum,
            ]
            for row in self.by_period
        ]
        return format_table(
            [
                "interval (min)",
                "proactive med",
                "proactive q3",
                "proactive max",
                "reactive med",
                "reactive max",
            ],
            rows,
            title=(
                "Figure 12: databases physically paused per interval "
                "[paper: proactive max grows 31 -> 458 from 1 to 15 min, "
                "slightly above the Figure 11 resumes]"
            ),
        )


def run_fig12(
    scale: ExperimentScale = BENCH_SCALE,
    preset: RegionPreset = RegionPreset.EU1,
    period_minutes: Sequence[int] = PERIOD_MINUTES,
) -> Fig12Result:
    """Bucket physical pauses per interval for both policies (a single run
    per policy; the interval is a post-processing bucket, as in the paper's
    telemetry analysis)."""
    traces = region_fleet(preset, scale)
    settings = scale.settings()
    proactive = simulate_region(traces, "proactive", DEFAULT_CONFIG, settings)
    reactive = simulate_region(traces, "reactive", DEFAULT_CONFIG, settings)
    proactive_kpis = proactive.kpis()
    out: List[PauseRow] = []
    for minutes in period_minutes:
        bucket = minutes * MIN
        out.append(
            PauseRow(
                period_min=minutes,
                proactive=box_plot_summary(
                    proactive.workflow_counts_per_interval("physical_pause", bucket)
                ),
                reactive=box_plot_summary(
                    reactive.workflow_counts_per_interval("physical_pause", bucket)
                ),
                proactive_total=proactive_kpis.workflows.physical_pauses,
                proactive_resume_total=proactive_kpis.workflows.proactive_resumes,
            )
        )
    return Fig12Result(out)
