"""Tests for the per-figure experiment drivers (small scales).

These assert the *shape* criteria recorded in DESIGN.md/EXPERIMENTS.md,
not the paper's absolute telemetry values.
"""

import pytest

from repro.experiments.ablation import (
    run_history_length_ablation,
    run_logical_pause_ablation,
    run_prewarm_ablation,
    run_seasonality_ablation,
)
from repro.experiments.common import ExperimentScale, region_fleet
from repro.experiments.fig10 import run_fig10
from repro.experiments.fig11 import run_fig11
from repro.experiments.fig12 import run_fig12
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig7 import run_fig7
from repro.experiments.fig8 import run_fig8
from repro.experiments.fig9 import run_fig9
from repro.workload.regions import RegionPreset

#: Small but statistically meaningful scale for driver tests.
SCALE = ExperimentScale(n_databases=120, eval_days=1, seed=2)
TINY = ExperimentScale(n_databases=60, eval_days=1, seed=2)


class TestScale:
    def test_eval_window_on_weekdays(self):
        # Default window must avoid the synthetic weekend (days 5-6 mod 7).
        start_day = ExperimentScale().eval_start // 86400
        end_day = ExperimentScale().eval_end // 86400
        for day in range(start_day, end_day):
            assert day % 7 < 5

    def test_bad_scales_rejected(self):
        with pytest.raises(ValueError):
            ExperimentScale(span_days=3, eval_days=2)
        with pytest.raises(ValueError):
            ExperimentScale(eval_end_day=99)

    def test_fleet_cached(self):
        a = region_fleet(RegionPreset.EU1, SCALE)
        b = region_fleet(RegionPreset.EU1, SCALE)
        assert [t.database_id for t in a] == [t.database_id for t in b]


class TestFig3:
    def test_headline_shape(self):
        result = run_fig3(SCALE)
        assert result.short_interval_count_percent > 50
        assert result.short_interval_duration_percent < 10
        assert (
            result.short_interval_count_percent
            > 10 * result.short_interval_duration_percent
        )

    def test_rows_monotone(self):
        rows = run_fig3(SCALE).rows()
        for a, b in zip(rows, rows[1:]):
            assert b["count_cdf_percent"] >= a["count_cdf_percent"]
            assert b["duration_cdf_percent"] >= a["duration_cdf_percent"]

    def test_table_renders(self):
        assert "Figure 3" in run_fig3(SCALE).table()


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig6(SCALE, regions=[RegionPreset.EU1, RegionPreset.US2])

    def test_proactive_wins_qos_in_every_region(self, result):
        for row in result.rows():
            assert (
                row["proactive_qos_percent"] > row["reactive_qos_percent"] + 5
            ), row

    def test_proactive_reduces_logical_idle(self, result):
        for row in result.rows():
            assert row["proactive_idle_logical"] < row["reactive_idle_percent"]

    def test_idle_breakdown_sums(self, result):
        for row in result.rows():
            total = (
                row["proactive_idle_logical"]
                + row["proactive_idle_correct"]
                + row["proactive_idle_wrong"]
            )
            assert total == pytest.approx(row["proactive_idle_percent"], abs=1e-6)

    def test_table_renders(self, result):
        assert "Figure 6" in result.table()


class TestFig7:
    def test_stable_across_days(self):
        result = run_fig7(TINY, n_days=2)
        rows = result.rows()
        assert len(rows) == 2
        for row in rows:
            assert row["proactive_qos_percent"] > row["reactive_qos_percent"]


class TestFig8:
    def test_window_sweep_direction(self):
        """Figure 8: QoS and idle both grow with the window size."""
        result = run_fig8(TINY, window_hours=(1, 7))
        rows = result.rows()
        assert rows[0]["window_s"] < rows[1]["window_s"]
        assert rows[1]["qos_percent"] >= rows[0]["qos_percent"]
        assert rows[1]["idle_percent"] >= rows[0]["idle_percent"]


class TestFig9:
    def test_confidence_sweep_direction(self):
        """Figure 9: QoS and idle both shrink as confidence rises."""
        result = run_fig9(TINY, confidences=(0.1, 0.8))
        rows = result.rows()
        assert rows[0]["confidence"] < rows[1]["confidence"]
        assert rows[0]["qos_percent"] >= rows[1]["qos_percent"]
        assert rows[0]["idle_percent"] >= rows[1]["idle_percent"]


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig10(TINY)

    def test_history_small_and_latency_subsecond(self, result):
        """The paper's overhead headline: KB-scale histories, sub-second
        prediction latency."""
        assert result.history_kb.mean() < 74
        assert result.prediction_latency_ms.max() < 1000

    def test_size_is_sixteen_bytes_per_tuple(self, result):
        assert result.history_kb.mean() * 1024 == pytest.approx(
            result.tuple_counts.mean() * 16
        )

    def test_rows_are_quantile_monotone(self, result):
        rows = result.rows()
        for a, b in zip(rows, rows[1:]):
            assert b["tuples"] >= a["tuples"]
            assert b["latency_ms"] >= a["latency_ms"]


class TestFig11:
    def test_batch_size_grows_with_period(self):
        result = run_fig11(SCALE, period_minutes=(1, 15))
        rows = result.rows()
        assert rows[1]["proactive_max"] >= rows[0]["proactive_max"]

    def test_table_renders(self):
        assert "Figure 11" in run_fig11(TINY, period_minutes=(5,)).table()


class TestFig12:
    def test_pause_volume_grows_with_interval(self):
        result = run_fig12(SCALE, period_minutes=(1, 15))
        rows = result.rows()
        assert rows[1]["proactive_max"] >= rows[0]["proactive_max"]

    def test_more_pauses_than_prewarms(self):
        """Figure 12 sits slightly above Figure 11: new databases pause
        without ever being predicted."""
        rows = run_fig12(SCALE, period_minutes=(5,)).rows()
        assert rows[0]["pauses_total"] >= rows[0]["prewarm_total"]


class TestAblations:
    def test_history_length_relatively_flat(self):
        """Section 9.2: the trade-off is relatively independent of h."""
        rows = run_history_length_ablation(TINY, history_days=(14, 28)).rows()
        qos = [r["qos_percent"] for r in rows]
        assert abs(qos[0] - qos[1]) < 15

    def test_seasonality_comparable(self):
        rows = run_seasonality_ablation(TINY).rows()
        daily, weekly = rows[0], rows[1]
        assert abs(daily["qos_percent"] - weekly["qos_percent"]) < 25

    def test_prewarm_sweep_runs(self):
        rows = run_prewarm_ablation(TINY, prewarm_minutes=(1, 30)).rows()
        assert len(rows) == 2

    def test_short_logical_pause_hurts_qos(self):
        """Reclaiming (almost) immediately floods reclamation workflows and
        drops QoS -- the Section 1 motivation for logical pauses."""
        rows = run_logical_pause_ablation(TINY, pause_hours=(0.05, 7)).rows()
        near_zero, production = rows[0], rows[1]
        assert near_zero["qos_percent"] < production["qos_percent"]
        assert near_zero["physical_pauses"] > production["physical_pauses"]


class TestAccuracyDriver:
    def test_accuracy_table_and_rows(self):
        from repro.experiments.accuracy import run_accuracy

        result = run_accuracy(TINY)
        rows = result.rows()
        assert rows[-1]["archetype"] == "fleet"
        assert all(0.0 <= r["precision"] <= 1.0 for r in rows)
        assert "Prediction accuracy" in result.table()
        assert result.fleet.total == sum(
            row.report.total for row in result.by_archetype
        )
