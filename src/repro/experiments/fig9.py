"""Figure 9: varying the confidence threshold ``c``.

The paper sweeps c from 0.1 to 0.8: fewer windows qualify at higher
thresholds, resources are proactively resumed less often, so QoS falls
from 86% to 50% (9a) while idle time shrinks from 6% to 2% (9b).
Production picks c = 0.1 (QoS priority).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis import format_table
from repro.config import DEFAULT_CONFIG
from repro.experiments.common import BENCH_SCALE, ExperimentScale, region_fleet
from repro.parallel import SweepExecutor
from repro.training import ParameterGrid, TrainingPipeline
from repro.workload.regions import RegionPreset

#: The x-axis of Figure 9.
CONFIDENCES = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8)


@dataclass(frozen=True)
class Fig9Result:
    rows_by_confidence: List[Dict[str, object]]

    def rows(self) -> List[Dict[str, object]]:
        return self.rows_by_confidence

    def table(self) -> str:
        rows = [
            [
                r["confidence"],
                round(r["qos_percent"], 1),
                round(r["idle_percent"], 2),
            ]
            for r in self.rows_by_confidence
        ]
        return format_table(
            ["confidence c", "QoS% (9a)", "idle% (9b)"],
            rows,
            title=(
                "Figure 9: varying prediction confidence "
                "[paper: QoS 86 -> 50 and idle 6 -> 2 as c grows 0.1 -> 0.8]"
            ),
        )


def run_fig9(
    scale: ExperimentScale = BENCH_SCALE,
    preset: RegionPreset = RegionPreset.EU1,
    confidences: Sequence[float] = CONFIDENCES,
    executor: Optional[SweepExecutor] = None,
    workers: Optional[int] = None,
) -> Fig9Result:
    traces = region_fleet(preset, scale)
    pipeline = TrainingPipeline(traces, scale.settings())
    grid = ParameterGrid({"confidence": list(confidences)})
    report = pipeline.run(DEFAULT_CONFIG, grid, executor=executor, workers=workers)
    return Fig9Result(report.sweep_rows("confidence"))
