"""Line-format validator for the gateway's OpenMetrics exposition.

CI runs ``repro serve --once --openmetrics-out /tmp/metrics.om`` and then
this script; it fails (exit 1) when the document violates the exposition
contract promised by ``repro.observability.openmetrics``:

* every line is either a ``# TYPE <family> <counter|gauge|histogram>``
  comment, a sample line (``name{labels} value`` with an optional
  ``# {trace_id="..."} value`` exemplar on histogram buckets), or the
  final ``# EOF`` terminator -- which must be the last line;
* a family's ``# TYPE`` line appears exactly once and precedes all of
  its samples; counter samples end in ``_total``, histogram samples in
  ``_bucket``/``_sum``/``_count``;
* histogram buckets are cumulative (non-decreasing as ``le`` grows),
  end in an ``le="+Inf"`` bucket, and the ``+Inf`` count equals the
  family's ``_count`` sample for the same label set.

Usage::

    python benchmarks/check_openmetrics.py /tmp/metrics.om
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

_TYPE_LINE = re.compile(
    r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$"
)
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^{}]*)\})?"
    r" (?P<value>[^ ]+)"
    r"(?: # \{(?P<exemplar>[^{}]*)\} (?P<exvalue>[^ ]+))?$"
)
_LABEL_PAIR = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')

#: sample-name suffixes per family type; "" means the bare family name.
_SUFFIXES = {
    "counter": ("_total",),
    "gauge": ("",),
    "histogram": ("_bucket", "_sum", "_count"),
}


def _split_labels(text: str) -> Optional[List[Tuple[str, str]]]:
    """Split ``k1="v1",k2="v2"`` respecting escaped quotes; None if bad."""
    pairs = []
    for chunk in re.findall(r'[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"', text):
        key, _, value = chunk.partition("=")
        pairs.append((key, value[1:-1]))
    # Reassembling must consume the whole text (catches stray commas,
    # bare values, unquoted labels).
    if ",".join(f'{k}="{v}"' for k, v in pairs) != text:
        return None
    if not all(_LABEL_PAIR.match(f'{k}="{v}"') for k, v in pairs):
        return None
    return pairs


def _family_of(name: str, types: Dict[str, str]) -> Optional[str]:
    """Resolve a sample name to its declared family, if any."""
    for fam, ftype in types.items():
        for suffix in _SUFFIXES[ftype]:
            if name == fam + suffix:
                return fam
    return None


def validate(text: str) -> List[str]:
    errors: List[str] = []
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    if not lines:
        return ["empty document"]
    if lines[-1] != "# EOF":
        errors.append("document does not end with '# EOF'")
    types: Dict[str, str] = {}
    # (family, frozen non-le labels) -> [(le, cumulative count)]
    buckets: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], List[Tuple[str, float]]] = {}
    counts: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
    for i, line in enumerate(lines, start=1):
        if line == "# EOF":
            if i != len(lines):
                errors.append(f"line {i}: '# EOF' before end of document")
            continue
        m = _TYPE_LINE.match(line)
        if m:
            fam = m.group(1)
            if fam in types:
                errors.append(f"line {i}: duplicate '# TYPE' for {fam!r}")
            types[fam] = m.group(2)
            continue
        if line.startswith("#"):
            errors.append(f"line {i}: unrecognised comment {line!r}")
            continue
        m = _SAMPLE_LINE.match(line)
        if m is None:
            errors.append(f"line {i}: malformed sample line {line!r}")
            continue
        name = m.group("name")
        fam = _family_of(name, types)
        if fam is None:
            errors.append(
                f"line {i}: sample {name!r} has no preceding '# TYPE' "
                f"(or wrong suffix for its family type)"
            )
            continue
        labels_text = m.group("labels")
        pairs = _split_labels(labels_text) if labels_text is not None else []
        if pairs is None:
            errors.append(f"line {i}: malformed labels {labels_text!r}")
            continue
        try:
            value = float(m.group("value"))
        except ValueError:
            errors.append(f"line {i}: non-numeric value {m.group('value')!r}")
            continue
        if m.group("exemplar") is not None:
            if not name.endswith("_bucket"):
                errors.append(f"line {i}: exemplar on non-bucket sample {name!r}")
            elif _split_labels(m.group("exemplar")) is None:
                errors.append(
                    f"line {i}: malformed exemplar labels "
                    f"{m.group('exemplar')!r}"
                )
        if types[fam] == "histogram":
            le = dict(pairs).get("le")
            base = tuple(sorted(p for p in pairs if p[0] != "le"))
            if name.endswith("_bucket"):
                if le is None:
                    errors.append(f"line {i}: bucket sample without 'le' label")
                else:
                    buckets.setdefault((fam, base), []).append((le, value))
            elif name.endswith("_count"):
                counts[(fam, base)] = value
    for (fam, base), series in buckets.items():
        where = f"histogram {fam!r}" + (f" {dict(base)}" if base else "")
        if series[-1][0] != "+Inf":
            errors.append(f"{where}: buckets do not end with le=\"+Inf\"")
        values = [v for _, v in series]
        if any(b < a for a, b in zip(values, values[1:])):
            errors.append(f"{where}: cumulative bucket counts decrease")
        expected = counts.get((fam, base))
        if expected is not None and series[-1][0] == "+Inf":
            if series[-1][1] != expected:
                errors.append(
                    f"{where}: +Inf bucket {series[-1][1]} != _count {expected}"
                )
    return errors


def main(argv: List[str]) -> int:
    if len(argv) != 1:
        print("usage: check_openmetrics.py <exposition-file>")
        return 2
    path = Path(argv[0])
    if not path.is_file():
        print(f"FAIL: no such file: {path}")
        return 1
    text = path.read_text(encoding="utf-8")
    errors = validate(text)
    n_samples = sum(
        1
        for line in text.splitlines()
        if line and not line.startswith("#")
    )
    if errors:
        for error in errors:
            print(f"FAIL: {error}")
        print(f"{len(errors)} OpenMetrics format violation(s)")
        return 1
    n_families = text.count("# TYPE ")
    print(f"ok: {n_families} families, {n_samples} samples, valid OpenMetrics")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
