"""The proactive resume operation (Section 7, Algorithm 5).

A periodic management-service activity: each iteration scans the metadata
store for physically paused databases whose predicted activity starts during
the k-th minute from now and pre-warms them (transitioning each to a logical
pause so the resources are ready before the customer logs in).

The operation also keeps the per-iteration batch-size log the paper studies
in Figure 11 to tune its frequency (one minute in production, so no
iteration pre-warms more than ~100 databases).
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import Callable, List, Protocol

from repro.observability.metrics import LATENCY_BUCKETS_MS
from repro.observability.runtime import OBS


class PrewarmSource(Protocol):
    """The metadata scan Algorithm 5 issues (either store backend works)."""

    def databases_to_prewarm(
        self, now: int, prewarm_s: int, period_s: int
    ) -> List[str]: ...


@dataclass
class IterationRecord:
    """One iteration of the proactive resume operation."""

    time: int
    database_ids: List[str]

    @property
    def batch_size(self) -> int:
        return len(self.database_ids)


class ProactiveResumeOperation:
    """Periodic pre-warm of databases ahead of predicted activity."""

    def __init__(
        self,
        metadata: PrewarmSource,
        prewarm_s: int,
        period_s: int,
        on_prewarm: Callable[[str, int], None],
    ):
        """``on_prewarm(database_id, now)`` performs the actual allocation
        (Algorithm 5 line 8 calls the database's LogicalPause())."""
        if period_s <= 0:
            raise ValueError("the operation period must be positive")
        self._metadata = metadata
        self._prewarm_s = prewarm_s
        self._period_s = period_s
        self._on_prewarm = on_prewarm
        self.iterations: List[IterationRecord] = []

    @property
    def period_s(self) -> int:
        return self._period_s

    def run_once(self, now: int) -> IterationRecord:
        """Execute one iteration at time ``now``: select and pre-warm."""
        if not OBS.enabled:
            return self._run_once(now)
        started = _time.perf_counter()
        with OBS.tracer.span("resume.scan", t=now) as span:
            record = self._run_once(now)
            span.set_attribute("batch_size", record.batch_size)
        OBS.metrics.histogram(
            "resume.scan.duration_ms", buckets=LATENCY_BUCKETS_MS
        ).observe((_time.perf_counter() - started) * 1000.0)
        OBS.metrics.counter("resume.scan.iterations").inc()
        OBS.metrics.counter("resume.scan.prewarms").inc(record.batch_size)
        return record

    def _run_once(self, now: int) -> IterationRecord:
        selected = self._metadata.databases_to_prewarm(
            now, self._prewarm_s, self._period_s
        )
        record = IterationRecord(time=now, database_ids=list(selected))
        self.iterations.append(record)
        for database_id in selected:
            self._on_prewarm(database_id, now)
        return record

    def batch_sizes(self, start: int = 0, end: int = None) -> List[int]:
        """Per-iteration batch sizes within [start, end) -- Figure 11's y."""
        return [
            record.batch_size
            for record in self.iterations
            if record.time >= start and (end is None or record.time < end)
        ]
