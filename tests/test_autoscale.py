"""Tests for multi-level proactive auto-scale (Section 11(1))."""

import numpy as np
import pytest

from repro.autoscale import (
    CapacityTrace,
    ProactiveScaler,
    ReactiveScaler,
    capacity_from_activity,
    evaluate_scaler,
)
from repro.errors import ConfigError, TraceError
from repro.types import SECONDS_PER_DAY, SECONDS_PER_HOUR, ActivityTrace, Session

DAY = SECONDS_PER_DAY
HOUR = SECONDS_PER_HOUR
SLOT = 300


def flat_trace(levels):
    return CapacityTrace("db", start=0, slot_s=SLOT, levels=np.array(levels, dtype=np.int16))


class TestCapacityTrace:
    def test_level_at(self):
        trace = flat_trace([0, 2, 5])
        assert trace.level_at(0) == 0
        assert trace.level_at(SLOT) == 2
        assert trace.level_at(2 * SLOT + 10) == 5
        assert trace.level_at(-1) == 0
        assert trace.level_at(3 * SLOT) == 0

    def test_negative_levels_rejected(self):
        with pytest.raises(TraceError):
            flat_trace([-1])

    def test_window(self):
        trace = flat_trace([1, 2, 3, 4])
        assert list(trace.window(SLOT, 3 * SLOT)) == [2, 3]

    def test_window_out_of_bounds(self):
        with pytest.raises(TraceError):
            flat_trace([1]).window(0, 5 * SLOT)

    def test_core_seconds(self):
        assert flat_trace([1, 3]).core_seconds() == 4 * SLOT


class TestCapacityFromActivity:
    def _activity(self):
        return ActivityTrace(
            "db",
            [Session(d * DAY + 9 * HOUR, d * DAY + 17 * HOUR) for d in range(30)],
        )

    def test_demand_zero_outside_sessions(self):
        trace = capacity_from_activity(self._activity(), span_end=30 * DAY)
        assert trace.level_at(5 * DAY + 3 * HOUR) == 0
        assert trace.level_at(5 * DAY + 12 * HOUR) >= 1

    def test_binary_projection_matches_activity(self):
        activity = self._activity()
        trace = capacity_from_activity(activity, span_end=30 * DAY)
        for t in range(0, 3 * DAY, 2 * HOUR):
            assert (trace.level_at(t) > 0) == bool(activity.demand_at(t))

    def test_bounded_by_max_vcores(self):
        trace = capacity_from_activity(self._activity(), span_end=30 * DAY, max_vcores=4)
        assert trace.levels.max() <= 4

    def test_deterministic_per_seed(self):
        a = capacity_from_activity(self._activity(), 30 * DAY, seed=1)
        b = capacity_from_activity(self._activity(), 30 * DAY, seed=1)
        assert (a.levels == b.levels).all()

    def test_invalid_max_vcores(self):
        with pytest.raises(TraceError):
            capacity_from_activity(self._activity(), 30 * DAY, max_vcores=0)


class TestReactiveScaler:
    def test_tracks_demand_with_lag(self):
        trace = flat_trace([0, 4, 4, 4, 0, 0, 0, 0])
        allocation = ReactiveScaler(reaction_slots=1, cooldown_slots=0).allocate(
            trace, 0, 8 * SLOT
        )
        # Demand rises at slot 1; allocation follows at slot 2.
        assert list(allocation) == [0, 0, 4, 4, 4, 0, 0, 0]

    def test_cooldown_holds_allocation(self):
        trace = flat_trace([4, 0, 0, 0, 0])
        allocation = ReactiveScaler(reaction_slots=0, cooldown_slots=2).allocate(
            trace, 0, 5 * SLOT
        )
        assert list(allocation) == [4, 4, 4, 0, 0]

    def test_throttling_during_lag(self):
        trace = flat_trace([0, 4, 4, 0])
        evaluation = evaluate_scaler(
            ReactiveScaler(reaction_slots=1, cooldown_slots=0), trace, 0, 4 * SLOT
        )
        assert evaluation.throttled_core_s == 4 * SLOT  # one slot at level 4

    def test_negative_lags_rejected(self):
        with pytest.raises(ConfigError):
            ReactiveScaler(reaction_slots=-1)


class TestProactiveScaler:
    def _daily_capacity(self):
        activity = ActivityTrace(
            "db",
            [Session(d * DAY + 9 * HOUR, d * DAY + 17 * HOUR) for d in range(30)],
        )
        return capacity_from_activity(activity, span_end=30 * DAY, seed=3)

    def test_envelope_predicts_daily_demand(self):
        trace = self._daily_capacity()
        scaler = ProactiveScaler(history_days=14, quantile=0.8)
        window = (29 * DAY, 30 * DAY)
        envelope = scaler.envelope(trace, *window)
        # Envelope is up during work hours, zero overnight.
        slots_per_hour = HOUR // SLOT
        assert envelope[12 * slots_per_hour] >= 1  # noon
        assert envelope[3 * slots_per_hour] == 0  # 03:00

    def test_proactive_throttles_less_than_reactive(self):
        """The Section 11(1) goal: pre-provisioned capacity absorbs the
        demand the reactive scaler throttles during its reaction lag."""
        trace = self._daily_capacity()
        window = (29 * DAY, 30 * DAY)
        reactive = evaluate_scaler(
            ReactiveScaler(reaction_slots=1, cooldown_slots=6), trace, *window
        )
        proactive = evaluate_scaler(
            ProactiveScaler(history_days=14, quantile=0.8), trace, *window
        )
        assert proactive.throttled_core_s < reactive.throttled_core_s
        assert proactive.throttled_percent < reactive.throttled_percent

    def test_allocation_at_least_reactive(self):
        trace = self._daily_capacity()
        window = (29 * DAY, 30 * DAY)
        scaler = ProactiveScaler(history_days=14)
        proactive_alloc = scaler.allocate(trace, *window)
        reactive_alloc = scaler._reactive.allocate(trace, *window)
        assert (proactive_alloc >= reactive_alloc).all()

    def test_invalid_knobs(self):
        with pytest.raises(ConfigError):
            ProactiveScaler(quantile=0.0)
        with pytest.raises(ConfigError):
            ProactiveScaler(history_days=0)


class TestEvaluation:
    def test_perfect_allocation(self):
        trace = flat_trace([2, 2, 0])

        class Oracle:
            name = "oracle"

            def allocate(self, t, a, b):
                return t.window(a, b).astype(np.int32)

        evaluation = evaluate_scaler(Oracle(), trace, 0, 3 * SLOT)
        assert evaluation.throttled_core_s == 0
        assert evaluation.overprovisioned_core_s == 0
        assert evaluation.throttled_percent == 0.0
        assert evaluation.allocated_core_s == evaluation.demanded_core_s

    def test_percentages_guard_zero_division(self):
        trace = flat_trace([0, 0])

        class Nothing:
            name = "nothing"

            def allocate(self, t, a, b):
                return np.zeros(2, dtype=np.int32)

        evaluation = evaluate_scaler(Nothing(), trace, 0, 2 * SLOT)
        assert evaluation.throttled_percent == 0.0
        assert evaluation.overprovisioned_percent == 0.0
