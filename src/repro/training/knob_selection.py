"""Automated knob selection (future-work direction (2) of the paper).

"So far, we have manually selected the most impactful knobs to tune based
on our domain knowledge.  However, knob selection can be automated, as
defined by the state-of-the-art approaches in academia [32, 65]."

This module implements the OtterTune-style first stage in its simplest
trustworthy form: one-factor-at-a-time sensitivity analysis.  For each
candidate knob, every candidate value is evaluated with all other knobs at
their base values; a knob's impact is the spread of the objective across
its values.  Knobs are then ranked so the (expensive) full grid sweep of
the training pipeline can be restricted to the most impactful ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence

from repro.config import ProRPConfig
from repro.errors import ConfigError
from repro.training.pipeline import CandidateResult, TrainingPipeline


@dataclass(frozen=True)
class KnobImpact:
    """Sensitivity of the objective to one knob."""

    knob: str
    #: Objective spread (max - min) across the knob's candidate values.
    impact: float
    #: Spread of the two KPI components, for interpretation.
    qos_spread: float
    idle_spread: float
    results: List[CandidateResult]


def rank_knobs(
    pipeline: TrainingPipeline,
    base: ProRPConfig,
    candidates: Dict[str, Sequence[Any]],
) -> List[KnobImpact]:
    """Rank knobs by objective sensitivity (most impactful first).

    ``candidates`` maps ProRPConfig field names to the values to probe.
    Values that fail config validation are skipped; a knob whose values all
    fail raises :class:`ConfigError` (the probe set is wrong, not the knob).
    """
    impacts: List[KnobImpact] = []
    for knob, values in sorted(candidates.items()):
        results: List[CandidateResult] = []
        for value in values:
            try:
                config = base.with_overrides(**{knob: value})
            except ConfigError:
                continue
            results.append(pipeline.evaluate(config))
        if not results:
            raise ConfigError(
                f"no valid candidate value for knob {knob!r} out of {values!r}"
            )
        scores = [r.score for r in results]
        qos = [r.kpis.qos_percent for r in results]
        idle = [r.kpis.idle_percent for r in results]
        impacts.append(
            KnobImpact(
                knob=knob,
                impact=max(scores) - min(scores),
                qos_spread=max(qos) - min(qos),
                idle_spread=max(idle) - min(idle),
                results=results,
            )
        )
    impacts.sort(key=lambda k: k.impact, reverse=True)
    return impacts


def select_knobs(
    pipeline: TrainingPipeline,
    base: ProRPConfig,
    candidates: Dict[str, Sequence[Any]],
    top_k: int = 2,
) -> List[str]:
    """The names of the ``top_k`` most impactful knobs -- what the full
    grid sweep should vary (the paper's production pick, window size and
    confidence, are exactly the ones this returns on its fleets)."""
    if top_k <= 0:
        raise ConfigError("top_k must be positive")
    return [impact.knob for impact in rank_knobs(pipeline, base, candidates)[:top_k]]
