"""SQL tokenizer.

Produces a flat token stream for the parser.  Identifiers may be dotted
(``sys.pause_resume_history``) because the paper's table names are
schema-qualified; parameters use the T-SQL ``@name`` form matching the
stored procedures of Algorithms 2-4.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.errors import SqlSyntaxError


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    PARAM = "param"
    INTEGER = "integer"
    FLOAT = "float"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    EOF = "eof"


#: Reserved words recognized as keywords (case-insensitive).
KEYWORDS = frozenset(
    {
        "SELECT", "FROM", "WHERE", "AND", "OR", "NOT", "INSERT", "INTO",
        "VALUES", "DELETE", "UPDATE", "SET", "CREATE", "TABLE", "PRIMARY",
        "KEY", "ORDER", "BY", "ASC", "DESC", "LIMIT", "AS", "NULL", "IS",
        "EXISTS", "MIN", "MAX", "COUNT", "BIGINT", "INT", "FLOAT", "TEXT",
        "INDEX", "ON", "BETWEEN", "IN", "EXPLAIN", "GROUP",
    }
)

_OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "*", "/")
_PUNCT = "(),"


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    position: int

    def matches(self, token_type: TokenType, value: Optional[str] = None) -> bool:
        if self.type is not token_type:
            return False
        return value is None or self.value == value


def tokenize(sql: str) -> List[Token]:
    """Tokenize SQL text; raises :class:`SqlSyntaxError` on bad input."""
    return list(_tokens(sql))


def _tokens(sql: str) -> Iterator[Token]:
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if sql.startswith("--", i):  # line comment
            end = sql.find("\n", i)
            i = n if end == -1 else end + 1
            continue
        if ch == "'":
            yield _string_token(sql, i)
            i = _string_end(sql, i)
            continue
        if ch == "@":
            j = i + 1
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            if j == i + 1:
                raise SqlSyntaxError("empty parameter name after '@'", i)
            yield Token(TokenType.PARAM, sql[i + 1 : j], i)
            i = j
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (sql[j].isdigit() or (sql[j] == "." and not seen_dot)):
                if sql[j] == ".":
                    # A dot not followed by a digit belongs to an identifier
                    # chain, not this number.
                    if j + 1 >= n or not sql[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            text = sql[i:j]
            token_type = TokenType.FLOAT if "." in text else TokenType.INTEGER
            yield Token(token_type, text, i)
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (sql[j].isalnum() or sql[j] in "_."):
                j += 1
            text = sql[i:j]
            upper = text.upper()
            if upper in KEYWORDS and "." not in text:
                yield Token(TokenType.KEYWORD, upper, i)
            else:
                yield Token(TokenType.IDENTIFIER, text, i)
            i = j
            continue
        matched = False
        for op in _OPERATORS:
            if sql.startswith(op, i):
                yield Token(TokenType.OPERATOR, op, i)
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in _PUNCT:
            yield Token(TokenType.PUNCT, ch, i)
            i += 1
            continue
        raise SqlSyntaxError(f"unexpected character {ch!r}", i)
    yield Token(TokenType.EOF, "", n)


def _string_end(sql: str, start: int) -> int:
    i = start + 1
    n = len(sql)
    while i < n:
        if sql[i] == "'":
            if i + 1 < n and sql[i + 1] == "'":  # escaped quote
                i += 2
                continue
            return i + 1
        i += 1
    raise SqlSyntaxError("unterminated string literal", start)


def _string_token(sql: str, start: int) -> Token:
    end = _string_end(sql, start)
    body = sql[start + 1 : end - 1].replace("''", "'")
    return Token(TokenType.STRING, body, start)
